#!/usr/bin/env python
"""Power iteration on a partitioned matrix: SpMV as the inner kernel.

The paper's motivation is iterative solvers: the same SpMV runs
hundreds of times, so per-iteration communication cost compounds.  This
example runs :func:`repro.solvers.power_iteration` (dominant eigenvalue
of a symmetric diffusion-like operator) where every ``y ← A x`` goes
through the compiled SpMV runtime — the partition is compiled once into
a communication plan and each iteration is a pure array apply — and
reports the accumulated communication bill per scheme, including the
BSP cost of the per-iteration global reductions (dot product and norm)
the solver performs.

Run:  python examples/iterative_solver.py
"""

from repro import (
    MachineModel,
    PartitionConfig,
    partition_1d_rowwise,
    power_iteration,
    s2d_heuristic,
)
from repro.generators import knn_mesh
from repro.metrics import format_table

K = 32
ITERS = 30
MACHINE = MachineModel(alpha=20, beta=2, gamma=1)


def main() -> None:
    a = knn_mesh(800, 8, dim=2, seed=13, dense_rows=2, dense_fraction=0.2)
    # symmetrize values so power iteration converges cleanly
    a = ((a + a.T) * 0.5).tocoo()

    oned = partition_1d_rowwise(a, K, PartitionConfig(seed=4))
    s2d = s2d_heuristic(a, x_part=oned.vectors, nparts=K)

    rows = []
    lams = []
    for p in (oned, s2d):
        # tol=0 keeps every run at the full ITERS multiplies, so the
        # schemes are compared over identical iteration counts.
        res = power_iteration(p, iters=ITERS, tol=0.0, machine=MACHINE)
        lams.append(res.history[-1])
        rows.append(
            [
                p.kind,
                f"{res.history[-1]:.6f}",
                f"{res.sim_time:.0f}",
                res.comm_words,
                res.comm_msgs,
            ]
        )
    print(
        format_table(
            ["scheme", "lambda_max", "sim time", "total words", "total msgs"],
            rows,
            title=f"Power iteration, {ITERS} SpMVs, K={K}",
        )
    )
    # Both schemes compute the same spectral estimate (same numerics)...
    assert abs(lams[0] - lams[1]) < 1e-9
    saved = 1 - rows[1][3] / rows[0][3]
    print()
    print(f"identical eigenvalue estimates; s2D shipped {100 * saved:.0f}% fewer")
    print("words over the whole solve, with the same per-iteration message")
    print("pattern — the compounding benefit the paper's introduction argues.")
    print("(sim time includes the solver's per-iteration reduction costs.)")


if __name__ == "__main__":
    main()
