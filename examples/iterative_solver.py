#!/usr/bin/env python
"""Power iteration on a partitioned matrix: SpMV as the inner kernel.

The paper's motivation is iterative solvers: the same SpMV runs
hundreds of times, so per-iteration communication cost compounds.  This
example runs power iteration (dominant eigenvalue of a symmetric
diffusion-like operator) where every ``y ← A x`` goes through the
distributed single-phase executor, and reports the accumulated
communication bill per scheme — the number an application owner
actually cares about.

Run:  python examples/iterative_solver.py
"""

import numpy as np

from repro import (
    MachineModel,
    PartitionConfig,
    partition_1d_rowwise,
    run_single_phase,
    s2d_heuristic,
)
from repro.generators import knn_mesh
from repro.metrics import format_table

K = 32
ITERS = 30
MACHINE = MachineModel(alpha=20, beta=2, gamma=1)


def power_iteration(p, iters: int):
    """Dominant eigenvalue via repeated simulated SpMV."""
    n = p.matrix.shape[1]
    x = np.ones(n) / np.sqrt(n)
    lam = 0.0
    total_time = 0.0
    total_words = 0
    total_msgs = 0
    for _ in range(iters):
        run = run_single_phase(p, x)
        y = run.y
        lam = float(x @ y)
        x = y / np.linalg.norm(y)
        total_time += run.time(MACHINE)
        total_words += run.ledger.total_volume()
        total_msgs += run.ledger.total_msgs()
    return lam, total_time, total_words, total_msgs


def main() -> None:
    a = knn_mesh(800, 8, dim=2, seed=13, dense_rows=2, dense_fraction=0.2)
    # symmetrize values so power iteration converges cleanly
    a = ((a + a.T) * 0.5).tocoo()

    oned = partition_1d_rowwise(a, K, PartitionConfig(seed=4))
    s2d = s2d_heuristic(a, x_part=oned.vectors, nparts=K)

    rows = []
    lams = []
    for p in (oned, s2d):
        lam, t, words, msgs = power_iteration(p, ITERS)
        lams.append(lam)
        rows.append([p.kind, f"{lam:.6f}", f"{t:.0f}", words, msgs])
    print(
        format_table(
            ["scheme", "lambda_max", "sim time", "total words", "total msgs"],
            rows,
            title=f"Power iteration, {ITERS} SpMVs, K={K}",
        )
    )
    # Both schemes compute the same spectral estimate (same numerics)...
    assert abs(lams[0] - lams[1]) < 1e-9
    saved = 1 - rows[1][3] / rows[0][3]
    print()
    print(f"identical eigenvalue estimates; s2D shipped {100 * saved:.0f}% fewer")
    print("words over the whole solve, with the same per-iteration message")
    print("pattern — the compounding benefit the paper's introduction argues.")


if __name__ == "__main__":
    main()
