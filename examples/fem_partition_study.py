#!/usr/bin/env python
"""FEM partition study: when does s2D *not* help much?

The paper is explicit that the s2D advantage tracks row-degree skew:
trdheim (near-regular FEM) improves only ~2%, ASIC_680k (dense rows)
~96%.  This example sweeps a family of k-NN "stiffness" matrices with
an increasing number of planted dense rows and plots (as a text table)
how the s2D volume reduction grows with the skew — the mechanism, not
just the headline.

Run:  python examples/fem_partition_study.py
"""

from repro import (
    PartitionConfig,
    partition_1d_rowwise,
    s2d_heuristic,
    single_phase_comm_stats,
)
from repro.generators import knn_mesh
from repro.metrics import format_li, format_table
from repro.sparse.properties import matrix_properties

K = 32


def main() -> None:
    rows = []
    for dense_rows in (0, 1, 2, 4, 8):
        a = knn_mesh(
            600, 10, dim=3, seed=31, dense_rows=dense_rows, dense_fraction=0.25
        )
        props = matrix_properties(a)
        oned = partition_1d_rowwise(a, K, PartitionConfig(seed=2))
        s2d = s2d_heuristic(a, x_part=oned.vectors, nparts=K)
        v1 = single_phase_comm_stats(oned).total_volume
        vs = single_phase_comm_stats(s2d).total_volume
        rows.append(
            [
                dense_rows,
                f"{props.row_skew:.1f}",
                v1,
                vs,
                f"{100 * (1 - vs / v1):.1f}%",
                format_li(oned.load_imbalance()),
                format_li(s2d.load_imbalance()),
            ]
        )
    print(
        format_table(
            ["dense rows", "skew", "vol 1D", "vol s2D", "reduction",
             "LI 1D", "LI s2D"],
            rows,
            title=f"s2D volume reduction vs row-degree skew (k-NN mesh, K={K})",
        )
    )
    print()
    print("Regular meshes leave s2D little to improve (the paper's trdheim);")
    print("every planted dense row hands Algorithm 1 a horizontal block whose")
    print("reassignment converts many x-words into one partial-y word.")


if __name__ == "__main__":
    main()
