#!/usr/bin/env python
"""Render the paper's Figure 1 and trace its single-phase SpMV.

Prints the reconstructed 10×13 matrix with per-nonzero owners, the
fused messages of eq. (3), and then *executes* the modified SpMV
(Precompute / Expand-and-Fold / Compute) showing what each processor
computes and sends — the worked example of Section III, end to end.

Run:  python examples/figure1_visualization.py
"""

import numpy as np

from repro.experiments import figure1_partition, figure1_report
from repro.simulate import run_single_phase


def main() -> None:
    print(figure1_report())
    print()

    p = figure1_partition()
    x = np.arange(1, 14, dtype=np.float64)  # x_j = j, easy to eyeball
    run = run_single_phase(p, x)

    print("Executed single-phase SpMV with x = [1..13]:")
    led = run.ledger
    print(f"  messages: {led.total_msgs()}, words: {led.total_volume()}")
    for ph in run.phases:
        if ph.flops is not None:
            print(f"  {ph.name:<16} flops/proc = {ph.flops.tolist()}")
    # The worked packet of the text: P2 -> P1 carries [x_5, y~_2].
    words = led.pair_volume("expand-and-fold", 1, 0)
    print(f"  P2 -> P1 packet: {words} words ([x_5, y~_2])")
    # With unit values: y_2 = x_2 (diag) + x_5 (expanded) + y~_2, where
    # y~_2 = x_6 + x_7 = 13 was precomputed by P2 and folded in.
    assert run.y[1] == p.matrix.toarray()[1] @ x
    print(f"  y_2 assembled to {run.y[1]:.0f} = x_2 + x_5 + (x_6 + x_7)")
    print("  output verified against serial A @ x inside the executor.")


if __name__ == "__main__":
    main()
