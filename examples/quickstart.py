#!/usr/bin/env python
"""Quickstart: partition a matrix with s2D and compare against 1D.

This walks the paper's core pipeline end to end:

1. build a sparse matrix (a circuit-simulation analog with dense rows
   — the structure 1D partitioning handles worst);
2. compute a 1D rowwise partition with the hypergraph partitioner;
3. refine it into an s2D partition with Algorithm 1 (same vector
   partition, so the communication *pattern* is unchanged);
4. execute both partitions on the distributed-memory simulator and
   compare volume, latency, balance, and modelled speedup.

Run:  python examples/quickstart.py
"""

from repro import (
    MachineModel,
    PartitionConfig,
    evaluate,
    matrix_properties,
    partition_1d_rowwise,
    s2d_heuristic,
    single_phase_comm_stats,
)
from repro.generators import circuit_like

K = 16
MACHINE = MachineModel(alpha=20, beta=2, gamma=1)


def main() -> None:
    # A 1000-row circuit analog: davg ~ 4 but three dense "power nets".
    a = circuit_like(1000, avg_degree=4, ndense=3, dense_fraction=0.45, seed=7)
    print(matrix_properties(a, name="circuit analog").table_row())
    print()

    # --- 1D rowwise (column-net hypergraph model) ---------------------
    oned = partition_1d_rowwise(a, K, PartitionConfig(seed=1))
    q1 = evaluate(oned, machine=MACHINE)

    # --- s2D via Algorithm 1, on the SAME vector partition ------------
    s2d = s2d_heuristic(a, x_part=oned.vectors, nparts=K)
    qs = evaluate(s2d, machine=MACHINE)

    print(f"{'':14}{'1D':>12}{'s2D':>12}")
    print(f"{'LI':14}{q1.format_li():>12}{qs.format_li():>12}")
    print(f"{'volume':14}{q1.total_volume:>12}{qs.total_volume:>12}")
    print(f"{'msgs avg/max':14}{f'{q1.avg_msgs:.0f}/{q1.max_msgs}':>12}"
          f"{f'{qs.avg_msgs:.0f}/{qs.max_msgs}':>12}")
    print(f"{'speedup':14}{q1.speedup:>12.1f}{qs.speedup:>12.1f}")
    print()

    reduction = 1 - qs.total_volume / q1.total_volume
    print(f"s2D moved {100 * reduction:.0f}% of the 1D communication volume away")
    print("while keeping the exact same message pattern (single comm phase).")

    # The analytic eq.-3 stats agree with what the simulator measured:
    stats = single_phase_comm_stats(s2d)
    assert stats.total_volume == qs.total_volume
    # and the simulated y was verified against A @ x inside evaluate().


if __name__ == "__main__":
    main()
