#!/usr/bin/env python
"""Scale-free SpMV with bounded latency: the paper's Section VI-B story.

On social-network / R-MAT matrices, any 1D-style partition leaves some
processor sending O(K) messages per SpMV; at scale, latency — not
bandwidth — throttles the solve.  This example builds the paper's
rmat_20 analog (a = 0.57, b = c = 0.19, d = 0.05) and compares four
schemes at K = 64:

- 1D rowwise (unbounded messages),
- s2D (same pattern as 1D, less volume),
- 2D-b checkerboard (bounded messages, more volume),
- s2D-b (bounded messages AND s2D's nonzero partition).

Run:  python examples/scale_free_bounded_latency.py
"""

from repro import (
    MachineModel,
    PartitionConfig,
    evaluate,
    make_s2d_bounded,
    matrix_properties,
    partition_1d_rowwise,
    partition_checkerboard,
    s2d_heuristic,
)
from repro.generators import rmat
from repro.metrics import format_table

K = 64
MACHINE = MachineModel(alpha=20, beta=2, gamma=1)


def main() -> None:
    a = rmat(11, edge_factor=4, seed=20)  # 2048 vertices, Graph500 params
    print(matrix_properties(a, name="rmat analog").table_row())
    print()

    cfg = PartitionConfig(seed=3)
    oned = partition_1d_rowwise(a, K, cfg)
    s2d = s2d_heuristic(a, x_part=oned.vectors, nparts=K)
    s2db = make_s2d_bounded(s2d)
    cb = partition_checkerboard(a, K, cfg)

    rows = []
    for p in (oned, s2d, cb, s2db):
        q = evaluate(p, machine=MACHINE)
        rows.append(
            [
                p.kind,
                q.format_li(),
                q.total_volume,
                f"{q.avg_msgs:.0f}/{q.max_msgs}",
                f"{q.speedup:.1f}",
            ]
        )
    print(
        format_table(
            ["scheme", "LI", "volume", "msgs avg/max", "speedup"],
            rows,
            title=f"Scale-free matrix, K={K} (mesh {8}x{8} for bounded schemes)",
        )
    )
    print()
    print("Note how s2D-b keeps s2D's load balance and most of its volume")
    print("advantage while capping messages at (Pr-1)+(Pc-1) = 14 — the")
    print("combination Tables V and VI of the paper highlight.")


if __name__ == "__main__":
    main()
