"""Offline PEP 517 backend shim.

The reproduction environment has no network, so pip cannot populate an
isolated build environment with setuptools/wheel.  This shim makes the
host interpreter's site-packages visible inside pip's isolated build
subprocess (``site.addsitedir`` also executes ``.pth`` files, which
activates setuptools' local-distutils hook) and then delegates every
PEP 517 / PEP 660 hook to ``setuptools.build_meta``.

On a normal, online machine this is a harmless no-op re-add of
site-packages.
"""

import site
import sysconfig

site.addsitedir(sysconfig.get_paths()["purelib"])

from setuptools import build_meta as _backend  # noqa: E402


def get_requires_for_build_wheel(config_settings=None):
    # setuptools reports ["wheel"] here; it is already importable on the
    # host, and reporting it would make pip hit the (absent) network.
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def get_requires_for_build_sdist(config_settings=None):
    return []


def __getattr__(name):
    return getattr(_backend, name)


def __dir__():
    return dir(_backend)
