#!/usr/bin/env python
"""Bench-trend regression gate: diff fresh BENCH_*.json against committed.

Compares every ``BENCH_*.json`` in ``--new-dir`` (default: the repo
root, i.e. the committed copies themselves — which must trivially
pass) against the baselines in ``--baseline-dir`` and exits non-zero
when any acceptance metric regresses below the floor recorded in the
*baseline* file, any boolean acceptance flag is false, or a baselined
metric/file is missing from the fresh set.  Values worse than the
baseline but still above the floor are reported as drift, not failed —
that band absorbs hardware noise.

Typical use after re-running the benchmark drivers into a scratch dir:

    python benchmarks/bench_runtime.py --out /tmp/fresh  # etc.
    python tools/bench_trend.py --new-dir /tmp/fresh

``tools/check_all.py --bench`` runs the committed-vs-committed form as
a gate step.  The comparison logic lives in ``repro.obs.trend``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.trend import trend_report, trend_text  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--new-dir",
        default=str(REPO),
        help="directory holding freshly generated BENCH_*.json (default: repo root)",
    )
    ap.add_argument(
        "--baseline-dir",
        default=str(REPO),
        help="directory holding the committed baselines (default: repo root)",
    )
    ap.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    args = ap.parse_args(argv)

    report = trend_report(args.baseline_dir, args.new_dir)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(trend_text(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
