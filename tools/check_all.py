#!/usr/bin/env python
"""One-shot verification driver: every static check plus the fast test tier.

Runs, in order, and prints one PASS/FAIL line per step:

1. project lint over ``src/repro`` (``repro check lint``);
2. the protocol model checker for 2-4 workers with crash faults;
3. the plan-IR checker on freshly compiled golden instances across all
   three execution models (plan- and shard-level);
4. the fast pytest tier (``-m "not slow"``) in a subprocess — skipped
   with ``--no-pytest`` when only the static layer is wanted;
5. with ``--bench``, the bench-trend gate (``tools/bench_trend.py``)
   over the committed ``BENCH_*.json`` acceptance metrics;
6. with ``--campaign``, a crash-safety smoke: a small faulted grid run
   under a seeded ``FaultPlan`` (worker kill + transient raise) must
   complete with records bit-identical to an unfaulted serial sweep,
   and must leave ``/dev/shm`` clean.

Exit status is 0 iff every step passed.  This is the pre-merge gate in
script form: a checkout where ``tools/check_all.py`` exits 0 has the
same guarantees the CI tier enforces.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def step_lint() -> tuple[bool, str]:
    from repro.verify import run_lint

    violations = run_lint()
    if violations:
        return False, "\n".join(str(v) for v in violations)
    return True, "0 violations over src/repro"


def step_protocol() -> tuple[bool, str]:
    from repro.verify import check_protocol

    reports = check_protocol(
        workers=(2, 3, 4), nsteps=(2, 3), max_faults=1, raise_on_error=False
    )
    bad = [r for r in reports if not r.ok]
    detail = "\n".join(r.summary() for r in (bad or reports[-3:]))
    return not bad, detail


def step_plans() -> tuple[bool, str]:
    import scipy.sparse as sp

    from repro.core import make_s2d_bounded, s2d_heuristic
    from repro.generators.mesh import knn_mesh
    from repro.hypergraph import PartitionConfig
    from repro.partition import partition_1d_rowwise, partition_2d_finegrain
    from repro.runtime import compile_plan, shard_plan
    from repro.sparse.coo import canonical_coo
    from repro.verify import verify_plan

    cfg = PartitionConfig(seed=23, ninitial=2, fm_passes=2)
    mesh = knn_mesh(300, 6, dim=2, seed=7)
    rect = canonical_coo(
        sp.random(40, 55, density=0.12, random_state=5, format="coo")
    )
    oned = partition_1d_rowwise(mesh, 4, cfg)
    s2d = s2d_heuristic(mesh, x_part=oned.vectors, nparts=4)
    instances = [
        ("1d-rowwise/single", oned),
        ("s2d/single", s2d),
        ("s2d-bounded/routed", make_s2d_bounded(s2d)),
        ("finegrain/two", partition_2d_finegrain(mesh, 4, cfg)),
        ("finegrain-rect/two", partition_2d_finegrain(rect, 4, cfg)),
    ]
    lines, ok = [], True
    for label, p in instances:
        plan = compile_plan(p)
        report = verify_plan(plan, shard_plan(p, plan), raise_on_error=False)
        ok &= report.ok
        lines.append(f"{label}: {report.summary()}")
    return ok, "\n".join(lines)


def step_bench_trend() -> tuple[bool, str]:
    from repro.obs.trend import trend_report, trend_text

    report = trend_report(REPO, REPO)
    return report["ok"], trend_text(report)


def step_campaign() -> tuple[bool, str]:
    """Faulted campaign smoke: complete under injected faults, records
    bit-identical to serial, no stray /dev/shm segments left behind."""
    import glob
    import tempfile

    from repro.experiments.config import ExperimentConfig
    from repro.sweep import (
        Campaign,
        FaultPlan,
        FaultSpec,
        RetryPolicy,
        SchemeSpec,
        SweepGrid,
        cell_uid,
        quality_identical,
        run_sweep,
        suite_refs,
    )

    def shm_entries():
        return set(glob.glob("/dev/shm/*")) if os.path.isdir("/dev/shm") else set()

    cfg = ExperimentConfig(scale="tiny")
    grid = SweepGrid(
        matrices=suite_refs("table1", scale="tiny")[:3],
        schemes=(SchemeSpec("1d-rowwise", 0), SchemeSpec("s2d-heuristic", 0)),
        ks=(2, 4, 8),
        seeds=(cfg.seed,),
        machines=(cfg.machine,),
    )
    uids = [cell_uid(t, c) for t in grid.tasks() for c in t.cells]
    faults = FaultPlan(specs=(
        FaultSpec(kind="kill", cell=uids[1]),
        FaultSpec(kind="raise", cell=uids[7], attempts=(0,)),
        FaultSpec(kind="kill", cell=uids[12]),
    ))
    serial = run_sweep(grid, jobs=1)
    before = shm_entries()
    with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as root:
        result = Campaign(
            grid, root, jobs=2, faults=faults,
            retry=RetryPolicy(base=0.05, cap=0.2), watchdog_s=120.0,
        ).run()
    leaked = shm_entries() - before
    lines = [
        f"cells={len(result.records)}/{len(uids)} complete={result.complete} "
        f"killed={int(result.counters['killed'])} "
        f"retries={int(result.counters['retries'])} "
        f"quarantined={int(result.counters['quarantined'])}",
    ]
    ok = result.complete and not result.failed_cells
    if not ok:
        lines += [f"failed: {fc.summary()}" for fc in result.failed_cells]
    ident = len(serial.records) == len(result.records) and all(
        quality_identical(a.quality, b.quality)
        for a, b in zip(serial.records, result.records)
    )
    lines.append(f"bit-identical-to-serial={ident}")
    ok &= ident
    if leaked:
        ok = False
        lines.append(f"/dev/shm leaked: {sorted(leaked)}")
    else:
        lines.append("/dev/shm clean")
    return ok, "\n".join(lines)


def step_pytest() -> tuple[bool, str]:
    env = {**os.environ, "PYTHONPATH": "src"}
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-m", "not slow"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    tail = "\n".join(proc.stdout.strip().splitlines()[-4:])
    return proc.returncode == 0, tail


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--no-pytest",
        action="store_true",
        help="run only the static checks (lint, protocol, plan-IR)",
    )
    ap.add_argument(
        "--bench",
        action="store_true",
        help="also run the bench-trend gate over the committed BENCH files",
    )
    ap.add_argument(
        "--campaign",
        action="store_true",
        help="also run the faulted campaign smoke (kill/raise faults on a "
        "small grid; asserts completion, serial bit-identity, clean /dev/shm)",
    )
    args = ap.parse_args(argv)

    steps = [
        ("lint", step_lint),
        ("protocol", step_protocol),
        ("plan-ir", step_plans),
    ]
    if args.bench:
        steps.append(("bench-trend", step_bench_trend))
    if args.campaign:
        steps.append(("campaign-smoke", step_campaign))
    if not args.no_pytest:
        steps.append(("pytest-fast", step_pytest))

    failed = []
    for name, fn in steps:
        t0 = time.perf_counter()
        try:
            ok, detail = fn()
        except Exception as exc:  # a crashed step is a failed step
            ok, detail = False, f"{type(exc).__name__}: {exc}"
        dt = time.perf_counter() - t0
        print(f"[{'PASS' if ok else 'FAIL'}] {name} ({dt:.1f}s)")
        for line in detail.splitlines():
            print(f"    {line}")
        if not ok:
            failed.append(name)

    if failed:
        print(f"\n{len(failed)} step(s) failed: {', '.join(failed)}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
