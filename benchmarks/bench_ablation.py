"""Ablations of the design choices DESIGN.md calls out.

1. **Algorithm 1's load cap W_lim** — the bi-objective trade-off knob:
   sweeping the cap from tight (1.0×avg) to infinite (= the DM-optimal
   split) should trace the volume/balance frontier: looser caps can
   only lower volume, tighter caps can only lower the max load.
2. **Medium-grain split rule** — the shorter-line heuristic vs forcing
   all nonzeros rowwise / columnwise; the heuristic should not lose to
   either degenerate split in volume.
"""

import numpy as np
from conftest import emit, run_once

from repro.core import (
    partition_s2d_medium_grain,
    s2d_heuristic,
    s2d_optimal,
    single_phase_comm_stats,
)
from repro.generators import circuit_like
from repro.hypergraph import PartitionConfig
from repro.metrics import format_li, format_table
from repro.partition import partition_1d_rowwise

CFG = PartitionConfig(seed=5)


def _wlim_sweep():
    a = circuit_like(700, avg_degree=5, ndense=3, dense_fraction=0.4, seed=21)
    k = 32
    p1 = partition_1d_rowwise(a, k, CFG)
    avg = a.nnz / k
    rows = []
    records = []
    for label, wlim in [
        ("1.00x", 1.00 * avg),
        ("1.03x", 1.03 * avg),
        ("1.10x", 1.10 * avg),
        ("1.50x", 1.50 * avg),
        ("2.00x", 2.00 * avg),
    ]:
        s = s2d_heuristic(a, x_part=p1.vectors, nparts=k, w_lim=wlim)
        vol = single_phase_comm_stats(s).total_volume
        rows.append([label, format_li(s.load_imbalance()), vol])
        records.append((wlim, s.load_imbalance(), vol))
    opt = s2d_optimal(a, x_part=p1.vectors, nparts=k)
    vol_opt = single_phase_comm_stats(opt).total_volume
    rows.append(["optimal", format_li(opt.load_imbalance()), vol_opt])
    v1 = single_phase_comm_stats(p1).total_volume
    rows.append(["1D", format_li(p1.load_imbalance()), v1])
    text = format_table(
        ["W_lim", "LI", "volume"],
        rows,
        title="Ablation: Algorithm 1 load cap (circuit analog, K=32)",
    )
    return text, records, vol_opt, v1


def test_ablation_wlim(benchmark, results_dir):
    text, records, vol_opt, v1 = run_once(benchmark, _wlim_sweep)
    emit(results_dir, "ablation_wlim", text)
    vols = [v for _, _, v in records]
    # every capped heuristic is sandwiched between optimal and 1D
    for v in vols:
        assert vol_opt <= v <= v1
    # loosening the cap never increases volume
    assert all(b <= a for a, b in zip(vols, vols[1:]))


def _split_rule_sweep():
    a = circuit_like(500, avg_degree=5, ndense=2, dense_fraction=0.4, seed=22)
    k = 16
    rows = []
    vols = {}
    for label, mask in [
        ("shorter-line", None),
        ("all-row", np.ones(a.nnz, dtype=bool)),
        ("all-col", np.zeros(a.nnz, dtype=bool)),
    ]:
        p = partition_s2d_medium_grain(a, k, CFG, to_row=mask)
        vol = single_phase_comm_stats(p).total_volume
        vols[label] = vol
        rows.append([label, format_li(p.load_imbalance()), vol])
    text = format_table(
        ["split rule", "LI", "volume"],
        rows,
        title="Ablation: medium-grain split rule (circuit analog, K=16)",
    )
    return text, vols


def test_ablation_split_rule(benchmark, results_dir):
    text, vols = run_once(benchmark, _split_rule_sweep)
    emit(results_dir, "ablation_split", text)
    # the shorter-line rule should not lose to both degenerate rules
    assert vols["shorter-line"] <= max(vols["all-row"], vols["all-col"])
