"""Table V: 1D vs s2D vs s2D-b on the dense-row suite, across K.

Expected shape (paper, Section VI-B-1):

- 1D load imbalance degenerates roughly linearly with K (a dense row
  cannot be split rowwise);
- s2D cuts the 1D volume dramatically (95%/80% at the paper's K);
- s2D-b's volume sits between s2D's and 1D's;
- s2D-b's max message count is O(√K) vs O(K) for 1D/s2D;
- s2D-b's computational load equals s2D's (same nonzero partition).
"""

from conftest import emit, run_once

from repro.experiments import run_table5
from repro.metrics import geomean
from repro.partition.checkerboard import mesh_shape


def test_table5(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table5, cfg)
    emit(results_dir, "table5", res.text)

    for rec in res.records:
        q1, qs, qb = rec["1D"], rec["s2D"], rec["s2D-b"]
        assert qs.total_volume <= q1.total_volume
        assert qs.total_volume <= qb.total_volume
        # same nonzero partition -> identical load balance
        assert abs(qb.load_imbalance - qs.load_imbalance) < 1e-12
        # mesh routing bound
        pr, pc = mesh_shape(rec["K"])
        assert qb.max_msgs <= (pr - 1) + (pc - 1)
        # 1D/s2D pattern is unbounded: max messages can reach K-1
        assert qs.max_msgs <= rec["K"] - 1

    ks = sorted({r["K"] for r in res.records})
    li_1d = {
        k: geomean(r["1D"].load_imbalance for r in res.records if r["K"] == k)
        for k in ks
    }
    # paper: 1D balance degenerates with increasing K...
    assert li_1d[ks[-1]] > li_1d[ks[0]]
    li_s2d = {
        k: geomean(r["s2D"].load_imbalance for r in res.records if r["K"] == k)
        for k in ks
    }
    # ...while s2D stays far better at the largest K
    assert li_s2d[ks[-1]] < li_1d[ks[-1]]
    # volume: s2D achieves a large reduction on this suite
    lam = geomean(r["lam_s2d"] for r in res.records if r["K"] == ks[-1])
    assert lam < 0.8
