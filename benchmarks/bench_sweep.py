"""Benchmark: the sweep orchestrator on the Table II grid.

Times three executions of the full Table II harness (8 matrices × 3 K
values × 3 schemes through one engine per matrix) at bench scale:

- **serial cold** — ``jobs=1``, no artifact cache: the pre-orchestrator
  baseline, one cell at a time on one core;
- **parallel cold** — ``jobs=N`` over a fresh cache directory: the
  fork-based pool saturating cores while writing partitions and cell
  records through the content-addressed store;
- **parallel warm** — the same command again: a pure cache-read pass
  (every record fetched by content address, no partitioner or
  simulator work);
- **campaign resume** — the same grid through the crash-safe
  :class:`~repro.sweep.campaign.Campaign`: a journaled run is cut off
  at 50% of its cells (the coordinator stops exactly as a ``kill -9``
  would — no graceful journal marker), then resumed.  The resume must
  rehydrate every journaled-complete cell from the artifact cache
  (zero recompute), finish the rest, and match the serial baseline
  bit-for-bit.  The journal's measured fsync cost across both halves
  is bounded against the serial cold wall-clock.

Every record of the parallel, warm and campaign runs is verified
*bit-identical* to the serial baseline (same LI / volume / message
counts / speedups, same simulated ``y`` vectors, same communication
ledgers).  Emits ``BENCH_sweep.json`` at the repository root.

Acceptance: ≥ 2.5× cold wall-clock speedup at ``jobs=4`` vs serial,
≥ 8× on the warm rerun, all records identical, the killed campaign
resumes with zero recompute of journaled cells, and journal overhead
≤ 5% of the serial cold wall-clock.

On hosts with fewer CPUs than ``jobs`` a measured multi-process
speedup is physically impossible, so the cold speedup falls back to a
*projection* in the spirit of the repo's machine-model simulations:
the serial baseline's measured per-task wall-clock durations are
list-scheduled (longest-first onto the least-loaded worker — the same
policy the orchestrator's dynamic pool approximates) onto ``jobs``
modeled workers, and the speedup is serial time over that makespan.
The JSON records both numbers, which basis the acceptance used, and
the host CPU count; when the host has enough cores the measured
wall-clock is used directly.

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"

COLD_TARGET = 2.5
WARM_TARGET = 8.0
#: Measured-wall-clock floor for accepting a projected cold speedup:
#: timeslicing `jobs` workers on fewer cores costs some overhead, but
#: a parallel run much slower than serial means the pool itself is
#: broken and the projection may not be trusted.
MEASURED_FLOOR = 0.75
#: Journal fsync cost across run+resume, as a fraction of serial cold.
JOURNAL_OVERHEAD_MAX = 0.05
JOBS = 4
SCHEME_KEYS = ("1D", "2D", "s2D")


def _lpt_makespan(durations: list[float], jobs: int) -> float:
    """Makespan of list-scheduling ``durations`` longest-first onto the
    least-loaded of ``jobs`` workers (the orchestrator's dispatch
    policy, and the classic LPT bound for its dynamic pool)."""
    loads = [0.0] * max(1, jobs)
    for d in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += d
    return max(loads)


def _records_identical(ref_records, records) -> bool:
    from repro.sweep import quality_identical

    if len(ref_records) != len(records):
        return False
    for ra, rb in zip(ref_records, records):
        if (ra["name"], ra["K"]) != (rb["name"], rb["K"]):
            return False
        for key in SCHEME_KEYS:
            if not quality_identical(ra[key], rb[key]):
                return False
    return True


def run(
    out_path: pathlib.Path = DEFAULT_OUT,
    *,
    quick: bool = False,
    jobs: int | None = None,
    cache_dir=None,
) -> dict:
    from repro.experiments import ExperimentConfig
    from repro.experiments.tables import run_table2

    jobs = jobs or (2 if quick else JOBS)
    cfg = ExperimentConfig(scale="tiny" if quick else "small")
    ks = (2, 4) if quick else None

    host_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1)

    # The cold phase must start from an empty store or its speedup is
    # an artifact of cache reads, not parallelism — so the cache is
    # always a fresh unique directory (under --cache-dir when given,
    # so the artifacts land on the caller's disk of choice).
    if cache_dir is not None:
        cache_dir = pathlib.Path(cache_dir).expanduser()
        cache_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
        cache = pathlib.Path(tmp)

        t0 = time.perf_counter()
        serial = run_table2(cfg, ks=ks)
        t_serial = time.perf_counter() - t0
        ncells = len(serial.records) * len(SCHEME_KEYS)
        task_durations = [e["task_s"] for e in serial.meta["engines"]]
        print(
            f"serial cold   jobs=1 {t_serial:7.2f}s  "
            f"({ncells} cells, scale={cfg.scale}, host cpus={host_cpus})"
        )

        t0 = time.perf_counter()
        cold = run_table2(cfg, ks=ks, jobs=jobs, cache_dir=cache)
        t_cold = time.perf_counter() - t0
        cold_ok = _records_identical(serial.records, cold.records)
        # a genuinely cold pass reads nothing from the artifact store
        cold_hits = sum(
            e.get("artifacts", {}).get("hits", 0) for e in cold.meta["engines"]
        )
        measured_cold = t_serial / t_cold
        # Projected pool speedup from the serial run's measured per-task
        # durations (see module docstring); used for acceptance only
        # when the host cannot physically run `jobs` workers at once.
        projected_cold = t_serial / _lpt_makespan(task_durations, jobs)
        basis = "measured" if host_cpus >= jobs else "projected-lpt"
        cold_speedup = measured_cold if basis == "measured" else projected_cold
        # The projection is only trusted while the real pooled run
        # shows bounded oversubscription overhead; a pathologically
        # slow parallel path must not hide behind the model.
        cold_sane = basis == "measured" or measured_cold >= MEASURED_FLOOR
        print(
            f"parallel cold jobs={jobs} {t_cold:7.2f}s  "
            f"speedup measured {measured_cold:4.1f}x / "
            f"projected {projected_cold:4.1f}x ({basis})  "
            f"identical={'yes' if cold_ok else 'NO'}"
        )

        t0 = time.perf_counter()
        warm = run_table2(cfg, ks=ks, jobs=jobs, cache_dir=cache)
        t_warm = time.perf_counter() - t0
        warm_ok = _records_identical(serial.records, warm.records)
        warm_reads = sum(
            e.get("artifacts", {}).get("hits", 0) for e in warm.meta["engines"]
        )
        print(
            f"parallel warm jobs={jobs} {t_warm:7.2f}s  "
            f"speedup {t_serial / t_warm:4.1f}x  "
            f"identical={'yes' if warm_ok else 'NO'}  "
            f"cache reads={warm_reads}"
        )

        # --- campaign resume scenario: kill at 50%, resume, compare ---
        from repro.experiments.tables import table_grid
        from repro.sweep import Campaign, quality_identical, run_sweep

        grid = table_grid(2, cfg, ks)
        ngrid = sum(len(t.cells) for t in grid.tasks())
        # Bit-exact reference records via the already-warm artifact
        # store (records are exact pickles, so this equals a cold
        # serial run of the same grid).
        reference = run_sweep(grid, jobs=1, cache_dir=cache)
        camp_root = cache / "campaign"
        stop_after = ngrid // 2

        t0 = time.perf_counter()
        half = Campaign(grid, camp_root, jobs=jobs, stop_after=stop_after).run()
        t_camp_run = time.perf_counter() - t0
        t0 = time.perf_counter()
        resumed = Campaign(grid, camp_root, jobs=jobs).resume()
        t_camp_resume = time.perf_counter() - t0

        resumed_cells = int(resumed.counters["resumed_cells"])
        recomputed = int(resumed.counters["cells_executed"])
        resume_identical = len(resumed.records) == len(reference.records) and all(
            quality_identical(a.quality, b.quality)
            for a, b in zip(reference.records, resumed.records)
        )
        # Every journaled-complete cell must come back from the cache,
        # never the partitioner: resume skips exactly what the journal
        # proved done (the half run may overshoot stop_after by cells
        # already in flight when the coordinator stopped).
        done_at_kill = len(half.records)
        resume_skipped = resumed_cells == done_at_kill
        journal_write_s = float(
            half.counters["journal_write_s"] + resumed.counters["journal_write_s"]
        )
        journal_overhead = journal_write_s / t_serial
        print(
            f"campaign kill@{done_at_kill}/{ngrid} {t_camp_run:7.2f}s + "
            f"resume {t_camp_resume:7.2f}s  "
            f"rehydrated={resumed_cells} recomputed={recomputed}  "
            f"identical={'yes' if resume_identical else 'NO'}  "
            f"journal overhead={journal_overhead * 100:.2f}% of serial"
        )

        # Per-engine memory pressure of the cold pass (cached_bytes is
        # what sweep workers log to size long grids).
        engines = [
            {
                "matrix": e["matrix"],
                "entries": e["entries"],
                "cached_bytes": e["cached_bytes"],
                "artifacts": e.get("artifacts", {}),
            }
            for e in cold.meta["engines"]
        ]
        peak = max((e["cached_bytes"] for e in engines), default=0)
        print(f"peak engine cache: {peak / 1e6:.1f} MB")

    result = {
        "config": {
            "scale": cfg.scale,
            "seed": cfg.seed,
            "quick": quick,
            "jobs": jobs,
            "host_cpus": host_cpus,
            "ks": list(ks or cfg.general_ks),
            "cells": ncells,
        },
        "serial_cold_s": t_serial,
        "serial_task_s": task_durations,
        "parallel_cold_s": t_cold,
        "parallel_warm_s": t_warm,
        "campaign_run_s": t_camp_run,
        "campaign_resume_s": t_camp_resume,
        "campaign_cells": ngrid,
        "campaign_done_at_kill": done_at_kill,
        "campaign_journal_write_s": journal_write_s,
        "campaign_journal_appends": int(
            half.counters["journal_appends"]
            + resumed.counters["journal_appends"]
        ),
        "engines": engines,
        "peak_cached_bytes": peak,
        "acceptance": {
            "jobs": jobs,
            "cold_speedup": cold_speedup,
            "cold_speedup_basis": basis,
            "cold_speedup_measured": measured_cold,
            "cold_speedup_projected": projected_cold,
            "cold_target": COLD_TARGET,
            "cold_measured_floor": MEASURED_FLOOR,
            "cold_cache_hits": cold_hits,
            "warm_speedup": t_serial / t_warm,
            "warm_target": WARM_TARGET,
            "identical": bool(cold_ok and warm_ok),
            "resume_identical": bool(resume_identical),
            "resume_rehydrated": resumed_cells,
            "resume_recomputed": recomputed,
            "resume_zero_recompute_of_journaled": bool(resume_skipped),
            "journal_overhead_frac": journal_overhead,
            "journal_overhead_max": JOURNAL_OVERHEAD_MAX,
            "passed": bool(
                cold_speedup >= COLD_TARGET
                and cold_sane
                and t_serial / t_warm >= WARM_TARGET
                and cold_ok
                and warm_ok
                and cold_hits == 0
                and resume_identical
                and resume_skipped
                and journal_overhead <= JOURNAL_OVERHEAD_MAX
            ),
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    result = run()
    print(json.dumps(result["acceptance"], indent=2))
    return 0 if result["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
