"""Figure 1: the worked 10×13 example, rendered and pinned."""

from conftest import emit, run_once

from repro.core import pairwise_volumes
from repro.experiments import figure1_partition, figure1_report


def test_figure1(benchmark, results_dir):
    text = run_once(benchmark, figure1_report)
    emit(results_dir, "figure1", text)

    p = figure1_partition()
    lam = pairwise_volumes(p)
    # the two worked numbers of the paper's Figure 1 caption/text
    assert lam[(1, 0)] == 2  # P2 -> P1 carries [x_5, y~_2]
    assert lam[(2, 1)] == 3  # lambda_{3->2} = 3
