"""Benchmark: shared-memory parallel SpMV vs single-core baselines.

Times the per-iteration wall-clock of three ways to run the same
multiply on an R-MAT instance and a ~10k-vertex kNN mesh under a
communication-heavy cyclic s2D partition at K ∈ {4, 8}:

- the single-core compiled ``plan.apply_y`` (the PR-4 runtime),
- a raw ``scipy.sparse`` CSR matvec (no partition, no ledger — the
  absolute single-core floor),
- the sharded plan on the :class:`~repro.runtime.ParallelExecutor`
  process pool (one worker per part).

Every entry verifies the parallel ``y`` is *bit-identical* to the
compiled apply and that the words measured through the shared buffers
reconcile exactly against the machine-model ledger.

Hosts with fewer cores than K cannot measure a real speedup, so each
entry records its ``basis`` (the ``BENCH_sweep.json`` convention):
``"measured"`` when ``host_cpus >= k``, else ``"projected-lpt"`` — the
per-part per-step wall-clock of a serial shard replay
(:func:`~repro.runtime.apply_shards_serial`), list-scheduled
longest-first onto K workers per superstep.  The measured pool time is
recorded either way.  ``host_cpus`` is in the JSON so a reader can
judge the basis.  Emits ``BENCH_parallel.json`` at the repo root.

Acceptance: every entry bit-identical and reconciled; on a host with
``host_cpus >= K`` additionally a ≥ 2× measured per-iteration speedup
over the compiled apply on the ~10k-vertex mesh at K = 4.  On smaller
hosts the speedup target does not apply — the contract is the honestly
recorded projection basis (the projection itself is reported but not
thresholded, since it includes per-shard overhead a real multi-core
run would also pay).

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_parallel.json"

SEED = 17
SPEEDUP_TARGET = 2.0
ACCEPTANCE_MODEL = "mesh10k"  # the ~10k-vertex suite mesh
ACCEPTANCE_K = 4


def _host_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-POSIX


def _per_iter(fn, niters: int, reps: int) -> float:
    """Best-of-``reps`` mean per-iteration wall-clock of ``fn``."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(niters):
            fn()
        best = min(best, (time.perf_counter() - t0) / niters)
    return best


def run(out_path: pathlib.Path = DEFAULT_OUT, *, quick: bool = False) -> dict:
    import numpy as np

    from bench_simulate import _cyclic_s2d, _matrices
    from bench_sweep import _lpt_makespan
    from repro.runtime import ParallelExecutor, compile_plan, shard_plan
    from repro.runtime.parallel import _N_STEPS, apply_shards_serial

    ks = (2, 4) if quick else (4, 8)
    niters = 5 if quick else 20
    reps = 2 if quick else 3
    host_cpus = _host_cpus()

    entries = []
    for name, a in _matrices(quick):
        csr = a.tocsr() if hasattr(a, "tocsr") else a
        for k in ks:
            p = _cyclic_s2d(a, k, SEED)
            plan = compile_plan(p)
            shards = shard_plan(p, plan)
            ncols = p.matrix.shape[1]
            x = np.random.default_rng(SEED).standard_normal(ncols)

            apply_s = _per_iter(lambda: plan.apply_y(x), niters, reps)
            scipy_s = _per_iter(lambda: csr @ x, niters, reps)

            # The pool, measured: bit-identity + ledger reconciliation
            # are part of the benchmark contract, not just the timing.
            with ParallelExecutor(plan, shards, jobs=k) as ex:
                identical = bool(np.array_equal(ex.apply_y(x), plan.apply_y(x)))
                measured_s = _per_iter(lambda: ex.apply_y(x), niters, reps)
                recon = ex.reconcile()
            reconciled = recon["iters"] == 1 + niters * reps

            # LPT projection from a serial shard replay's per-part
            # per-step wall-clock (what a >= K-core host would overlap).
            nsteps = _N_STEPS[plan.executor]
            projected_s = float("inf")
            for _ in range(reps):
                timings = np.zeros((k, nsteps))
                y_serial = apply_shards_serial(plan, shards, x, timings=timings)
                projected_s = min(
                    projected_s,
                    sum(
                        _lpt_makespan(list(timings[:, s]), k)
                        for s in range(nsteps)
                    ),
                )
            identical = identical and bool(np.array_equal(y_serial, plan.apply_y(x)))

            basis = "measured" if host_cpus >= k else "projected-lpt"
            parallel_s = measured_s if basis == "measured" else projected_s
            entries.append(
                {
                    "model": name,
                    "nnz": int(p.matrix.nnz),
                    "k": k,
                    "executor": plan.executor,
                    "host_cpus": host_cpus,
                    "basis": basis,
                    "apply_s": apply_s,
                    "scipy_csr_s": scipy_s,
                    "parallel_measured_s": measured_s,
                    "parallel_projected_s": projected_s,
                    "parallel_s": parallel_s,
                    "speedup_vs_apply": apply_s / parallel_s,
                    "speedup_vs_scipy": scipy_s / parallel_s,
                    "words_per_iter": recon["total_words_per_iter"],
                    "identical": identical,
                    "reconciled": reconciled,
                }
            )
            print(
                f"{name:10s} K={k:<3d} apply {apply_s * 1e3:8.3f}ms  "
                f"scipy {scipy_s * 1e3:8.3f}ms  "
                f"parallel {parallel_s * 1e3:8.3f}ms ({basis})  "
                f"speedup {apply_s / parallel_s:5.2f}x  "
                f"identical={'yes' if identical else 'NO'}  "
                f"reconciled={'yes' if reconciled else 'NO'}"
            )

    accept = next(
        (
            e
            for e in entries
            if e["model"] == ACCEPTANCE_MODEL and e["k"] == ACCEPTANCE_K
        ),
        entries[-1],
    )
    all_good = all(e["identical"] and e["reconciled"] for e in entries)
    # The 2x target binds only when the host can actually run the
    # workers side by side; a projected entry's contract is the
    # recorded basis + host_cpus, not the threshold.
    target_applies = accept["basis"] == "measured"
    result = {
        "config": {
            "seed": SEED,
            "quick": quick,
            "ks": list(ks),
            "niters": niters,
            "host_cpus": host_cpus,
        },
        "entries": entries,
        "acceptance": {
            "model": accept["model"],
            "k": accept["k"],
            "basis": accept["basis"],
            "host_cpus": host_cpus,
            "speedup": accept["speedup_vs_apply"],
            "speedup_target": SPEEDUP_TARGET,
            "speedup_target_applies": target_applies,
            "identical": all_good,
            "passed": bool(
                all_good
                and (
                    not target_applies
                    or accept["speedup_vs_apply"] >= SPEEDUP_TARGET
                )
            ),
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    result = run()
    print(json.dumps(result["acceptance"], indent=2))
    return 0 if result["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
