"""Micro-benchmark: batched block analytics vs the legacy per-block path.

Times the two block-statistics implementations and the two block-DM
drivers on a 64-part R-MAT instance (≥ 1e5 nonzeros), plus the engine's
cached-vs-uncached multi-method pipeline, and emits the numbers to
``BENCH_engine.json`` at the repository root — the seed point of the
performance trajectory.

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_engine.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_engine.json"

RMAT_SCALE = 13
EDGE_FACTOR = 10.0
NPARTS = 64
MIN_NNZ = 100_000
REPEATS = 5


def _best_of(repeats, fn, *, reset=None):
    """Minimum wall time of ``fn`` over ``repeats`` runs (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        if reset is not None:
            reset()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(out_path: pathlib.Path = DEFAULT_OUT, *, quick: bool = False) -> dict:
    from repro.dm.batch import batched_block_dm, legacy_block_dm
    from repro.engine import PartitionEngine
    from repro.generators.rmat import rmat
    from repro.sparse.blocks import BlockStructure, legacy_block_stats

    scale = 9 if quick else RMAT_SCALE
    min_nnz = 1 if quick else MIN_NNZ
    a = rmat(scale, edge_factor=EDGE_FACTOR, seed=99)
    assert a.nnz >= min_nnz, f"R-MAT instance too small: {a.nnz} nnz"
    n = a.shape[0]
    # Contiguous block vector partition: deterministic and cheap, so the
    # timings isolate the analytics, not the hypergraph partitioner.
    y = np.minimum((np.arange(n, dtype=np.int64) * NPARTS) // n, NPARTS - 1)
    bs = BlockStructure(a.row, a.col, y, y, NPARTS)

    def _reset_stats():
        bs._stats = None

    t_stats_batched = _best_of(REPEATS, bs.block_stats, reset=_reset_stats)
    t_stats_legacy = _best_of(REPEATS, lambda: legacy_block_stats(bs))
    bs.block_stats()  # leave the cache warm for the DM drivers
    t_dm_batched = _best_of(REPEATS, lambda: batched_block_dm(bs))
    t_dm_legacy = _best_of(REPEATS, lambda: legacy_block_dm(bs))

    # Engine pipeline: five methods on one matrix, shared intermediates
    # vs rebuilt-per-method.  A smaller instance keeps this section fast.
    b = rmat(9, edge_factor=8.0, seed=7)

    def _pipeline(cache: bool) -> float:
        eng = PartitionEngine(b, seed=1, cache=cache)
        t0 = time.perf_counter()
        for method in ("1d-rowwise", "s2d-heuristic", "s2d-optimal", "s2d-bounded", "s2d-balanced"):
            eng.plan(method, 16)
        return time.perf_counter() - t0

    t_pipe_cached = min(_pipeline(True) for _ in range(3))
    t_pipe_uncached = min(_pipeline(False) for _ in range(3))

    result = {
        "matrix": {
            "generator": "rmat",
            "scale": scale,
            "edge_factor": EDGE_FACTOR,
            "n": int(n),
            "nnz": int(a.nnz),
            "nparts": NPARTS,
            "nonempty_blocks": int(bs.block_keys.size),
        },
        "block_stats": {
            "legacy_s": t_stats_legacy,
            "batched_s": t_stats_batched,
            "speedup": t_stats_legacy / t_stats_batched,
        },
        "block_dm": {
            "legacy_s": t_dm_legacy,
            "batched_s": t_dm_batched,
            "speedup": t_dm_legacy / t_dm_batched,
        },
        "engine_pipeline": {
            "methods": 5,
            "nparts": 16,
            "uncached_s": t_pipe_uncached,
            "cached_s": t_pipe_cached,
            "speedup": t_pipe_uncached / t_pipe_cached,
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    result = run()
    print(json.dumps(result, indent=2))
    speedup = result["block_stats"]["speedup"]
    print(f"\nblock analytics speedup: {speedup:.1f}x  (target >= 3x)")
    return 0 if speedup >= 3.0 else 1


if __name__ == "__main__":
    sys.exit(main())
