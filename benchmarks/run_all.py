"""Regenerate every ``BENCH_*.json`` artifact in one shot.

Drives the JSON-emitting benchmark modules (currently
``bench_engine``, ``bench_partitioner``, ``bench_simulate``,
``bench_runtime``, ``bench_parallel`` and ``bench_sweep``) and prints
a one-line summary per artifact.  ``--quick`` runs every benchmark at tiny scale
(seconds, not minutes) — the same entry point the slow-marked pytest
smoke test uses, so the bench scripts cannot rot unnoticed; the quick
pass exercises the sweep orchestrator end-to-end (parallel workers +
artifact cache) through ``bench_sweep``.  ``--jobs`` / ``--cache-dir``
forward to the sweep benchmark.

::

    PYTHONPATH=src python benchmarks/run_all.py [--quick] [--out-dir DIR]
                                                [--jobs N] [--cache-dir DIR]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
sys.path.insert(0, str(BENCH_DIR))

import bench_engine  # noqa: E402
import bench_parallel  # noqa: E402
import bench_partitioner  # noqa: E402
import bench_runtime  # noqa: E402
import bench_simulate  # noqa: E402
import bench_sweep  # noqa: E402

#: (module, artifact filename, headline extractor)
BENCHMARKS = [
    (
        bench_engine,
        "BENCH_engine.json",
        lambda r: f"block-stats speedup {r['block_stats']['speedup']:.1f}x",
    ),
    (
        bench_partitioner,
        "BENCH_partitioner.json",
        lambda r: (
            f"partitioner speedup {r['acceptance']['speedup']:.1f}x "
            f"(quality max ratio {r['quality_suite']['max_ratio']:.3f})"
        ),
    ),
    (
        bench_simulate,
        "BENCH_simulate.json",
        lambda r: (
            f"single-phase executor speedup {r['acceptance']['speedup']:.1f}x "
            f"(ledgers identical: {r['acceptance']['ledgers_identical']})"
        ),
    ),
    (
        bench_runtime,
        "BENCH_runtime.json",
        lambda r: (
            f"compiled apply speedup {r['acceptance']['speedup']:.1f}x, "
            f"amortized in {r['acceptance']['amortize_iters']:.1f} iters "
            f"(identical: {r['acceptance']['identical']})"
        ),
    ),
    (
        bench_parallel,
        "BENCH_parallel.json",
        lambda r: (
            f"parallel apply speedup {r['acceptance']['speedup']:.1f}x "
            f"({r['acceptance']['basis']}, host cpus "
            f"{r['acceptance']['host_cpus']}; identical: "
            f"{r['acceptance']['identical']})"
        ),
    ),
    (
        bench_sweep,
        "BENCH_sweep.json",
        lambda r: (
            f"sweep cold speedup {r['acceptance']['cold_speedup']:.1f}x "
            f"(jobs={r['acceptance']['jobs']}), warm "
            f"{r['acceptance']['warm_speedup']:.1f}x "
            f"(identical: {r['acceptance']['identical']})"
        ),
    ),
]


def run_all(
    out_dir: pathlib.Path = REPO_ROOT,
    *,
    quick: bool = False,
    jobs: int | None = None,
    cache_dir=None,
) -> dict:
    """Run every benchmark; returns ``{artifact name: result dict}``.

    ``jobs`` / ``cache_dir`` reach the sweep benchmark (the other
    benchmarks are single-process by design).
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    results = {}
    for module, artifact, headline in BENCHMARKS:
        out_path = out_dir / artifact
        kwargs = {"quick": quick}
        if module is bench_sweep:
            kwargs.update(jobs=jobs, cache_dir=cache_dir)
        t0 = time.perf_counter()
        result = module.run(out_path, **kwargs)
        elapsed = time.perf_counter() - t0
        results[artifact] = result
        print(f"{artifact:28s} {elapsed:7.1f}s  {headline(result)}")
    return results


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="tiny-scale smoke run")
    ap.add_argument(
        "--out-dir", type=pathlib.Path, default=REPO_ROOT,
        help="directory receiving the BENCH_*.json artifacts",
    )
    ap.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes for bench_sweep (default: its own)",
    )
    ap.add_argument(
        "--cache-dir", default=None,
        help="parent directory for bench_sweep's artifact cache (the "
        "bench always uses a fresh subdirectory so its cold pass "
        "really is cold; default: a temporary directory)",
    )
    args = ap.parse_args(argv)
    run_all(args.out_dir, quick=args.quick, jobs=args.jobs, cache_dir=args.cache_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
