"""Table I: properties of the general matrix suite."""

from conftest import emit, run_once

from repro.experiments import run_table1


def test_table1(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table1, cfg)
    emit(results_dir, "table1", res.text)
    assert len(res.records) == 8
    # the suite spans low and high row-degree skew, like the paper's
    skews = [r["skew"] for r in res.records]
    assert min(skews) < 3 and max(skews) > 10
