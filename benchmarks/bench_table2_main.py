"""Table II: 1D rowwise vs 2D fine-grain vs s2D, K ∈ general_ks.

Expected shape (paper, Section VI-A):

- s2D's total volume ≤ 1D's on every instance;
- s2D's message counts equal 1D's exactly (same vector partition);
- 2D achieves the best balance but ~60% more messages;
- s2D gives the best average speedup at the largest K.
"""

from conftest import emit, run_once

from repro.experiments import run_table2
from repro.metrics import geomean


def test_table2(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table2, cfg)
    emit(results_dir, "table2", res.text)

    for rec in res.records:
        q1, q2, qs = rec["1D"], rec["2D"], rec["s2D"]
        # s2D never moves more words than 1D (Algorithm 1 invariant).
        assert qs.total_volume <= q1.total_volume
        # identical communication pattern -> identical latency columns
        assert qs.avg_msgs == q1.avg_msgs
        assert qs.max_msgs == q1.max_msgs
        # 2D pays more messages than the single-phase schemes; near the
        # all-to-all saturation point (dense instances at large K) the
        # counts can tie, so allow a small per-instance slack and pin
        # the suite-level claim below.
        assert q2.avg_msgs >= 0.95 * q1.avg_msgs

    big_k = max(r["K"] for r in res.records)
    big = [r for r in res.records if r["K"] == big_k]
    sp_1d = geomean(r["1D"].speedup for r in big)
    sp_2d = geomean(r["2D"].speedup for r in big)
    sp_s2d = geomean(r["s2D"].speedup for r in big)
    # the paper's headline: s2D has the best average speedup.  The
    # advantage needs enough processors for volume to matter (the paper
    # shows it at K >= 16); at toy K the three schemes are within noise.
    if big_k >= 16:
        assert sp_s2d >= sp_1d
        assert sp_s2d >= sp_2d
    else:
        assert sp_s2d >= 0.9 * max(sp_1d, sp_2d)
    # 2D balance beats 1D at the largest K (fine-grain flexibility)
    li_1d = geomean(r["1D"].load_imbalance for r in big)
    li_2d = geomean(r["2D"].load_imbalance for r in big)
    assert li_2d <= li_1d
    # ...and 2D does pay more messages on suite average (paper: ~60%)
    assert geomean(r["2D"].avg_msgs for r in big) >= geomean(
        r["1D"].avg_msgs for r in big
    )
