"""Table VII: s2D (Algorithm 1) vs s2D-mg (medium-grain composite).

Expected shape (paper, Section VI-B-2): s2D-mg achieves the better
load balance (its hypergraph vertices are finer), while s2D achieves
the lower communication volume on most instances; both are admissible
s2D partitions running the same single-phase algorithm.
"""

from conftest import emit, run_once

from repro.experiments import run_table7
from repro.metrics import geomean


def test_table7(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table7, cfg)
    emit(results_dir, "table7", res.text)

    ks = sorted({r["K"] for r in res.records})
    big = [r for r in res.records if r["K"] == ks[-1]]
    li_mg = geomean(r["mg"].load_imbalance for r in big)
    li_s2d = geomean(r["s2D"].load_imbalance for r in big)
    # mg balances better on average (paper: 4.8% vs 52.3% at K=256)
    assert li_mg < li_s2d
    # s2D's volume is competitive on average: the paper reports s2D
    # *halving* mg's bandwidth at K=256 and the gap closing with K.
    lam = geomean(r["lam_ratio"] for r in big)
    assert lam < 1.4
