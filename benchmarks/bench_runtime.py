"""Micro-benchmark: compiled CommPlan apply vs the per-call executors.

The compiled runtime's pitch is amortization: ``compile_plan`` walks a
partition once (one per-call executor run plus index-array derivation),
after which every ``plan.apply`` is pure gathers/scatters.  This
benchmark times, for all three execution models (single-phase,
two-phase, mesh-routed) on an R-MAT instance and a ~10k-vertex kNN
mesh under a communication-heavy cyclic s2D partition at K ∈ {16, 64}:

- the per-call executor's per-iteration wall-clock,
- the compiled plan's per-iteration wall-clock (after compile),
- the compile cost and the break-even iteration count
  (``compile_s / (per_call_s − apply_s)``),
- a batched ``apply_many`` pass over 8 right-hand sides (with the
  per-RHS-column cost ``apply_many_per_rhs_s`` alongside the total),
- the native C kernel backend's apply / apply_many
  (``apply_native_s``/``apply_many_native_s``; ``native_speedup`` =
  NumPy apply over native apply) when a C compiler is available,
- a raw single-core ``scipy.sparse`` CSR matvec on the same vector
  (``scipy_csr_s``) — the no-partition floor the compiled apply's
  gather/scatter overhead is judged against; every entry carries
  ``vs_scipy`` (= apply_s / scipy_csr_s, the ×-above-floor factor,
  lower is better) and ``vs_scipy_native`` for the native kernels,

verifying on every entry that the compiled apply's ``y`` — under *both*
kernel backends, batched and single-RHS — is *bit-identical* to the
executor's and the ledgers snapshot identically.
A second section times a full 30-iteration power-iteration solve
through the compiled runtime against a hand loop over the per-call
executor.  Emits ``BENCH_runtime.json`` at the repository root.

Acceptance: ≥ 5× per-iteration speedup for the single-phase model on
the ~10k-vertex mesh at K = 64, with compile amortized within ≤ 10
iterations; where the native backend is available, additionally a
≥ 2.5× native-over-NumPy apply speedup for the single-phase model at
K = 64 on BOTH benchmark matrices.

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_runtime.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_runtime.json"

SEED = 17
SPEEDUP_TARGET = 5.0
AMORTIZE_TARGET = 10.0
NATIVE_SPEEDUP_TARGET = 2.5
ACCEPTANCE_MODEL = "mesh10k"  # the ~10k-vertex suite mesh
ACCEPTANCE_K = 64
ACCEPTANCE_EXECUTOR = "single"
NRHS = 8


def _identical(run_plan, run_ref) -> bool:
    import numpy as np

    return bool(
        np.array_equal(run_plan.y, run_ref.y)
        and run_plan.ledger.phase_names == run_ref.ledger.phase_names
        and run_plan.ledger.as_dict() == run_ref.ledger.as_dict()
    )


def run(out_path: pathlib.Path = DEFAULT_OUT, *, quick: bool = False) -> dict:
    import numpy as np

    from bench_simulate import _cyclic_s2d, _matrices
    from repro.core import make_s2d_bounded
    from repro.native import get_kernels, native_status
    from repro.runtime import compile_plan
    from repro.simulate import run_s2d_bounded, run_single_phase, run_two_phase

    have_native = get_kernels() is not None
    ks = (4, 8) if quick else (16, 64)
    reps = 2 if quick else 3
    executors = [
        ("single", run_single_phase, False),
        ("two", run_two_phase, False),
        ("routed", run_s2d_bounded, True),
    ]

    entries = []
    for name, a in _matrices(quick):
        csr = a.tocsr()
        for k in ks:
            p = _cyclic_s2d(a, k, SEED)
            pb = make_s2d_bounded(p)
            ncols = p.matrix.shape[1]
            rng = np.random.default_rng(SEED)
            x = rng.standard_normal(ncols)
            xs = rng.standard_normal((ncols, NRHS))
            # Single-core floor: a raw scipy CSR matvec on the same x
            # (no partition, no ledger) — context for apply_s.
            t_csr = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                csr @ x
                t_csr = min(t_csr, time.perf_counter() - t0)
            for ex_name, per_call, routed in executors:
                pp = pb if routed else p
                t_compile = t_call = t_apply = t_many = float("inf")
                t_apply_nat = t_many_nat = float("inf")
                run_nat = ys_nat = None
                for _ in range(reps):  # best-of-N vs noise
                    t0 = time.perf_counter()
                    plan = compile_plan(pp, executor=ex_name)
                    t_compile = min(t_compile, time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    run_ref = per_call(pp, x)
                    t_call = min(t_call, time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    run_plan = plan.apply(x, backend="numpy")
                    t_apply = min(t_apply, time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    ys = plan.apply_many(xs, backend="numpy")
                    t_many = min(t_many, time.perf_counter() - t0)
                    if have_native:
                        t0 = time.perf_counter()
                        run_nat = plan.apply(x, backend="native")
                        t_apply_nat = min(t_apply_nat, time.perf_counter() - t0)
                        t0 = time.perf_counter()
                        ys_nat = plan.apply_many(xs, backend="native")
                        t_many_nat = min(t_many_nat, time.perf_counter() - t0)
                same = _identical(run_plan, run_ref) and np.array_equal(
                    ys[:, 0], plan.apply_y(xs[:, 0], backend="numpy")
                )
                if have_native:
                    # The native kernels must reproduce the NumPy bits
                    # exactly — apply, batched, and per column.
                    same = (
                        same
                        and _identical(run_nat, run_ref)
                        and np.array_equal(ys_nat, ys)
                    )
                saved = t_call - t_apply
                amortize = t_compile / saved if saved > 0 else float("inf")
                native_speedup = t_apply / t_apply_nat if have_native else None
                entries.append(
                    {
                        "model": name,
                        "nnz": int(pp.matrix.nnz),
                        "k": k,
                        "executor": ex_name,
                        "compile_s": t_compile,
                        "per_call_s": t_call,
                        "apply_s": t_apply,
                        "apply_native_s": t_apply_nat if have_native else None,
                        "native_speedup": native_speedup,
                        "scipy_csr_s": t_csr,
                        "vs_scipy": t_apply / t_csr,
                        "vs_scipy_native": (
                            t_apply_nat / t_csr if have_native else None
                        ),
                        "apply_many_s": t_many,
                        "apply_many_per_rhs_s": t_many / NRHS,
                        "apply_many_native_s": t_many_nat if have_native else None,
                        "apply_many_native_per_rhs_s": (
                            t_many_nat / NRHS if have_native else None
                        ),
                        "apply_many_rhs": NRHS,
                        "speedup": t_call / t_apply,
                        "amortize_iters": amortize,
                        "identical": same,
                    }
                )
                nat_str = (
                    f"native {t_apply_nat:7.4f}s ({native_speedup:4.1f}x)  "
                    if have_native
                    else "native n/a  "
                )
                print(
                    f"{name:10s} K={k:<3d} {ex_name:<7s} "
                    f"per-call {t_call:7.4f}s  apply {t_apply:7.4f}s  "
                    f"{nat_str}"
                    f"csr {t_csr:7.4f}s (vs_scipy {t_apply / t_csr:4.1f}x)  "
                    f"speedup {t_call / t_apply:5.1f}x  "
                    f"compile {t_compile:6.3f}s amortized in {amortize:4.1f} iters  "
                    f"identical={'yes' if same else 'NO'}"
                )

    # Solver section: a 30-iteration power solve through the compiled
    # runtime vs a hand loop over the per-call executor.
    from repro.partition.types import SpMVPartition  # noqa: F401 (doc link)
    from repro.solvers import power_iteration

    sname, sa = _matrices(quick)[-1]
    sk = ks[-1]
    sp_ = _cyclic_s2d(sa, sk, SEED)
    iters = 10 if quick else 30

    t0 = time.perf_counter()
    res = power_iteration(sp_, iters=iters, tol=0.0)
    t_solver = time.perf_counter() - t0

    t0 = time.perf_counter()
    n = sp_.matrix.shape[1]
    xv = np.ones(n)
    xv /= np.linalg.norm(xv)
    words = 0
    for _ in range(iters):
        r = run_single_phase(sp_, xv)
        xv = r.y / np.linalg.norm(r.y)
        words += r.ledger.total_volume()
    t_loop = time.perf_counter() - t0
    solver = {
        "model": sname,
        "k": sk,
        "iters": iters,
        "compiled_runtime_s": t_solver,
        "per_call_loop_s": t_loop,
        "speedup": t_loop / t_solver,
        "comm_words_equal": res.comm_words == words,
    }
    print(
        f"power_iteration[{sname}, K={sk}, {iters} iters]: "
        f"compiled {t_solver:.3f}s  per-call loop {t_loop:.3f}s  "
        f"speedup {t_loop / t_solver:.1f}x"
    )

    accept = next(
        (
            e
            for e in entries
            if e["model"] == ACCEPTANCE_MODEL
            and e["k"] == ACCEPTANCE_K
            and e["executor"] == ACCEPTANCE_EXECUTOR
        ),
        entries[-1],
    )
    all_identical = all(e["identical"] for e in entries)
    # Native floor: at the acceptance K, the single-phase native apply
    # must beat the NumPy kernels ≥ NATIVE_SPEEDUP_TARGET× on *every*
    # benchmark matrix (both rmat and mesh shapes).
    native_gate = [
        e
        for e in entries
        if e["k"] == max(ks) and e["executor"] == ACCEPTANCE_EXECUTOR
    ]
    # The perf gate only applies at full scale: the quick instances
    # (<10k nnz) sit at the ctypes per-call overhead floor where the
    # native kernels cannot win — bit-identity is still enforced on
    # every quick entry through ``identical``.
    native_ok = quick or (not have_native) or all(
        e["native_speedup"] is not None
        and e["native_speedup"] >= NATIVE_SPEEDUP_TARGET
        for e in native_gate
    )
    result = {
        "config": {"seed": SEED, "quick": quick, "ks": list(ks), "nrhs": NRHS},
        "native": {
            "available": have_native,
            "status": native_status(),
        },
        "entries": entries,
        "solver": solver,
        "acceptance": {
            "model": accept["model"],
            "k": accept["k"],
            "executor": accept["executor"],
            "speedup": accept["speedup"],
            "speedup_target": SPEEDUP_TARGET,
            "amortize_iters": accept["amortize_iters"],
            "amortize_target": AMORTIZE_TARGET,
            "native_speedups": {
                e["model"]: e["native_speedup"] for e in native_gate
            },
            "native_speedup_target": NATIVE_SPEEDUP_TARGET,
            "native_passed": native_ok,
            "identical": all_identical,
            "passed": bool(
                accept["speedup"] >= SPEEDUP_TARGET
                and accept["amortize_iters"] <= AMORTIZE_TARGET
                and all_identical
                and native_ok
            ),
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
    result = run()
    print(json.dumps(result["acceptance"], indent=2))
    return 0 if result["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
