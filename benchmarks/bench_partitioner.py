"""Micro-benchmark: vectorized multilevel partitioner vs the seed code.

Times end-to-end ``partition_kway`` (with per-stage breakdown from the
profiling hooks) on column-net models of an R-MAT instance and a kNN
mesh at K ∈ {16, 64}, against the preserved legacy implementation
(:mod:`repro.hypergraph.legacy`), and compares connectivity-1 quality
on the Table-I generator suite.  Emits ``BENCH_partitioner.json`` at
the repository root.

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_partitioner.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_partitioner.json"

SEED = 5
SPEEDUP_TARGET = 3.0
QUALITY_TOLERANCE = 1.05
ACCEPTANCE_MODEL = "mesh10k-colnet"  # the ~10k-vertex column-net model
ACCEPTANCE_K = 64


def _models(quick: bool):
    from repro.generators.mesh import knn_mesh
    from repro.generators.rmat import rmat

    if quick:
        return [
            ("rmat9-colnet", rmat(9, edge_factor=8.0, seed=99)),
            ("mesh400-colnet", knn_mesh(400, 8, dim=2, seed=7)),
        ]
    return [
        ("rmat13-colnet", rmat(13, edge_factor=8.0, seed=99)),
        ("mesh10k-colnet", knn_mesh(10_000, 12, dim=2, seed=7)),
    ]


def run(out_path: pathlib.Path = DEFAULT_OUT, *, quick: bool = False) -> dict:
    from repro.generators.suite import table1_suite
    from repro.hypergraph import (
        PartitionConfig,
        PartitionProfile,
        column_net_model,
        connectivity_minus_one,
        imbalance,
        partition_kway,
    )
    from repro.hypergraph.legacy import legacy_partition_kway

    ks = (4, 8) if quick else (16, 64)
    cfg = PartitionConfig(seed=SEED)

    entries = []
    for name, a in _models(quick):
        hg = column_net_model(a)
        for k in ks:
            prof = PartitionProfile()
            t0 = time.perf_counter()
            part = partition_kway(hg, k, cfg, profile=prof)
            t_new = time.perf_counter() - t0
            t0 = time.perf_counter()
            part_old = legacy_partition_kway(hg, k, cfg)
            t_old = time.perf_counter() - t0
            cut_new = connectivity_minus_one(hg, part)
            cut_old = connectivity_minus_one(hg, part_old)
            entries.append(
                {
                    "model": name,
                    "nvertices": hg.nvertices,
                    "nnets": hg.nnets,
                    "npins": hg.npins,
                    "k": k,
                    "vectorized_s": t_new,
                    "legacy_s": t_old,
                    "speedup": t_old / t_new,
                    "cut_vectorized": cut_new,
                    "cut_legacy": cut_old,
                    "cut_ratio": cut_new / max(cut_old, 1),
                    "imbalance_vectorized": imbalance(hg, part, k),
                    "stages": prof.as_dict(),
                }
            )
            print(
                f"{name:16s} K={k:<3d} vectorized {t_new:7.2f}s  "
                f"legacy {t_old:7.2f}s  speedup {t_old / t_new:5.1f}x  "
                f"cut ratio {cut_new / max(cut_old, 1):.3f}"
            )

    # Quality sweep over the generator suite (cut within 5% of seed).
    qk = 8 if quick else 16
    nsuite = 2 if quick else 5
    qual = []
    for sm in table1_suite("tiny")[:nsuite]:
        hg = column_net_model(sm.matrix())
        qcfg = PartitionConfig(seed=3)
        cut_new = connectivity_minus_one(hg, partition_kway(hg, qk, qcfg))
        cut_old = connectivity_minus_one(hg, legacy_partition_kway(hg, qk, qcfg))
        qual.append(
            {
                "matrix": sm.name,
                "cut_vectorized": cut_new,
                "cut_legacy": cut_old,
                "ratio": cut_new / max(cut_old, 1),
            }
        )
    ratios = [q["ratio"] for q in qual]

    accept = next(
        (
            e
            for e in entries
            if e["model"] == ACCEPTANCE_MODEL and e["k"] == ACCEPTANCE_K
        ),
        entries[-1],
    )
    result = {
        "config": {"seed": SEED, "quick": quick, "kway_passes": cfg.kway_passes},
        "end_to_end": entries,
        "quality_suite": {
            "k": qk,
            "scale": "tiny",
            "matrices": qual,
            "max_ratio": max(ratios),
            "mean_ratio": sum(ratios) / len(ratios),
        },
        "acceptance": {
            "model": accept["model"],
            "k": accept["k"],
            "speedup": accept["speedup"],
            "speedup_target": SPEEDUP_TARGET,
            "quality_tolerance": QUALITY_TOLERANCE,
            "passed": bool(
                accept["speedup"] >= SPEEDUP_TARGET
                and max(ratios) <= QUALITY_TOLERANCE
            ),
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    result = run()
    print(json.dumps(result["acceptance"], indent=2))
    return 0 if result["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
