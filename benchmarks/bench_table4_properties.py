"""Table IV: properties of the dense-row matrix suite."""

from conftest import emit, run_once

from repro.experiments import run_table4


def test_table4(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table4, cfg)
    emit(results_dir, "table4", res.text)
    assert len(res.records) == 8
    by_name = {r["name"]: r for r in res.records}
    # the defining feature of this suite: dmax >> davg
    for rec in res.records:
        assert rec["skew"] > 4, rec["name"]
    # ins2's analog keeps the paper's "a row that is full" property
    assert by_name["ins2"]["dmax"] == by_name["ins2"]["n"]
