"""Benchmark harness configuration.

Each ``bench_table*.py`` regenerates one table (or figure) of the paper
via :mod:`repro.experiments`, prints it, and stores the text under
``benchmarks/results/`` so the output survives pytest's capture.

Scale is controlled by ``REPRO_SCALE`` (tiny / small / medium, default
small).  Benchmarks run exactly one round: the interesting output *is*
the table, the timing is a bonus.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a regenerated table and persist it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
