"""Micro-benchmark: vectorized SpMV executors vs the seed code.

Times the three simulated executors (single-phase, two-phase,
mesh-routed) against the preserved seed implementations
(:mod:`repro.simulate.legacy`) on an R-MAT instance and a ~10k-vertex
kNN mesh under a communication-heavy cyclic s2D partition at
K ∈ {16, 64}, verifying on every entry that the two paths produce
*bit-identical ledgers* (same phases, same (src, dst) pairs, same
word counts) and identical per-phase flops.  A second section times
the engine's batched ``simulate_all`` over every registered method
with shared intermediates.  Emits ``BENCH_simulate.json`` at the
repository root.

Run directly (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_simulate.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_simulate.json"

SEED = 17
SPEEDUP_TARGET = 5.0
ACCEPTANCE_MODEL = "mesh10k"  # the ~10k-vertex suite mesh
ACCEPTANCE_K = 64
ACCEPTANCE_EXECUTOR = "single-phase"


def _matrices(quick: bool):
    from repro.generators.mesh import knn_mesh
    from repro.generators.rmat import rmat

    if quick:
        return [
            ("rmat9", rmat(9, edge_factor=8.0, seed=99)),
            ("mesh400", knn_mesh(400, 8, dim=2, seed=7)),
        ]
    return [
        ("rmat13", rmat(13, edge_factor=8.0, seed=99)),
        ("mesh10k", knn_mesh(10_000, 12, dim=2, seed=7)),
    ]


def _cyclic_s2d(a, k: int, seed: int):
    """A communication-heavy but admissible s2D partition.

    Vectors are dealt cyclically (so nearly every off-diagonal nonzero
    reads a remote x and most partials travel), and each nonzero goes
    to its row or column owner by a deterministic coin flip.  This
    stresses exactly the paths the executors vectorize: message
    assembly, delivery joins and partial folds.
    """
    import numpy as np

    from repro.partition.types import SpMVPartition, VectorPartition
    from repro.sparse.coo import canonical_coo

    m = canonical_coo(a)
    nrows, ncols = m.shape
    x_part = np.arange(ncols, dtype=np.int64) % k
    y_part = np.arange(nrows, dtype=np.int64) % k
    rng = np.random.default_rng(seed)
    side = rng.random(m.nnz) < 0.5
    nnz_part = np.where(side, y_part[m.row], x_part[m.col])
    return SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=k),
        kind="s2D",
    )


def _identical(run_new, run_old) -> bool:
    import numpy as np

    if run_new.ledger.phase_names != run_old.ledger.phase_names:
        return False
    if run_new.ledger.as_dict() != run_old.ledger.as_dict():
        return False
    if not np.allclose(run_new.y, run_old.y, rtol=1e-12, atol=1e-14):
        return False
    if len(run_new.phases) != len(run_old.phases):
        return False
    for ph_new, ph_old in zip(run_new.phases, run_old.phases):
        if ph_new.name != ph_old.name:
            return False
        if (ph_new.flops is None) != (ph_old.flops is None):
            return False
        if ph_new.flops is not None and not np.array_equal(ph_new.flops, ph_old.flops):
            return False
    return True


def run(out_path: pathlib.Path = DEFAULT_OUT, *, quick: bool = False) -> dict:
    from repro.core import make_s2d_bounded
    from repro.engine import PartitionEngine, available_methods
    from repro.simulate import (
        legacy_run_s2d_bounded,
        legacy_run_single_phase,
        legacy_run_two_phase,
        run_s2d_bounded,
        run_single_phase,
        run_two_phase,
    )

    ks = (4, 8) if quick else (16, 64)
    executors = [
        ("single-phase", run_single_phase, legacy_run_single_phase, False),
        ("two-phase", run_two_phase, legacy_run_two_phase, False),
        ("routed", run_s2d_bounded, legacy_run_s2d_bounded, True),
    ]

    entries = []
    for name, a in _matrices(quick):
        for k in ks:
            p = _cyclic_s2d(a, k, SEED)
            pb = make_s2d_bounded(p)
            for ex_name, new_fn, old_fn, routed in executors:
                pp = pb if routed else p
                t_new = t_old = float("inf")
                for _ in range(2 if quick else 3):  # best-of-N vs noise
                    t0 = time.perf_counter()
                    run_new = new_fn(pp)
                    t_new = min(t_new, time.perf_counter() - t0)
                    t0 = time.perf_counter()
                    run_old = old_fn(pp)
                    t_old = min(t_old, time.perf_counter() - t0)
                same = _identical(run_new, run_old)
                entries.append(
                    {
                        "model": name,
                        "nnz": int(pp.matrix.nnz),
                        "k": k,
                        "executor": ex_name,
                        "vectorized_s": t_new,
                        "legacy_s": t_old,
                        "speedup": t_old / t_new,
                        "ledger_identical": same,
                        "total_volume": run_new.ledger.total_volume(),
                        "total_msgs": run_new.ledger.total_msgs(),
                    }
                )
                print(
                    f"{name:10s} K={k:<3d} {ex_name:<13s} "
                    f"vectorized {t_new:7.3f}s  legacy {t_old:7.3f}s  "
                    f"speedup {t_old / t_new:5.1f}x  "
                    f"identical={'yes' if same else 'NO'}"
                )

    # Batched engine pass: every registered method on one suite matrix,
    # sharing vector partitions, block analytics and cached runs.
    from repro.generators.suite import table1_suite

    sm = table1_suite("tiny")[2]  # trdheim: small, all methods run fast
    sim_k = 4 if quick else 8
    eng = PartitionEngine(sm.matrix(), seed=SEED)
    t0 = time.perf_counter()
    runs = eng.simulate_all(sim_k)
    t_all = time.perf_counter() - t0
    simulate_all = {
        "matrix": sm.name,
        "k": sim_k,
        "methods": len(runs),
        "seconds": t_all,
        "cache": eng.cache_info(),
        "total_volume": {name: r.ledger.total_volume() for name, r in runs.items()},
    }
    print(
        f"simulate_all[{sm.name}, K={sim_k}]: {len(runs)} methods in {t_all:.2f}s "
        f"({eng.cache_info()['hits']} cache hits)"
    )

    accept = next(
        (
            e
            for e in entries
            if e["model"] == ACCEPTANCE_MODEL
            and e["k"] == ACCEPTANCE_K
            and e["executor"] == ACCEPTANCE_EXECUTOR
        ),
        entries[-1],
    )
    result = {
        "config": {"seed": SEED, "quick": quick, "ks": list(ks)},
        "executors": entries,
        "simulate_all": simulate_all,
        "acceptance": {
            "model": accept["model"],
            "k": accept["k"],
            "executor": accept["executor"],
            "speedup": accept["speedup"],
            "speedup_target": SPEEDUP_TARGET,
            "ledgers_identical": all(e["ledger_identical"] for e in entries),
            "passed": bool(
                accept["speedup"] >= SPEEDUP_TARGET
                and all(e["ledger_identical"] for e in entries)
            ),
        },
    }
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def main() -> int:
    result = run()
    print(json.dumps(result["acceptance"], indent=2))
    return 0 if result["acceptance"]["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
