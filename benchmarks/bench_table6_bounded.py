"""Table VI: s2D-b vs 2D-b (checkerboard) vs 1D-b (Boman).

Expected shape (paper, Section VI-B-1): on dense-row matrices s2D-b
improves on both state-of-the-art bounded schemes in *volume* on
real-life-like instances, and in *balance* on average; all three share
the O(√K) latency bound.
"""

from conftest import emit, run_once

from repro.experiments import run_table6
from repro.metrics import geomean
from repro.partition.checkerboard import mesh_shape


def test_table6(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table6, cfg)
    emit(results_dir, "table6", res.text)

    for rec in res.records:
        pr, pc = mesh_shape(rec["K"])
        bound = (pr - 1) + (pc - 1)
        assert rec["s2D-b"].max_msgs <= bound
        assert rec["2D-b"].max_msgs <= bound
        assert rec["1D-b"].max_msgs <= bound

    ks = sorted({r["K"] for r in res.records})
    big = [r for r in res.records if r["K"] == ks[-1]]
    # volume: s2D-b well under 2D-b on average (paper: 84% reduction)
    lam_s2db = geomean(r["lam_s2db"] for r in big)
    assert lam_s2db < 0.9
    # balance: s2D-b at least as good as 1D-b on average at largest K
    li_s2db = geomean(r["s2D-b"].load_imbalance for r in big)
    li_1db = geomean(r["1D-b"].load_imbalance for r in big)
    assert li_s2db <= li_1db * 1.05
