"""Extension experiment (beyond the paper's tables): Mondriaan ORB.

The paper's related work cites orthogonal recursive bisection
(Vastenhouw & Bisseling) among the 2D alternatives but does not table
it.  This bench places `2D-orb` next to 2D fine-grain and s2D on the
general suite at the largest K — rounding out the baseline family.

Expected shape: ORB volume sits between fine-grain (finest granularity)
and 1D; like fine-grain, it pays two communication phases.
"""

from conftest import emit, run_once

from repro.core import s2d_heuristic
from repro.experiments import ExperimentConfig
from repro.generators.suite import table1_suite
from repro.metrics import format_table, geomean
from repro.partition import (
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_mondriaan,
)
from repro.simulate import evaluate


def _run(cfg: ExperimentConfig):
    k = cfg.general_ks[-1]
    rows, records = [], []
    for idx, sm in enumerate(table1_suite(cfg.scale)):
        a = sm.matrix()
        p1 = partition_1d_rowwise(a, k, cfg.partitioner(idx * 10))
        q1 = evaluate(p1, machine=cfg.machine)
        qf = evaluate(
            partition_2d_finegrain(a, k, cfg.partitioner(idx * 10 + 1)),
            machine=cfg.machine,
        )
        qo = evaluate(
            partition_mondriaan(a, k, cfg.partitioner(idx * 10 + 4)),
            machine=cfg.machine,
        )
        qs = evaluate(
            s2d_heuristic(a, x_part=p1.vectors, nparts=k), machine=cfg.machine
        )
        records.append({"name": sm.name, "1D": q1, "2D": qf, "orb": qo, "s2D": qs})
        rows.append(
            [
                sm.name,
                q1.format_li(), q1.total_volume,
                qf.format_li(), qf.total_volume,
                qo.format_li(), qo.total_volume,
                qs.format_li(), qs.total_volume,
            ]
        )
    rows.append(
        [
            "geomean",
            "-", f"{geomean(r['1D'].total_volume for r in records):.0f}",
            "-", f"{geomean(r['2D'].total_volume for r in records):.0f}",
            "-", f"{geomean(r['orb'].total_volume for r in records):.0f}",
            "-", f"{geomean(r['s2D'].total_volume for r in records):.0f}",
        ]
    )
    text = format_table(
        ["name", "1D:LI", "1D:vol", "2D:LI", "2D:vol",
         "orb:LI", "orb:vol", "s2D:LI", "s2D:vol"],
        rows,
        title=f"Extension: Mondriaan ORB vs the paper's schemes (K={k}, "
        f"scale={cfg.scale})",
    )
    return text, records


def test_extra_orb(benchmark, cfg, results_dir):
    text, records = run_once(benchmark, _run, cfg)
    emit(results_dir, "extra_orb", text)
    for rec in records:
        # ORB is a genuine 2D method: balance comparable to fine-grain
        assert rec["orb"].load_imbalance < 1.0
    vol_orb = geomean(r["orb"].total_volume for r in records)
    vol_1d = geomean(r["1D"].total_volume for r in records)
    assert vol_orb < vol_1d  # 2D flexibility pays off on average
