"""Table III: Cartesian (checkerboard) 2D-b vs best of {1D, 2D, s2D}.

Expected shape: 2D-b bounds the maximum message count by
(Pr−1)+(Pc−1) ~ O(√K) — far below the O(K) of the unbounded schemes —
which buys it the best speedup on the dense-row instances even at a
worse load balance (the paper's ASIC_680k narrative).
"""

import math

from conftest import emit, run_once

from repro.experiments import run_table3
from repro.partition.checkerboard import mesh_shape


def test_table3(benchmark, cfg, results_dir):
    res = run_once(benchmark, run_table3, cfg)
    emit(results_dir, "table3", res.text)

    k = res.records[0]["K"]
    pr, pc = mesh_shape(k)
    for rec in res.records:
        qb = rec["2D-b"]
        # the latency bound is structural, not statistical
        assert qb.max_msgs <= (pr - 1) + (pc - 1)
        assert qb.max_msgs <= 2 * math.isqrt(k)
    # 2D-b beats the best unbounded scheme on at least one dense-row
    # instance (paper: 5 of 8; synthetic analogs vary with scale)
    wins = sum(
        1 for r in res.records if r["2D-b"].speedup > r["best_q"].speedup
    )
    assert wins >= 1
