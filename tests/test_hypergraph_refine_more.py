"""Deeper FM / coarsening / initial-partition behaviour, incl. properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.hypergraph.coarsen import coarsen_once
from repro.hypergraph.initial import greedy_growing, random_bisection
from repro.hypergraph.refine import bisection_cut, fm_refine, part_weights
from repro.rng import as_generator


def _random_hg(rng, n, nnets, max_pins=5, ncon=1):
    nets = []
    for _ in range(nnets):
        size = int(rng.integers(1, max_pins + 1))
        nets.append(list(rng.choice(n, size=min(size, n), replace=False)))
    w = rng.integers(1, 4, size=(n, ncon))
    costs = rng.integers(1, 5, size=nnets)
    return Hypergraph.from_net_lists(nets, nvertices=n, vweights=w, ncosts=costs)


def test_fm_zero_net_hypergraph():
    hg = Hypergraph.from_net_lists([], nvertices=5)
    part = np.zeros(5, dtype=np.int8)
    t = hg.total_weight().astype(float)
    out, cut = fm_refine(hg, part, (t / 2, t / 2), 0.1)
    assert cut == 0


def test_fm_empty_hypergraph():
    hg = Hypergraph.from_net_lists([], nvertices=0)
    out, cut = fm_refine(hg, np.zeros(0, dtype=np.int8), (np.array([0.0]), np.array([0.0])), 0.1)
    assert out.size == 0 and cut == 0


def test_fm_does_not_mutate_input():
    hg = Hypergraph.from_net_lists([[0, 1], [1, 2]], nvertices=3)
    part = np.array([0, 1, 0], dtype=np.int8)
    before = part.copy()
    t = hg.total_weight().astype(float)
    fm_refine(hg, part, (t / 2, t / 2), 0.5)
    assert np.array_equal(part, before)


def test_fm_repairs_infeasible_start():
    """All vertices on one side: FM must be allowed to reduce violation."""
    n = 20
    hg = Hypergraph.from_net_lists([[i, (i + 1) % n] for i in range(n)], nvertices=n)
    part = np.zeros(n, dtype=np.int8)
    t = hg.total_weight().astype(float)
    out, _ = fm_refine(hg, part, (t / 2, t / 2), 0.1, max_passes=6)
    pw = part_weights(hg, out)
    # the refined bisection is far closer to balanced than the start
    assert pw[1, 0] > 0
    assert abs(pw[0, 0] - pw[1, 0]) < n


def test_part_weights_shape():
    hg = Hypergraph.from_net_lists([[0, 1]], nvertices=2, vweights=np.array([[1, 2], [3, 4]]))
    pw = part_weights(hg, np.array([0, 1], dtype=np.int8))
    assert pw.shape == (2, 2)
    assert pw.tolist() == [[1, 2], [3, 4]]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fm_cut_consistency_property(seed):
    """fm_refine's reported cut always equals a from-scratch recount."""
    rng = as_generator(seed)
    hg = _random_hg(rng, n=20, nnets=25)
    part = rng.integers(0, 2, 20).astype(np.int8)
    t = hg.total_weight().astype(float)
    refined, cut = fm_refine(hg, part, (t / 2, t / 2), 0.2, max_passes=3)
    assert cut == bisection_cut(hg, refined)
    from repro.hypergraph.refine import _violation

    limits = np.stack([t / 2 * 1.2, t / 2 * 1.2])
    v0 = _violation(part_weights(hg, part).astype(float), limits)
    v1 = _violation(part_weights(hg, refined).astype(float), limits)
    if v0 <= 1.0:
        # feasible start: refinement never increases the cut
        assert cut <= bisection_cut(hg, part)
        assert v1 <= 1.0  # and stays feasible
    else:
        # infeasible start: FM may trade cut for balance, never worsen it
        assert v1 <= v0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_coarsen_preserves_weight_and_costs(seed):
    rng = as_generator(seed)
    hg = _random_hg(rng, n=30, nnets=40, ncon=2)
    cmap, coarse = coarsen_once(hg, rng)
    assert np.array_equal(coarse.total_weight(), hg.total_weight())
    # cluster map covers all coarse ids contiguously
    assert set(cmap.tolist()) == set(range(coarse.nvertices))
    # no coarse net exceeds original total cost
    assert coarse.ncosts.sum() <= hg.ncosts.sum()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_initial_partitions_binary(seed):
    rng = as_generator(seed)
    hg = _random_hg(rng, n=25, nnets=30)
    t = hg.total_weight().astype(float)
    for ctor in (greedy_growing, random_bisection):
        part = ctor(hg, (t * 0.5, t * 0.5), rng)
        assert part.shape == (25,)
        assert set(np.unique(part)) <= {0, 1}


def test_greedy_growing_reaches_target_weight():
    hg = Hypergraph.from_net_lists(
        [[i, i + 1] for i in range(39)], nvertices=40
    )
    t = hg.total_weight().astype(float)
    part = greedy_growing(hg, (t * 0.5, t * 0.5), as_generator(3))
    pw = part_weights(hg, part)
    assert pw[0, 0] >= 0.4 * t[0]


def test_coarsen_skips_huge_nets():
    # one giant net + pair nets; the giant net must not dominate matching
    nets = [list(range(50))] + [[i, i + 1] for i in range(0, 48, 2)]
    hg = Hypergraph.from_net_lists(nets, nvertices=50)
    cmap, coarse = coarsen_once(hg, as_generator(1), max_net_size=10)
    # pairs should still match via the small nets
    assert coarse.nvertices <= 30
