"""CLI coverage for the extension subcommands and schemes."""

import pytest

from repro.cli import main


def test_cli_spy(capsys):
    assert main(["spy", "--matrix", "trdheim", "--k", "3", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "|" in out and "-" in out


def test_cli_spy_refuses_large():
    with pytest.raises(SystemExit, match="max-dim"):
        main(["spy", "--matrix", "c-big", "--scale", "tiny", "--max-dim", "10"])


@pytest.mark.parametrize("scheme", ["2d-orb", "s2d-bal"])
def test_cli_extension_schemes(scheme, capsys):
    assert main(
        ["partition", "--matrix", "trdheim", "--scheme", scheme, "--k", "4",
         "--scale", "tiny"]
    ) == 0
    assert "speedup=" in capsys.readouterr().out


def test_cli_table_with_default_scale_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert main(["table", "--id", "4"]) == 0
    assert "scale=tiny" in capsys.readouterr().out
