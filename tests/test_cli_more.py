"""CLI coverage for the extension subcommands and schemes."""

import pytest

from repro.cli import main


def test_cli_spy(capsys):
    assert main(["spy", "--matrix", "trdheim", "--k", "3", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "|" in out and "-" in out


def test_cli_spy_refuses_large():
    with pytest.raises(SystemExit, match="max-dim"):
        main(["spy", "--matrix", "c-big", "--scale", "tiny", "--max-dim", "10"])


@pytest.mark.parametrize("scheme", ["2d-orb", "s2d-bal"])
def test_cli_extension_schemes(scheme, capsys):
    assert main(
        ["partition", "--matrix", "trdheim", "--scheme", scheme, "--k", "4",
         "--scale", "tiny"]
    ) == 0
    assert "speedup=" in capsys.readouterr().out


def test_cli_simulate_single_scheme(capsys):
    assert main(
        ["simulate", "--matrix", "trdheim", "--scheme", "s2d", "--k", "4",
         "--scale", "tiny"]
    ) == 0
    out = capsys.readouterr().out
    assert "scheme=s2D" in out and "speedup=" in out


def test_cli_simulate_profile(capsys):
    assert main(
        ["simulate", "--matrix", "trdheim", "--scheme", "1d", "--k", "4",
         "--scale", "tiny", "--profile"]
    ) == 0
    out = capsys.readouterr().out
    assert "phase" in out and "total" in out  # wall-clock stage table
    assert "bandwidth=" in out and "latency=" in out  # model breakdown


def test_cli_simulate_all_methods(capsys):
    assert main(
        ["simulate", "--matrix", "trdheim", "--k", "4", "--scale", "tiny", "--all"]
    ) == 0
    out = capsys.readouterr().out
    # one summary line per registered method
    from repro.engine import available_methods

    assert out.count("speedup=") == len(available_methods())


def test_cli_simulate_requires_one_source():
    with pytest.raises(SystemExit, match="exactly one"):
        main(["simulate"])


def test_cli_simulate_scheme_conflicts_with_all():
    with pytest.raises(SystemExit, match="conflicts"):
        main(["simulate", "--matrix", "trdheim", "--scheme", "2d", "--all",
              "--scale", "tiny"])


def test_cli_table_with_default_scale_env(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "tiny")
    assert main(["table", "--id", "4"]) == 0
    assert "scale=tiny" in capsys.readouterr().out
