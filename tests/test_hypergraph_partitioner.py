"""Multilevel partitioner: coarsening, refinement, K-way quality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hypergraph import (
    Hypergraph,
    PartitionConfig,
    column_net_model,
    connectivity_minus_one,
    cutnet_cost,
    imbalance,
    partition_kway,
)
from repro.hypergraph.coarsen import coarsen_once
from repro.hypergraph.initial import greedy_growing, random_bisection
from repro.hypergraph.partitioner import net_connectivities
from repro.hypergraph.refine import bisection_cut, fm_refine, part_weights
from repro.rng import as_generator


def _chain_hg(n=40):
    """A chain: net i = {i, i+1}; the optimal bisection cuts one net."""
    return Hypergraph.from_net_lists([[i, i + 1] for i in range(n - 1)], nvertices=n)


def test_coarsen_reduces_and_preserves_weight():
    hg = _chain_hg(64)
    cmap, coarse = coarsen_once(hg, as_generator(1))
    assert coarse.nvertices < hg.nvertices
    assert coarse.total_weight()[0] == hg.total_weight()[0]
    assert cmap.max() == coarse.nvertices - 1


def test_coarsen_merges_identical_nets():
    # two identical nets -> one coarse net with summed cost
    hg = Hypergraph.from_net_lists([[0, 1], [0, 1]], nvertices=2)
    cmap, coarse = coarsen_once(hg, as_generator(0))
    # the pair merges into one vertex, so nets vanish entirely
    assert coarse.nvertices == 1
    assert coarse.nnets == 0


def test_initial_bisections_respect_targets():
    hg = _chain_hg(40)
    total = hg.total_weight().astype(float)
    targets = (total * 0.5, total * 0.5)
    for ctor in (random_bisection, greedy_growing):
        part = ctor(hg, targets, as_generator(3))
        pw = part_weights(hg, part)
        assert pw[0, 0] <= targets[0][0] + 1e-9
        assert set(np.unique(part)) <= {0, 1}


def test_fm_improves_chain_cut():
    hg = _chain_hg(40)
    rng = as_generator(5)
    part = rng.integers(0, 2, 40).astype(np.int8)  # random: many cut nets
    total = hg.total_weight().astype(float)
    before = bisection_cut(hg, part)
    refined, after = fm_refine(hg, part, (total * 0.5, total * 0.5), 0.05)
    assert after <= before
    assert after == bisection_cut(hg, refined)


def test_fm_reports_consistent_cut(small_square, rng):
    hg = column_net_model(small_square)
    part = rng.integers(0, 2, hg.nvertices).astype(np.int8)
    total = hg.total_weight().astype(float)
    refined, cut = fm_refine(hg, part, (total * 0.5, total * 0.5), 0.1)
    assert cut == bisection_cut(hg, refined)


def test_partition_kway_basic(small_square):
    hg = column_net_model(small_square)
    part = partition_kway(hg, 4, PartitionConfig(seed=2))
    assert part.size == hg.nvertices
    assert set(np.unique(part)) <= set(range(4))
    assert imbalance(hg, part, 4) < 0.5  # sane balance on a tiny instance


def test_partition_kway_k1_trivial(small_square):
    hg = column_net_model(small_square)
    part = partition_kway(hg, 1)
    assert np.all(part == 0)
    assert connectivity_minus_one(hg, part) == 0


def test_partition_kway_rejects_bad_k(small_square):
    with pytest.raises(ConfigError):
        partition_kway(column_net_model(small_square), 0)


def test_partition_chain_optimal_cut():
    hg = _chain_hg(64)
    part = partition_kway(hg, 2, PartitionConfig(seed=7))
    # the optimal bisection cuts exactly 1 net; allow tiny slack
    assert cutnet_cost(hg, part) <= 2
    assert imbalance(hg, part, 2) <= 0.1


def test_connectivity_metrics_manual():
    hg = Hypergraph.from_net_lists([[0, 1, 2], [2, 3]], nvertices=4)
    part = np.array([0, 0, 1, 1])
    lam = net_connectivities(hg, part)
    assert lam.tolist() == [2, 1]
    assert connectivity_minus_one(hg, part) == 1
    assert cutnet_cost(hg, part) == 1


def test_connectivity_weighted_nets():
    hg = Hypergraph.from_net_lists(
        [[0, 1], [1, 2]], nvertices=3, ncosts=np.array([5, 7])
    )
    part = np.array([0, 1, 2])
    assert connectivity_minus_one(hg, part) == 5 + 7
    assert cutnet_cost(hg, part) == 12


def test_imbalance_metric():
    hg = Hypergraph.from_net_lists([[0, 1]], nvertices=2, vweights=np.array([3, 1]))
    part = np.array([0, 1])
    assert imbalance(hg, part, 2) == pytest.approx(3 / 2 - 1)


def test_partition_larger_k_than_useful(medium_square):
    hg = column_net_model(medium_square)
    part = partition_kway(hg, 16, PartitionConfig(seed=1))
    counts = np.bincount(part, minlength=16)
    assert counts.sum() == hg.nvertices
    # Every part nonempty at this size.
    assert np.all(counts > 0)


def test_partition_beats_random(medium_square):
    hg = column_net_model(medium_square)
    cfg = PartitionConfig(seed=4)
    part = partition_kway(hg, 8, cfg)
    rnd = as_generator(11).integers(0, 8, hg.nvertices)
    assert connectivity_minus_one(hg, part) < connectivity_minus_one(hg, rnd)


def test_multiconstraint_partition_balances_both():
    # two constraints: weight A on even vertices, weight B on odd
    n = 64
    w = np.zeros((n, 2), dtype=np.int64)
    w[::2, 0] = 1
    w[1::2, 1] = 1
    hg = Hypergraph.from_net_lists(
        [[i, (i + 1) % n] for i in range(n)], nvertices=n, vweights=w
    )
    part = partition_kway(hg, 2, PartitionConfig(seed=9, epsilon=0.10))
    assert imbalance(hg, part, 2) < 0.35


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.sampled_from([2, 3, 4, 8]))
def test_partition_kway_always_valid(seed, k):
    hg = _chain_hg(48)
    part = partition_kway(hg, k, PartitionConfig(seed=seed, ninitial=2, fm_passes=2))
    assert part.size == 48
    assert part.min() >= 0 and part.max() < k
    # connectivity-1 of a chain partitioned into k contiguous-ish parts
    # can never exceed the number of nets
    assert connectivity_minus_one(hg, part) <= hg.nnets
