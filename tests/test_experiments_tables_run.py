"""Run the quantitative table harnesses once at tiny scale.

The benchmarks run these at full scale; here the smallest instance
exercises the full record plumbing so harness regressions surface in
the unit suite, not only after a long bench run.  The Table V case
stays in the fast tier (it covers the engine-rewired tables including
the s2D/s2D-b plan sharing); the slower Table III/VII cases carry the
``slow`` marker.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.tables import run_table3, run_table5, run_table7


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig(scale="tiny")


def test_run_table5_records(cfg):
    res = run_table5(cfg, ks=(4,))
    assert len(res.records) == 8
    for rec in res.records:
        assert rec["s2D"].total_volume <= rec["1D"].total_volume
        assert rec["lam_s2d"] <= 1.0 + 1e-9
        assert abs(rec["s2D-b"].load_imbalance - rec["s2D"].load_imbalance) < 1e-12
    # text renders with geomean row appended
    assert "geomean" in res.text


@pytest.mark.slow
def test_run_table3_best_selection(cfg):
    res = run_table3(cfg, k=4)
    for rec in res.records:
        best = rec["best_q"].speedup
        assert best == max(best, rec["2D-b"].speedup * 0 + best)
        assert rec["best"] in ("1D", "2D", "s2D")
    assert len(res.rows) == 9  # 8 matrices + geomean


@pytest.mark.slow
def test_run_table7_admissibility(cfg):
    res = run_table7(cfg, ks=(4,))
    for rec in res.records:
        assert rec["mg"].kind == "s2D-mg"
        assert rec["s2D"].kind == "s2D"
    assert "Table VII" in res.title
