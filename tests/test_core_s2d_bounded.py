"""s2D-b: mesh routing, latency bound, combining, volume accounting."""

import numpy as np
import pytest

from repro.core import (
    bounded_comm_stats,
    make_s2d_bounded,
    s2d_heuristic,
    single_phase_comm_stats,
)
from repro.errors import ConfigError
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise
from repro.partition.checkerboard import mesh_shape
from repro.simulate import run_s2d_bounded
from tests.conftest import random_s2d_partition


def _s2d(medium_square, k=8):
    p1 = partition_1d_rowwise(medium_square, k, PartitionConfig(seed=3))
    return s2d_heuristic(medium_square, x_part=p1.vectors, nparts=k)


def test_make_bounded_preserves_nonzeros(medium_square):
    s = _s2d(medium_square)
    b = make_s2d_bounded(s)
    assert b.kind == "s2D-b"
    assert np.array_equal(b.nnz_part, s.nnz_part)
    assert b.load_imbalance() == s.load_imbalance()
    pr, pc = b.meta["mesh"]
    assert pr * pc == 8


def test_bounded_rejects_bad_mesh(medium_square):
    s = _s2d(medium_square)
    with pytest.raises(ConfigError):
        make_s2d_bounded(s, shape=(3, 3))


def test_latency_bound_sqrt_k(medium_square):
    s = _s2d(medium_square, k=8)
    b = make_s2d_bounded(s)
    pr, pc = b.meta["mesh"]
    run = run_s2d_bounded(b)
    assert run.ledger.sent_msgs("route-row").max(initial=0) <= pc - 1
    assert run.ledger.sent_msgs("route-col").max(initial=0) <= pr - 1
    assert run.ledger.sent_msgs().max(initial=0) <= (pr - 1) + (pc - 1)


def test_bounded_volume_at_least_s2d(medium_square):
    # Two-hop routing can only add words relative to direct delivery.
    s = _s2d(medium_square)
    b = make_s2d_bounded(s)
    direct = single_phase_comm_stats(s).total_volume
    routed = bounded_comm_stats(b).total_volume
    assert routed >= direct
    # ...but combining keeps it under 2x.
    assert routed <= 2 * direct


def test_stats_match_executor(medium_square, rng):
    s = _s2d(medium_square)
    b = make_s2d_bounded(s)
    stats = bounded_comm_stats(b)
    run = run_s2d_bounded(b)
    assert stats.total_volume == run.ledger.total_volume()
    assert np.array_equal(stats.phase1_sent_volume, run.ledger.sent_volume("route-row"))
    assert np.array_equal(stats.phase2_sent_volume, run.ledger.sent_volume("route-col"))
    assert np.array_equal(stats.phase1_sent_msgs, run.ledger.sent_msgs("route-row"))
    assert np.array_equal(stats.phase2_sent_msgs, run.ledger.sent_msgs("route-col"))


def test_stats_match_executor_random_partition(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    b = make_s2d_bounded(p, shape=mesh_shape(4))
    stats = bounded_comm_stats(b)
    run = run_s2d_bounded(b)
    assert stats.total_volume == run.ledger.total_volume()
    assert stats.max_sent_msgs == run.ledger.sent_msgs().max(initial=0)
    assert stats.avg_sent_msgs == pytest.approx(run.ledger.sent_msgs().mean())


def test_routed_stats_mesh_recorded(medium_square):
    s = _s2d(medium_square)
    b = make_s2d_bounded(s)
    stats = bounded_comm_stats(b)
    assert stats.mesh == tuple(b.meta["mesh"])


def test_single_hop_when_same_mesh_row(small_square, rng):
    """Messages between processors sharing a mesh row take one hop."""
    p = random_s2d_partition(rng, small_square, 4)
    b = make_s2d_bounded(p, shape=(2, 2))
    run = run_s2d_bounded(b)
    # hop-1 goes only to same-row processors; hop-2 same-column --
    # verified inside the executor; here we check phases exist sanely
    assert set(run.ledger.phase_names) <= {"route-row", "route-col"}
