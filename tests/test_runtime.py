"""Compiled SpMV runtime: golden bit-identity against the per-call executors.

``compile_plan`` must produce plans whose ``apply`` output ``y`` and
per-iteration ledger are *bit-identical* to ``run_single_phase`` /
``run_two_phase`` / ``run_s2d_bounded`` — on suite matrices, real
partitioner output, random admissible partitions and rectangular
instances — plus the batched ``apply_many``, plan persistence, the
engine's memoized ``compiled_plan`` intermediate and the CLI ``solve``
subcommand.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import make_s2d_bounded, s2d_heuristic
from repro.engine import PartitionEngine
from repro.errors import ConfigError, PartitionError, ReproError, SimulationError
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise, partition_2d_finegrain
from repro.partition.serialize import load_partition, load_plan, save_partition, save_plan
from repro.runtime import CommPlan, compile_plan
from repro.simulate import MachineModel
from repro.simulate.report import run_partition

from tests.conftest import random_s2d_partition

CFG = PartitionConfig(seed=23, ninitial=2, fm_passes=2)


def _assert_matches_executor(p, plan, x):
    """plan.apply(x) must be bit-identical to the per-call executor."""
    ref = run_partition(p, x)
    run = plan.apply(x)
    assert np.array_equal(run.y, ref.y)
    assert run.ledger.phase_names == ref.ledger.phase_names
    assert run.ledger.as_dict() == ref.ledger.as_dict()
    assert len(run.phases) == len(ref.phases)
    for got, want in zip(run.phases, ref.phases):
        assert got.name == want.name
        assert got.comm_phase == want.comm_phase
        if want.flops is None:
            assert got.flops is None
        else:
            assert np.array_equal(got.flops, want.flops)
    assert run.nnz == ref.nnz and run.kind == ref.kind


@pytest.fixture(scope="module")
def partitioned_instances():
    """(partition, expected executor) across all three execution models."""
    import scipy.sparse as sp

    from repro.generators.mesh import knn_mesh
    from repro.generators.suite import table1_suite
    from repro.sparse.coo import canonical_coo

    rng = np.random.default_rng(77)
    mesh = knn_mesh(300, 6, dim=2, seed=7)
    oned = partition_1d_rowwise(mesh, 4, CFG)
    s2d = s2d_heuristic(mesh, x_part=oned.vectors, nparts=4)
    suite = table1_suite("tiny")[2].matrix()  # trdheim
    rect = canonical_coo(sp.random(40, 55, density=0.12, random_state=5, format="coo"))
    return [
        (oned, "single"),
        (s2d, "single"),
        (make_s2d_bounded(s2d), "routed"),
        (partition_2d_finegrain(mesh, 4, CFG), "two"),
        (partition_1d_rowwise(suite, 3, CFG), "single"),
        (random_s2d_partition(rng, mesh, 5), "single"),
        (partition_2d_finegrain(rect, 4, CFG), "two"),
    ]


def test_apply_bit_identical_to_executors(partitioned_instances):
    rng = np.random.default_rng(11)
    for p, mode in partitioned_instances:
        plan = compile_plan(p)
        assert plan.executor == mode
        for _ in range(3):  # repeated applies, fresh x each time
            _assert_matches_executor(p, plan, rng.standard_normal(p.matrix.shape[1]))


def test_apply_default_x_matches_executor(partitioned_instances):
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        assert np.array_equal(plan.apply_y(), run_partition(p).y)


def test_apply_many_matches_single_applies(partitioned_instances):
    rng = np.random.default_rng(29)
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        xs = rng.standard_normal((p.matrix.shape[1], 4))
        ys = plan.apply_many(xs)
        assert ys.shape == (p.matrix.shape[0], 4)
        for j in range(4):
            assert np.array_equal(ys[:, j], plan.apply_y(xs[:, j]))
        # 1-D input degenerates to a single apply
        assert np.array_equal(plan.apply_many(xs[:, 0]), plan.apply_y(xs[:, 0]))


def test_static_costs_match_executor_run(partitioned_instances):
    machine = MachineModel(alpha=50, beta=2, gamma=1)
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        ref = run_partition(p)
        assert plan.words == ref.ledger.total_volume()
        assert plan.msgs == ref.ledger.total_msgs()
        assert plan.time(machine) == ref.time(machine)


def test_plan_rejects_wrong_x_size(partitioned_instances):
    p, _ = partitioned_instances[0]
    plan = compile_plan(p)
    with pytest.raises(SimulationError, match="size"):
        plan.apply_y(np.ones(plan.ncols + 1))
    with pytest.raises(SimulationError, match="shape"):
        plan.apply_many(np.ones((plan.ncols + 1, 2)))


def test_compile_rejects_unknown_executor(partitioned_instances):
    p, _ = partitioned_instances[0]
    with pytest.raises(ConfigError, match="unknown executor"):
        compile_plan(p, executor="mystery")


def test_compile_validates_like_executor(rng, medium_square):
    """Compilation inherits the executor's admissibility check."""
    p = random_s2d_partition(rng, medium_square, 4)
    p.nnz_part = p.nnz_part.copy()
    bad = np.flatnonzero(
        (p.vectors.y_part[p.matrix.row] != 0) & (p.vectors.x_part[p.matrix.col] != 0)
    )
    p.nnz_part[bad[0]] = 0  # assign a nonzero to neither owner
    with pytest.raises(PartitionError):
        compile_plan(p)


def test_forced_executor_modes_agree_on_y(partitioned_instances):
    """An s2D partition runs under both models; numerics differ only in
    summation order, so results agree to round-off."""
    p, _ = partitioned_instances[1]  # s2D
    single = compile_plan(p, executor="single")
    two = compile_plan(p, executor="two")
    x = np.linspace(-1, 1, p.matrix.shape[1])
    assert np.allclose(single.apply_y(x), two.apply_y(x), rtol=1e-10, atol=1e-12)


# ---------------------------------------------------------------- persistence


def test_plan_roundtrip(tmp_path, partitioned_instances):
    rng = np.random.default_rng(41)
    machine = MachineModel()
    for i, (p, _) in enumerate(partitioned_instances):
        plan = compile_plan(p)
        path = tmp_path / f"plan{i}.npz"
        save_plan(plan, path)
        back = load_plan(path)
        assert isinstance(back, CommPlan)
        assert (back.executor, back.kind, back.nparts) == (
            plan.executor,
            plan.kind,
            plan.nparts,
        )
        x = rng.standard_normal(p.matrix.shape[1])
        assert np.array_equal(back.apply_y(x), plan.apply_y(x))
        assert back.ledger.as_dict() == plan.ledger.as_dict()
        assert back.time(machine) == plan.time(machine)
        _assert_matches_executor(p, back, rng.standard_normal(p.matrix.shape[1]))


def test_plan_roundtrip_keeps_mesh_meta(tmp_path, partitioned_instances):
    plan = compile_plan(partitioned_instances[2][0])  # s2D-b
    save_plan(plan, tmp_path / "b.npz")
    back = load_plan(tmp_path / "b.npz")
    assert tuple(back.meta["mesh"]) == tuple(plan.meta["mesh"])


def test_load_partition_rejects_plan_file(tmp_path, partitioned_instances):
    p, _ = partitioned_instances[0]
    save_plan(compile_plan(p), tmp_path / "plan.npz")
    with pytest.raises(ReproError, match="comm-plan"):
        load_partition(tmp_path / "plan.npz")


def test_load_plan_rejects_partition_file(tmp_path, partitioned_instances):
    p, _ = partitioned_instances[0]
    save_partition(p, tmp_path / "part.npz")
    with pytest.raises(ReproError, match="load_plan|partition"):
        load_plan(tmp_path / "part.npz")


@pytest.mark.parametrize("loader", [load_partition, load_plan])
def test_unknown_version_rejected(tmp_path, loader):
    header = np.frombuffer(json.dumps({"version": 99}).encode(), dtype=np.uint8)
    np.savez(tmp_path / "future.npz", header=header)
    with pytest.raises(ReproError, match="version 99"):
        loader(tmp_path / "future.npz")


def test_version1_partition_files_still_load(tmp_path, partitioned_instances):
    """Files written before the payload tag existed (version 1) load."""
    p, _ = partitioned_instances[0]
    header = {
        "version": 1,
        "kind": p.kind,
        "nparts": p.nparts,
        "shape": list(p.matrix.shape),
        "meta": {},
    }
    np.savez(
        tmp_path / "v1.npz",
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        row=p.matrix.row,
        col=p.matrix.col,
        data=p.matrix.data,
        nnz_part=p.nnz_part,
        x_part=p.vectors.x_part,
        y_part=p.vectors.y_part,
    )
    back = load_partition(tmp_path / "v1.npz")
    assert np.array_equal(back.nnz_part, p.nnz_part)


def test_ledger_phase_pairs_roundtrip(partitioned_instances):
    """phase_pairs is the round-trip partner of record_pairs."""
    from repro.simulate.messages import Ledger

    plan = compile_plan(partitioned_instances[2][0])  # s2D-b: multiple phases
    rebuilt = Ledger(plan.nparts)
    for name in plan.ledger.phase_names:
        rebuilt.record_pairs(name, *plan.ledger.phase_pairs(name))
    assert rebuilt.as_dict() == plan.ledger.as_dict()
    empty = plan.ledger.phase_pairs("no-such-phase")
    assert all(a.size == 0 for a in empty)


# ---------------------------------------------------------------- engine + CLI


def test_engine_memoizes_compiled_plan(medium_square):
    eng = PartitionEngine(medium_square, seed=9)
    plan = eng.plan("1d-rowwise", 4)
    first = eng.compiled_plan(plan)
    misses = eng.cache_stats["misses"]
    again = eng.compiled_plan(plan)
    assert again is first
    assert eng.cache_stats["misses"] == misses
    assert np.array_equal(first.apply_y(), run_partition(plan.partition).y)


def test_engine_compiled_plan_no_cache(medium_square):
    eng = PartitionEngine(medium_square, seed=9, cache=False)
    plan = eng.plan("1d-rowwise", 4)
    a = eng.compiled_plan(plan)
    b = eng.compiled_plan(plan)
    assert a is not b
    assert a.ledger.as_dict() == b.ledger.as_dict()


def test_cli_solve_power(capsys):
    rc = main(
        [
            "solve", "--matrix", "trdheim", "--scale", "tiny", "--k", "4",
            "--solver", "power", "--iters", "8",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "solver=power" in out
    assert "iterations=" in out
    assert "per-iteration plan:" in out


def test_cli_solve_rejects_missing_matrix():
    with pytest.raises(SystemExit):
        main(["solve", "--k", "4"])
