"""End-to-end pipelines: generate → partition → simulate → report.

These tests assert the paper's headline *relations* on tiny instances:
they are the contract the benchmark tables elaborate.
"""

import numpy as np
import pytest

from repro.core import (
    make_s2d_bounded,
    partition_s2d_medium_grain,
    s2d_heuristic,
    s2d_optimal,
    single_phase_comm_stats,
)
from repro.generators import circuit_like, knn_mesh, rmat
from repro.hypergraph import PartitionConfig
from repro.partition import (
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_checkerboard,
)
from repro.simulate import MachineModel, evaluate

CFG = PartitionConfig(seed=99, ninitial=2, fm_passes=2)
MACHINE = MachineModel(alpha=20, beta=2, gamma=1)


@pytest.fixture(scope="module")
def fem():
    return knn_mesh(150, 10, seed=11)


@pytest.fixture(scope="module")
def densecircuit():
    return circuit_like(400, avg_degree=4, ndense=2, dense_fraction=0.4, seed=12)


def test_s2d_volume_leq_1d_everywhere(fem, densecircuit):
    for a in (fem, densecircuit):
        for k in (4, 8):
            p1 = partition_1d_rowwise(a, k, CFG)
            s = s2d_heuristic(a, x_part=p1.vectors, nparts=k)
            assert (
                single_phase_comm_stats(s).total_volume
                <= single_phase_comm_stats(p1).total_volume
            )


def test_s2d_reduction_larger_on_skewed_matrix(fem, densecircuit):
    """Paper: volume reduction correlates with row-degree skew.

    Dense rows only start spanning many parts once K is large enough,
    so the contrast is tested at K = 16 (the paper sees it at 256+).
    """
    k = 16

    def reduction(a):
        p1 = partition_1d_rowwise(a, k, CFG)
        s = s2d_heuristic(a, x_part=p1.vectors, nparts=k)
        v1 = single_phase_comm_stats(p1).total_volume
        vs = single_phase_comm_stats(s).total_volume
        return 1.0 - vs / v1

    assert reduction(densecircuit) > reduction(fem)


def test_s2d_latency_equals_1d(fem):
    k = 8
    p1 = partition_1d_rowwise(fem, k, CFG)
    s = s2d_heuristic(fem, x_part=p1.vectors, nparts=k)
    q1 = evaluate(p1, machine=MACHINE)
    qs = evaluate(s, machine=MACHINE)
    assert q1.avg_msgs == qs.avg_msgs
    assert q1.max_msgs == qs.max_msgs


def test_2d_finegrain_more_messages(fem):
    k = 8
    q1 = evaluate(partition_1d_rowwise(fem, k, CFG), machine=MACHINE)
    q2 = evaluate(partition_2d_finegrain(fem, k, CFG), machine=MACHINE)
    assert q2.avg_msgs > q1.avg_msgs


def test_1d_balance_collapses_on_dense_rows(densecircuit):
    """Paper Table V: 1D imbalance grows ~linearly with K."""
    li = {}
    for k in (4, 16):
        li[k] = partition_1d_rowwise(densecircuit, k, CFG).load_imbalance()
    assert li[16] > li[4]
    s = s2d_heuristic(
        densecircuit,
        x_part=partition_1d_rowwise(densecircuit, 16, CFG).vectors,
        nparts=16,
    )
    assert s.load_imbalance() < li[16]


def test_s2db_latency_bound_vs_s2d(densecircuit):
    k = 16
    p1 = partition_1d_rowwise(densecircuit, k, CFG)
    s = s2d_heuristic(densecircuit, x_part=p1.vectors, nparts=k)
    b = make_s2d_bounded(s)
    qs = evaluate(s, machine=MACHINE)
    qb = evaluate(b, machine=MACHINE)
    pr, pc = b.meta["mesh"]
    assert qb.max_msgs <= (pr - 1) + (pc - 1)
    # volume grows, but stays within 2x of plain s2D
    assert qs.total_volume <= qb.total_volume <= 2 * qs.total_volume
    # identical computational load
    assert qb.load_imbalance == qs.load_imbalance


def test_s2db_beats_checkerboard_on_dense_rows(densecircuit):
    """Paper Table VI: s2D-b wins balance AND volume on dense-row mats."""
    k = 16
    p1 = partition_1d_rowwise(densecircuit, k, CFG)
    s = s2d_heuristic(densecircuit, x_part=p1.vectors, nparts=k)
    b = make_s2d_bounded(s)
    cb = partition_checkerboard(densecircuit, k, CFG)
    qb = evaluate(b, machine=MACHINE)
    qcb = evaluate(cb, machine=MACHINE)
    assert qb.total_volume < qcb.total_volume


def test_mg_balance_vs_s2d_volume(densecircuit):
    """Paper Table VII trade-off: mg balances better, s2D moves less."""
    k = 8
    p1 = partition_1d_rowwise(densecircuit, k, CFG)
    s = s2d_heuristic(densecircuit, x_part=p1.vectors, nparts=k)
    mg = partition_s2d_medium_grain(densecircuit, k, CFG)
    assert mg.load_imbalance() <= s.load_imbalance() + 0.05


def test_rmat_full_pipeline():
    a = rmat(7, edge_factor=4, seed=3)
    k = 8
    p1 = partition_1d_rowwise(a, k, CFG)
    s = s2d_heuristic(a, x_part=p1.vectors, nparts=k)
    opt = s2d_optimal(a, x_part=p1.vectors, nparts=k)
    v1 = single_phase_comm_stats(p1).total_volume
    vs = single_phase_comm_stats(s).total_volume
    vo = single_phase_comm_stats(opt).total_volume
    assert vo <= vs <= v1
    q = evaluate(s, machine=MACHINE)
    assert q.speedup > 0


def test_all_schemes_one_matrix(fem):
    """Every scheme produces a valid, simulatable partition."""
    from repro.partition import partition_1d_boman

    k = 8
    p1 = partition_1d_rowwise(fem, k, CFG)
    schemes = [
        p1,
        partition_2d_finegrain(fem, k, CFG),
        partition_checkerboard(fem, k, CFG),
        partition_1d_boman(fem, k, base=p1),
        s2d_heuristic(fem, x_part=p1.vectors, nparts=k),
        partition_s2d_medium_grain(fem, k, CFG),
        make_s2d_bounded(s2d_heuristic(fem, x_part=p1.vectors, nparts=k)),
    ]
    for p in schemes:
        q = evaluate(p, machine=MACHINE)
        assert q.total_volume >= 0
        assert q.speedup > 0
        assert p.loads().sum() == fem.nnz
