"""Every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
    if script.name == "iterative_solver.py":
        assert "Power iteration" in proc.stdout
        assert "identical eigenvalue estimates" in proc.stdout
        assert "reduction costs" in proc.stdout


def test_iterative_solver_uses_library_solver():
    """The example must run on repro.solvers.power_iteration (which
    accounts reduction costs), not a hand-rolled duplicate."""
    src = next(p for p in EXAMPLES if p.name == "iterative_solver.py").read_text()
    assert "def power_iteration" not in src
    assert "power_iteration" in src
