"""Golden tests: vectorized executors vs the preserved seed executors.

The vectorized single-phase, two-phase and mesh-routed executors must
produce *bit-identical* ledgers (same phase order, same (src, dst)
pairs, same word counts), identical per-phase flops and the same ``y``
as the seed implementations frozen in :mod:`repro.simulate.legacy` —
on the generator suite and on random admissible partitions.
"""

import numpy as np
import pytest

from repro.core import make_s2d_bounded
from repro.generators.suite import table1_suite
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise, partition_2d_finegrain
from repro.simulate import (
    legacy_run_s2d_bounded,
    legacy_run_single_phase,
    legacy_run_two_phase,
    run_s2d_bounded,
    run_single_phase,
    run_two_phase,
)
from tests.conftest import random_s2d_partition

CFG = PartitionConfig(seed=19, ninitial=2, fm_passes=2)
SUITE = table1_suite("tiny")[:5]


def assert_runs_identical(run_new, run_old):
    assert run_new.ledger.phase_names == run_old.ledger.phase_names
    assert run_new.ledger.as_dict() == run_old.ledger.as_dict()
    assert run_new.ledger.total_volume() == run_old.ledger.total_volume()
    assert run_new.ledger.total_msgs() == run_old.ledger.total_msgs()
    assert np.allclose(run_new.y, run_old.y, rtol=1e-12, atol=1e-14)
    assert [ph.name for ph in run_new.phases] == [ph.name for ph in run_old.phases]
    for ph_new, ph_old in zip(run_new.phases, run_old.phases):
        if ph_old.flops is not None:
            assert np.array_equal(ph_new.flops, ph_old.flops)


@pytest.mark.parametrize("sm", SUITE, ids=[s.name for s in SUITE])
def test_suite_golden_all_executors(sm):
    """Total volume / message counts pinned against the seed executors
    on the 5-matrix generator suite (random admissible s2D vectors)."""
    a = sm.matrix()
    rng = np.random.default_rng(hash(sm.name) % 2**32)
    p = random_s2d_partition(rng, a, 4)
    x = rng.random(p.matrix.shape[1])
    assert_runs_identical(run_single_phase(p, x), legacy_run_single_phase(p, x))
    assert_runs_identical(run_two_phase(p, x), legacy_run_two_phase(p, x))
    pb = make_s2d_bounded(p)
    assert_runs_identical(run_s2d_bounded(pb, x), legacy_run_s2d_bounded(pb, x))


@pytest.mark.parametrize("sm", SUITE[:2], ids=[s.name for s in SUITE[:2]])
def test_suite_golden_partitioned(sm):
    """Same pinning on real partitioner output (1D and fine-grain 2D)."""
    a = sm.matrix()
    p1 = partition_1d_rowwise(a, 4, CFG)
    assert_runs_identical(run_single_phase(p1), legacy_run_single_phase(p1))
    p2 = partition_2d_finegrain(a, 4, CFG)
    assert_runs_identical(run_two_phase(p2), legacy_run_two_phase(p2))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_partitions_golden(seed):
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    a = sp.random(40, 40, density=0.15, random_state=seed) + sp.eye(40)
    k = int(rng.integers(2, 7))
    p = random_s2d_partition(rng, a, k)
    x = rng.random(40)
    assert_runs_identical(run_single_phase(p, x), legacy_run_single_phase(p, x))
    assert_runs_identical(run_two_phase(p, x), legacy_run_two_phase(p, x))
    pb = make_s2d_bounded(p)
    assert_runs_identical(run_s2d_bounded(pb, x), legacy_run_s2d_bounded(pb, x))


def test_rectangular_golden(small_rect, rng):
    """Rectangular matrices exercise distinct row/col key spaces."""
    k = 3
    x_part = rng.integers(0, k, small_rect.shape[1])
    y_part = rng.integers(0, k, small_rect.shape[0])
    from repro.partition.types import SpMVPartition, VectorPartition

    side = rng.random(small_rect.nnz) < 0.5
    nnz_part = np.where(side, y_part[small_rect.row], x_part[small_rect.col])
    p = SpMVPartition(
        matrix=small_rect,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=k),
        kind="s2D",
    )
    x = rng.random(small_rect.shape[1])
    assert_runs_identical(run_single_phase(p, x), legacy_run_single_phase(p, x))
    assert_runs_identical(run_two_phase(p, x), legacy_run_two_phase(p, x))
