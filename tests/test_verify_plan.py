"""Plan-IR checker: golden instances verify clean, seeded mutations are
all flagged, and the serialize/engine verification hooks fire.

The mutation corpus is the checker's own test oracle: every mutation
class is a realistic corruption (an index nudged out of range, one send
slot dropped, two parts' receives cross-wired, a tampered ledger entry)
applied to a deep copy of a *verified-clean* golden artifact, so a
mutation the checker misses is a hole in the invariant catalog, not a
test artifact.
"""

import copy

import numpy as np
import pytest

from repro.engine import PartitionEngine
from repro.errors import SerializationError, VerificationError
from repro.partition.serialize import load_plan, save_plan
from repro.runtime import compile_plan, shard_plan
from repro.simulate.machine import MachineModel
from repro.verify import check_plan, check_shards, verify_plan

from tests.test_runtime import CFG, partitioned_instances  # noqa: F401

pytestmark = pytest.mark.check


@pytest.fixture(scope="module")
def verified_artifacts(partitioned_instances):  # noqa: F811
    """(partition, plan, shards) per golden instance — compiled once."""
    out = []
    for p, mode in partitioned_instances:
        plan = compile_plan(p)
        assert plan.executor == mode
        out.append((p, plan, shard_plan(p, plan)))
    return out


def test_all_golden_instances_verify_clean(verified_artifacts):
    """All 7 pristine instances — covering all 3 execution models —
    pass both the plan-level and the shard-level checker."""
    executors = set()
    for _, plan, shards in verified_artifacts:
        report = verify_plan(plan, shards, raise_on_error=False)
        assert report.ok, report.summary()
        assert len(report.checks) >= 10
        executors.add(plan.executor)
    assert executors == {"single", "two", "routed"}
    assert len(verified_artifacts) == 7


def test_verify_plan_raises_on_violation(verified_artifacts):
    # Instance 1 (s2d on the mesh) has nonempty pre/fold pipelines.
    _, plan, shards = verified_artifacts[1]
    bad = copy.deepcopy(plan)
    bad.fold_rows[0] = bad.nrows + 7
    with pytest.raises(VerificationError, match="fold_rows"):
        verify_plan(bad)
    # raise_on_error=False returns the report instead.
    assert not verify_plan(bad, raise_on_error=False).ok


# ----------------------------------------------------------------------
# Mutation corpus
# ----------------------------------------------------------------------
#
# Each mutator takes deep-copied (plan, shards) and returns True when it
# could apply to this instance (feature present), mutating in place.

def _mut_pre_cols_oob(plan, shards):
    if plan.pre_cols.size == 0:
        return False
    plan.pre_cols[0] = plan.ncols
    return True


def _mut_main_rows_oob(plan, shards):
    if plan.main_rows is None or plan.main_rows.size == 0:
        return False
    plan.main_rows[-1] = plan.nrows + 2
    return True


def _mut_fold_rows_oob(plan, shards):
    if plan.fold_rows.size == 0:
        return False
    plan.fold_rows[0] = -1
    return True


def _mut_group_take_permuted(plan, shards):
    g = plan.group1
    if g.mode != "hist" or g.take is None or g.take.size < 2:
        return False
    g.take[:] = g.take[::-1].copy()
    return True


def _mut_group_index_negative(plan, shards):
    g = plan.group1
    if g.mode == "empty" or g.index.size == 0:
        return False
    g.index[0] = -3
    return True


def _mut_group_length_shrunk(plan, shards):
    g = plan.group1
    if g.mode == "empty" or g.length < 2:
        return False
    g.length = int(g.length) - 1
    return True


def _mut_nnz_mismatch(plan, shards):
    plan.nnz = int(plan.nnz) + 1
    return True


def _mut_pre_vals_truncated(plan, shards):
    if plan.pre_vals.size == 0:
        return False
    plan.pre_vals = plan.pre_vals[:-1]
    return True


def _mut_send_slot_dropped(plan, shards):
    for s in shards:
        for spec in s.sends.values():
            if spec.x_slots.size:
                spec.x_slots = spec.x_slots[:-1]
                spec.x_cols = spec.x_cols[:-1]
                return True
            if spec.p_slots.size:
                spec.p_slots = spec.p_slots[:-1]
                spec.p_idx = spec.p_idx[:-1]
                return True
    return False


def _mut_send_slot_duplicated(plan, shards):
    for s in shards:
        for spec in s.sends.values():
            if spec.x_slots.size >= 2:
                spec.x_slots[0] = spec.x_slots[1]
                return True
            if spec.p_slots.size >= 2:
                spec.p_slots[0] = spec.p_slots[1]
                return True
    return False


def _mut_recvs_cross_wired(plan, shards):
    for ph in plan.ledger.phase_names:
        a = [s for s in shards if ph in s.recvs_x and s.recvs_x[ph].slots.size]
        if len(a) >= 2:
            a[0].recvs_x[ph], a[1].recvs_x[ph] = a[1].recvs_x[ph], a[0].recvs_x[ph]
            return True
    return False


def _mut_own_rows_overlap(plan, shards):
    a, b = shards[0], shards[1]
    if a.own_rows.size == 0 or b.own_rows.size == 0:
        return False
    b.own_rows[0] = a.own_rows[0]
    return True


def _mut_fold_gather_oob(plan, shards):
    for s in shards:
        if s.fold_gather.loc_idx.size:
            s.fold_gather.loc_idx[0] = 10**6
            return True
    return False


def _mut_ledger_words_tampered(plan, shards):
    for ph in plan.ledger.phase_names:
        book = plan.ledger._phases[ph]
        if book:
            pair = next(iter(book))
            book[pair] += 5
            plan.ledger._agg.pop(ph, None)
            return True
    return False


MUTATIONS = {
    "pre-cols-oob": _mut_pre_cols_oob,
    "main-rows-oob": _mut_main_rows_oob,
    "fold-rows-oob": _mut_fold_rows_oob,
    "group-take-permuted": _mut_group_take_permuted,
    "group-index-negative": _mut_group_index_negative,
    "group-length-shrunk": _mut_group_length_shrunk,
    "nnz-mismatch": _mut_nnz_mismatch,
    "pre-vals-truncated": _mut_pre_vals_truncated,
    "send-slot-dropped": _mut_send_slot_dropped,
    "send-slot-duplicated": _mut_send_slot_duplicated,
    "recvs-cross-wired": _mut_recvs_cross_wired,
    "own-rows-overlap": _mut_own_rows_overlap,
    "fold-gather-oob": _mut_fold_gather_oob,
    "ledger-words-tampered": _mut_ledger_words_tampered,
}


def test_mutation_corpus_has_required_breadth():
    assert len(MUTATIONS) >= 12


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_every_mutation_class_is_flagged(name, verified_artifacts):
    """Every mutation class must apply to at least one golden instance
    and be flagged by the checker on every instance it applies to."""
    mutate = MUTATIONS[name]
    applied = 0
    for _, plan, shards in verified_artifacts:
        mplan = copy.deepcopy(plan)
        mshards = copy.deepcopy(shards)
        if not mutate(mplan, mshards):
            continue
        applied += 1
        report = verify_plan(mplan, mshards, raise_on_error=False)
        assert not report.ok, (
            f"mutation {name!r} on executor {plan.executor!r} "
            "was not flagged by the checker"
        )
    assert applied > 0, f"mutation {name!r} applied to no golden instance"


def test_mutated_plan_alone_is_flagged_without_shards(verified_artifacts):
    """check_plan (no shards) catches the plan-level classes on its own."""
    for _, plan, _ in verified_artifacts:
        bad = copy.deepcopy(plan)
        bad.fold_rows = np.append(bad.fold_rows, bad.nrows + 5)
        assert not check_plan(bad).ok


# ----------------------------------------------------------------------
# serialize hardening (satellite: load_plan verification-on-load)
# ----------------------------------------------------------------------


def test_load_plan_verifies_by_default(tmp_path, verified_artifacts):
    _, plan, _ = verified_artifacts[1]
    path = tmp_path / "plan.npz"
    save_plan(plan, path)
    loaded = load_plan(path)  # clean file passes with verify on
    assert np.array_equal(loaded.fold_rows, plan.fold_rows)

    bad = copy.deepcopy(plan)
    bad.fold_rows[0] = bad.nrows + 1
    bad_path = tmp_path / "bad.npz"
    save_plan(bad, bad_path)
    with pytest.raises(SerializationError, match="failed plan verification"):
        load_plan(bad_path)
    # Opt-out for trusted files loads the same bytes without the check.
    trusted = load_plan(bad_path, verify=False)
    assert trusted.fold_rows[0] == bad.nrows + 1


def test_load_plan_rejects_undecodable_file(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, not_a_header=np.arange(3))
    with pytest.raises(SerializationError, match="not a repro save file"):
        load_plan(path)


def test_load_plan_rejects_wrong_payload(tmp_path, verified_artifacts):
    from repro.partition.serialize import save_partition

    p, _, _ = verified_artifacts[0]
    path = tmp_path / "part.npz"
    save_partition(p, path)
    with pytest.raises(SerializationError, match="holds a 'partition'"):
        load_plan(path)


# ----------------------------------------------------------------------
# engine hook
# ----------------------------------------------------------------------


def test_engine_compiled_plan_verify_hook(verified_artifacts):
    p, _, _ = verified_artifacts[0]
    eng = PartitionEngine(p.matrix, seed=3, machine=MachineModel())
    plan = eng.plan("s2d-heuristic", 3, config=CFG)
    cplan = eng.compiled_plan(plan, verify=True)  # clean plan passes
    # The memo returns the same object; corrupting it makes the next
    # verify=True fetch raise while verify=False still returns it.
    cplan.nnz = int(cplan.nnz) + 1
    assert eng.compiled_plan(plan) is cplan
    with pytest.raises(VerificationError):
        eng.compiled_plan(plan, verify=True)
    eng.shutdown()


def test_check_shards_rejects_wrong_shard_count(verified_artifacts):
    _, plan, shards = verified_artifacts[0]
    report = check_shards(plan, shards[:-1])
    assert not report.ok
    assert any("one shard per part" in str(v) for v in report.violations)
