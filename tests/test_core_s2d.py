"""The s2D construction methods: optimality, Algorithm 1 invariants."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import s2d_heuristic, s2d_optimal, s2d_rowwise_baseline, single_phase_comm_stats
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise
from repro.partition.types import SpMVPartition, VectorPartition
from repro.sparse.coo import canonical_coo
import scipy.sparse as sp


def _rand_instance(seed, n=24, k=3, density=0.15):
    rng = np.random.default_rng(seed)
    a = canonical_coo(sp.random(n, n, density=density, random_state=seed) + sp.eye(n))
    y = rng.integers(0, k, n)
    x = rng.integers(0, k, n)
    return a, x, y, k


def _brute_force_min_volume(a, x, y, k):
    """Enumerate all row/col-side splits per off-diagonal block."""
    m = canonical_coo(a)
    rp = y[m.row]
    cp = x[m.col]
    total = 0
    for ell in range(k):
        for kk in range(k):
            if ell == kk:
                continue
            idx = np.flatnonzero((rp == ell) & (cp == kk))
            if idx.size == 0:
                continue
            rows = m.row[idx]
            cols = m.col[idx]
            best = None
            for bits in itertools.product([0, 1], repeat=idx.size):
                sel = np.array(bits, dtype=bool)  # True -> column side
                vol = np.unique(cols[~sel]).size + np.unique(rows[sel]).size
                best = vol if best is None else min(best, vol)
            total += best
    return total


def test_rowwise_baseline_is_1d(small_square, rng):
    k = 3
    y = rng.integers(0, k, small_square.shape[0])
    x = rng.integers(0, k, small_square.shape[1])
    p = s2d_rowwise_baseline(small_square, x_part=x, y_part=y, nparts=k)
    assert p.is_1d_rowwise()
    assert p.is_s2d_admissible()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_optimal_matches_brute_force(seed):
    a, x, y, k = _rand_instance(seed, n=14, k=3, density=0.12)
    p = s2d_optimal(a, x_part=x, y_part=y, nparts=k)
    got = single_phase_comm_stats(p).total_volume
    want = _brute_force_min_volume(a, x, y, k)
    assert got == want


def test_optimal_never_worse_than_rowwise(small_square, rng):
    k = 4
    y = rng.integers(0, k, 30)
    x = rng.integers(0, k, 30)
    base = s2d_rowwise_baseline(small_square, x_part=x, y_part=y, nparts=k)
    opt = s2d_optimal(small_square, x_part=x, y_part=y, nparts=k)
    v_base = single_phase_comm_stats(base).total_volume
    v_opt = single_phase_comm_stats(opt).total_volume
    assert v_opt <= v_base


def test_heuristic_admissible_and_bounded(medium_square):
    k = 8
    p1 = partition_1d_rowwise(medium_square, k, PartitionConfig(seed=5))
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=k)
    s.validate_s2d()
    v1 = single_phase_comm_stats(p1).total_volume
    vs = single_phase_comm_stats(s).total_volume
    vo = single_phase_comm_stats(
        s2d_optimal(medium_square, x_part=p1.vectors, nparts=k)
    ).total_volume
    assert vo <= vs <= v1


def test_heuristic_respects_wlim_when_start_feasible(medium_square):
    k = 4
    p1 = partition_1d_rowwise(medium_square, k, PartitionConfig(seed=5))
    w_lim = float(p1.loads().max())  # start is feasible under this cap
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=k, w_lim=w_lim)
    assert s.loads().max() <= w_lim


def test_heuristic_never_degrades_max_load_beyond_start(medium_square):
    # With w_lim below the starting max, flips may only go under max(W~).
    k = 8
    p1 = partition_1d_rowwise(medium_square, k, PartitionConfig(seed=2))
    start_max = p1.loads().max()
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=k, w_lim=1.0)
    assert s.loads().max() <= start_max


def test_heuristic_same_comm_pattern_as_1d(medium_square):
    """Paper, Section III: s2D and 1D share the message pattern."""
    from repro.simulate import run_single_phase

    k = 6
    p1 = partition_1d_rowwise(medium_square, k, PartitionConfig(seed=8))
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=k)
    r1 = run_single_phase(p1)
    rs = run_single_phase(s)
    assert np.array_equal(
        r1.ledger.sent_msgs("expand-and-fold"), rs.ledger.sent_msgs("expand-and-fold")
    )
    assert np.array_equal(
        r1.ledger.recv_msgs("expand-and-fold"), rs.ledger.recv_msgs("expand-and-fold")
    )


def test_heuristic_meta_records_choices(small_square, rng):
    k = 3
    y = rng.integers(0, k, 30)
    s = s2d_heuristic(small_square, y_part=y, nparts=k)
    assert s.meta["method"] == "heuristic"
    assert "w_lim" in s.meta
    for ch in s.meta["choices"]:
        assert ch.lambda_minus >= 0


def test_vector_partition_defaults_symmetric_for_square(small_square, rng):
    y = rng.integers(0, 3, 30)
    s = s2d_heuristic(small_square, y_part=y, nparts=3)
    assert np.array_equal(s.vectors.x_part, s.vectors.y_part)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_heuristic_volume_never_exceeds_rowwise(seed):
    a, x, y, k = _rand_instance(seed, n=30, k=4, density=0.1)
    base = s2d_rowwise_baseline(a, x_part=x, y_part=y, nparts=k)
    s = s2d_heuristic(a, x_part=x, y_part=y, nparts=k)
    assert (
        single_phase_comm_stats(s).total_volume
        <= single_phase_comm_stats(base).total_volume
    )
    s.validate_s2d()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_optimal_admissible_random_vectors(seed):
    a, x, y, k = _rand_instance(seed, n=26, k=3)
    p = s2d_optimal(a, x_part=x, y_part=y, nparts=k)
    p.validate_s2d()
    # diagonal-block nonzeros always stay with their (unique) owner
    m = p.matrix
    diag = y[m.row] == x[m.col]
    assert np.all(p.nnz_part[diag] == y[m.row][diag])
