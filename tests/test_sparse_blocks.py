"""Unit tests for the vector-partition-induced block structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.sparse.blocks import BlockStructure
from repro.sparse.coo import canonical_coo


def _simple():
    # 4x4, parts: rows [0,0,1,1], cols [0,1,1,0]
    a = sp.coo_matrix(
        (np.ones(6), ([0, 0, 1, 2, 3, 3], [0, 1, 2, 3, 0, 3])), shape=(4, 4)
    )
    m = canonical_coo(a)
    return BlockStructure(
        m.row, m.col, np.array([0, 1, 1, 0]), np.array([0, 0, 1, 1]), 2
    )


def test_block_membership():
    bs = _simple()
    # (0,0) y=0,x=0 -> block (0,0); (0,1) -> (0,1); (1,2) -> (0,1)
    assert bs.block_nnz_count(0, 0) == 1
    assert bs.block_nnz_count(0, 1) == 2
    # (2,3) y=1 x=0 -> (1,0); (3,0) -> (1,0); (3,3) -> (1,0)
    assert bs.block_nnz_count(1, 0) == 3
    assert bs.block_nnz_count(1, 1) == 0


def test_nonempty_offdiagonal_blocks():
    bs = _simple()
    assert sorted(bs.nonempty_offdiagonal_blocks()) == [(0, 1), (1, 0)]


def test_nhat_mhat():
    bs = _simple()
    assert bs.nhat(0, 1) == 2  # cols {1, 2}
    assert bs.mhat(0, 1) == 2  # rows {0, 1}
    assert bs.nhat(1, 0) == 2  # cols {0, 3}
    assert bs.mhat(1, 0) == 2  # rows {2, 3}


def test_rowwise_volume_equals_manual():
    bs = _simple()
    assert bs.rowwise_volume() == bs.nhat(0, 1) + bs.nhat(1, 0)


def test_loads():
    bs = _simple()
    assert bs.rowwise_loads().tolist() == [3, 3]
    assert bs.columnwise_loads().tolist() == [4, 2]
    assert bs.diagonal_loads().sum() == 1  # only (0,0) is in a diagonal block


def test_empty_block_indices():
    bs = _simple()
    assert bs.block_nnz_indices(1, 1).size == 0


def test_part_id_validation():
    with pytest.raises(PartitionError):
        BlockStructure(
            np.array([0]), np.array([0]), np.array([5]), np.array([0]), 2
        )


def test_index_bounds_validation():
    with pytest.raises(PartitionError):
        BlockStructure(
            np.array([3]), np.array([0]), np.array([0]), np.array([0, 0]), 1
        )


def test_from_matrix_roundtrip(small_square, rng):
    k = 4
    x = rng.integers(0, k, small_square.shape[1])
    y = rng.integers(0, k, small_square.shape[0])
    bs = BlockStructure.from_matrix(small_square, x, y, k)
    # every nonzero is in exactly one block
    total = sum(
        bs.block_nnz_count(l, c) for l in range(k) for c in range(k)
    )
    assert total == small_square.nnz


def test_block_indices_consistent_with_parts(small_square, rng):
    k = 3
    x = rng.integers(0, k, small_square.shape[1])
    y = rng.integers(0, k, small_square.shape[0])
    bs = BlockStructure.from_matrix(small_square, x, y, k)
    for l in range(k):
        for c in range(k):
            idx = bs.block_nnz_indices(l, c)
            assert np.all(y[bs.rows[idx]] == l)
            assert np.all(x[bs.cols[idx]] == c)
