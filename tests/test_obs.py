"""The unified tracing/metrics layer (``repro.obs``).

Contract under test:

- ``span`` builds a properly nested tree in the ambient trace, restores
  the open-span stack on exceptions (labelling the failed span with
  ``error=<type>``), and is a pure no-op when no ``tracing`` block is
  open — so instrumented code never branches on whether it is traced;
- the JSON export round-trips exactly and refuses unknown schema
  versions; the Chrome export maps ``worker`` attrs to ``tid`` rows so
  Perfetto renders per-worker superstep slices;
- the profiling adapters (``repro.hypergraph.profiling``,
  ``repro.simulate.profiling``) keep their byte-compatible public APIs
  while feeding the same tracer core;
- the parallel executor's coordinator merges per-worker superstep
  windows from shared memory into the trace deterministically, and a
  traced ``apply_y`` stays bit-identical to an untraced one;
- ``gather_stats`` aggregates engine memo and artifact-cache counters.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.hypergraph import profiling as hprof
from repro.obs import (
    AmbientCollector,
    Span,
    Trace,
    from_json,
    to_chrome,
    to_json,
    tree_str,
    write_trace,
)
from repro.simulate import profiling as sprof


# ----------------------------------------------------------------------
# Span tree mechanics
# ----------------------------------------------------------------------


def test_span_nesting_builds_tree():
    with obs.tracing() as tr:
        with obs.span("outer", k=4) as outer:
            obs.add("hits", 2)
            with obs.span("inner") as inner:
                obs.add("hits")
            assert obs.current_span() is outer
        obs.event("marker", note="done")
    assert [sp.name for sp in tr.spans] == ["outer", "marker"]
    root = tr.spans[0]
    assert root.attrs == {"k": 4}
    assert [c.name for c in root.children] == ["inner"]
    assert root.counters == {"hits": 2}
    assert root.children[0].counters == {"hits": 1}
    assert root.dur >= root.children[0].dur >= 0.0
    assert tr.total_counters() == {"hits": 3}
    assert [sp.name for sp in tr.walk()] == ["outer", "inner", "marker"]


def test_span_restores_stack_on_exception():
    with obs.tracing() as tr:
        with obs.span("parent"):
            with pytest.raises(RuntimeError):
                with obs.span("child"):
                    raise RuntimeError("boom")
            # Stack restored: new spans nest under parent, not the
            # failed child.
            with obs.span("sibling"):
                pass
        assert obs.current_span() is None
    child, sibling = tr.spans[0].children
    assert child.attrs["error"] == "RuntimeError"
    assert child.dur > 0.0
    assert sibling.name == "sibling" and "error" not in sibling.attrs


def test_no_trace_is_a_noop():
    assert obs.active_trace() is None
    with obs.span("orphan") as sp:
        assert sp is None
        obs.add("ignored")
        obs.event("ignored")
        obs.record("ignored", 0.0, 1.0)
    assert obs.active_trace() is None and obs.current_span() is None


def test_tracing_nests_and_restores():
    with obs.tracing() as outer:
        with obs.span("a"):
            with obs.tracing() as inner:
                assert obs.active_trace() is inner
                # The inner collector starts a fresh stack: spans root
                # at the inner trace, invisible to the outer tree.
                with obs.span("b"):
                    pass
            assert obs.active_trace() is outer
    assert [sp.name for sp in outer.walk()] == ["a"]
    assert [sp.name for sp in inner.walk()] == ["b"]


def test_add_between_spans_hits_trace_counters():
    with obs.tracing() as tr:
        obs.add("global", 5)
    assert tr.counters == {"global": 5}


def test_record_appends_measured_span():
    with obs.tracing() as tr:
        obs.record("parallel.superstep", 12.5, 0.25, worker=1, step=0)
    (sp,) = tr.spans
    assert (sp.t0, sp.dur) == (12.5, 0.25)
    assert sp.attrs == {"worker": 1, "step": 0}


def test_ambient_collector_save_restore():
    slot = AmbientCollector(list)
    assert slot.active() is None
    with slot.collect() as a:
        assert slot.active() is a
        with pytest.raises(ValueError):
            with slot.collect(["inner"]) as b:
                assert slot.active() is b
                raise ValueError("boom")
        assert slot.active() is a
    assert slot.active() is None
    with pytest.raises(ValueError):
        AmbientCollector().collect().__enter__()  # no value, no factory


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_trace() -> Trace:
    tr = Trace(t0=100.0, counters={"words": 7})
    root = Span("solver.cg", t0=100.5, dur=2.0, attrs={"k": 4})
    root.children.append(
        Span("solver.matvec", t0=101.0, dur=0.5, counters={"flops": 3.0})
    )
    tr.spans = [root, Span("native.cache_hit", t0=102.0, attrs={"worker": 2})]
    return tr


def test_json_round_trip_exact():
    doc = to_json(_sample_trace())
    rebuilt = from_json(json.loads(json.dumps(doc)))
    assert to_json(rebuilt) == doc
    assert doc["schema"] == obs.SCHEMA_VERSION


def test_json_rejects_unknown_schema():
    doc = to_json(_sample_trace())
    doc["schema"] = 999
    with pytest.raises(ValueError, match="schema"):
        from_json(doc)
    with pytest.raises(ValueError):
        from_json({})


def test_chrome_export_shape():
    doc = to_chrome(_sample_trace())
    assert doc["displayTimeUnit"] == "ms"
    by_name = {ev["name"]: ev for ev in doc["traceEvents"]}
    root = by_name["solver.cg"]
    assert root["ph"] == "X"
    assert root["ts"] == pytest.approx(0.5e6)  # µs from trace t0
    assert root["dur"] == pytest.approx(2.0e6)
    assert by_name["solver.matvec"]["args"] == {"flops": 3.0}
    marker = by_name["native.cache_hit"]
    assert marker["ph"] == "i"  # zero-duration span → instant event
    assert marker["tid"] == 2  # worker attr → timeline row


def test_write_trace_formats(tmp_path):
    tr = _sample_trace()
    out = tmp_path / "t.json"
    write_trace(tr, out, fmt="json")
    assert to_json(from_json(json.loads(out.read_text()))) == to_json(tr)
    write_trace(tr, out, fmt="chrome")
    assert "traceEvents" in json.loads(out.read_text())
    write_trace(tr, out, fmt="tree")
    assert "solver.cg" in out.read_text()
    with pytest.raises(ValueError, match="unknown trace format"):
        write_trace(tr, out, fmt="xml")


def test_tree_str_renders_counters():
    text = tree_str(_sample_trace())
    assert "solver.cg" in text and "  solver.matvec" in text
    assert "counters:" in text and "words=7" in text


# ----------------------------------------------------------------------
# Profiling adapters over the tracer core
# ----------------------------------------------------------------------


def test_partition_profile_api_unchanged():
    with hprof.collect() as prof:
        active = hprof.active_profile()
        assert active is prof
        with prof.stage("coarsen"):
            pass
        prof.add("refine", 0.25)
    assert hprof.active_profile() is None
    d = prof.as_dict()
    assert set(d) >= {"coarsen_s", "refine_s"} and d["refine_s"] == 0.25
    assert "coarsen" in prof.stage_table()


def test_profiling_adapters_emit_spans():
    with obs.tracing() as tr:
        with hprof.collect() as prof:
            with prof.stage("coarsen"):
                pass
        with sprof.collect() as sp_prof:
            with sprof.stage("expand"):
                sprof.note_run()
    names = {sp.name for sp in tr.walk()}
    assert "partition.coarsen" in names
    assert "simulate.expand" in names
    assert prof.coarsen_s >= 0.0
    assert sp_prof.runs == 1
    assert tr.total_counters().get("simulate.runs") == 1


def test_simulate_stage_noop_without_collectors():
    # Neither a profile nor a trace open: stage() must not blow up.
    with sprof.stage("expand"):
        pass


# ----------------------------------------------------------------------
# Parallel-executor trace merge (satellite 2)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_partition():
    from repro.generators.mesh import knn_mesh
    from repro.hypergraph import PartitionConfig
    from repro.partition import partition_1d_rowwise

    mesh = knn_mesh(200, 6, dim=2, seed=3)
    return partition_1d_rowwise(mesh, 4, PartitionConfig(seed=5, ninitial=2))


@pytest.mark.parallel
def test_traced_apply_bit_identical_and_merge_deterministic(small_partition):
    from repro.runtime import build_parallel_executor

    rng = np.random.default_rng(11)
    x = rng.standard_normal(small_partition.matrix.shape[1])
    with build_parallel_executor(small_partition, jobs=2) as ex:
        y_plain = ex.apply_y(x)
        with obs.tracing() as tr1:
            y_traced = ex.apply_y(x)
        with obs.tracing() as tr2:
            ex.apply_y(x)
        skew = ex.worker_skew()
        timings = ex.step_timings()
        nsteps = ex._nsteps
    # Tracing must not perturb the numerics.
    assert np.array_equal(y_plain, y_traced)

    def slices(tr):
        return [
            (sp.attrs["worker"], sp.attrs["part"], sp.attrs["step"])
            for sp in tr.walk()
            if sp.name == "parallel.superstep"
        ]

    got = slices(tr1)
    # Deterministic merge: same labelled slice set every traced run,
    # one slice per (part, superstep), workers covering the whole pool.
    assert got == slices(tr2)
    assert len(got) == small_partition.nparts * nsteps
    assert len(set(got)) == len(got)
    assert {w for w, _, _ in got} == {0, 1}
    (apply_span,) = [sp for sp in tr1.spans if sp.name == "parallel.apply"]
    assert apply_span.attrs["jobs"] == 2
    # The shared-memory timing block backs both the merge and the skew
    # report; every recorded window is positive once applies have run.
    assert timings.shape == (small_partition.nparts, nsteps)
    assert (timings > 0).all()
    assert set(skew) == {"per_worker_s", "min_s", "max_s", "ratio"}
    assert len(skew["per_worker_s"]) == 2
    assert skew["max_s"] >= skew["min_s"] > 0.0
    assert skew["ratio"] >= 1.0


@pytest.mark.parallel
def test_traced_reconcile_matches_untraced(small_partition):
    from repro.runtime import build_parallel_executor

    x = np.linspace(-1.0, 1.0, small_partition.matrix.shape[1])

    def ledger(traced: bool):
        with build_parallel_executor(small_partition, jobs=2) as ex:
            if traced:
                with obs.tracing():
                    ex.apply_y(x)
            else:
                ex.apply_y(x)
            recon = ex.reconcile()
        recon.pop("worker_skew")  # wall-clock, legitimately run-varying
        return recon

    assert ledger(True) == ledger(False)


# ----------------------------------------------------------------------
# Stats aggregation (satellite 3)
# ----------------------------------------------------------------------


def test_gather_stats_aggregates_engines(small_partition):
    from repro.engine import PartitionEngine

    eng = PartitionEngine(small_partition.matrix)
    try:
        eng.plan("1d", 2)
        eng.plan("1d", 2)  # memo hit
        report = obs.gather_stats(engines=[eng], caches=[], native=False)
    finally:
        eng.clear_cache()
    assert report["engine_totals"]["hits"] >= 1
    assert report["engine_totals"]["misses"] >= 1
    assert report["native"] is None
    text = obs.stats_text(report)
    assert "engine" in text
