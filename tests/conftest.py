"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import canonical_coo


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_square():
    """A 30×30 sparse matrix with diagonal, deterministic."""
    a = sp.random(30, 30, density=0.12, random_state=7, format="coo")
    return canonical_coo(a + sp.eye(30))


@pytest.fixture
def small_rect():
    """A 20×28 rectangular sparse matrix, deterministic."""
    return canonical_coo(sp.random(20, 28, density=0.15, random_state=9, format="coo"))


@pytest.fixture
def medium_square():
    """A 200×200 matrix, enough structure for partitioning tests."""
    a = sp.random(200, 200, density=0.03, random_state=3, format="coo")
    return canonical_coo(a + sp.eye(200))


def random_vector_partition(rng, m, n, k):
    """Random x/y partition covering all parts."""
    y = rng.integers(0, k, size=m)
    x = rng.integers(0, k, size=n)
    # Guarantee every part owns at least one row and one column index
    # when sizes permit (keeps loads sane in tests).
    for p in range(min(k, m)):
        y[p] = p
    for p in range(min(k, n)):
        x[p] = p
    return x.astype(np.int64), y.astype(np.int64)


def random_s2d_partition(rng, a, k):
    """A random admissible s2D partition of matrix ``a``."""
    from repro.partition.types import SpMVPartition, VectorPartition

    m = canonical_coo(a)
    x, y = random_vector_partition(rng, m.shape[0], m.shape[1], k)
    rp = y[m.row]
    cp = x[m.col]
    side = rng.random(m.nnz) < 0.5
    nnz_part = np.where(side, rp, cp)
    return SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x, y_part=y, nparts=k),
        kind="s2D",
    )
