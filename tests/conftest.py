"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob
import os
import pathlib
import signal

import numpy as np
import pytest
import scipy.sparse as sp

from repro.native import find_compiler
from repro.sparse.coo import canonical_coo

#: Hard wall-clock cap for pool-spawning tests: a superstep-protocol
#: bug shows up as a hang, and without pytest-timeout in the image a
#: hung barrier would stall the whole suite.
PARALLEL_TEST_TIMEOUT_S = 120


def _parallel_segments() -> list[str]:
    """Names of this package's shared-memory segments currently live."""
    return sorted(glob.glob("/dev/shm/s2d-par-*"))


@pytest.fixture(autouse=True)
def _parallel_timeout(request):
    """SIGALRM watchdog for ``parallel``-marked tests (POSIX only)."""
    if request.node.get_closest_marker("parallel") is None or not hasattr(
        signal, "SIGALRM"
    ):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(
            f"parallel test exceeded {PARALLEL_TEST_TIMEOUT_S}s — "
            "likely a stuck superstep"
        )

    old = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(PARALLEL_TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="session", autouse=True)
def _no_leaked_shared_memory():
    """The whole session must not leak worker-pool shared segments."""
    before = _parallel_segments()
    yield
    leaked = [s for s in _parallel_segments() if s not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def pytest_collection_modifyitems(config, items):
    """Skip ``native``-marked tests on hosts without a C compiler."""
    if find_compiler() is not None:
        return
    skip = pytest.mark.skip(reason="no C compiler on PATH for the native backend")
    for item in items:
        if item.get_closest_marker("native") is not None:
            item.add_marker(skip)


@pytest.fixture(scope="session", autouse=True)
def _hermetic_native_cache(tmp_path_factory):
    """Point the native build cache at a session temp dir when unset.

    Keeps the suite from writing into (or reading stale kernels from)
    the user's ``~/.cache/repro-native``; an explicitly exported
    ``REPRO_NATIVE_CACHE`` is honoured so a warm cache can be reused
    across runs.
    """
    from repro.native.build import CACHE_ENV

    if os.environ.get(CACHE_ENV):
        yield
        return
    os.environ[CACHE_ENV] = str(tmp_path_factory.mktemp("repro-native-cache"))
    try:
        yield
    finally:
        os.environ.pop(CACHE_ENV, None)


def _build_artifacts_in_tree() -> list[str]:
    """Compiled-object files under the repo tree (never expected: the
    native build cache lives outside it)."""
    root = pathlib.Path(__file__).resolve().parent.parent
    return sorted(
        str(p)
        for pat in ("*.so", "*.o", "*.so.tmp*")
        for p in root.rglob(pat)
    )


@pytest.fixture(scope="session", autouse=True)
def _no_stray_build_artifacts(_hermetic_native_cache):
    """The whole session must not strand ``.so``/``.o`` files in-tree."""
    before = _build_artifacts_in_tree()
    yield
    stray = [p for p in _build_artifacts_in_tree() if p not in before]
    assert not stray, f"stray native build artifacts in the repo tree: {stray}"


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_square():
    """A 30×30 sparse matrix with diagonal, deterministic."""
    a = sp.random(30, 30, density=0.12, random_state=7, format="coo")
    return canonical_coo(a + sp.eye(30))


@pytest.fixture
def small_rect():
    """A 20×28 rectangular sparse matrix, deterministic."""
    return canonical_coo(sp.random(20, 28, density=0.15, random_state=9, format="coo"))


@pytest.fixture
def medium_square():
    """A 200×200 matrix, enough structure for partitioning tests."""
    a = sp.random(200, 200, density=0.03, random_state=3, format="coo")
    return canonical_coo(a + sp.eye(200))


def random_vector_partition(rng, m, n, k):
    """Random x/y partition covering all parts."""
    y = rng.integers(0, k, size=m)
    x = rng.integers(0, k, size=n)
    # Guarantee every part owns at least one row and one column index
    # when sizes permit (keeps loads sane in tests).
    for p in range(min(k, m)):
        y[p] = p
    for p in range(min(k, n)):
        x[p] = p
    return x.astype(np.int64), y.astype(np.int64)


def random_s2d_partition(rng, a, k):
    """A random admissible s2D partition of matrix ``a``."""
    from repro.partition.types import SpMVPartition, VectorPartition

    m = canonical_coo(a)
    x, y = random_vector_partition(rng, m.shape[0], m.shape[1], k)
    rp = y[m.row]
    cp = x[m.col]
    side = rng.random(m.nnz) < 0.5
    nnz_part = np.where(side, rp, cp)
    return SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x, y_part=y, nparts=k),
        kind="s2D",
    )
