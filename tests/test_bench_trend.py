"""The bench-trend regression gate (``repro.obs.trend``).

Contract under test:

- the committed ``BENCH_*.json`` files pass the gate against
  themselves (the invariant ``tools/check_all.py --bench`` rides on);
- a regressed copy — a metric pushed below its recorded floor, or past
  a ceiling like ``amortize_target`` — fails, with the bound taken
  from the *baseline* document so a regressed run cannot lower its own
  bar;
- ``*_applies: false`` host-condition flags demote a floor to advisory
  (a 1-CPU host cannot meet a parallel speedup target) while every
  other boolean acceptance flag is a hard verdict;
- holes fail loudly: a baselined metric or a whole BENCH file missing
  from the fresh set is a failure, not a skip — only files with no
  acceptance block at all are uncomparable.
"""

import copy
import json
import pathlib
import subprocess
import sys

from repro.obs import compare_bench, load_bench, trend_report, trend_text
from repro.obs.trend import acceptance_metrics

REPO = pathlib.Path(__file__).resolve().parent.parent

BASE = {
    "entries": [],
    "acceptance": {
        "speedup": 2.5,
        "speedup_target": 2.0,
        "amortize_iters": 12.0,
        "amortize_target": 20.0,
        "identical": True,
    },
}


def _write(dirpath, name, doc):
    (dirpath / name).write_text(json.dumps(doc), encoding="utf-8")


def test_acceptance_metrics_extraction():
    m = acceptance_metrics(BASE)
    assert m["speedup"] == {
        "value": 2.5,
        "bound": 2.0,
        "ceiling": False,
        "applies": True,
    }
    assert m["amortize_iters"]["ceiling"] is True
    # Bounds and booleans are not themselves metrics.
    assert "speedup_target" not in m and "identical" not in m


def test_dict_valued_metrics_fan_out():
    doc = {
        "acceptance": {
            "native_speedups": {"rmat13": 3.0, "mesh10k": 2.5},
            "native_speedup_target": 2.0,
        }
    }
    m = acceptance_metrics(doc)
    assert m["native_speedups.rmat13"]["value"] == 3.0
    assert m["native_speedups.mesh10k"]["bound"] == 2.0


def test_identical_doc_passes():
    result = compare_bench(BASE, copy.deepcopy(BASE))
    assert result["ok"]
    assert all(m["status"] == "ok" for m in result["metrics"].values())


def test_floor_regression_fails():
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["speedup"] = 1.2
    result = compare_bench(BASE, fresh)
    assert not result["ok"]
    assert result["metrics"]["speedup"]["status"] == "regression"


def test_drift_above_floor_is_not_fatal():
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["speedup"] = 2.1  # worse than 2.5, clears 2.0
    result = compare_bench(BASE, fresh)
    assert result["ok"]
    assert result["metrics"]["speedup"]["status"] == "drift"


def test_ceiling_direction():
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["amortize_iters"] = 25.0  # above the 20 ceiling
    result = compare_bench(BASE, fresh)
    assert not result["ok"]
    assert result["metrics"]["amortize_iters"]["status"] == "regression"


def test_bound_comes_from_baseline():
    # A regressed run that also *lowers its own floor* must still fail
    # against the committed floor.
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["speedup"] = 1.2
    fresh["acceptance"]["speedup_target"] = 1.0
    result = compare_bench(BASE, fresh)
    assert not result["ok"]
    assert result["metrics"]["speedup"]["bound"] == 2.0


def test_applies_false_demotes_to_advisory():
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["speedup"] = 1.2
    fresh["acceptance"]["speedup_target_applies"] = False
    result = compare_bench(BASE, fresh)
    assert result["ok"]
    assert result["metrics"]["speedup"]["status"] == "advisory"
    # The marker flag itself must not be read as a failed verdict.
    assert "speedup_target_applies" not in result["flags"]


def test_false_boolean_flag_fails():
    fresh = copy.deepcopy(BASE)
    fresh["acceptance"]["identical"] = False
    result = compare_bench(BASE, fresh)
    assert not result["ok"]
    assert result["flags"]["identical"] is False


def test_missing_metric_fails():
    fresh = copy.deepcopy(BASE)
    del fresh["acceptance"]["speedup"]
    result = compare_bench(BASE, fresh)
    assert not result["ok"]
    assert result["metrics"]["speedup"]["status"] == "missing"


def test_trend_report_directories(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir(), fresh.mkdir()
    _write(baseline, "BENCH_a.json", BASE)
    _write(fresh, "BENCH_a.json", BASE)
    _write(baseline, "BENCH_gone.json", BASE)  # no fresh counterpart
    _write(fresh, "BENCH_raw.json", {"entries": []})  # no acceptance
    report = trend_report(baseline, fresh)
    assert not report["ok"]
    assert report["benches"]["BENCH_a.json"]["ok"]
    assert report["benches"]["BENCH_gone.json"]["error"] == "missing fresh file"
    assert "skipped" in report["benches"]["BENCH_raw.json"]
    text = trend_text(report)
    assert "BENCH_gone.json: FAIL" in text and "bench-trend: FAIL" in text


def test_committed_bench_files_pass_gate():
    """The repo's own BENCH files must clear their recorded floors."""
    report = trend_report(REPO, REPO)
    assert report["ok"], trend_text(report)
    # Sanity: the gate actually compared something.
    compared = [b for b in report["benches"].values() if "metrics" in b]
    assert compared


def test_cli_gate_pass_and_fail(tmp_path):
    """tools/bench_trend.py exits 0 on the committed files and 1 on a
    synthetically regressed copy (floors still from the baseline)."""
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    regressed_name = None
    for path in sorted(REPO.glob("BENCH_*.json")):
        doc = load_bench(path)
        acceptance = doc.get("acceptance") or {}
        # Regress the first speedup whose floor binds on this host
        # (skipping *_applies=false advisory metrics).
        if (
            regressed_name is None
            and "speedup" in acceptance
            and acceptance.get("speedup_target_applies", True)
        ):
            doc["acceptance"]["speedup"] = 0.01
            regressed_name = path.name
        _write(fresh, path.name, doc)
    assert regressed_name is not None

    def run(new_dir):
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_trend.py"),
             "--new-dir", str(new_dir), "--baseline-dir", str(REPO)],
            capture_output=True, text=True,
        )

    good = run(REPO)
    assert good.returncode == 0, good.stdout + good.stderr
    assert "bench-trend: PASS" in good.stdout
    bad = run(fresh)
    assert bad.returncode == 1, bad.stdout + bad.stderr
    assert "regression" in bad.stdout and regressed_name in bad.stdout
