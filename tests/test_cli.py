"""CLI smoke tests."""

import pytest

from repro.cli import main


def test_cli_suite(capsys):
    assert main(["suite", "--which", "table1", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "crystk02" in out
    assert len(out.splitlines()) == 8


def test_cli_suite_table4(capsys):
    assert main(["suite", "--which", "table4", "--scale", "tiny"]) == 0
    assert "rmat_20" in capsys.readouterr().out


def test_cli_figure1(capsys):
    assert main(["figure1"]) == 0
    out = capsys.readouterr().out
    assert "lambda_{3->2} = 3" in out


def test_cli_table1(capsys):
    assert main(["table", "--id", "1", "--scale", "tiny"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_table4(capsys):
    assert main(["table", "--id", "4", "--scale", "tiny"]) == 0
    assert "dense rows" in capsys.readouterr().out


def test_cli_partition_suite_matrix(capsys):
    assert main(
        ["partition", "--matrix", "c-big", "--scheme", "s2d", "--k", "4",
         "--scale", "tiny"]
    ) == 0
    out = capsys.readouterr().out
    assert "scheme=s2D" in out
    assert "volume=" in out


def test_cli_partition_mtx_file(tmp_path, small_square, capsys):
    from repro.sparse import write_matrix_market

    path = tmp_path / "m.mtx"
    write_matrix_market(small_square, path)
    assert main(
        ["partition", "--mtx", str(path), "--scheme", "2d", "--k", "2",
         "--scale", "tiny"]
    ) == 0
    assert "scheme=2D" in capsys.readouterr().out


def test_cli_partition_requires_one_source():
    with pytest.raises(SystemExit):
        main(["partition", "--scheme", "s2d"])
    with pytest.raises(SystemExit):
        main(["partition", "--matrix", "c-big", "--mtx", "x.mtx"])


def test_cli_unknown_matrix():
    with pytest.raises(SystemExit, match="unknown suite matrix"):
        main(["partition", "--matrix", "nope", "--scale", "tiny"])


@pytest.mark.parametrize(
    "scheme", ["1d", "2d-b", "1d-b", "s2d-opt", "s2d-b", "s2d-mg"]
)
def test_cli_all_schemes(scheme, capsys):
    assert main(
        ["partition", "--matrix", "trdheim", "--scheme", scheme, "--k", "4",
         "--scale", "tiny"]
    ) == 0
    assert "speedup=" in capsys.readouterr().out
