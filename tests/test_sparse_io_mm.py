"""MatrixMarket I/O round-trips and error handling."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ReproError
from repro.sparse.io_mm import read_matrix_market, write_matrix_market


def test_roundtrip_general(tmp_path, small_square):
    path = tmp_path / "m.mtx"
    write_matrix_market(small_square, path, comment="roundtrip test")
    back = read_matrix_market(path)
    assert back.shape == small_square.shape
    assert back.nnz == small_square.nnz
    assert np.allclose(back.toarray(), small_square.toarray())


def test_roundtrip_stream(small_rect):
    buf = io.StringIO()
    write_matrix_market(small_rect, buf)
    back = read_matrix_market(io.StringIO(buf.getvalue()))
    assert np.allclose(back.toarray(), small_rect.toarray())


def test_read_pattern_field():
    text = "%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 1\n2 3\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.shape == (2, 3)
    assert m.nnz == 2
    assert m.data.tolist() == [1.0, 1.0]


def test_read_symmetric_expands():
    text = (
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n1 1 2.0\n2 1 5.0\n3 3 1.0\n"
    )
    m = read_matrix_market(io.StringIO(text))
    dense = m.toarray()
    assert dense[1, 0] == 5.0
    assert dense[0, 1] == 5.0
    assert m.nnz == 4


def test_read_integer_field():
    text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
    m = read_matrix_market(io.StringIO(text))
    assert m.data[0] == 7.0


def test_comments_and_blank_lines_skipped():
    text = (
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n\n% another\n2 2 1\n2 2 4.5\n"
    )
    m = read_matrix_market(io.StringIO(text))
    assert m.nnz == 1


def test_missing_header_rejected():
    with pytest.raises(ReproError, match="missing"):
        read_matrix_market(io.StringIO("1 1 1\n1 1 1.0\n"))


def test_bad_object_rejected():
    with pytest.raises(ReproError, match="unsupported"):
        read_matrix_market(
            io.StringIO("%%MatrixMarket vector coordinate real general\n1 1 1\n")
        )


def test_array_format_rejected():
    with pytest.raises(ReproError, match="unsupported"):
        read_matrix_market(
            io.StringIO("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        )


def test_entry_count_mismatch_rejected():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
    with pytest.raises(ReproError, match="declared 2"):
        read_matrix_market(io.StringIO(text))


def test_out_of_range_index_rejected():
    text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
    with pytest.raises(ReproError, match="outside"):
        read_matrix_market(io.StringIO(text))


def test_write_is_one_based(small_square, tmp_path):
    path = tmp_path / "m.mtx"
    write_matrix_market(sp.eye(3), path)
    lines = path.read_text().splitlines()
    assert lines[1].split() == ["3", "3", "3"]
    assert lines[2].split()[:2] == ["1", "1"]
