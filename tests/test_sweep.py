"""The sweep grid compiler and parallel orchestrator.

Fast tests cover grid compilation (axes, DAG ordering, deterministic
seed derivation) and serial execution semantics; the slow-marked smoke
test runs a tiny grid on a two-worker fork pool and asserts parity
with the serial records — the bit-identity guarantee the table harness
relies on.
"""

import pytest

from repro.errors import ConfigError
from repro.experiments import ExperimentConfig
from repro.experiments.tables import run_table2
from repro.simulate.machine import MachineModel
from repro.sweep import (
    SchemeSpec,
    SweepGrid,
    derive_seed,
    map_tasks,
    quality_identical,
    run_sweep,
    suite_refs,
)


def _tiny_grid(names=("crystk02", "trdheim"), ks=(2,), **kw):
    return SweepGrid(
        matrices=suite_refs("table1", "tiny", names=names),
        schemes=(
            SchemeSpec("1d-rowwise", slot=0),
            SchemeSpec("s2d-heuristic", slot=0),
        ),
        ks=ks,
        **kw,
    )


# ----------------------------------------------------------------------
# Grid compilation
# ----------------------------------------------------------------------


def test_grid_axes_and_cell_count():
    grid = _tiny_grid(ks=(2, 4), seeds=(1, 2), machines=(MachineModel(), MachineModel(alpha=1)))
    assert grid.ncells == 2 * 2 * 2 * 2 * 2
    tasks = grid.tasks()
    assert len(tasks) == 4  # matrices x seeds
    assert all(len(t.cells) == 8 for t in tasks)  # schemes x ks x machines
    assert [t.task_index for t in tasks] == [0, 1, 2, 3]


def test_grid_dag_orders_base_schemes_first():
    grid = SweepGrid(
        matrices=suite_refs("table4", "tiny", names=("boyd2",)),
        schemes=(
            SchemeSpec("s2d-bounded", slot=0),
            SchemeSpec("s2d-heuristic", slot=0),
            SchemeSpec("1d-rowwise", slot=0),
        ),
        ks=(2,),
    )
    (task,) = grid.tasks()
    order = [c.scheme for c in task.cells]
    assert order.index("1d-rowwise") < order.index("s2d-heuristic")
    assert order.index("s2d-heuristic") < order.index("s2d-bounded")


def test_grid_validation():
    with pytest.raises(ConfigError):
        SweepGrid(matrices=(), schemes=(SchemeSpec("1d"),), ks=(2,))
    with pytest.raises(ConfigError):
        _tiny_grid(ks=(2,), seeds=())
    with pytest.raises(ConfigError):
        SweepGrid(
            matrices=suite_refs("table1", "tiny"),
            schemes=(SchemeSpec("no-such-scheme"),),
            ks=(2,),
        )
    with pytest.raises(ConfigError):
        suite_refs("table9", "tiny")
    with pytest.raises(ConfigError):
        suite_refs("table1", "tiny", names=("nope",))


def test_scheme_aliases_resolve():
    grid = _tiny_grid(names=("crystk02",))
    assert SchemeSpec("s2d").canonical == "s2d-heuristic"
    (task,) = grid.tasks()
    assert {c.scheme for c in task.cells} == {"1d-rowwise", "s2d-heuristic"}


def test_restricted_grid_matches_full_table_seeds(tmp_path):
    """A names-restricted grid derives the same per-matrix seeds as the
    full suite, so its cells reproduce the table rows and share cache
    artifacts with a full-table run."""
    full = SweepGrid(
        matrices=suite_refs("table1", "tiny"),
        schemes=(SchemeSpec("1d-rowwise"),),
        ks=(2,),
    )
    res_full = run_sweep(full, cache_dir=tmp_path)
    only = suite_refs("table1", "tiny", names=("trdheim",))
    assert only[0].seed_index == 2  # trdheim's position in the full suite
    restricted = SweepGrid(
        matrices=only, schemes=(SchemeSpec("1d-rowwise"),), ks=(2,)
    )
    res = run_sweep(restricted, cache_dir=tmp_path)
    (rec,) = res.records
    assert rec.from_cache  # same cache address as the full-table cell
    assert quality_identical(
        rec.quality, res_full.quality("trdheim", "1d-rowwise", 2)
    )


def test_derive_seed_is_pure_and_disjoint():
    assert derive_seed(42, 0, 0) == 42
    assert derive_seed(42, 3, 2) == 74
    seen = {derive_seed(42, mi, slot) for mi in range(8) for slot in range(4)}
    assert len(seen) == 32  # matrices own disjoint seed decades


# ----------------------------------------------------------------------
# Orchestrator semantics (serial)
# ----------------------------------------------------------------------


def test_sweep_records_and_lookup():
    grid = _tiny_grid()
    res = run_sweep(grid)
    assert len(res.records) == grid.ncells
    rec = res.get("crystk02", "s2d-heuristic", 2)
    assert rec.quality.nparts == 2
    assert rec.scale == "tiny"
    with pytest.raises(KeyError):
        res.get("crystk02", "s2d-heuristic", 99)
    # engine bookkeeping: one entry per task, with memory pressure
    assert len(res.engines) == 2
    for info in res.engines:
        assert info["cached_bytes"] > 0
        assert info["task_s"] > 0


def test_sweep_shares_slot_vector_partitions():
    """s2D cells reuse the 1D hypergraph run of the same slot — the
    engine-affinity contract the tables rely on."""
    res = run_sweep(_tiny_grid(names=("crystk02",)))
    (info,) = res.engines
    assert info["hits"] > 0  # the s2D build fetched the memoized 1D plan


def test_machine_axis_reprices_not_repartitions():
    cheap = MachineModel(alpha=1.0, beta=1.0, gamma=1.0)
    dear = MachineModel(alpha=1000.0, beta=3.0, gamma=1.0)
    grid = _tiny_grid(names=("crystk02",), machines=(cheap, dear))
    res = run_sweep(grid)
    q_cheap = res.quality("crystk02", "1d-rowwise", 2, machine=cheap)
    q_dear = res.quality("crystk02", "1d-rowwise", 2, machine=dear)
    # same partition and traffic, different pricing
    assert q_cheap.total_volume == q_dear.total_volume
    assert q_cheap.time != q_dear.time


def test_map_tasks_preserves_order():
    assert map_tasks(len, ["a", "bb", "ccc"]) == [1, 2, 3]


# ----------------------------------------------------------------------
# Parallel parity (CI smoke, slow tier)
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_parallel_jobs2_parity_with_serial(tmp_path):
    """Tiny grid on a two-worker fork pool: records (ledgers, cuts,
    quality numbers) bit-identical to the serial run, cold and warm."""
    cfg = ExperimentConfig(scale="tiny")
    serial = run_table2(cfg, ks=(2, 4))
    parallel = run_table2(cfg, ks=(2, 4), jobs=2, cache_dir=tmp_path)
    warm = run_table2(cfg, ks=(2, 4), jobs=2, cache_dir=tmp_path)
    assert serial.text == parallel.text == warm.text
    for rs, rp, rw in zip(serial.records, parallel.records, warm.records):
        assert (rs["name"], rs["K"]) == (rp["name"], rp["K"]) == (rw["name"], rw["K"])
        for scheme in ("1D", "2D", "s2D"):
            assert quality_identical(rs[scheme], rp[scheme])
            assert quality_identical(rs[scheme], rw[scheme])
    # the parallel run really used worker processes
    import os

    pids = {e["pid"] for e in parallel.meta["engines"]}
    assert os.getpid() not in pids


@pytest.mark.slow
def test_parallel_multi_seed_axis(tmp_path):
    grid = _tiny_grid(names=("crystk02",), seeds=(42, 7))
    serial = run_sweep(grid)
    parallel = run_sweep(grid, jobs=2, cache_dir=tmp_path)
    assert len(serial.records) == len(parallel.records) == 4
    for a, b in zip(serial.records, parallel.records):
        assert (a.matrix, a.scheme, a.k, a.seed) == (b.matrix, b.scheme, b.k, b.seed)
        assert quality_identical(a.quality, b.quality)
    # distinct seeds produce distinct plans under the same coordinates
    q42 = serial.get("crystk02", "1d-rowwise", 2, seed=42).quality
    q07 = serial.get("crystk02", "1d-rowwise", 2, seed=7).quality
    assert not quality_identical(q42, q07)
