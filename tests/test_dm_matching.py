"""Hopcroft–Karp: unit tests + property tests against networkx."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dm.matching import (
    bipartite_adjacency,
    hopcroft_karp,
    is_matching,
    matching_size,
)


def _match(rows, cols, nr, nc):
    indptr, adj = bipartite_adjacency(np.asarray(rows), np.asarray(cols), nr)
    return hopcroft_karp(indptr, adj, nr, nc)


def test_perfect_matching_identity():
    mr, mc = _match([0, 1, 2], [0, 1, 2], 3, 3)
    assert matching_size(mr) == 3
    assert is_matching(mr, mc)


def test_empty_graph():
    mr, mc = _match([], [], 3, 4)
    assert matching_size(mr) == 0
    assert np.all(mr == -1) and np.all(mc == -1)


def test_star_graph_matches_one():
    # one row connected to all columns
    mr, mc = _match([0, 0, 0], [0, 1, 2], 1, 3)
    assert matching_size(mr) == 1


def test_needs_augmentation():
    # Greedy init can match 0-0; augmenting path needed for both rows.
    # rows: 0-{0,1}, 1-{0}
    mr, mc = _match([0, 0, 1], [0, 1, 0], 2, 2)
    assert matching_size(mr) == 2


def test_long_augmenting_chain():
    # Path graph forcing a chain of flips: rows i -> cols {i, i+1}
    n = 50
    rows = [i for i in range(n) for _ in range(2)]
    cols = []
    for i in range(n):
        cols += [i, i + 1]
    mr, _ = _match(rows, cols, n, n + 1)
    assert matching_size(mr) == n


def test_duplicate_edges_tolerated():
    mr, _ = _match([0, 0, 0], [1, 1, 1], 1, 2)
    assert matching_size(mr) == 1


def test_rectangular_wide():
    mr, mc = _match([0, 1], [5, 6], 2, 8)
    assert matching_size(mr) == 2
    assert is_matching(mr, mc)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_matching_maximum_vs_networkx(data):
    nx = pytest.importorskip("networkx")
    nr = data.draw(st.integers(1, 12))
    nc = data.draw(st.integers(1, 12))
    nedges = data.draw(st.integers(0, 40))
    rows = data.draw(
        st.lists(st.integers(0, nr - 1), min_size=nedges, max_size=nedges)
    )
    cols = data.draw(
        st.lists(st.integers(0, nc - 1), min_size=nedges, max_size=nedges)
    )
    mr, mc = _match(rows, cols, nr, nc)
    assert is_matching(mr, mc)
    # matched pairs must be actual edges
    edges = set(zip(rows, cols))
    for u, v in enumerate(mr):
        if v != -1:
            assert (u, int(v)) in edges
    g = nx.Graph()
    g.add_nodes_from((("r", i) for i in range(nr)), bipartite=0)
    g.add_nodes_from((("c", j) for j in range(nc)), bipartite=1)
    g.add_edges_from((("r", r), ("c", c)) for r, c in zip(rows, cols))
    ref = nx.algorithms.bipartite.maximum_matching(
        g, top_nodes=[("r", i) for i in range(nr)]
    )
    assert matching_size(mr) == len(ref) // 2
