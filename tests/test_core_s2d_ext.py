"""The (A3) balance-repair extension of Algorithm 1."""

import numpy as np

from repro.core import s2d_heuristic, s2d_heuristic_balanced, single_phase_comm_stats
from repro.generators import banded_with_dense_rows, circuit_like
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise

CFG = PartitionConfig(seed=41, ninitial=2, fm_passes=2)


def test_balanced_is_admissible(medium_square):
    k = 8
    p1 = partition_1d_rowwise(medium_square, k, CFG)
    s = s2d_heuristic_balanced(medium_square, x_part=p1.vectors, nparts=k)
    s.validate_s2d()
    assert s.meta["method"] == "heuristic+A3"
    assert s.loads().sum() == medium_square.nnz


def test_balanced_never_worse_balance():
    a = banded_with_dense_rows(400, band=1, ndense=1, dense_fraction=0.5, seed=1)
    k = 16
    p1 = partition_1d_rowwise(a, k, CFG)
    plain = s2d_heuristic(a, x_part=p1.vectors, nparts=k)
    balanced = s2d_heuristic_balanced(a, x_part=p1.vectors, nparts=k)
    assert balanced.load_imbalance() <= plain.load_imbalance() + 1e-12


def test_balanced_repairs_dense_row_overload():
    """A full-ish row saddles its 1D owner; (A3) moves should shed it."""
    a = circuit_like(500, avg_degree=4, ndense=2, dense_fraction=0.5, seed=2)
    k = 16
    p1 = partition_1d_rowwise(a, k, CFG)
    plain = s2d_heuristic(a, x_part=p1.vectors, nparts=k)
    balanced = s2d_heuristic_balanced(a, x_part=p1.vectors, nparts=k)
    if plain.load_imbalance() > 0.05:
        assert balanced.load_imbalance() < plain.load_imbalance()
        assert len(balanced.meta["repair_moves"]) > 0


def test_balanced_no_moves_when_already_balanced(medium_square):
    k = 4
    p1 = partition_1d_rowwise(medium_square, k, CFG)
    balanced = s2d_heuristic_balanced(
        medium_square, x_part=p1.vectors, nparts=k, w_lim=float(medium_square.nnz)
    )
    assert balanced.meta["repair_moves"] == []
    plain = s2d_heuristic(
        medium_square, x_part=p1.vectors, nparts=k, w_lim=float(medium_square.nnz)
    )
    assert np.array_equal(balanced.nnz_part, plain.nnz_part)


def test_balanced_volume_still_simulatable():
    from repro.simulate import run_single_phase

    a = circuit_like(300, avg_degree=4, ndense=1, dense_fraction=0.5, seed=3)
    k = 8
    p1 = partition_1d_rowwise(a, k, CFG)
    s = s2d_heuristic_balanced(a, x_part=p1.vectors, nparts=k)
    run = run_single_phase(s)
    assert run.ledger.total_volume() == single_phase_comm_stats(s).total_volume


def test_breakdown_api(medium_square):
    from repro.simulate import MachineModel, evaluate

    k = 8
    p1 = partition_1d_rowwise(medium_square, k, CFG)
    q = evaluate(p1, machine=MachineModel(alpha=10, beta=2, gamma=1))
    bd = q.run.breakdown(MachineModel(alpha=10, beta=2, gamma=1))
    assert sum(e["total"] for e in bd) == q.time
    names = [e["name"] for e in bd]
    assert "expand-and-fold" in names
    comm = next(e for e in bd if e["name"] == "expand-and-fold")
    assert comm["latency"] > 0
