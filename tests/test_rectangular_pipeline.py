"""Rectangular matrices through the whole pipeline.

The paper's formulation is for general m×n matrices (Figure 1 itself is
10×13); these tests keep the rectangular paths honest.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import s2d_heuristic, s2d_optimal, single_phase_comm_stats
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise, partition_mondriaan
from repro.partition.vector import vector_partition_from_rows
from repro.simulate import run_single_phase, run_two_phase
from repro.sparse.coo import canonical_coo
from repro.sparse.permute import spy_string

CFG = PartitionConfig(seed=23, ninitial=2, fm_passes=2)


@pytest.fixture(scope="module")
def rect():
    a = sp.random(60, 90, density=0.08, random_state=5, format="coo")
    # ensure no empty rows (keeps 1D loads meaningful)
    fill = sp.coo_matrix(
        (np.ones(60), (np.arange(60), np.arange(60) % 90)), shape=(60, 90)
    )
    return canonical_coo(a + fill)


def test_vector_partition_rectangular_conformal(rect):
    y = np.arange(60) % 4
    v = vector_partition_from_rows(rect, y, 4)
    assert v.n == 90 and v.m == 60
    assert not v.is_symmetric()
    assert v.x_part.max() < 4


def test_1d_rowwise_rect_single_phase(rect, rng):
    p = partition_1d_rowwise(rect, 4, CFG)
    x = rng.random(90)
    run = run_single_phase(p, x)
    assert np.allclose(run.y, rect @ x)


def test_s2d_rect_end_to_end(rect, rng):
    p1 = partition_1d_rowwise(rect, 4, CFG)
    s = s2d_heuristic(rect, x_part=p1.vectors, nparts=4)
    s.validate_s2d()
    assert (
        single_phase_comm_stats(s).total_volume
        <= single_phase_comm_stats(p1).total_volume
    )
    x = rng.random(90)
    assert np.allclose(run_single_phase(s, x).y, rect @ x)


def test_s2d_optimal_rect(rect):
    p1 = partition_1d_rowwise(rect, 3, CFG)
    opt = s2d_optimal(rect, x_part=p1.vectors, nparts=3)
    opt.validate_s2d()
    assert (
        single_phase_comm_stats(opt).total_volume
        <= single_phase_comm_stats(p1).total_volume
    )


def test_mondriaan_rect(rect, rng):
    p = partition_mondriaan(rect, 6, CFG)
    assert p.loads().sum() == rect.nnz
    x = rng.random(90)
    assert np.allclose(run_two_phase(p, x).y, rect @ x)


def test_spy_string_rect(rect):
    # just the top-left corner of a small custom rectangular case
    a = sp.coo_matrix((np.ones(2), ([0, 1], [2, 0])), shape=(2, 4))
    s = spy_string(a, np.array([0, 1]), x_part=np.array([0, 0, 1, 1]),
                   y_part=np.array([0, 1]))
    assert "1" in s and "2" in s


def test_boman_non_rowwise_base_is_rebased(rect):
    from repro.partition import partition_1d_boman, partition_2d_finegrain

    base = partition_2d_finegrain(rect, 4, CFG)  # not 1D rowwise
    p = partition_1d_boman(rect, 4, base=base)
    assert p.kind == "1D-b"
    assert p.loads().sum() == rect.nnz
