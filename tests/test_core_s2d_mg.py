"""s2D-mg: the medium-grain adaptation."""

import numpy as np

from repro.core import partition_s2d_medium_grain, single_phase_comm_stats
from repro.hypergraph import PartitionConfig, connectivity_minus_one, medium_grain_model
from repro.hypergraph.partitioner import partition_kway

CFG = PartitionConfig(seed=77, ninitial=2, fm_passes=2)


def test_mg_partition_is_s2d(medium_square):
    p = partition_s2d_medium_grain(medium_square, 6, CFG)
    assert p.kind == "s2D-mg"
    p.validate_s2d()
    assert p.loads().sum() == medium_square.nnz


def test_mg_symmetric_vectors_for_square(medium_square):
    p = partition_s2d_medium_grain(medium_square, 4, CFG)
    # amalgamated composite model -> symmetric vector partition
    assert p.vectors.is_symmetric()


def test_mg_rectangular(small_rect):
    p = partition_s2d_medium_grain(small_rect, 3, CFG)
    p.validate_s2d()
    assert p.vectors.n == small_rect.shape[1]


def test_mg_volume_equals_connectivity_cut(medium_square):
    """The composite model's connectivity-1 equals the s2D volume."""
    model = medium_grain_model(medium_square)
    part = partition_kway(model.hypergraph, 4, CFG)
    nnz_part, x_part, y_part = model.decode(part)
    from repro.partition.types import SpMVPartition, VectorPartition

    p = SpMVPartition(
        matrix=medium_square,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=4),
        kind="s2D-mg",
    )
    vol = single_phase_comm_stats(p).total_volume
    cut = connectivity_minus_one(model.hypergraph, part)
    assert vol == cut


def test_mg_balance_better_than_naive(medium_square):
    # the paper's Table VII: mg gets good balance via unit-ish vertices
    p = partition_s2d_medium_grain(medium_square, 4, CFG)
    assert p.load_imbalance() < 0.5


def test_mg_custom_split_mask(medium_square):
    to_row = np.ones(medium_square.nnz, dtype=bool)  # force all rowwise
    p = partition_s2d_medium_grain(medium_square, 4, CFG, to_row=to_row)
    assert p.is_1d_rowwise()
