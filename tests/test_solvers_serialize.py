"""Iterative solvers on simulated SpMV; partition save/load; 2-phase stats."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import make_s2d_bounded, s2d_heuristic
from repro.core.volume import two_phase_comm_stats
from repro.errors import ReproError, SimulationError
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise, partition_2d_finegrain
from repro.partition.serialize import load_partition, save_partition
from repro.simulate import MachineModel, run_two_phase
from repro.solvers import conjugate_gradient, jacobi, power_iteration
from repro.sparse.coo import canonical_coo

CFG = PartitionConfig(seed=51, ninitial=2, fm_passes=2)
M = MachineModel(alpha=10, beta=1, gamma=1)


@pytest.fixture(scope="module")
def spd_partition():
    """An SPD diagonally dominant matrix, 1D-partitioned."""
    rng = np.random.default_rng(8)
    n = 80
    a = sp.random(n, n, density=0.05, random_state=8, format="coo")
    a = (a + a.T) * 0.5
    a = canonical_coo(a + sp.eye(n) * 10.0)
    return partition_1d_rowwise(a, 4, CFG)


# ---------------------------------------------------------------- solvers


def test_power_iteration_matches_dense(spd_partition):
    res = power_iteration(spd_partition, iters=300, tol=1e-12, machine=M)
    dense = spd_partition.matrix.toarray()
    lam_ref = np.max(np.linalg.eigvalsh(dense))
    assert res.history[-1] == pytest.approx(lam_ref, rel=1e-6)
    assert res.converged
    assert res.comm_words > 0 and res.sim_time > 0


def test_jacobi_solves(spd_partition):
    n = spd_partition.matrix.shape[0]
    b = np.arange(1, n + 1, dtype=np.float64)
    res = jacobi(spd_partition, b, iters=500, tol=1e-12, machine=M)
    assert res.converged
    assert np.allclose(spd_partition.matrix @ res.x, b, atol=1e-8)
    # residual history is monotone-ish decreasing overall
    assert res.history[-1] < res.history[0]


def test_cg_solves_faster_than_jacobi(spd_partition):
    n = spd_partition.matrix.shape[0]
    b = np.ones(n)
    rj = jacobi(spd_partition, b, iters=500, tol=1e-10, machine=M)
    rc = conjugate_gradient(spd_partition, b, iters=500, tol=1e-10, machine=M)
    assert rc.converged
    assert np.allclose(spd_partition.matrix @ rc.x, b, atol=1e-7)
    assert rc.iterations <= rj.iterations


def test_cg_on_s2d_and_bounded(spd_partition):
    a = spd_partition.matrix
    s = s2d_heuristic(a, x_part=spd_partition.vectors, nparts=4)
    b = np.ones(a.shape[0])
    rs = conjugate_gradient(s, b, tol=1e-10, machine=M)
    rb = conjugate_gradient(make_s2d_bounded(s), b, tol=1e-10, machine=M)
    assert rs.converged and rb.converged
    assert np.allclose(rs.x, rb.x, atol=1e-8)  # same numerics, other route
    # fewer words for s2D than its routed variant
    assert rs.comm_words <= rb.comm_words


def test_solver_rejects_rectangular():
    a = sp.random(5, 7, density=0.5, random_state=0)
    from repro.partition.types import SpMVPartition, VectorPartition

    p = SpMVPartition(
        matrix=a,
        nnz_part=np.zeros(canonical_coo(a).nnz, dtype=np.int64),
        vectors=VectorPartition(
            x_part=np.zeros(7, dtype=np.int64),
            y_part=np.zeros(5, dtype=np.int64),
            nparts=1,
        ),
        kind="1D",
    )
    with pytest.raises(SimulationError, match="square"):
        power_iteration(p)


def test_cg_converges_on_spd_mesh_operator():
    """CG on a shifted symmetric kNN-mesh operator (SPD by dominance)."""
    from repro.generators.mesh import knn_mesh

    a = knn_mesh(150, 6, dim=2, seed=21).tocoo()
    a = canonical_coo((a + a.T) * 0.5 + sp.eye(150) * 12.0)
    p = partition_1d_rowwise(a, 4, CFG)
    b = np.sin(np.arange(150) / 7.0)
    res = conjugate_gradient(p, b, iters=400, tol=1e-11, machine=M)
    assert res.converged
    assert np.allclose(a @ res.x, b, atol=1e-8)
    assert res.comm_words > 0 and res.sim_time > 0


def test_jacobi_converges_on_diagonally_dominant():
    """Jacobi on a strictly diagonally dominant (non-symmetric) matrix."""
    rng = np.random.default_rng(3)
    n = 60
    a = sp.random(n, n, density=0.08, random_state=3, format="coo")
    dom = np.abs(a.toarray()).sum(axis=1) + 1.0
    a = canonical_coo(a + sp.diags(dom))
    p = partition_1d_rowwise(a, 3, CFG)
    b = rng.standard_normal(n)
    res = jacobi(p, b, iters=400, tol=1e-12, machine=M)
    assert res.converged
    assert np.allclose(a @ res.x, b, atol=1e-9)


def test_comm_bill_is_iterations_times_single_run(spd_partition):
    """The accumulated bill equals iterations × one run's ledger totals —
    the communication profile of a fixed partition is static."""
    from repro.simulate import run_single_phase

    single = run_single_phase(spd_partition).ledger
    n = spd_partition.matrix.shape[0]
    b = np.ones(n)
    for res in (
        power_iteration(spd_partition, iters=7, tol=0.0, machine=M),
        jacobi(spd_partition, b, iters=9, tol=0.0, machine=M),
        conjugate_gradient(spd_partition, b, iters=6, tol=0.0, machine=M),
    ):
        assert res.comm_words == res.iterations * single.total_volume()
        assert res.comm_msgs == res.iterations * single.total_msgs()


def test_power_iteration_residual_finite_at_low_iters(spd_partition):
    """≤2 iterations must still report a finite residual."""
    one = power_iteration(spd_partition, iters=1, machine=M)
    assert one.iterations == 1 and np.isfinite(one.residual)
    two = power_iteration(spd_partition, iters=2, machine=M)
    assert two.iterations == 2 and np.isfinite(two.residual)
    # a tol loose enough to converge immediately also stays finite
    loose = power_iteration(spd_partition, iters=50, tol=1.0, machine=M)
    assert loose.converged and np.isfinite(loose.residual)


def test_solvers_reject_nonpositive_iters(spd_partition):
    from repro.errors import ConfigError

    b = np.ones(spd_partition.matrix.shape[0])
    with pytest.raises(ConfigError, match="iters"):
        power_iteration(spd_partition, iters=0)
    with pytest.raises(ConfigError, match="iters"):
        power_iteration(spd_partition, iters=-3)
    with pytest.raises(ConfigError, match="iters"):
        jacobi(spd_partition, b, iters=0)
    with pytest.raises(ConfigError, match="iters"):
        conjugate_gradient(spd_partition, b, iters=0)


def test_solvers_reject_foreign_plan(spd_partition):
    """A plan compiled from a different matrix must not silently solve
    the wrong system."""
    from repro.generators.mesh import knn_mesh
    from repro.runtime import compile_plan

    other = partition_1d_rowwise(
        canonical_coo(knn_mesh(90, 5, dim=2, seed=2) + sp.eye(90)), 4, CFG
    )
    foreign = compile_plan(other)
    with pytest.raises(SimulationError, match="does not match"):
        power_iteration(spd_partition, plan=foreign)


def test_solvers_accept_precompiled_plan(spd_partition):
    """A precompiled plan yields the same solve as on-the-fly compile."""
    from repro.runtime import compile_plan

    plan = compile_plan(spd_partition)
    base = power_iteration(spd_partition, iters=20, machine=M)
    reused = power_iteration(spd_partition, iters=20, machine=M, plan=plan)
    assert np.array_equal(base.x, reused.x)
    assert base.history == reused.history
    assert base.comm_words == reused.comm_words
    assert base.sim_time == reused.sim_time


def test_solver_matches_per_call_executor_loop(spd_partition):
    """The compiled-runtime solve is bit-identical to a hand loop over
    the per-call executor (the seed's formulation)."""
    from repro.simulate import run_single_phase

    n = spd_partition.matrix.shape[0]
    x = np.ones(n)
    x /= np.linalg.norm(x)
    words = 0
    history = []
    for _ in range(10):
        run = run_single_phase(spd_partition, x)
        history.append(float(x @ run.y))
        words += run.ledger.total_volume()
        x = run.y / np.linalg.norm(run.y)
    res = power_iteration(spd_partition, iters=10, tol=0.0, machine=M)
    assert res.history == history
    assert np.array_equal(res.x, x)
    assert res.comm_words == words


def test_jacobi_rejects_zero_diagonal():
    a = sp.coo_matrix((np.ones(2), ([0, 1], [1, 0])), shape=(2, 2))
    from repro.partition.types import SpMVPartition, VectorPartition

    p = SpMVPartition(
        matrix=a,
        nnz_part=np.array([0, 0]),
        vectors=VectorPartition(
            x_part=np.zeros(2, dtype=np.int64),
            y_part=np.zeros(2, dtype=np.int64),
            nparts=1,
        ),
        kind="1D",
    )
    with pytest.raises(SimulationError, match="diagonal"):
        jacobi(p, np.ones(2))


# ---------------------------------------------------------------- serialize


def test_partition_roundtrip(tmp_path, spd_partition):
    path = tmp_path / "p.npz"
    save_partition(spd_partition, path)
    back = load_partition(path)
    assert back.kind == spd_partition.kind
    assert back.nparts == spd_partition.nparts
    assert np.array_equal(back.nnz_part, spd_partition.nnz_part)
    assert np.array_equal(back.vectors.x_part, spd_partition.vectors.x_part)
    assert np.allclose(back.matrix.toarray(), spd_partition.matrix.toarray())


def test_partition_roundtrip_meta_mesh(tmp_path, spd_partition):
    s = s2d_heuristic(
        spd_partition.matrix, x_part=spd_partition.vectors, nparts=4
    )
    b = make_s2d_bounded(s)
    path = tmp_path / "b.npz"
    save_partition(b, path)
    back = load_partition(path)
    assert back.kind == "s2D-b"
    assert tuple(back.meta["mesh"]) == tuple(b.meta["mesh"])
    back.validate_s2d()


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, nothing=np.zeros(3))
    with pytest.raises((ReproError, KeyError)):
        load_partition(path)


# ---------------------------------------------------------------- 2-phase stats


def test_two_phase_stats_match_ledger(medium_square):
    p = partition_2d_finegrain(medium_square, 4, CFG)
    expand, fold = two_phase_comm_stats(p)
    run = run_two_phase(p)
    assert np.array_equal(expand.sent_volume, run.ledger.sent_volume("expand"))
    assert np.array_equal(fold.sent_volume, run.ledger.sent_volume("fold"))
    assert np.array_equal(expand.sent_msgs, run.ledger.sent_msgs("expand"))
    assert np.array_equal(fold.recv_msgs, run.ledger.recv_msgs("fold"))
    assert expand.total_volume + fold.total_volume == run.ledger.total_volume()


def test_two_phase_stats_1d_has_empty_fold(medium_square):
    p = partition_1d_rowwise(medium_square, 4, CFG)
    expand, fold = two_phase_comm_stats(p)
    assert fold.total_volume == 0
    assert expand.total_volume > 0
