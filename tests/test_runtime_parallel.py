"""Shared-memory parallel executor: golden bit-identity and robustness.

The contract under test, on every golden instance across all three
execution models (single-phase, two-phase, mesh-routed):

- ``shard_plan`` decomposes a compiled :class:`~repro.runtime.CommPlan`
  into per-part :class:`~repro.runtime.PartPlan`s whose serial replay
  (:func:`~repro.runtime.apply_shards_serial`) reproduces ``apply_y``
  *bit-identically*;
- the :class:`~repro.runtime.ParallelExecutor` process pool reproduces
  the same bits at any worker count, and the words it actually moves
  through the shared buffers reconcile exactly against the plan's
  machine-model ledger;
- failure is loud and clean: a killed worker raises
  :class:`~repro.errors.SimulationError` within the superstep timeout
  and every shared-memory segment is unlinked (the session fixture in
  ``conftest.py`` re-checks at exit).

Plus the integration surface: solvers (``executor="parallel"``), the
engine's memoized ``parallel_executor`` intermediate, the CLI
``solve --jobs`` path and jobs resolution (``0`` = auto, negative =
:class:`~repro.errors.UsageError`).
"""

import glob
import os
import signal

import numpy as np
import pytest

from repro.engine import PartitionEngine
from repro.errors import ConfigError, SimulationError, UsageError
from repro.jobs import host_cpus, resolve_jobs
from repro.runtime import (
    ParallelExecutor,
    apply_shards_serial,
    build_parallel_executor,
    compile_plan,
    shard_plan,
)
from repro.runtime.parallel import PHASES, _N_STEPS
from repro.solvers import conjugate_gradient, jacobi, power_iteration

from tests.test_runtime import CFG, partitioned_instances  # noqa: F401

pytestmark = pytest.mark.parallel


def _ledger_words(plan) -> np.ndarray:
    """Predicted per-part words per phase, (K, nphases)."""
    return np.stack(
        [plan.ledger.sent_volume(ph) for ph in PHASES[plan.executor]], axis=1
    )


# ----------------------------------------------------------------------
# Sharding: serial replay bit-identity + ledger agreement
# ----------------------------------------------------------------------


def test_shards_replay_bit_identical(partitioned_instances):  # noqa: F811
    rng = np.random.default_rng(31)
    for p, mode in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        assert len(shards) == p.nparts
        assert sorted(s.part for s in shards) == list(range(p.nparts))
        assert all(s.mode == mode for s in shards)
        for _ in range(2):
            x = rng.standard_normal(p.matrix.shape[1])
            assert np.array_equal(apply_shards_serial(plan, shards, x), plan.apply_y(x))


def test_shards_measure_ledger_exactly(partitioned_instances):  # noqa: F811
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        stats = np.zeros((p.nparts, len(PHASES[plan.executor])), dtype=np.int64)
        apply_shards_serial(plan, shards, stats=stats)
        assert np.array_equal(stats, _ledger_words(plan))


def test_shards_own_rows_partition_y(partitioned_instances):  # noqa: F811
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        rows = np.concatenate([s.own_rows for s in shards])
        assert np.array_equal(np.sort(rows), np.arange(plan.nrows))


# ----------------------------------------------------------------------
# Process pool: bit-identity, reconciliation, reuse
# ----------------------------------------------------------------------


def test_pool_bit_identical_all_models(partitioned_instances):  # noqa: F811
    rng = np.random.default_rng(32)
    for p, _ in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        with ParallelExecutor(plan, shards) as ex:
            assert ex.jobs == p.nparts
            for _ in range(3):
                x = rng.standard_normal(p.matrix.shape[1])
                assert np.array_equal(ex.apply_y(x), plan.apply_y(x))
            recon = ex.reconcile()
            assert recon["iters"] == 3
            assert np.array_equal(ex.measured_words(), _ledger_words(plan) * 3)
        assert ex.closed


def test_pool_fewer_workers_than_parts(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[1]  # s2d-heuristic, K=4
    plan = compile_plan(p)
    shards = shard_plan(p, plan)
    x = np.random.default_rng(33).standard_normal(p.matrix.shape[1])
    want = plan.apply_y(x)
    for jobs in (1, 2, 3):
        with ParallelExecutor(plan, shards, jobs=jobs) as ex:
            assert ex.jobs == jobs
            assert np.array_equal(ex.apply_y(x), want)
            ex.reconcile()


def test_pool_apply_returns_full_run(partitioned_instances):  # noqa: F811
    from repro.simulate.report import run_partition

    p, _ = partitioned_instances[0]
    x = np.random.default_rng(34).standard_normal(p.matrix.shape[1])
    ref = run_partition(p, x)
    with build_parallel_executor(p) as ex:
        run = ex.apply(x)
    assert np.array_equal(run.y, ref.y)
    assert run.ledger.as_dict() == ref.ledger.as_dict()


def test_pool_rejects_use_after_close(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[0]
    ex = build_parallel_executor(p)
    ex.close()
    ex.close()  # idempotent
    with pytest.raises(SimulationError):
        ex.apply_y()


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------


def _live_segments() -> set[str]:
    return set(glob.glob("/dev/shm/s2d-par-*"))


def test_killed_worker_raises_and_unlinks(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[1]
    before = _live_segments()
    ex = build_parallel_executor(p, timeout=5.0)
    os.kill(ex._procs[0].pid, signal.SIGKILL)
    with pytest.raises(SimulationError):
        ex.apply_y()
    assert ex.closed
    assert _live_segments() == before


def test_worker_exception_surfaces_message(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[1]
    plan = compile_plan(p)
    shards = shard_plan(p, plan)
    # Corrupt one shard so its worker raises mid-superstep: an
    # out-of-range gather column is an IndexError in the child.
    bad = shards[1]
    assert bad.x_own_cols.size
    bad.x_own_cols[:] = plan.ncols + 100
    ex = ParallelExecutor(plan, shards, timeout=30.0)
    with pytest.raises(SimulationError, match="IndexError"):
        ex.apply_y()
    assert ex.closed


# ----------------------------------------------------------------------
# Solver integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def spd_partition():
    """A 1D partition of a symmetric diagonally dominant (SPD) matrix."""
    import scipy.sparse as sp

    from repro.generators.mesh import knn_mesh
    from repro.partition import partition_1d_rowwise

    a = knn_mesh(300, 6, dim=2, seed=7).tocsr()
    sym = (a + a.T) * 0.5
    dom = np.asarray(np.abs(sym).sum(axis=1)).ravel()
    return partition_1d_rowwise(sym + sp.diags(dom + 1.0), 4, CFG)


def test_solvers_parallel_matches_compiled(partitioned_instances, spd_partition):  # noqa: F811
    # Power iteration runs on the golden 1D mesh instance; Jacobi/CG
    # need a well-posed system, so they solve the SPD variant.
    p, _ = partitioned_instances[0]
    r_ser = power_iteration(p, iters=8, tol=0.0)
    r_par = power_iteration(p, iters=8, tol=0.0, executor="parallel", jobs=2)
    assert np.array_equal(r_ser.x, r_par.x)
    assert r_ser.comm_words == r_par.comm_words

    ps = spd_partition
    b = np.linspace(1.0, 2.0, ps.matrix.shape[0])

    r_ser = jacobi(ps, b, iters=6, tol=0.0)
    r_par = jacobi(ps, b, iters=6, tol=0.0, executor="parallel")
    assert np.array_equal(r_ser.x, r_par.x)

    r_ser = conjugate_gradient(ps, b, iters=4, tol=0.0)
    r_par = conjugate_gradient(ps, b, iters=4, tol=0.0, executor="parallel")
    assert np.array_equal(r_ser.x, r_par.x)


def test_solver_rejects_unknown_executor(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[0]
    with pytest.raises(ConfigError, match="executor"):
        power_iteration(p, iters=2, executor="threads")


def test_solver_keeps_caller_pool_open(partitioned_instances):  # noqa: F811
    p, _ = partitioned_instances[0]
    plan = compile_plan(p)
    with build_parallel_executor(p, plan) as ex:
        r1 = power_iteration(p, iters=5, tol=0.0, plan=plan, parallel=ex)
        assert not ex.closed  # caller-owned pool survives the solve
        r2 = power_iteration(p, iters=5, tol=0.0, plan=plan)
        assert np.array_equal(r1.x, r2.x)
        assert ex.reconcile()["iters"] == 5


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------


def test_engine_memoizes_executor(medium_square):
    eng = PartitionEngine(medium_square, seed=5)
    plan = eng.plan("s2d-heuristic", 4, config=CFG)
    ex = eng.parallel_executor(plan, jobs=2)
    assert eng.parallel_executor(plan, jobs=2) is ex
    assert eng.parallel_executor(plan, jobs=3) is not ex
    x = np.random.default_rng(6).standard_normal(medium_square.shape[1])
    assert np.array_equal(ex.apply_y(x), eng.compiled_plan(plan).apply_y(x))
    # A closed pool is evicted, not served stale.
    ex.close()
    fresh = eng.parallel_executor(plan, jobs=2)
    assert fresh is not ex and not fresh.closed
    eng.shutdown()
    assert fresh.closed
    eng.shutdown()  # idempotent


def test_engine_clear_cache_shuts_pools_down(medium_square):
    eng = PartitionEngine(medium_square, seed=5)
    plan = eng.plan("s2d-heuristic", 4, config=CFG)
    ex = eng.parallel_executor(plan)
    eng.clear_cache()
    assert ex.closed


# ----------------------------------------------------------------------
# Jobs resolution (CLI + orchestrator)
# ----------------------------------------------------------------------


def test_resolve_jobs():
    assert resolve_jobs(None, default=7) == 7
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == host_cpus()
    with pytest.raises(UsageError, match="--jobs"):
        resolve_jobs(-1, what="--jobs")


def test_run_sweep_rejects_negative_jobs():
    from repro.sweep import run_sweep

    # Jobs are validated before the grid is touched, so a malformed
    # request fails fast without building any task.
    with pytest.raises(UsageError):
        run_sweep(None, jobs=-2)


def test_map_tasks_jobs_auto():
    from repro.sweep import map_tasks

    assert map_tasks(lambda v: v * v, [1, 2, 3], jobs=0) == [1, 4, 9]
    with pytest.raises(UsageError):
        map_tasks(lambda v: v, [1], jobs=-1)


def test_cli_solve_jobs(capsys):
    from repro.cli import main

    rc = main(
        [
            "solve", "--matrix", "trdheim", "--scheme", "s2d", "--k", "3",
            "--scale", "tiny", "--jobs", "2", "--iters", "10",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "jobs=2" in out
    assert "reconciled against the ledger" in out


def test_cli_solve_negative_jobs_clean_error(capsys):
    from repro.cli import main

    rc = main(
        [
            "solve", "--matrix", "trdheim", "--scheme", "s2d", "--k", "3",
            "--scale", "tiny", "--jobs", "-4",
        ]
    )
    err = capsys.readouterr().err
    assert rc == 2
    assert "--jobs" in err and "Traceback" not in err


# ----------------------------------------------------------------------
# Superstep schedule sanity
# ----------------------------------------------------------------------


def test_phase_tables_cover_all_executors(partitioned_instances):  # noqa: F811
    seen = set()
    for p, mode in partitioned_instances:
        plan = compile_plan(p)
        assert plan.executor == mode
        assert mode in PHASES and mode in _N_STEPS
        assert len(PHASES[mode]) <= _N_STEPS[mode]
        seen.add(mode)
    assert seen == {"single", "two", "routed"}
