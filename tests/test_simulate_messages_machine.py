"""Message ledger bookkeeping and the machine cost model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulate.machine import MachineModel, PhaseCost, SpMVRun
from repro.simulate.messages import Ledger


def test_ledger_records_and_aggregates():
    led = Ledger(3)
    led.record("p", 0, 1, 5)
    led.record("p", 1, 2, 2)
    led.record("q", 0, 2, 1)
    assert led.total_volume() == 8
    assert led.sent_volume("p").tolist() == [5, 2, 0]
    assert led.recv_volume("p").tolist() == [0, 5, 2]
    assert led.sent_msgs().tolist() == [2, 1, 0]
    assert led.recv_msgs().tolist() == [0, 1, 2]
    assert led.total_msgs() == 3
    assert led.phase_names == ["p", "q"]
    assert led.pair_volume("p", 0, 1) == 5
    assert led.pair_volume("p", 2, 0) == 0


def test_ledger_rejects_empty_message():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="empty"):
        led.record("p", 0, 1, 0)


def test_ledger_rejects_self_message():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="self"):
        led.record("p", 1, 1, 3)


def test_ledger_rejects_duplicate_pair_in_phase():
    led = Ledger(2)
    led.record("p", 0, 1, 3)
    with pytest.raises(SimulationError, match="duplicate"):
        led.record("p", 0, 1, 1)


def test_ledger_rejects_out_of_range():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="outside"):
        led.record("p", 0, 5, 1)


def test_machine_phase_time_components():
    m = MachineModel(alpha=10, beta=2, gamma=1)
    led = Ledger(2)
    led.record("c", 0, 1, 7)
    flops = np.array([4, 9])
    t = m.phase_time(flops, led, "c")
    # gamma*max_flops + beta*max(sent,recv) + alpha*max msgs
    assert t == 1 * 9 + 2 * 7 + 10 * 1


def test_machine_serial_time():
    m = MachineModel(gamma=2.0)
    assert m.serial_time(100) == 400.0


def test_run_time_and_speedup():
    m = MachineModel(alpha=0, beta=0, gamma=1)
    led = Ledger(2)
    run = SpMVRun(
        y=np.zeros(2),
        ledger=led,
        phases=[PhaseCost("compute", flops=np.array([10, 30]))],
        nnz=100,
    )
    assert run.time(m) == 30
    assert run.speedup(m) == 200 / 30
    assert run.total_flops().tolist() == [10, 30]


def test_run_total_flops_requires_compute():
    run = SpMVRun(y=np.zeros(1), ledger=Ledger(1), phases=[], nnz=1)
    with pytest.raises(ValueError):
        run.total_flops()
