"""Message ledger bookkeeping and the machine cost model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulate.machine import MachineModel, PhaseCost, SpMVRun
from repro.simulate.messages import Ledger


def test_ledger_records_and_aggregates():
    led = Ledger(3)
    led.record("p", 0, 1, 5)
    led.record("p", 1, 2, 2)
    led.record("q", 0, 2, 1)
    assert led.total_volume() == 8
    assert led.sent_volume("p").tolist() == [5, 2, 0]
    assert led.recv_volume("p").tolist() == [0, 5, 2]
    assert led.sent_msgs().tolist() == [2, 1, 0]
    assert led.recv_msgs().tolist() == [0, 1, 2]
    assert led.total_msgs() == 3
    assert led.phase_names == ["p", "q"]
    assert led.pair_volume("p", 0, 1) == 5
    assert led.pair_volume("p", 2, 0) == 0


def test_ledger_rejects_empty_message():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="empty"):
        led.record("p", 0, 1, 0)


def test_ledger_rejects_self_message():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="self"):
        led.record("p", 1, 1, 3)


def test_ledger_rejects_duplicate_pair_in_phase():
    led = Ledger(2)
    led.record("p", 0, 1, 3)
    with pytest.raises(SimulationError, match="duplicate"):
        led.record("p", 0, 1, 1)


def test_ledger_rejects_out_of_range():
    led = Ledger(2)
    with pytest.raises(SimulationError, match="outside"):
        led.record("p", 0, 5, 1)


def test_record_pairs_matches_per_message_record():
    """Bulk recording must produce a bit-identical book."""
    src = np.array([0, 1, 2, 0])
    dst = np.array([1, 2, 0, 2])
    words = np.array([5, 2, 7, 1])
    bulk, loop = Ledger(3), Ledger(3)
    bulk.record_pairs("p", src, dst, words)
    for s, d, w in zip(src, dst, words):
        loop.record("p", int(s), int(d), int(w))
    assert bulk.as_dict() == loop.as_dict()
    assert bulk.phase_names == loop.phase_names
    assert bulk.sent_volume("p").tolist() == loop.sent_volume("p").tolist()
    assert bulk.recv_msgs().tolist() == loop.recv_msgs().tolist()


def test_record_pairs_empty_batch_is_noop():
    led = Ledger(2)
    led.record_pairs("p", np.array([]), np.array([]), np.array([]))
    assert led.phase_names == []
    assert led.total_volume() == 0


def test_record_pairs_rejects_bad_batches():
    led = Ledger(3)
    with pytest.raises(SimulationError, match="empty"):
        led.record_pairs("p", np.array([0]), np.array([1]), np.array([0]))
    with pytest.raises(SimulationError, match="self"):
        led.record_pairs("p", np.array([1]), np.array([1]), np.array([2]))
    with pytest.raises(SimulationError, match="outside"):
        led.record_pairs("p", np.array([0]), np.array([5]), np.array([2]))
    with pytest.raises(SimulationError, match="duplicate"):
        led.record_pairs(
            "p", np.array([0, 0]), np.array([1, 1]), np.array([2, 3])
        )
    with pytest.raises(SimulationError, match="equal sizes"):
        led.record_pairs("p", np.array([0]), np.array([1, 2]), np.array([2]))


def test_record_pairs_rejects_duplicate_against_existing():
    led = Ledger(3)
    led.record("p", 0, 1, 4)
    with pytest.raises(SimulationError, match="duplicate"):
        led.record_pairs("p", np.array([2, 0]), np.array([0, 1]), np.array([1, 1]))
    # ... and the failed batch must not have been partially applied.
    assert led.pair_volume("p", 2, 0) == 0


def test_aggregate_cache_invalidated_on_write():
    led = Ledger(3)
    led.record("p", 0, 1, 5)
    assert led.sent_volume("p").tolist() == [5, 0, 0]
    led.record("p", 1, 2, 2)  # must invalidate the cached aggregates
    assert led.sent_volume("p").tolist() == [5, 2, 0]
    led.record_pairs("p", np.array([2]), np.array([0]), np.array([9]))
    assert led.sent_volume("p").tolist() == [5, 2, 9]
    assert led.recv_volume("p").tolist() == [9, 5, 2]
    # Returned arrays are copies: mutating one must not corrupt the cache.
    led.sent_volume("p")[:] = 0
    assert led.sent_volume("p").tolist() == [5, 2, 9]


def test_as_dict_snapshot():
    led = Ledger(3)
    led.record("q", 2, 0, 3)
    led.record("p", 0, 1, 5)
    assert led.as_dict() == {"q": {"2->0": 3}, "p": {"0->1": 5}}


def test_machine_phase_time_components():
    m = MachineModel(alpha=10, beta=2, gamma=1)
    led = Ledger(2)
    led.record("c", 0, 1, 7)
    flops = np.array([4, 9])
    t = m.phase_time(flops, led, "c")
    # gamma*max_flops + beta*max(sent,recv) + alpha*max msgs
    assert t == 1 * 9 + 2 * 7 + 10 * 1


def test_machine_serial_time():
    m = MachineModel(gamma=2.0)
    assert m.serial_time(100) == 400.0


def test_run_time_and_speedup():
    m = MachineModel(alpha=0, beta=0, gamma=1)
    led = Ledger(2)
    run = SpMVRun(
        y=np.zeros(2),
        ledger=led,
        phases=[PhaseCost("compute", flops=np.array([10, 30]))],
        nnz=100,
    )
    assert run.time(m) == 30
    assert run.speedup(m) == 200 / 30
    assert run.total_flops().tolist() == [10, 30]


def test_run_total_flops_requires_compute():
    run = SpMVRun(y=np.zeros(1), ledger=Ledger(1), phases=[], nnz=1)
    with pytest.raises(ValueError):
        run.total_flops()
