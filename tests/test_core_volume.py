"""Eq. (3) bookkeeping: analytic formulas vs the executing simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pairwise_volumes, single_phase_comm_stats
from repro.errors import PartitionError
from repro.partition.types import SpMVPartition, VectorPartition
from repro.simulate import run_single_phase
from tests.conftest import random_s2d_partition

import scipy.sparse as sp


def test_formula_matches_ledger(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    stats = single_phase_comm_stats(p)
    run = run_single_phase(p)
    assert stats.total_volume == run.ledger.total_volume()
    assert np.array_equal(stats.sent_volume, run.ledger.sent_volume())
    assert np.array_equal(stats.recv_volume, run.ledger.recv_volume())
    assert np.array_equal(stats.sent_msgs, run.ledger.sent_msgs())
    assert np.array_equal(stats.recv_msgs, run.ledger.recv_msgs())


def test_pairwise_matches_ledger_pairs(small_square, rng):
    p = random_s2d_partition(rng, small_square, 3)
    run = run_single_phase(p)
    for (src, dst), lam in pairwise_volumes(p).items():
        assert run.ledger.pair_volume("expand-and-fold", src, dst) == lam


def test_eq3_manual_example():
    # 2 parts; rows {0}, {1}; cols {0}, {1}
    # nonzero (0,1) on row side -> x_1 travels 1->0
    # nonzero (1,0) on col side -> partial y_1 travels 0->1
    m = sp.coo_matrix((np.ones(4), ([0, 0, 1, 1], [0, 1, 0, 1])), shape=(2, 2))
    p = SpMVPartition(
        matrix=m,
        nnz_part=np.array([0, 0, 0, 1]),
        vectors=VectorPartition(
            x_part=np.array([0, 1]), y_part=np.array([0, 1]), nparts=2
        ),
    )
    lam = pairwise_volumes(p)
    assert lam == {(1, 0): 1, (0, 1): 1}
    stats = single_phase_comm_stats(p)
    assert stats.total_volume == 2
    assert stats.sent_msgs.tolist() == [1, 1]


def test_rowwise_volume_equals_block_nhat(small_square, rng):
    from repro.core import s2d_rowwise_baseline

    k = 4
    y = rng.integers(0, k, 30)
    x = rng.integers(0, k, 30)
    p = s2d_rowwise_baseline(small_square, x_part=x, y_part=y, nparts=k)
    bs = p.block_structure()
    assert single_phase_comm_stats(p).total_volume == bs.rowwise_volume()


def test_formula_rejects_inadmissible(small_square):
    m = small_square
    k = 2
    p = SpMVPartition(
        matrix=m,
        nnz_part=np.ones(m.nnz, dtype=np.int64),
        vectors=VectorPartition(
            x_part=np.zeros(30, dtype=np.int64),
            y_part=np.zeros(30, dtype=np.int64),
            nparts=k,
        ),
    )
    with pytest.raises(PartitionError):
        single_phase_comm_stats(p)


def test_comm_stats_properties(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    stats = single_phase_comm_stats(p)
    assert stats.nparts == 4
    assert stats.max_sent_volume == stats.sent_volume.max()
    assert stats.total_msgs == stats.sent_msgs.sum()
    assert stats.avg_sent_msgs == pytest.approx(stats.sent_msgs.mean())
    assert stats.max_sent_msgs == stats.sent_msgs.max()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.sampled_from([2, 3, 5]))
def test_formula_equals_ledger_property(seed, k):
    rng = np.random.default_rng(seed)
    a = sp.random(18, 22, density=0.2, random_state=seed)
    if a.nnz == 0:
        return
    p = random_s2d_partition(rng, a, k)
    stats = single_phase_comm_stats(p)
    run = run_single_phase(p)
    assert stats.total_volume == run.ledger.total_volume()
    assert np.array_equal(stats.sent_msgs, run.ledger.sent_msgs())
