"""evaluate() dispatch and PartitionQuality semantics."""

import numpy as np
import pytest

from repro.core import make_s2d_bounded, s2d_heuristic
from repro.hypergraph import PartitionConfig
from repro.partition import (
    partition_1d_boman,
    partition_1d_columnwise,
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_checkerboard,
)
from repro.simulate import MachineModel, evaluate
from repro.simulate.report import EXECUTORS
from tests.conftest import random_s2d_partition

CFG = PartitionConfig(seed=61, ninitial=2, fm_passes=2)
M = MachineModel(alpha=5, beta=1, gamma=1)


def test_executor_dispatch_table_complete():
    for kind in ("1D", "1D-col", "s2D", "s2D-mg", "2D", "2D-b", "1D-b", "s2D-b"):
        assert kind in EXECUTORS


def test_dispatch_single_phase(medium_square):
    p = partition_1d_rowwise(medium_square, 4, CFG)
    q = evaluate(p, machine=M)
    assert q.run.ledger.phase_names == ["expand-and-fold"]


def test_dispatch_columnwise_single_phase(medium_square):
    p = partition_1d_columnwise(medium_square, 4, CFG)
    q = evaluate(p, machine=M)
    # columnwise = all fold traffic, still one phase
    assert q.run.ledger.phase_names == ["expand-and-fold"]


def test_dispatch_two_phase(medium_square):
    for build in (partition_2d_finegrain, partition_checkerboard, partition_1d_boman):
        p = build(medium_square, 4, CFG)
        q = evaluate(p, machine=M)
        assert set(q.run.ledger.phase_names) <= {"expand", "fold"}


def test_dispatch_routed(medium_square):
    p1 = partition_1d_rowwise(medium_square, 4, CFG)
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=4)
    b = make_s2d_bounded(s)
    q = evaluate(b, machine=M)
    assert set(q.run.ledger.phase_names) <= {"route-row", "route-col"}


def test_unknown_kind_falls_back(small_square, rng):
    p = random_s2d_partition(rng, small_square, 3)
    p.kind = "mystery"
    q = evaluate(p, machine=M)  # admissible -> single phase
    assert q.kind == "mystery"


def test_quality_fields_consistent(medium_square):
    p = partition_1d_rowwise(medium_square, 4, CFG)
    q = evaluate(p, machine=M)
    assert q.nparts == 4
    assert q.load_imbalance == pytest.approx(p.load_imbalance())
    assert q.li_percent == pytest.approx(100 * q.load_imbalance)
    assert q.total_volume == q.run.ledger.total_volume()
    sent = q.run.ledger.sent_msgs()
    assert q.avg_msgs == pytest.approx(sent.mean())
    assert q.max_msgs == sent.max()
    assert q.time == pytest.approx(q.run.time(M))
    assert q.speedup == pytest.approx(q.run.speedup(M))


def test_format_li_star_convention(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    q = evaluate(p, machine=M)
    li = q.format_li()
    assert li.endswith("%") or li.endswith("*")


def test_machine_model_sensitivity(medium_square):
    """Higher alpha must hurt the many-message scheme more."""
    p1 = partition_1d_rowwise(medium_square, 8, CFG)
    p2 = partition_2d_finegrain(medium_square, 8, CFG)
    cheap = MachineModel(alpha=0, beta=1, gamma=1)
    pricey = MachineModel(alpha=100, beta=1, gamma=1)
    dq1 = evaluate(p1, machine=cheap).time - evaluate(p1, machine=pricey).time
    dq2 = evaluate(p2, machine=cheap).time - evaluate(p2, machine=pricey).time
    assert abs(dq2) >= abs(dq1)  # 2D pays alpha twice (two phases)
