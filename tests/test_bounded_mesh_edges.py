"""Degenerate mesh shapes for the routed schemes: 1×K and K×1.

With a single mesh row the row phase is all-to-all and the column phase
vanishes (and vice versa); the routing must stay correct and the bounds
must degrade gracefully to K−1.
"""

import numpy as np
import pytest

from repro.core import bounded_comm_stats, make_s2d_bounded, single_phase_comm_stats
from repro.hypergraph import PartitionConfig
from repro.partition import partition_1d_rowwise
from repro.core import s2d_heuristic
from repro.simulate import run_s2d_bounded
from tests.conftest import random_s2d_partition

CFG = PartitionConfig(seed=71, ninitial=2, fm_passes=2)


@pytest.fixture(scope="module")
def s2d(request):
    import scipy.sparse as sp

    from repro.sparse.coo import canonical_coo

    a = canonical_coo(sp.random(120, 120, density=0.05, random_state=6) + sp.eye(120))
    p1 = partition_1d_rowwise(a, 6, CFG)
    return s2d_heuristic(a, x_part=p1.vectors, nparts=6)


@pytest.mark.parametrize("shape", [(1, 6), (6, 1), (2, 3), (3, 2)])
def test_all_mesh_shapes_execute(s2d, shape, rng):
    b = make_s2d_bounded(s2d, shape=shape)
    x = rng.random(120)
    run = run_s2d_bounded(b, x)
    assert np.allclose(run.y, s2d.matrix @ x)
    pr, pc = shape
    assert run.ledger.sent_msgs().max(initial=0) <= (pr - 1) + (pc - 1)


def test_single_row_mesh_is_single_hop(s2d):
    """Pr=1: every processor pair shares the mesh row, so the column
    phase carries nothing and the schedule collapses to direct sends."""
    b = make_s2d_bounded(s2d, shape=(1, 6))
    stats = bounded_comm_stats(b)
    assert stats.phase2_sent_volume.sum() == 0
    # volume equals the unrouted s2D volume: no forwarding at all
    assert stats.total_volume == single_phase_comm_stats(s2d).total_volume


def test_single_col_mesh_is_single_hop(s2d):
    b = make_s2d_bounded(s2d, shape=(6, 1))
    stats = bounded_comm_stats(b)
    assert stats.phase1_sent_volume.sum() == 0
    assert stats.total_volume == single_phase_comm_stats(s2d).total_volume


def test_stats_match_executor_all_shapes(s2d):
    for shape in ((1, 6), (6, 1), (2, 3)):
        b = make_s2d_bounded(s2d, shape=shape)
        stats = bounded_comm_stats(b)
        run = run_s2d_bounded(b)
        assert stats.total_volume == run.ledger.total_volume()


def test_random_partition_one_dim_mesh(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    b = make_s2d_bounded(p, shape=(1, 4))
    run = run_s2d_bounded(b)
    assert np.allclose(run.y, p.matrix @ (np.arange(1, 31) / 30))
