"""Fine DM decomposition: block-triangular form of the square part."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dm import fine_dm
from repro.sparse.coo import canonical_coo


def _check_block_upper_triangular(rows, cols, fdm):
    """Off-block nonzeros of the square part must point forward."""
    block_of_row = {}
    block_of_col = {}
    for b, (brows, bcols) in enumerate(fdm.blocks):
        for r in brows:
            block_of_row[int(r)] = b
        for c in bcols:
            block_of_col[int(c)] = b
    for r, c in zip(rows.tolist(), cols.tolist()):
        if r in block_of_row and c in block_of_col:
            assert block_of_row[r] <= block_of_col[c], (r, c)


def test_diagonal_matrix_singleton_blocks():
    fdm = fine_dm(np.arange(5), np.arange(5))
    assert fdm.nblocks == 5
    for brows, bcols in fdm.blocks:
        assert brows.size == 1 and bcols.size == 1


def test_full_cycle_single_block():
    # rows i have nonzeros at (i, i) and (i, i+1 mod n): one big SCC
    n = 6
    rows = np.concatenate([np.arange(n), np.arange(n)])
    cols = np.concatenate([np.arange(n), (np.arange(n) + 1) % n])
    fdm = fine_dm(rows, cols)
    assert fdm.nblocks == 1
    assert fdm.blocks[0][0].size == n


def test_upper_triangular_matrix_topological():
    # strictly upper triangular + diagonal: n singleton blocks, ordered
    n = 5
    rows, cols = [], []
    for i in range(n):
        for j in range(i, n):
            rows.append(i)
            cols.append(j)
    fdm = fine_dm(np.array(rows), np.array(cols))
    assert fdm.nblocks == n
    _check_block_upper_triangular(np.array(rows), np.array(cols), fdm)


def test_blocks_are_square_and_disjoint(small_square):
    m = canonical_coo(small_square)
    fdm = fine_dm(m.row, m.col)
    seen_r, seen_c = set(), set()
    for brows, bcols in fdm.blocks:
        assert brows.size == bcols.size
        assert not (set(brows.tolist()) & seen_r)
        assert not (set(bcols.tolist()) & seen_c)
        seen_r |= set(brows.tolist())
        seen_c |= set(bcols.tolist())
    # square part fully covered
    assert len(seen_r) == fdm.coarse.s_rows.size
    _check_block_upper_triangular(m.row, m.col, fdm)


def test_scc_count_matches_scipy():
    # structurally nonsingular matrix -> square part is everything;
    # block count must equal SCC count of the matched digraph, which
    # for a symmetric-permutation-friendly pattern equals csgraph's.
    rng = np.random.default_rng(3)
    n = 30
    a = sp.random(n, n, density=0.08, random_state=3) + sp.eye(n)
    m = canonical_coo(a)
    fdm = fine_dm(m.row, m.col)
    # with a full diagonal, the column digraph is exactly the adjacency
    # digraph (c -> c' iff a_{c,c'} != 0) under the identity matching...
    # but hopcroft-karp may pick another perfect matching; SCC count is
    # invariant over the choice of perfect matching (DM theory).
    ncomp, _ = sp.csgraph.connected_components(
        sp.csr_matrix(m), directed=True, connection="strong"
    )
    assert fdm.nblocks == ncomp


def test_rectangular_pattern_square_part_only():
    # horizontal-only pattern: no square part, no blocks
    fdm = fine_dm(np.zeros(3, dtype=int), np.array([0, 1, 2]))
    assert fdm.nblocks == 0
    assert fdm.square_row_order().size == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fine_dm_invariants_random(seed):
    rng = np.random.default_rng(seed)
    nr = int(rng.integers(2, 12))
    nc = int(rng.integers(2, 12))
    ne = int(rng.integers(1, 30))
    rows = rng.integers(0, nr, ne)
    cols = rng.integers(0, nc, ne)
    fdm = fine_dm(rows, cols)
    total = sum(b[0].size for b in fdm.blocks)
    assert total == fdm.coarse.s_rows.size
    _check_block_upper_triangular(rows, cols, fdm)
    assert fdm.square_row_order().size == total


def test_fine_dm_golden_pin():
    """Bit-level pin of one seeded pattern: the vectorized index remap
    (searchsorted over sorted uniques) and the CSR digraph build must
    keep the exact block sequence of the original dict/list path."""
    rng = np.random.default_rng(123)
    rows = rng.integers(0, 18, 60)
    cols = rng.integers(0, 18, 60)
    fdm = fine_dm(rows, cols)
    assert fdm.nblocks == 3
    assert fdm.square_row_order().tolist() == [12, 9, 1]
    assert fdm.square_col_order().tolist() == [16, 8, 1]
