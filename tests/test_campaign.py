"""Crash-safety tests for the journaled campaign runner.

The contract under test (ISSUE 10 / DESIGN.md "Campaign runner"):

- ``kill -9`` at *any* journal byte offset loses at most the in-flight
  cells: resume replays the journal, rehydrates completed cells from
  the artifact cache with zero recompute, and the final records are
  bit-identical to an unfaulted serial ``run_sweep``;
- torn and checksum-corrupted journal tails are recovered (truncated
  back to the last clean line) instead of poisoning later appends;
- transient faults (worker SIGKILL, watchdog timeout) are retried with
  backoff; a cell raising the same exception twice is deterministic
  and is quarantined — the campaign still completes every other cell.

Fault injection is deterministic (:mod:`repro.sweep.faults` keys on
(cell uid, attempt)), so every faulted scenario here replays exactly.
"""

from __future__ import annotations

import pickle
import shutil
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.errors import CampaignError, CellExecutionError, ConfigError
from repro.experiments.config import ExperimentConfig
from repro.sweep import (
    ArtifactCache,
    Campaign,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    Journal,
    RetryPolicy,
    SchemeSpec,
    SweepGrid,
    campaign_status,
    cell_uid,
    quality_identical,
    replay_journal,
    run_sweep,
    suite_refs,
)
from repro.sweep.faults import corrupt_journal_tail
from repro.sweep.journal import _encode

pytestmark = pytest.mark.campaign

_CFG = ExperimentConfig(scale="tiny")


def _grid(nmat: int = 2) -> SweepGrid:
    return SweepGrid(
        matrices=suite_refs("table1", scale="tiny")[:nmat],
        schemes=(SchemeSpec("1d-rowwise", 0), SchemeSpec("s2d-heuristic", 0)),
        ks=(4,),
        seeds=(42,),
        machines=(_CFG.machine,),
    )


@pytest.fixture(scope="module")
def grid():
    return _grid()


@pytest.fixture(scope="module")
def serial(grid):
    """The unfaulted serial baseline every scenario is compared against."""
    return run_sweep(grid, jobs=1)


def _uids(grid):
    return [cell_uid(t, c) for t in grid.tasks() for c in t.cells]


def _assert_bit_identical(serial, result):
    assert len(result.records) == len(serial.records)
    for a, b in zip(serial.records, result.records):
        assert (a.matrix, a.scheme, a.k, a.seed) == (
            b.matrix, b.scheme, b.k, b.seed,
        )
        assert quality_identical(a.quality, b.quality), (a.matrix, a.scheme)


# ----------------------------------------------------------------------
# Journal mechanics
# ----------------------------------------------------------------------


def test_journal_roundtrip(tmp_path):
    path = tmp_path / "j.jsonl"
    events = [{"ev": "a", "n": i} for i in range(5)]
    with Journal(path, fsync=False) as j:
        for ev in events:
            j.append(ev)
        assert j.appended == 5
    replay = replay_journal(path)
    assert replay.events == events
    assert not replay.damaged
    assert replay.good_bytes == path.stat().st_size


def test_journal_missing_file_is_empty_replay(tmp_path):
    replay = replay_journal(tmp_path / "absent.jsonl")
    assert replay.events == [] and not replay.damaged


@pytest.mark.parametrize("mode", ["truncate", "garbage", "flip"])
def test_journal_damaged_tail_drops_only_the_tail(tmp_path, mode):
    path = tmp_path / "j.jsonl"
    with Journal(path, fsync=False) as j:
        for i in range(4):
            j.append({"ev": "x", "n": i})
    corrupt_journal_tail(path, mode=mode)
    replay = replay_journal(path)
    assert replay.damaged
    # The clean prefix survives intact; only the damaged tail is lost.
    assert 3 <= len(replay.events) <= 4
    assert [e["n"] for e in replay.events] == list(range(len(replay.events)))


def test_journal_recover_truncates_and_appends_cleanly(tmp_path):
    path = tmp_path / "j.jsonl"
    with Journal(path, fsync=False) as j:
        j.append({"ev": "keep"})
        j.append({"ev": "lost"})
    corrupt_journal_tail(path, mode="flip")
    j2 = Journal(path, fsync=False)
    replay = j2.recover()
    assert replay.damaged and [e["ev"] for e in replay.events] == ["keep"]
    assert path.stat().st_size == replay.good_bytes
    j2.append({"ev": "after"})
    j2.close()
    final = replay_journal(path)
    assert not final.damaged
    assert [e["ev"] for e in final.events] == ["keep", "after"]


def test_journal_recover_refused_after_open(tmp_path):
    j = Journal(tmp_path / "j.jsonl", fsync=False)
    j.append({"ev": "x"})
    with pytest.raises(ConfigError):
        j.recover()
    j.close()


def test_journal_interior_corruption_discards_suffix(tmp_path):
    path = tmp_path / "j.jsonl"
    good = _encode({"ev": "a"})
    bad = b"000000000000 {\"ev\":\"b\"}\n"  # wrong checksum, right shape
    path.write_bytes(good + bad + _encode({"ev": "c"}))
    replay = replay_journal(path)
    # Bit rot mid-file: everything from the bad line on is dropped,
    # exactly as if the process had died there.
    assert [e["ev"] for e in replay.events] == ["a"]
    assert replay.dropped_lines == 2


# ----------------------------------------------------------------------
# Fault harness
# ----------------------------------------------------------------------


def test_fault_spec_validates_kind():
    with pytest.raises(ConfigError):
        FaultSpec(kind="explode", cell="x")


def test_fault_plan_addressing():
    plan = FaultPlan(specs=(
        FaultSpec(kind="raise", cell="a", attempts=(1,)),
        FaultSpec(kind="raise", cell="b", attempts=None),
    ))
    assert plan.for_cell("a", 0) is None
    assert plan.for_cell("a", 1).cell == "a"
    for attempt in range(4):
        assert plan.for_cell("b", attempt) is not None
    with pytest.raises(FaultInjected):
        plan.fire("b", 2)
    plan.fire("unlisted", 0)  # no-op


def test_fault_plan_seeded_is_deterministic():
    uids = [f"cell{i}" for i in range(10)]
    a = FaultPlan.seeded(7, uids, nfaults=3)
    b = FaultPlan.seeded(7, uids, nfaults=3)
    assert a == b and len(a.specs) == 3
    assert FaultPlan.seeded(8, uids, nfaults=3) != a


def test_retry_backoff_deterministic_and_bounded():
    pol = RetryPolicy(base=0.25, factor=2.0, cap=10.0, jitter=0.25)
    delays = [pol.backoff(n, "cell") for n in range(1, 10)]
    assert delays == [pol.backoff(n, "cell") for n in range(1, 10)]
    assert all(0 < d <= 10.0 * 1.25 for d in delays)
    assert delays[0] != pol.backoff(1, "other-cell")  # jitter keys on uid


# ----------------------------------------------------------------------
# Campaign happy path
# ----------------------------------------------------------------------


def test_cold_campaign_matches_serial_sweep(tmp_path, grid, serial):
    with obs.tracing() as tr:
        result = Campaign(grid, tmp_path, jobs=2, fsync=False).run()
    assert result.complete and not result.failed_cells
    _assert_bit_identical(serial, result)
    names = [sp.name for sp in tr.walk()]
    assert "campaign.cell" in names
    assert tr.total_counters().get("campaign.cells_executed") == len(
        serial.records
    )


def test_campaign_run_refuses_existing_progress(tmp_path, grid):
    Campaign(grid, tmp_path, jobs=1, fsync=False, stop_after=1).run()
    with pytest.raises(ConfigError, match="use resume"):
        Campaign(grid, tmp_path, jobs=1, fsync=False).run()


def test_resume_rejects_foreign_grid_journal(tmp_path, grid):
    Campaign(grid, tmp_path, jobs=1, fsync=False, stop_after=1).run()
    with pytest.raises(CampaignError, match="different grid"):
        Campaign(_grid(nmat=1), tmp_path, jobs=1, fsync=False).resume()


def test_duplicate_cell_uids_rejected(grid):
    task = grid.tasks()[0]
    assert len(set(cell_uid(task, c) for c in task.cells)) == len(task.cells)


# ----------------------------------------------------------------------
# kill -9 at three journal offsets × resume → bit-identical
# ----------------------------------------------------------------------


def _interrupted_campaign(tmp_path, grid):
    """A campaign aborted after 2 done cells, as a template directory."""
    root = tmp_path / "template"
    res = Campaign(grid, root, jobs=1, fsync=False, stop_after=2).run()
    assert not res.complete
    return root


def _done_line_span(journal_path):
    """Byte [start, end) of the first ``done`` line in the journal."""
    raw = journal_path.read_bytes()
    offset = 0
    for line in raw.splitlines(keepends=True):
        if b'"ev":"done"' in line:
            return offset, offset + len(line)
        offset += len(line)
    raise AssertionError("no done record in journal")


@pytest.mark.parametrize("where", ["before", "inside", "after"])
def test_kill_at_offset_then_resume_is_bit_identical(
    tmp_path, grid, serial, where
):
    template = _interrupted_campaign(tmp_path, grid)
    root = tmp_path / where
    shutil.copytree(template, root)
    start, end = _done_line_span(root / "journal.jsonl")
    offset = {"before": start, "inside": (start + end) // 2, "after": end}[where]
    corrupt_journal_tail(root / "journal.jsonl", mode="truncate", offset=offset)

    result = Campaign(grid, root, jobs=2, fsync=False).resume()
    assert result.complete
    _assert_bit_identical(serial, result)
    if where == "after":
        # The done record survived the cut: that cell is rehydrated
        # from the cache, never recomputed.
        assert result.counters["resumed_cells"] >= 1
    # Cells whose done record was cut still hit the artifact cache on
    # recompute — the write-through store is the source of truth.
    assert result.counters["cells_executed"] + result.counters[
        "cells_from_cache"
    ] + result.counters["resumed_cells"] == len(serial.records)


def test_resume_with_wiped_cache_recomputes_bit_identical(
    tmp_path, grid, serial
):
    template = _interrupted_campaign(tmp_path, grid)
    root = tmp_path / "wiped"
    shutil.copytree(template, root)
    shutil.rmtree(root / "cache")
    result = Campaign(grid, root, jobs=1, fsync=False).resume()
    assert result.complete
    assert result.counters["rehydrate_miss"] >= 1
    assert result.counters["resumed_cells"] == 0
    _assert_bit_identical(serial, result)


def test_idempotent_resume_zero_recompute(tmp_path, grid, serial):
    root = tmp_path / "c"
    Campaign(grid, root, jobs=2, fsync=False).run()
    with obs.tracing() as tr:
        result = Campaign(grid, root, jobs=1, fsync=False).resume()
    assert result.complete
    assert result.counters["cells_executed"] == 0
    assert result.counters["resumed_cells"] == len(serial.records)
    assert tr.total_counters().get("campaign.resumed_cells") == len(
        serial.records
    )
    _assert_bit_identical(serial, result)


# ----------------------------------------------------------------------
# Faults: kill / raise / stall
# ----------------------------------------------------------------------


def test_worker_sigkill_fault_retries_and_completes(tmp_path, grid, serial):
    uids = _uids(grid)
    plan = FaultPlan(specs=(FaultSpec(kind="kill", cell=uids[1]),))
    result = Campaign(
        grid, tmp_path, jobs=1, fsync=False, faults=plan,
        retry=RetryPolicy(base=0.01, cap=0.05),
    ).run()
    assert result.complete
    assert result.counters["killed"] == 1
    assert result.counters["retries"] >= 1
    _assert_bit_identical(serial, result)


def test_transient_raise_is_retried(tmp_path, grid, serial):
    uids = _uids(grid)
    plan = FaultPlan(specs=(FaultSpec(kind="raise", cell=uids[0], attempts=(0,)),))
    result = Campaign(
        grid, tmp_path, jobs=2, fsync=False, faults=plan,
        retry=RetryPolicy(base=0.01, cap=0.05),
    ).run()
    assert result.complete and result.counters["retries"] == 1
    _assert_bit_identical(serial, result)


def test_deterministic_raise_quarantined_campaign_completes_rest(
    tmp_path, grid, serial
):
    uids = _uids(grid)
    plan = FaultPlan(specs=(FaultSpec(kind="raise", cell=uids[2], attempts=None),))
    result = Campaign(
        grid, tmp_path, jobs=1, fsync=False, faults=plan,
        retry=RetryPolicy(base=0.01, cap=0.05),
    ).run()
    assert not result.complete
    assert len(result.records) == len(serial.records) - 1
    [fc] = result.failed_cells
    assert fc.uid == uids[2]
    assert fc.reason == "deterministic"
    assert fc.attempts == 2  # same exception twice → no third try
    assert "FaultInjected" in fc.summary()
    # Quarantine persists across resume: the cell is not retried again.
    again = Campaign(
        grid, tmp_path, jobs=1, fsync=False, faults=plan,
        retry=RetryPolicy(base=0.01, cap=0.05),
    ).resume()
    assert not again.complete
    assert [f.uid for f in again.failed_cells] == [uids[2]]
    assert again.counters["retries"] == 0


def test_attempt_budget_quarantines_flaky_cell(tmp_path):
    grid = _grid(nmat=1)
    serial = run_sweep(grid, jobs=1)
    uids = _uids(grid)
    # Kill every attempt: transient each time, but the budget caps it.
    plan = FaultPlan(specs=(FaultSpec(kind="kill", cell=uids[0], attempts=None),))
    result = Campaign(
        grid, tmp_path, jobs=1, fsync=False, faults=plan,
        retry=RetryPolicy(max_attempts=2, base=0.01, cap=0.05),
    ).run()
    assert not result.complete
    [fc] = result.failed_cells
    assert fc.uid == uids[0] and fc.reason == "budget" and fc.attempts == 2
    assert len(result.records) == len(serial.records) - 1


def test_watchdog_reaps_stalled_worker(tmp_path, serial, grid):
    uids = _uids(grid)
    plan = FaultPlan(specs=(FaultSpec(kind="stall", cell=uids[1], seconds=60.0),))
    t0 = time.monotonic()
    result = Campaign(
        grid, tmp_path, jobs=1, fsync=False, faults=plan,
        watchdog_s=1.0, retry=RetryPolicy(base=0.01, cap=0.05),
    ).run()
    assert time.monotonic() - t0 < 30.0  # reaped, not waited out
    assert result.complete
    assert result.counters["timeouts"] == 1
    _assert_bit_identical(serial, result)


# ----------------------------------------------------------------------
# Real SIGKILL of the whole campaign process
# ----------------------------------------------------------------------


_KILL_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.config import ExperimentConfig
from repro.sweep import Campaign, FaultPlan, FaultSpec, SchemeSpec, SweepGrid
from repro.sweep import cell_uid, suite_refs

cfg = ExperimentConfig(scale="tiny")
grid = SweepGrid(
    matrices=suite_refs("table1", scale="tiny")[:2],
    schemes=(SchemeSpec("1d-rowwise", 0), SchemeSpec("s2d-heuristic", 0)),
    ks=(4,),
    seeds=(42,),
    machines=(cfg.machine,),
)
uids = [cell_uid(t, c) for t in grid.tasks() for c in t.cells]
# Stall deterministically at the third cell so the parent's SIGKILL
# always lands mid-campaign with two cells journaled done.
faults = FaultPlan(specs=(FaultSpec(kind="stall", cell=uids[2], seconds=120.0),))
Campaign(grid, {root!r}, jobs=1, faults=faults, watchdog_s=600.0).run()
"""


def test_sigkill_of_campaign_process_then_resume(tmp_path, grid, serial):
    root = tmp_path / "killed"
    script = _KILL_SCRIPT.format(
        src=str((__import__("pathlib").Path(__file__).parent.parent / "src")),
        root=str(root),
    )
    proc = subprocess.Popen([sys.executable, "-c", script])
    journal = root / "journal.jsonl"
    deadline = time.monotonic() + 120.0
    try:
        # Wait until the journal proves two cells completed and the
        # third is in flight (the stall), then kill -9 the coordinator.
        while time.monotonic() < deadline:
            if journal.exists():
                events = replay_journal(journal).events
                if sum(1 for e in events if e.get("ev") == "done") >= 2:
                    break
            time.sleep(0.05)
        else:
            raise AssertionError("campaign never reached the stalled cell")
        proc.send_signal(signal.SIGKILL)
    finally:
        if proc.poll() is None and proc.returncode is None:
            proc.kill()
        proc.wait(timeout=60)
    assert proc.returncode == -signal.SIGKILL

    status = campaign_status(root)
    assert status.done >= 2 and status.total == len(serial.records)

    result = Campaign(grid, root, jobs=1).resume()
    assert result.complete
    assert result.counters["resumed_cells"] >= 2
    _assert_bit_identical(serial, result)


# ----------------------------------------------------------------------
# Status / progress
# ----------------------------------------------------------------------


def test_campaign_status_and_progress_callback(tmp_path, grid):
    seen = []
    result = Campaign(
        grid, tmp_path, jobs=1, fsync=False, progress=seen.append
    ).run()
    assert result.complete
    assert len(seen) == len(result.records)
    assert seen[-1].done == len(result.records)
    assert seen[-1].pending == 0
    assert seen[0].avg_cell_s > 0
    line = seen[-1].line()
    assert f"[{len(result.records)}/{len(result.records)}]" in line

    st = campaign_status(tmp_path)
    assert st.total == len(result.records) and st.done == st.total
    assert st.eta_s == 0


def test_campaign_status_empty_dir(tmp_path):
    st = campaign_status(tmp_path)
    assert st.total == 0 and st.done == 0


# ----------------------------------------------------------------------
# Satellites: CellExecutionError naming, artifact.corrupt visibility
# ----------------------------------------------------------------------


def _boom(*args, **kwargs):
    raise ValueError("synthetic cell failure")


def test_pool_worker_exception_names_the_cell(monkeypatch, grid):
    from repro.sweep import orchestrator

    monkeypatch.setattr(orchestrator, "_execute_cell", _boom)
    with pytest.raises(CellExecutionError) as ei:
        run_sweep(grid, jobs=1)
    exc = ei.value
    msg = str(exc)
    assert "scheme=" in msg and "K=4" in msg and "seed=42" in msg
    assert exc.cell["scheme"] in ("1d-rowwise", "s2d-heuristic")
    assert exc.task_index is not None
    assert "synthetic cell failure" in exc.worker_tb


def test_pool_worker_exception_survives_fork_pool(monkeypatch, grid):
    from repro.sweep import orchestrator

    monkeypatch.setattr(orchestrator, "_execute_cell", _boom)
    with pytest.raises(CellExecutionError) as ei:
        run_sweep(grid, jobs=2)  # crosses the pool's pickle boundary
    assert ei.value.cell["matrix"]


def test_cell_execution_error_pickle_roundtrip():
    exc = CellExecutionError(
        "boom", cell={"matrix": "m", "k": 4}, task_index=3, worker_tb="tb"
    )
    back = pickle.loads(pickle.dumps(exc))
    assert str(back) == "boom"
    assert back.cell == {"matrix": "m", "k": 4}
    assert back.task_index == 3 and back.worker_tb == "tb"


def test_artifact_cache_corrupt_eviction_is_visible(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_record("digest", ("plan",), ("machine",), {"q": 1})
    key = ArtifactCache.record_key("digest", ("plan",), ("machine",))
    path = cache._path(key, "pkl")
    path.write_bytes(b"not a pickle")
    with obs.tracing() as tr:
        assert cache.fetch_record("digest", ("plan",), ("machine",)) is None
    assert cache.stats["corrupt"] == 1
    counters = tr.total_counters()
    assert counters.get("artifact.corrupt") == 1
    [ev] = [sp for sp in tr.walk() if sp.name == "artifact.corrupt"]
    assert ev.attrs["key"] == key  # the corrupt *key* is named, not just a path
    assert not path.exists()  # evicted
    # Re-fetch is a clean miss, and rehydration shares the same path.
    assert cache.fetch_record_hex(key) is None
    assert cache.stats["corrupt"] == 1
