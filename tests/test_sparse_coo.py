"""Unit tests for repro.sparse.coo."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import (
    canonical_coo,
    coo_triplets,
    empty_like_shape,
    nnz_per_col,
    nnz_per_row,
)


def test_canonical_sorts_row_major():
    a = sp.coo_matrix(([1.0, 2.0, 3.0], ([2, 0, 2], [1, 3, 0])), shape=(3, 4))
    m = canonical_coo(a)
    assert m.row.tolist() == [0, 2, 2]
    assert m.col.tolist() == [3, 0, 1]


def test_canonical_sums_duplicates():
    a = sp.coo_matrix(([1.0, 2.0], ([1, 1], [2, 2])), shape=(3, 3))
    m = canonical_coo(a)
    assert m.nnz == 1
    assert m.data[0] == 3.0


def test_canonical_drops_explicit_zeros():
    a = sp.coo_matrix(([0.0, 5.0], ([0, 1], [0, 1])), shape=(2, 2))
    m = canonical_coo(a)
    assert m.nnz == 1
    assert m.row[0] == 1


def test_canonical_does_not_mutate_input():
    a = sp.coo_matrix(([1.0, 2.0], ([1, 0], [0, 1])), shape=(2, 2))
    rows_before = a.row.copy()
    canonical_coo(a)
    assert np.array_equal(a.row, rows_before)


def test_canonical_accepts_dense_and_csr():
    d = np.array([[1.0, 0.0], [0.0, 2.0]])
    assert canonical_coo(d).nnz == 2
    assert canonical_coo(sp.csr_matrix(d)).nnz == 2


def test_coo_triplets_types():
    rows, cols, vals = coo_triplets(sp.eye(4))
    assert rows.dtype == np.int64
    assert cols.dtype == np.int64
    assert len(vals) == 4


def test_empty_like_shape():
    e = empty_like_shape(sp.eye(5))
    assert e.shape == (5, 5)
    assert e.nnz == 0


def test_nnz_per_row_and_col():
    a = sp.coo_matrix(([1.0] * 4, ([0, 0, 1, 2], [0, 1, 1, 2])), shape=(4, 3))
    assert nnz_per_row(a).tolist() == [2, 1, 1, 0]
    assert nnz_per_col(a).tolist() == [1, 2, 1]


def test_nnz_per_row_counts_after_dedup():
    a = sp.coo_matrix(([1.0, -1.0], ([0, 0], [0, 0])), shape=(1, 1))
    # duplicates sum to zero -> eliminated -> empty row
    assert nnz_per_row(a).tolist() == [0]


@pytest.mark.parametrize("shape", [(1, 1), (5, 3), (3, 5), (10, 10)])
def test_canonical_shape_preserved(shape):
    a = sp.random(*shape, density=0.5, random_state=0)
    assert canonical_coo(a).shape == shape
