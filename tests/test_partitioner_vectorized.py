"""The vectorized partitioner core: determinism, quality vs the seed
implementation, kernel correctness, edge cases, and profiling hooks."""

import numpy as np
import pytest

from repro.engine import PartitionEngine
from repro.generators.suite import table1_suite
from repro.hypergraph import (
    Hypergraph,
    PartitionConfig,
    PartitionProfile,
    column_net_model,
    connectivity_minus_one,
    partition_kway,
)
from repro.hypergraph.coarsen import coarsen_once
from repro.hypergraph.kway import kway_greedy_refine
from repro.hypergraph.legacy import legacy_partition_kway
from repro.hypergraph.refine import _violation, bisection_cut, fm_refine, part_weights
from repro.kernels import (
    concat_ranges,
    group_sum,
    grouped_distinct_counts,
    in_sorted,
    pair_counts,
    unique_ints,
)
from repro.rng import as_generator


def _random_hg(rng, n, nnets, max_pins=5, ncon=1):
    nets = []
    for _ in range(nnets):
        size = int(rng.integers(1, max_pins + 1))
        nets.append(list(rng.choice(n, size=min(size, n), replace=False)))
    w = rng.integers(1, 4, size=(n, ncon))
    costs = rng.integers(1, 5, size=nnets)
    return Hypergraph.from_net_lists(nets, nvertices=n, vweights=w, ncosts=costs)


# ----------------------------------------------------------------------
# Shared kernels
# ----------------------------------------------------------------------


def test_concat_ranges_basic():
    out = concat_ranges(np.array([0, 5, 9]), np.array([3, 5, 12]))
    assert out.tolist() == [0, 1, 2, 9, 10, 11]


def test_concat_ranges_empty():
    assert concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0
    assert concat_ranges(np.array([4]), np.array([4])).size == 0


def test_concat_ranges_rejects_negative_spans():
    with pytest.raises(ValueError):
        concat_ranges(np.array([5]), np.array([3]))


def test_in_sorted_membership(rng):
    haystack = np.unique(rng.integers(0, 1000, size=200))
    queries = rng.integers(-50, 1100, size=500)
    expected = np.isin(queries, haystack)
    assert np.array_equal(in_sorted(haystack, queries), expected)


def test_in_sorted_empty_haystack():
    assert not in_sorted(np.array([], dtype=np.int64), np.array([1, 2])).any()
    assert in_sorted(np.array([3]), np.array([], dtype=np.int64)).size == 0


@pytest.mark.parametrize("n", [4, 5000])  # histogram fastpath vs sort fallback
def test_pair_counts_matches_reference(rng, n):
    src = rng.integers(0, n, size=300)
    dst = rng.integers(0, n, size=300)
    s, d, c = pair_counts(src, dst, n)
    ref: dict = {}
    for a, b in zip(src, dst):
        ref[(int(a), int(b))] = ref.get((int(a), int(b)), 0) + 1
    assert {(int(a), int(b)): int(w) for a, b, w in zip(s, d, c)} == ref
    assert int(c.sum()) == 300
    keys = s * n + d
    assert np.all(np.diff(keys) > 0)  # sorted, distinct


def test_pair_counts_empty():
    s, d, c = pair_counts(np.array([]), np.array([]), 7)
    assert s.size == d.size == c.size == 0


@pytest.mark.parametrize("scale", [1, 10**15])  # dense fastpath vs fallback
def test_unique_ints_matches_numpy(rng, scale):
    keys = rng.integers(0, 400, size=1000) * scale
    assert np.array_equal(unique_ints(keys), np.unique(keys))


def test_unique_ints_empty():
    assert unique_ints(np.array([], dtype=np.int64)).size == 0


@pytest.mark.parametrize("span", ["dense", "sparse"])
def test_group_sum_matches_reference(rng, span):
    nkeys = 500
    keys = rng.integers(0, 40, size=nkeys)
    if span == "sparse":
        keys = keys * 10**15  # force the unique-based fallback
    values = rng.standard_normal(nkeys)
    uniq, sums = group_sum(keys, values)
    ref_uniq, inv = np.unique(keys, return_inverse=True)
    ref = np.zeros(ref_uniq.size)
    np.add.at(ref, inv, values)
    assert np.array_equal(uniq, ref_uniq)
    assert np.allclose(sums, ref)


def test_group_sum_empty():
    uniq, sums = group_sum(np.array([], dtype=np.int64), np.array([]))
    assert uniq.size == 0 and sums.size == 0


def test_grouped_distinct_counts_reexport():
    # the sparse.blocks name must stay importable (analytics layer API)
    from repro.sparse.blocks import grouped_distinct_counts as from_blocks

    assert from_blocks is grouped_distinct_counts


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def test_partition_kway_seeded_determinism(small_square):
    hg1 = column_net_model(small_square)
    hg2 = column_net_model(small_square)  # fresh instance, fresh caches
    cfg = PartitionConfig(seed=11)
    p1 = partition_kway(hg1, 8, cfg)
    p2 = partition_kway(hg1, 8, cfg)
    p3 = partition_kway(hg2, 8, cfg)
    assert np.array_equal(p1, p2)
    assert np.array_equal(p1, p3)


def test_partition_kway_seed_changes_result(medium_square):
    hg = column_net_model(medium_square)
    p1 = partition_kway(hg, 8, PartitionConfig(seed=1))
    p2 = partition_kway(hg, 8, PartitionConfig(seed=2))
    assert not np.array_equal(p1, p2)  # astronomically unlikely otherwise


def test_coarsen_deterministic(medium_square):
    hg = column_net_model(medium_square)
    c1, h1 = coarsen_once(hg, as_generator(4))
    c2, h2 = coarsen_once(hg, as_generator(4))
    assert np.array_equal(c1, c2)
    assert np.array_equal(h1.xpins, h2.xpins)
    assert np.array_equal(h1.pins, h2.pins)
    assert np.array_equal(h1.ncosts, h2.ncosts)


# ----------------------------------------------------------------------
# Quality golden: vectorized within 5% of the seed implementation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "matrix_idx", range(5), ids=[sm.name for sm in table1_suite("tiny")[:5]]
)
def test_quality_within_5pct_of_legacy(matrix_idx):
    sm = table1_suite("tiny")[matrix_idx]
    hg = column_net_model(sm.matrix())
    cfg = PartitionConfig(seed=3)
    cut_new = connectivity_minus_one(hg, partition_kway(hg, 8, cfg))
    cut_old = connectivity_minus_one(hg, legacy_partition_kway(hg, 8, cfg))
    assert cut_new <= 1.05 * cut_old


# ----------------------------------------------------------------------
# Coarsening edge cases
# ----------------------------------------------------------------------


def test_coarsen_all_nets_above_max_size():
    # every net too large to score: no pair matches, contraction is
    # the identity on vertices and the V-cycle stall check fires
    nets = [list(range(12)), list(range(2, 14))]
    hg = Hypergraph.from_net_lists(nets, nvertices=14)
    cmap, coarse = coarsen_once(hg, as_generator(0), max_net_size=5)
    assert np.array_equal(cmap, np.arange(14))
    assert coarse.nvertices == 14
    assert coarse.nnets == 2  # structure preserved, nothing merged
    assert np.array_equal(coarse.total_weight(), hg.total_weight())


def test_coarsen_singleton_nets_dropped():
    nets = [[3], [7], [0, 1], [0, 1]]
    hg = Hypergraph.from_net_lists(nets, nvertices=8)
    cmap, coarse = coarsen_once(hg, as_generator(1))
    # 0 and 1 merge via their shared pair nets; both pair nets then
    # collapse to single-pin nets and vanish with the singletons.
    assert cmap[0] == cmap[1]
    assert coarse.nnets == 0


def test_coarsen_merges_identical_nets_costs_summed():
    nets = [[0, 1, 2], [0, 1, 2], [3, 4]]
    hg = Hypergraph.from_net_lists(
        nets, nvertices=6, ncosts=np.array([2, 5, 1])
    )
    # Identity contraction (no rng-dependent matching): merge only.
    from repro.hypergraph.coarsen import _contract

    coarse = _contract(hg, np.arange(6), 6)
    assert coarse.nnets == 2
    assert sorted(coarse.ncosts.tolist()) == [1, 7]
    assert coarse.ncosts.sum() == hg.ncosts.sum()


def test_coarsen_no_nets():
    hg = Hypergraph.from_net_lists([], nvertices=5)
    cmap, coarse = coarsen_once(hg, as_generator(2))
    assert coarse.nnets == 0
    assert coarse.total_weight()[0] == 5


# ----------------------------------------------------------------------
# FM: multi-constraint infeasible-projection repair
# ----------------------------------------------------------------------


def test_fm_repairs_multiconstraint_infeasible_start():
    """A projected partition violating both constraints must be repaired.

    Every vertex carries weight in both constraints (so each move
    strictly reduces the worst violation — moves that leave the worst
    violation unchanged are inadmissible by design, in the seed
    implementation and the rewrite alike).
    """
    n = 40
    w = np.ones((n, 2), dtype=np.int64)
    w[::2, 1] = 3  # skewed second constraint
    hg = Hypergraph.from_net_lists(
        [[i, (i + 1) % n] for i in range(n)], nvertices=n, vweights=w
    )
    part = np.zeros(n, dtype=np.int8)  # everything on side 0: infeasible
    t = hg.total_weight().astype(float)
    targets = (t / 2, t / 2)
    limits = np.stack([t / 2 * 1.1, t / 2 * 1.1])
    v0 = _violation(part_weights(hg, part).astype(float), limits)
    out, cut = fm_refine(hg, part, targets, 0.1, max_passes=8)
    v1 = _violation(part_weights(hg, out).astype(float), limits)
    assert v0 > 1.0
    assert v1 < v0  # violation strictly reduced
    assert v1 <= 1.0 + 1e-9  # and fully repaired on this easy instance
    assert cut == bisection_cut(hg, out)


@pytest.mark.parametrize("seed", [0, 7, 23, 101])
def test_fm_incremental_gains_consistent_cut(seed):
    """Across multiple passes the incrementally maintained gains must
    keep the reported cut equal to a from-scratch recount."""
    rng = as_generator(seed)
    hg = _random_hg(rng, n=40, nnets=60, max_pins=6, ncon=2)
    part = rng.integers(0, 2, 40).astype(np.int8)
    t = hg.total_weight().astype(float)
    refined, cut = fm_refine(hg, part, (t / 2, t / 2), 0.15, max_passes=6)
    assert cut == bisection_cut(hg, refined)


# ----------------------------------------------------------------------
# K-way polish: never increases connectivity-1
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 5, 17])
def test_kway_polish_never_increases_cost(seed):
    rng = as_generator(seed)
    hg = _random_hg(rng, n=60, nnets=90, max_pins=6)
    part = rng.integers(0, 6, 60)
    before = connectivity_minus_one(hg, part)
    polished = kway_greedy_refine(hg, part, 6, epsilon=0.5)
    assert connectivity_minus_one(hg, polished) <= before


def test_profile_records_kway_regression(medium_square):
    """The profile's before/after connectivity pins the polish invariant."""
    hg = column_net_model(medium_square)
    prof = PartitionProfile()
    part = partition_kway(hg, 8, PartitionConfig(seed=2), profile=prof)
    assert prof.cut_before_kway is not None
    assert prof.cut_after_kway <= prof.cut_before_kway
    assert prof.cut_after_kway == connectivity_minus_one(hg, part)


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------


def test_partition_profile_stages(medium_square):
    hg = column_net_model(medium_square)
    prof = PartitionProfile()
    partition_kway(hg, 8, PartitionConfig(seed=1), profile=prof)
    assert prof.total_s > 0
    assert prof.bisections >= 7  # K=8 recursive bisection tree
    for stage in ("coarsen_s", "initial_s", "refine_s", "kway_s"):
        assert getattr(prof, stage) >= 0
    d = prof.as_dict()
    assert set(d) >= {"coarsen_s", "initial_s", "refine_s", "kway_s", "total_s"}
    assert "connectivity-1" in prof.stage_table()


def test_engine_plan_profile(small_square):
    eng = PartitionEngine(small_square, seed=1)
    plan = eng.plan("1d-rowwise", 4, profile=True)
    assert plan.profile is not None
    assert plan.profile.total_s > 0
    # unprofiled plans stay unprofiled (separate memo entries)
    plain = eng.plan("1d-rowwise", 4)
    assert plain.profile is None
    assert np.array_equal(
        plain.partition.nnz_part, plan.partition.nnz_part
    )


def test_cli_partition_profile(capsys):
    from repro.cli import main

    rc = main(
        [
            "partition",
            "--matrix", "trdheim",
            "--scheme", "1d",
            "--k", "4",
            "--scale", "tiny",
            "--profile",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "coarsen" in out and "refine" in out and "kway-polish" in out
