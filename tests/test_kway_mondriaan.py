"""Direct K-way refinement and the Mondriaan ORB baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    PartitionConfig,
    column_net_model,
    connectivity_minus_one,
    imbalance,
    partition_kway,
)
from repro.hypergraph.kway import kway_greedy_refine
from repro.partition import partition_mondriaan
from repro.rng import as_generator
from repro.simulate import MachineModel, evaluate

CFG = PartitionConfig(seed=17, ninitial=2, fm_passes=2)


# ----------------------------------------------------------- K-way


def test_kway_refine_never_increases_cut(medium_square):
    hg = column_net_model(medium_square)
    rng = as_generator(5)
    part = rng.integers(0, 4, hg.nvertices)
    before = connectivity_minus_one(hg, part)
    refined = kway_greedy_refine(hg, part, 4, epsilon=0.5)
    after = connectivity_minus_one(hg, refined)
    assert after <= before


def test_kway_refine_respects_balance(medium_square):
    hg = column_net_model(medium_square)
    part = partition_kway(hg, 4, PartitionConfig(seed=2, kway_passes=0))
    li_before = imbalance(hg, part, 4)
    refined = kway_greedy_refine(hg, part, 4, epsilon=max(0.03, li_before))
    assert imbalance(hg, refined, 4) <= max(0.03, li_before) + 1e-9


def test_kway_refine_noop_cases():
    hg = Hypergraph.from_net_lists([], nvertices=3)
    part = np.array([0, 1, 2])
    assert np.array_equal(kway_greedy_refine(hg, part, 3), part)
    # single part
    hg2 = Hypergraph.from_net_lists([[0, 1]], nvertices=2)
    assert np.array_equal(
        kway_greedy_refine(hg2, np.zeros(2, dtype=np.int64), 1),
        np.zeros(2),
    )


def test_kway_polish_in_partition_kway(medium_square):
    hg = column_net_model(medium_square)
    raw = partition_kway(hg, 8, PartitionConfig(seed=3, kway_passes=0))
    polished = partition_kway(hg, 8, PartitionConfig(seed=3, kway_passes=2))
    assert connectivity_minus_one(hg, polished) <= connectivity_minus_one(hg, raw)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000))
def test_kway_refine_property(seed):
    rng = as_generator(seed)
    nets = [list(rng.choice(30, size=int(rng.integers(2, 6)), replace=False)) for _ in range(40)]
    hg = Hypergraph.from_net_lists(nets, nvertices=30)
    part = rng.integers(0, 4, 30)
    refined = kway_greedy_refine(hg, part, 4, epsilon=1.0)
    assert connectivity_minus_one(hg, refined) <= connectivity_minus_one(hg, part)
    assert refined.min() >= 0 and refined.max() < 4


# ----------------------------------------------------------- Mondriaan


def test_mondriaan_valid_partition(medium_square):
    p = partition_mondriaan(medium_square, 8, CFG)
    assert p.kind == "2D-orb"
    assert p.loads().sum() == medium_square.nnz
    assert set(np.unique(p.nnz_part)) <= set(range(8))


def test_mondriaan_balance(medium_square):
    p = partition_mondriaan(medium_square, 4, CFG)
    assert p.load_imbalance() < 0.30


def test_mondriaan_simulates(medium_square, rng):
    p = partition_mondriaan(medium_square, 8, CFG)
    q = evaluate(p, machine=MachineModel(alpha=10, beta=2, gamma=1))
    assert q.total_volume > 0
    assert q.speedup > 0


def test_mondriaan_beats_random_volume(medium_square, rng):
    from repro.partition.types import SpMVPartition, VectorPartition
    from repro.simulate import run_two_phase

    k = 8
    p = partition_mondriaan(medium_square, k, CFG)
    vol = evaluate(p).total_volume
    rnd = SpMVPartition(
        matrix=medium_square,
        nnz_part=rng.integers(0, k, medium_square.nnz),
        vectors=p.vectors,
        kind="2D",
    )
    rnd_vol = run_two_phase(rnd).ledger.total_volume()
    assert vol < rnd_vol


def test_mondriaan_k1(small_square):
    p = partition_mondriaan(small_square, 1, CFG)
    assert np.all(p.nnz_part == 0)


def test_mondriaan_handles_dense_row():
    from repro.generators import arrow_matrix

    a = arrow_matrix(100, nfull=1, seed=4)
    p = partition_mondriaan(a, 8, CFG)
    # ORB can split the full row across parts, unlike 1D
    assert p.load_imbalance() < 1.0
