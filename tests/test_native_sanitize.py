"""Sanitizer-built native kernels and the ctypes pre-call bounds guard.

The ASan runtime reads its options from the *exec-time* environment, so
the sanitized variant is exercised in child interpreters launched with
``ASAN_OPTIONS`` preconfigured (the in-process load path refuses with a
recorded reason instead — also pinned here).  Where the toolchain can
build but not load the sanitized library, the tests skip with the
recorded reason rather than fail.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.native.build as native_build
from repro.errors import ConfigError, VerificationError
from repro.native import (
    DEBUG_ENV,
    SANITIZE_ENV,
    debug_bounds_enabled,
    find_compiler,
    get_kernels,
    ops,
    sanitize_default,
)
from repro.native.build import _asan_preconfigured, _reset_native_state

HAVE_CC = find_compiler() is not None

_CHILD_ENV_BASE = {
    "ASAN_OPTIONS": native_build._ASAN_OPTIONS,
    SANITIZE_ENV: "1",
    "PYTHONPATH": "src",
}


def _run_child(code: str, *, preload_asan: bool = False) -> subprocess.CompletedProcess:
    """Run ``code`` in a fresh interpreter with ASan preconfigured.

    ``preload_asan=True`` additionally LD_PRELOADs the ASan runtime so
    its malloc interceptors wrap NumPy's allocations — required for
    redzone detection around buffers allocated outside instrumented
    code (a late-dlopen'd runtime cannot retrofit interception).
    """
    env = {**os.environ, **_CHILD_ENV_BASE}
    if preload_asan:
        env["LD_PRELOAD"] = _libasan()
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )


def _libasan() -> str | None:
    """Path to the compiler's ASan runtime .so, or None."""
    cc = find_compiler()
    if cc is None:
        return None
    try:
        out = subprocess.run(
            [cc, "-print-file-name=libasan.so"],
            capture_output=True,
            text=True,
            timeout=60,
        ).stdout.strip()
    except OSError:
        return None
    path = os.path.realpath(out)
    return path if out and os.path.exists(path) else None


def _skip_if_unloadable(proc: subprocess.CompletedProcess) -> None:
    if "SKIP-NATIVE:" in proc.stdout:
        reason = proc.stdout.split("SKIP-NATIVE:", 1)[1].strip()
        pytest.skip(f"sanitized kernels unavailable: {reason}")


_GOLDEN_CHILD = """
import numpy as np
from repro.native import build

lib = build.get_kernels()
if lib is None:
    print("SKIP-NATIVE:", build.native_status()["sanitize_reason"])
    raise SystemExit(0)
st = build.native_status()
assert st["variant"] == "sanitize", st

import scipy.sparse as sp
from repro.engine import PartitionEngine
from repro.sparse.coo import canonical_coo

a = canonical_coo(sp.random(60, 60, density=0.1, random_state=3, format="coo"))
eng = PartitionEngine(a, seed=11)
rng = np.random.default_rng(44)
for method in ("1d-rowwise", "s2d-heuristic"):
    plan = eng.compiled_plan(eng.plan(method, 3), verify=True)
    x = rng.standard_normal(plan.ncols)
    assert np.array_equal(
        plan.apply_y(x, backend="numpy"), plan.apply_y(x, backend="native")
    ), method
    xs = rng.standard_normal((plan.ncols, 4))
    assert np.array_equal(
        plan.apply_many(xs, backend="numpy"), plan.apply_many(xs, backend="native")
    ), method
eng.shutdown()
print("OK-SANITIZED-GOLDEN")
"""

_OOB_CHILD = """
import numpy as np
from repro.native import build, ops

lib = build.get_kernels()
if lib is None:
    print("SKIP-NATIVE:", build.native_status()["sanitize_reason"])
    raise SystemExit(0)
# One past the output buffer: lands in the ASan redzone, not in some
# unrelated mapping a huge offset might silently hit.
rows = np.array([0, 1, 4], dtype=np.int64)
vals = np.ones(3)
ops.scatter_sum(lib, rows, vals, nrows=4)  # debug guard off: raw C loop
print("UNREACHABLE")  # the sanitizer must abort before this line
"""


@pytest.mark.native
@pytest.mark.sanitize
def test_sanitized_kernels_pass_golden_applies():
    """The ASan/UBSan build variant is bit-identical to NumPy on full
    plan applies (single and s2D models, one and many right-hand
    sides), run in a child with the sanitizer runtime active."""
    proc = _run_child(_GOLDEN_CHILD)
    _skip_if_unloadable(proc)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK-SANITIZED-GOLDEN" in proc.stdout


@pytest.mark.native
@pytest.mark.sanitize
def test_sanitizer_catches_out_of_bounds_write():
    """Negative control: an intentionally out-of-bounds scatter through
    the raw C loop must make the sanitized child die loudly instead of
    corrupting memory — proof the instrumentation is actually live."""
    if _libasan() is None:
        pytest.skip("cannot locate the ASan runtime for LD_PRELOAD")
    proc = _run_child(_OOB_CHILD, preload_asan=True)
    _skip_if_unloadable(proc)
    assert proc.returncode != 0
    assert "AddressSanitizer" in proc.stderr, proc.stderr[-500:]
    assert "UNREACHABLE" not in proc.stdout


@pytest.mark.native
@pytest.mark.sanitize
def test_in_process_sanitize_load_refused_without_exec_env(monkeypatch):
    """Without ASAN_OPTIONS at interpreter startup the sanitized .so
    cannot be dlopen'd safely; get_kernels(sanitize=True) must record a
    reason and return None instead of aborting the process."""
    if _asan_preconfigured():
        pytest.skip("interpreter already started with ASan options")
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    _reset_native_state()
    try:
        lib = get_kernels(sanitize=True)
        reason = native_build.native_status()["sanitize_reason"]
        if lib is None and reason and "ASAN_OPTIONS" not in reason:
            pytest.skip(f"toolchain cannot build ASan: {reason}")
        assert lib is None
        assert "ASAN_OPTIONS" in reason
        # The std variant stays available alongside the refused one.
        assert get_kernels(sanitize=False) is not None
    finally:
        _reset_native_state()


# ----------------------------------------------------------------------
# Debug-mode ctypes bounds validator (pure Python, no compiler needed)
# ----------------------------------------------------------------------


def test_validate_rejects_out_of_bounds_and_size_mismatch():
    rows = np.array([0, 1, 3], dtype=np.int64)
    ops._validate("scatter_sum", 3, ("rows", rows, 4, 3))  # clean
    with pytest.raises(VerificationError, match="outside"):
        ops._validate("scatter_sum", 3, ("rows", rows, 3, 3))
    with pytest.raises(VerificationError, match="scatter_sum"):
        ops._validate("scatter_sum", 3, ("rows", rows, 4, 2))
    with pytest.raises(VerificationError):
        ops._validate("k", 1, ("idx", np.array([-1], dtype=np.int64), 4, 1))


@pytest.mark.native
def test_debug_guard_blocks_bad_indices_before_the_c_loop(monkeypatch):
    lib = get_kernels()
    if lib is None:
        pytest.skip("native kernels unavailable")
    monkeypatch.setenv(DEBUG_ENV, "1")
    assert debug_bounds_enabled()
    bad_rows = np.array([0, 1, 7], dtype=np.int64)
    with pytest.raises(VerificationError, match="unchecked C loop"):
        ops.scatter_sum(lib, bad_rows, np.ones(3), nrows=4)
    # Valid input still goes through and stays bit-identical.
    rows = np.array([0, 1, 3, 1], dtype=np.int64)
    vals = np.array([1.5, 2.0, -0.5, 4.25])
    got = ops.scatter_sum(lib, rows, vals, nrows=4)
    ref = np.bincount(rows, weights=vals, minlength=4)
    assert np.array_equal(got, ref)


def test_env_flag_parsing(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert sanitize_default() is False
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert sanitize_default() is True
    monkeypatch.setenv(SANITIZE_ENV, "yes")
    with pytest.raises(ConfigError, match=SANITIZE_ENV):
        sanitize_default()
    monkeypatch.setenv(DEBUG_ENV, "0")
    assert not debug_bounds_enabled()
