"""Error hierarchy and public API surface."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    ModelError,
    PartitionError,
    ReproError,
    SimulationError,
)


def test_error_hierarchy():
    for exc in (PartitionError, ModelError, SimulationError, ConfigError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_public_api_callables():
    # every partitioning entry point shares the (a, nparts, ...) shape
    import inspect

    for fn in (
        repro.partition_1d_rowwise,
        repro.partition_1d_columnwise,
        repro.partition_2d_finegrain,
        repro.partition_checkerboard,
        repro.partition_1d_boman,
        repro.partition_s2d_medium_grain,
    ):
        params = list(inspect.signature(fn).parameters)
        assert params[0] == "a"
        assert params[1] == "nparts"


def test_ledger_empty_phase_arrays():
    from repro.simulate import Ledger

    led = Ledger(3)
    assert led.sent_volume("nope").tolist() == [0, 0, 0]
    assert led.total_volume() == 0
    assert led.phase_names == []


def test_machine_model_defaults_sane():
    from repro.simulate import MachineModel

    m = MachineModel()
    assert m.alpha > m.beta > 0
    assert m.gamma > 0
