"""Model semantics: the cut of each hypergraph model equals the
communication volume of the scheme it encodes — the theorem each model
rests on, checked mechanically."""

import numpy as np

from repro.core import single_phase_comm_stats, two_phase_comm_stats
from repro.hypergraph import (
    PartitionConfig,
    column_net_model,
    connectivity_minus_one,
    fine_grain_model,
    partition_kway,
)
from repro.partition.oned import rowwise_from_y_part
from repro.partition.types import SpMVPartition, VectorPartition
from repro.rng import as_generator

CFG = PartitionConfig(seed=81, ninitial=2, fm_passes=2)


def test_column_net_cut_equals_rowwise_volume(medium_square):
    """Column-net connectivity-1 = expand volume of the 1D rowwise
    partition with the conformal (symmetric) x partition."""
    hg = column_net_model(medium_square)
    part = partition_kway(hg, 4, CFG)
    p = rowwise_from_y_part(medium_square, part, 4)
    vol = single_phase_comm_stats(p).total_volume
    cut = connectivity_minus_one(hg, part)
    # Symmetric x partition: column j's net pins are its consumer rows;
    # the owner of x_j (row j's part) may not appear among them, in
    # which case the consumers' count is the full lambda, not lambda-1.
    # The exact identity holds when x_j's owner holds a nonzero in
    # column j (e.g. full diagonal) -- which medium_square has.
    assert vol == cut


def test_column_net_cut_random_partition(medium_square):
    hg = column_net_model(medium_square)
    rng = as_generator(9)
    part = rng.integers(0, 5, hg.nvertices)
    p = rowwise_from_y_part(medium_square, part, 5)
    assert single_phase_comm_stats(p).total_volume == connectivity_minus_one(hg, part)


def test_fine_grain_cut_bounds_two_phase_volume(medium_square):
    """Fine-grain connectivity-1 ≥ expand+fold volume after consistent
    vector decoding (decoding to majority owners only removes traffic)."""
    model = fine_grain_model(medium_square)
    part = partition_kway(model.hypergraph, 4, CFG)
    nnz_part, x_part, y_part = model.decode(part, 4)
    p = SpMVPartition(
        matrix=medium_square,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=4),
        kind="2D",
    )
    expand, fold = two_phase_comm_stats(p)
    cut = connectivity_minus_one(model.hypergraph, part)
    assert expand.total_volume + fold.total_volume <= cut


def test_fine_grain_cut_exact_with_external_vectors(medium_square):
    """With vector owners forced to parts *not* holding any nonzero of
    the line, the fine-grain volume hits exactly cut + lines (each net
    pays its full λ)."""
    model = fine_grain_model(medium_square)
    rng = as_generator(10)
    part = rng.integers(0, 3, model.hypergraph.nvertices)
    # owners in a fresh part 3 that owns no nonzeros
    n = medium_square.shape[0]
    p = SpMVPartition(
        matrix=medium_square,
        nnz_part=part,
        vectors=VectorPartition(
            x_part=np.full(n, 3, dtype=np.int64),
            y_part=np.full(n, 3, dtype=np.int64),
            nparts=4,
        ),
        kind="2D",
    )
    expand, fold = two_phase_comm_stats(p)
    lam = connectivity_minus_one(model.hypergraph, part)
    nonempty_rows = np.unique(medium_square.row).size
    nonempty_cols = np.unique(medium_square.col).size
    assert (
        expand.total_volume + fold.total_volume
        == lam + nonempty_rows + nonempty_cols
    )
