"""Coarse DM decomposition: structure, König bound, optimality support."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dm.decomposition import (
    HORIZONTAL,
    SQUARE,
    VERTICAL,
    CoarseDM,
    coarse_dm,
    minimum_cover_size,
)


def test_square_identity():
    dm = coarse_dm(np.arange(4), np.arange(4))
    assert dm.matching_size == 4
    assert np.all(dm.row_label == SQUARE)
    assert np.all(dm.col_label == SQUARE)


def test_pure_horizontal():
    # 1 row, 3 columns: more cols than rows
    dm = coarse_dm(np.zeros(3, dtype=int), np.array([0, 1, 2]))
    assert dm.mhat_h() == 1
    assert dm.nhat_h() == 3
    assert dm.volume_reduction() == 2
    assert dm.v_rows.size == 0


def test_pure_vertical():
    dm = coarse_dm(np.array([0, 1, 2]), np.zeros(3, dtype=int))
    assert dm.v_rows.size == 3
    assert dm.v_cols.size == 1
    assert dm.h_rows.size == 0


def test_mixed_blocks():
    # H: row 0 with cols {0,1}; V: rows {1,2} sharing col 2
    rows = np.array([0, 0, 1, 2])
    cols = np.array([0, 1, 2, 2])
    dm = coarse_dm(rows, cols)
    assert set(dm.h_rows.tolist()) == {0}
    assert set(dm.h_cols.tolist()) == {0, 1}
    assert set(dm.v_rows.tolist()) == {1, 2}
    assert set(dm.v_cols.tolist()) == {2}


def test_global_ids_preserved():
    # indices far from 0 survive as global ids
    rows = np.array([100, 100])
    cols = np.array([7, 9])
    dm = coarse_dm(rows, cols)
    assert dm.row_ids.tolist() == [100]
    assert sorted(dm.col_ids.tolist()) == [7, 9]


def test_horizontal_mask_selects_h_columns():
    rows = np.array([0, 0, 1, 2])
    cols = np.array([0, 1, 2, 2])
    dm = coarse_dm(rows, cols)
    mask = dm.horizontal_nnz_mask(rows, cols)
    assert mask.tolist() == [True, True, False, False]


def _brute_min_cover(edges, row_ids, col_ids):
    """Exhaustive minimum row+column cover for tiny patterns."""
    best = len(edges)
    items = [("r", r) for r in row_ids] + [("c", c) for c in col_ids]
    for size in range(len(items) + 1):
        for combo in itertools.combinations(items, size):
            chosen_r = {v for t, v in combo if t == "r"}
            chosen_c = {v for t, v in combo if t == "c"}
            if all(r in chosen_r or c in chosen_c for r, c in edges):
                return size
    return best


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_dm_structural_invariants(data):
    nr = data.draw(st.integers(1, 8))
    nc = data.draw(st.integers(1, 8))
    nedges = data.draw(st.integers(1, 20))
    rows = np.array(
        data.draw(st.lists(st.integers(0, nr - 1), min_size=nedges, max_size=nedges))
    )
    cols = np.array(
        data.draw(st.lists(st.integers(0, nc - 1), min_size=nedges, max_size=nedges))
    )
    dm = coarse_dm(rows, cols)
    # Labels cover every nonempty row/col exactly once.
    assert dm.row_ids.size == np.unique(rows).size
    assert dm.col_ids.size == np.unique(cols).size
    # Nonzeros in H columns stay within H rows; V rows within V cols.
    h_cols = set(dm.h_cols.tolist())
    h_rows = set(dm.h_rows.tolist())
    v_rows = set(dm.v_rows.tolist())
    v_cols = set(dm.v_cols.tolist())
    for r, c in zip(rows.tolist(), cols.tolist()):
        if c in h_cols:
            assert r in h_rows
        if r in v_rows:
            assert c in v_cols
    # Horizontal has at least as many columns as rows; vertical dual.
    assert dm.nhat_h() >= dm.mhat_h()
    assert dm.v_rows.size >= dm.v_cols.size
    # Square block is square.
    assert dm.s_rows.size == dm.s_cols.size
    # König: matching = m̂(H) + m̂(S) + n̂(V).
    assert dm.matching_size == dm.mhat_h() + dm.s_rows.size + dm.v_cols.size


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_minimum_cover_equals_brute_force(data):
    nr = data.draw(st.integers(1, 5))
    nc = data.draw(st.integers(1, 5))
    nedges = data.draw(st.integers(1, 10))
    rows = data.draw(st.lists(st.integers(0, nr - 1), min_size=nedges, max_size=nedges))
    cols = data.draw(st.lists(st.integers(0, nc - 1), min_size=nedges, max_size=nedges))
    edges = list(set(zip(rows, cols)))
    got = minimum_cover_size(np.array([e[0] for e in edges]), np.array([e[1] for e in edges]))
    want = _brute_min_cover(edges, sorted({r for r, _ in edges}), sorted({c for _, c in edges}))
    assert got == want


def test_label_constants_exported():
    assert (HORIZONTAL, SQUARE, VERTICAL) == (0, 1, 2)
    assert isinstance(coarse_dm(np.array([0]), np.array([0])), CoarseDM)
