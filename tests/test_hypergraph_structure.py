"""Hypergraph data structure and model construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ModelError
from repro.hypergraph import Hypergraph, column_net_model, fine_grain_model, row_net_model
from repro.hypergraph.models import medium_grain_model, medium_grain_split
from repro.sparse.coo import canonical_coo


def test_from_net_lists():
    hg = Hypergraph.from_net_lists([[0, 1], [1, 2], [0, 2, 3]], nvertices=4)
    assert hg.nvertices == 4
    assert hg.nnets == 3
    assert hg.npins == 7
    assert hg.net_pins(2).tolist() == [0, 2, 3]


def test_vertex_to_net_transpose():
    hg = Hypergraph.from_net_lists([[0, 1], [1, 2]], nvertices=3)
    assert sorted(hg.vertex_nets(1).tolist()) == [0, 1]
    assert hg.vertex_nets(0).tolist() == [0]


def test_net_sizes_and_total_weight():
    hg = Hypergraph.from_net_lists([[0], [0, 1, 2]], nvertices=3)
    assert hg.net_sizes().tolist() == [1, 3]
    assert hg.total_weight().tolist() == [3]


def test_multiconstraint_weights():
    w = np.array([[1, 10], [2, 20]])
    hg = Hypergraph.from_net_lists([[0, 1]], nvertices=2, vweights=w)
    assert hg.nconstraints == 2
    assert hg.total_weight().tolist() == [3, 30]


def test_validation_rejects_bad_pins():
    with pytest.raises(ModelError):
        Hypergraph(
            xpins=np.array([0, 1]),
            pins=np.array([5]),
            vweights=np.ones((2, 1)),
            ncosts=np.ones(1),
        )


def test_validation_rejects_negative_weights():
    with pytest.raises(ModelError):
        Hypergraph.from_net_lists([[0]], nvertices=1, vweights=np.array([-1]))


def test_column_net_model_shape(small_square):
    hg = column_net_model(small_square)
    assert hg.nvertices == small_square.shape[0]
    assert hg.nnets == small_square.shape[1]
    assert hg.npins == small_square.nnz
    # vertex weight = nnz in the row
    row_counts = np.bincount(small_square.row, minlength=small_square.shape[0])
    assert np.array_equal(hg.vweights[:, 0], row_counts)


def test_row_net_is_transpose_of_column_net(small_rect):
    hg_r = row_net_model(small_rect)
    hg_c = column_net_model(canonical_coo(small_rect.T))
    assert hg_r.nvertices == hg_c.nvertices
    assert hg_r.nnets == hg_c.nnets
    assert hg_r.npins == hg_c.npins


def test_fine_grain_model(small_square):
    model = fine_grain_model(small_square)
    hg = model.hypergraph
    assert hg.nvertices == small_square.nnz
    assert hg.nnets == sum(small_square.shape)
    # every vertex pins exactly one row net and one column net
    assert hg.npins == 2 * small_square.nnz


def test_fine_grain_empty_matrix_rejected():
    with pytest.raises(ModelError):
        fine_grain_model(sp.coo_matrix((3, 3)))


def test_fine_grain_decode_consistency(small_square):
    model = fine_grain_model(small_square)
    part = np.arange(model.hypergraph.nvertices) % 3
    nnz_part, x_part, y_part = model.decode(part, 3)
    assert np.array_equal(nnz_part, part)
    assert x_part.size == small_square.shape[1]
    assert y_part.size == small_square.shape[0]
    assert x_part.max() < 3 and y_part.max() < 3


def test_medium_grain_split_prefers_shorter_line():
    # col 0 has 3 nonzeros; row 2 has 1 -> (2, 0) goes with the row side
    a = sp.coo_matrix((np.ones(3), ([0, 1, 2], [0, 0, 0])), shape=(3, 2))
    to_row = medium_grain_split(a)
    assert to_row.tolist() == [True, True, True]
    b = sp.coo_matrix((np.ones(3), ([0, 0, 0], [0, 1, 2])), shape=(2, 3))
    # row 0 has 3 nonzeros, each col has 1 -> all column side
    assert medium_grain_split(b).tolist() == [False, False, False]


def test_medium_grain_model_square_amalgamated(small_square):
    model = medium_grain_model(small_square)
    assert model.amalgamated
    assert model.hypergraph.nvertices == small_square.shape[0]
    # total vertex weight = nnz (every nonzero weighted once)
    assert model.hypergraph.total_weight()[0] == small_square.nnz


def test_medium_grain_model_rectangular(small_rect):
    model = medium_grain_model(small_rect)
    assert not model.amalgamated
    assert model.hypergraph.nvertices == sum(small_rect.shape)


def test_medium_grain_decode_is_s2d(small_square, rng):
    model = medium_grain_model(small_square)
    part = rng.integers(0, 4, model.hypergraph.nvertices)
    nnz_part, x_part, y_part = model.decode(part)
    rp = y_part[small_square.row]
    cp = x_part[small_square.col]
    assert np.all((nnz_part == rp) | (nnz_part == cp))
