"""Native C kernel backend: cross-backend bit-identity and dispatch.

The native backend's whole contract is "same bits, less time": every C
accumulation iterates in the exact element order of the NumPy
``bincount``/``add.at`` formulation it replaces, so ``y``, ledgers and
flops must be *bit-identical* across backends on all golden instances
and all three execution models — through ``apply``/``apply_many``, the
serial shard replay and the shared-memory worker pool.  The dispatch
layer is pinned separately: explicit/env/auto resolution, the silent
no-compiler fallback with its recorded reason, build-cache reuse, the
solver/engine threading and the CLI surface.
"""

import numpy as np
import pytest

import repro.native.build as native_build
from repro.cli import main
from repro.engine import PartitionEngine
from repro.errors import ConfigError
from repro.native import (
    find_compiler,
    get_kernels,
    native_status,
    ops,
    resolve_backend,
    set_default_backend,
)
from repro.native.build import CACHE_ENV, FLAG_ENV, _reset_native_state
from repro.runtime import apply_shards_serial, compile_plan, shard_plan
from repro.simulate.report import run_partition
from repro.solvers import power_iteration

from tests.test_runtime import CFG, partitioned_instances  # noqa: F401

HAVE_CC = find_compiler() is not None


@pytest.fixture
def clean_native_state():
    """Reset the process-global build state around a dispatch test."""
    _reset_native_state()
    yield
    _reset_native_state()


# ----------------------------------------------------------------------
# Cross-backend golden bit-identity
# ----------------------------------------------------------------------


@pytest.mark.native
def test_apply_bit_identical_across_backends(partitioned_instances):  # noqa: F811
    """Native y, ledger and flops equal NumPy's and the executor's,
    bitwise, on every golden instance (covers all three models)."""
    rng = np.random.default_rng(202)
    for p, _mode in partitioned_instances:
        plan = compile_plan(p)
        x = rng.standard_normal(plan.ncols)
        y_np = plan.apply_y(x, backend="numpy")
        y_nat = plan.apply_y(x, backend="native")
        assert np.array_equal(y_np, y_nat)
        ref = run_partition(p, x)
        run = plan.apply(x, backend="native")
        assert np.array_equal(run.y, ref.y)
        assert run.ledger.as_dict() == ref.ledger.as_dict()


@pytest.mark.native
def test_apply_many_bit_identical_across_backends(partitioned_instances):  # noqa: F811
    rng = np.random.default_rng(303)
    for p, _mode in partitioned_instances:
        plan = compile_plan(p)
        xs = rng.standard_normal((plan.ncols, 5))
        ys_np = plan.apply_many(xs, backend="numpy")
        ys_nat = plan.apply_many(xs, backend="native")
        assert np.array_equal(ys_np, ys_nat)
        # Each column must equal the single-RHS apply on both backends.
        for j in range(5):
            col = np.ascontiguousarray(xs[:, j])
            assert np.array_equal(ys_np[:, j], plan.apply_y(col, backend="numpy"))
            assert np.array_equal(ys_nat[:, j], plan.apply_y(col, backend="native"))


@pytest.mark.native
def test_shard_replay_bit_identical_across_backends(partitioned_instances):  # noqa: F811
    rng = np.random.default_rng(404)
    for p, _mode in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        x = rng.standard_normal(plan.ncols)
        y_np = apply_shards_serial(plan, shards, x, backend="numpy")
        y_nat = apply_shards_serial(plan, shards, x, backend="native")
        assert np.array_equal(y_np, y_nat)
        assert np.array_equal(y_nat, plan.apply_y(x, backend="numpy"))


@pytest.mark.native
@pytest.mark.parallel
def test_pool_bit_identical_across_backends(partitioned_instances):  # noqa: F811
    from repro.runtime import ParallelExecutor

    rng = np.random.default_rng(505)
    for p, _mode in partitioned_instances:
        plan = compile_plan(p)
        shards = shard_plan(p, plan)
        x = rng.standard_normal(plan.ncols)
        want = plan.apply_y(x, backend="numpy")
        with ParallelExecutor(plan, shards, jobs=2, backend="native") as ex:
            assert ex.backend == "native"
            got = ex.apply_y(x)
            ex.reconcile()
        assert np.array_equal(got, want)


@pytest.mark.native
def test_ops_match_numpy_formulations():
    """Each ops wrapper equals its documented NumPy one-liner bitwise."""
    lib = get_kernels()
    rng = np.random.default_rng(606)
    n, nrows, ncols = 500, 37, 41
    rows = rng.integers(0, nrows, size=n)
    cols = rng.integers(0, ncols, size=n)
    vals = rng.standard_normal(n)
    x = rng.standard_normal(ncols)
    want = np.bincount(rows, weights=vals * x[cols], minlength=nrows)
    assert np.array_equal(ops.scatter_products(lib, rows, vals, cols, x, nrows), want)
    w = rng.standard_normal(n)
    assert np.array_equal(
        ops.scatter_sum(lib, rows, w, nrows),
        np.bincount(rows, weights=w, minlength=nrows),
    )
    xs = rng.standard_normal((ncols, 3))
    many = ops.scatter_products_many(lib, rows, vals, cols, xs, nrows)
    for j in range(3):
        assert np.array_equal(
            many[:, j],
            np.bincount(rows, weights=vals * xs[cols, j], minlength=nrows),
        )


# ----------------------------------------------------------------------
# Dispatch: env flag, overrides, no-compiler fallback
# ----------------------------------------------------------------------


def test_explicit_numpy_never_touches_the_compiler(clean_native_state, monkeypatch):
    calls = []
    monkeypatch.setattr(native_build, "find_compiler", lambda: calls.append(1))
    assert resolve_backend("numpy") == "numpy"
    assert calls == []


def test_env_flag_zero_defaults_to_numpy(clean_native_state, monkeypatch):
    monkeypatch.setenv(FLAG_ENV, "0")
    assert resolve_backend(None) == "numpy"
    # Explicit kwargs still win over the environment default.
    if HAVE_CC:
        assert resolve_backend("native") == "native"


def test_env_flag_rejects_garbage(clean_native_state, monkeypatch):
    monkeypatch.setenv(FLAG_ENV, "yes")
    with pytest.raises(ConfigError, match="REPRO_NATIVE"):
        resolve_backend(None)


def test_unknown_backend_rejected(clean_native_state):
    with pytest.raises(ConfigError, match="unknown backend"):
        resolve_backend("fortran")
    with pytest.raises(ConfigError, match="unknown backend"):
        set_default_backend("fortran")


def test_default_override_beats_env(clean_native_state, monkeypatch):
    monkeypatch.setenv(FLAG_ENV, "1")
    set_default_backend("numpy")
    assert resolve_backend(None) == "numpy"
    set_default_backend(None)
    assert resolve_backend("numpy") == "numpy"


def test_no_compiler_auto_falls_back_with_reason(clean_native_state, monkeypatch):
    """A compiler-less host silently degrades to NumPy — but records why
    — and an explicit native request is a clean ConfigError."""
    monkeypatch.setattr(native_build, "find_compiler", lambda: None)
    assert resolve_backend("auto") == "numpy"
    assert resolve_backend(None) == "numpy"
    status = native_status()
    assert status["available"] is False
    assert status["so_path"] is None
    assert "no C compiler" in status["reason"]
    with pytest.raises(ConfigError, match="native backend unavailable"):
        resolve_backend("native")


def test_no_compiler_golden_path_still_works(
    clean_native_state, monkeypatch, partitioned_instances  # noqa: F811
):
    """The full apply path under auto on a compiler-less host: NumPy
    kernels, bit-identical to the executor, no error surfaced."""
    monkeypatch.setattr(native_build, "find_compiler", lambda: None)
    p, _mode = partitioned_instances[1]
    plan = compile_plan(p)
    x = np.random.default_rng(7).standard_normal(plan.ncols)
    assert np.array_equal(plan.apply_y(x), run_partition(p, x).y)


def test_failed_build_attempt_is_cached(clean_native_state, monkeypatch):
    calls = []

    def no_cc():
        calls.append(1)
        return None

    monkeypatch.setattr(native_build, "find_compiler", no_cc)
    assert get_kernels() is None
    assert get_kernels() is None
    assert calls == [1]  # one probe, then the cached failure


# ----------------------------------------------------------------------
# Build cache
# ----------------------------------------------------------------------


@pytest.mark.native
def test_build_cache_reused_across_loads(clean_native_state, monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    lib = get_kernels()
    assert lib is not None and lib.path.parent == tmp_path
    assert native_status()["built_this_process"] is True
    _reset_native_state()
    lib2 = get_kernels()
    assert lib2 is not None and lib2.path == lib.path
    assert native_status()["built_this_process"] is False  # cache hit


@pytest.mark.native
def test_corrupt_cache_entry_evicted_and_rebuilt(
    clean_native_state, monkeypatch, tmp_path
):
    # Plant the corrupt entry at the exact expected cache path *before*
    # any load in this state (overwriting an already-mmapped .so would
    # be undefined behaviour, not an eviction case).
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    so = tmp_path / f"kernels-{native_build._build_key(find_compiler())}.so"
    so.write_bytes(b"not a shared object")
    lib = get_kernels()
    assert lib is not None and lib.path == so
    assert native_status()["built_this_process"] is True


# ----------------------------------------------------------------------
# Solver / engine threading
# ----------------------------------------------------------------------


@pytest.mark.native
def test_solver_backend_bit_identical(partitioned_instances):  # noqa: F811
    p, _mode = partitioned_instances[1]  # square s2d instance
    res_np = power_iteration(p, iters=8, backend="numpy")
    res_nat = power_iteration(p, iters=8, backend="native")
    assert np.array_equal(res_np.x, res_nat.x)
    assert res_np.history == res_nat.history
    assert res_np.comm_words == res_nat.comm_words


@pytest.mark.native
@pytest.mark.parallel
def test_engine_pools_keyed_by_backend(medium_square):
    eng = PartitionEngine(medium_square, seed=23)
    plan = eng.plan("s2d", 3, config=CFG)
    try:
        ex_np = eng.parallel_executor(plan, jobs=2, backend="numpy")
        ex_nat = eng.parallel_executor(plan, jobs=2, backend="native")
        assert ex_np is not ex_nat
        assert ex_np.backend == "numpy" and ex_nat.backend == "native"
        # auto resolves before keying, so it shares the native pool.
        assert eng.parallel_executor(plan, jobs=2, backend="auto") is ex_nat
        x = np.random.default_rng(3).standard_normal(ex_np.plan.ncols)
        assert np.array_equal(ex_np.apply_y(x), ex_nat.apply_y(x))
    finally:
        eng.shutdown()


@pytest.mark.native
@pytest.mark.parallel
def test_engine_default_backend_threads_through(medium_square):
    eng = PartitionEngine(medium_square, seed=23, backend="numpy")
    plan = eng.plan("s2d", 3, config=CFG)
    try:
        assert eng.parallel_executor(plan, jobs=2).backend == "numpy"
    finally:
        eng.shutdown()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_cli_native_info(capsys):
    assert main(["native-info"]) == 0
    out = capsys.readouterr().out
    assert "available=" in out
    assert "cache_dir=" in out
    assert "default_backend=" in out


@pytest.mark.native
def test_cli_solve_backend_native(capsys):
    rc = main(
        [
            "solve", "--matrix", "trdheim", "--scheme", "s2d",
            "--k", "3", "--scale", "tiny", "--backend", "native",
        ]
    )
    assert rc == 0
    assert "backend=native" in capsys.readouterr().out


def test_cli_solve_backend_native_unavailable(clean_native_state, monkeypatch):
    monkeypatch.setattr(native_build, "find_compiler", lambda: None)
    with pytest.raises(SystemExit, match="native backend unavailable"):
        main(
            [
                "solve", "--matrix", "trdheim", "--scheme", "s2d",
                "--k", "3", "--scale", "tiny", "--backend", "native",
            ]
        )


def test_cli_table_backend_flag(clean_native_state, capsys):
    """`table --backend numpy` runs end to end with the process-wide
    override in force (the fixture clears it afterwards)."""
    rc = main(["table", "--id", "2", "--scale", "tiny", "--backend", "numpy"])
    assert rc == 0
    assert resolve_backend(None) == "numpy"  # the override is active
    assert capsys.readouterr().out
