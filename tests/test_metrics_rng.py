"""Metric helpers and deterministic RNG handling."""

import numpy as np
import pytest

from repro.metrics import format_li, format_table, geomean, load_imbalance, normalized
from repro.rng import DEFAULT_SEED, as_generator, spawn


def test_geomean_basic():
    assert geomean([1, 100]) == pytest.approx(10.0)
    assert geomean([2, 2, 2]) == pytest.approx(2.0)


def test_geomean_ignores_nonpositive():
    assert geomean([0.0, 4.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    assert geomean([0.0]) == 0.0


def test_load_imbalance():
    assert load_imbalance(np.array([10, 10])) == 0.0
    assert load_imbalance(np.array([30, 10])) == pytest.approx(0.5)


def test_load_imbalance_empty_is_zero():
    """Regression: max() of an empty load vector used to crash."""
    assert load_imbalance(np.array([])) == 0.0
    assert load_imbalance(np.array([], dtype=np.int64)) == 0.0


def test_load_imbalance_all_zero_loads():
    assert load_imbalance(np.zeros(4)) == 0.0


def test_format_li_paper_style():
    assert format_li(0.129) == "12.9%"
    assert format_li(1.2) == "1.2*"
    assert format_li(0.0) == "0.0%"


def test_normalized():
    assert normalized(5, 10) == 0.5
    assert normalized(5, 0) == 0


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "333" in lines[4]
    # all rows same width
    assert len(set(len(l) for l in lines[1:])) == 1


def test_as_generator_default_seed():
    g1 = as_generator(None)
    g2 = as_generator(DEFAULT_SEED)
    assert g1.integers(0, 1000) == g2.integers(0, 1000)


def test_as_generator_passthrough():
    g = np.random.default_rng(5)
    assert as_generator(g) is g


def test_spawn_independent_streams():
    g = as_generator(1)
    children = spawn(g, 3)
    vals = [c.integers(0, 10**9) for c in children]
    assert len(set(vals)) == 3


def test_spawn_deterministic():
    a = [c.integers(0, 100) for c in spawn(as_generator(2), 4)]
    b = [c.integers(0, 100) for c in spawn(as_generator(2), 4)]
    assert a == b
