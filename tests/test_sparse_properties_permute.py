"""Matrix properties (Tables I/IV support) and Figure-1 style rendering."""

import numpy as np
import scipy.sparse as sp

from repro.sparse.permute import block_permutation, spy_string
from repro.sparse.properties import matrix_properties


def test_properties_basic():
    a = sp.coo_matrix(
        (np.ones(5), ([0, 0, 0, 1, 2], [0, 1, 2, 1, 2])), shape=(3, 3)
    )
    p = matrix_properties(a, name="t")
    assert p.nnz == 5
    assert p.davg == 5 / 3
    assert p.dmax == 3
    assert p.dmax_col == 2
    assert p.name == "t"
    assert p.n == 3


def test_properties_skew():
    a = sp.coo_matrix((np.ones(4), ([0, 0, 0, 1], [0, 1, 2, 0])), shape=(4, 3))
    p = matrix_properties(a)
    assert p.row_skew == p.dmax / p.davg


def test_table_row_contains_fields():
    row = matrix_properties(sp.eye(7), name="seven").table_row()
    assert "seven" in row and "7" in row


def test_block_permutation_groups_parts():
    part = np.array([2, 0, 1, 0, 2])
    perm = block_permutation(part)
    assert part[perm].tolist() == [0, 0, 1, 2, 2]
    # stability: first part-0 index (1) precedes the second (3)
    assert perm.tolist().index(1) < perm.tolist().index(3)


def test_spy_string_digits_and_separators():
    a = sp.coo_matrix((np.ones(3), ([0, 1, 2], [0, 1, 2])), shape=(3, 3))
    s = spy_string(
        a,
        nnz_part=np.array([0, 1, 2]),
        x_part=np.array([0, 1, 2]),
        y_part=np.array([0, 1, 2]),
    )
    assert "1" in s and "2" in s and "3" in s
    assert "|" in s and "-" in s


def test_spy_string_without_vector_parts():
    a = sp.eye(2)
    s = spy_string(a, nnz_part=np.array([0, 0]))
    assert s.splitlines()[0].startswith("1")
