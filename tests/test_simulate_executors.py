"""The three SpMV executors: numerics, locality enforcement, phases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import scipy.sparse as sp

from repro.errors import SimulationError
from repro.hypergraph import PartitionConfig
from repro.partition import (
    partition_1d_boman,
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_checkerboard,
)
from repro.partition.types import SpMVPartition, VectorPartition
from repro.simulate import run_s2d_bounded, run_single_phase, run_two_phase
from tests.conftest import random_s2d_partition

CFG = PartitionConfig(seed=31, ninitial=2, fm_passes=2)


def test_single_phase_computes_product(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    x = rng.random(small_square.shape[1])
    run = run_single_phase(p, x)
    assert np.allclose(run.y, small_square @ x)


def test_single_phase_default_x(small_square, rng):
    p = random_s2d_partition(rng, small_square, 3)
    run = run_single_phase(p)
    assert run.y.shape == (small_square.shape[0],)
    assert run.nnz == small_square.nnz


def test_single_phase_1d_has_empty_precompute(medium_square):
    p = partition_1d_rowwise(medium_square, 4, CFG)
    run = run_single_phase(p)
    pre = next(ph for ph in run.phases if ph.name == "precompute")
    assert pre.flops.sum() == 0  # 1D rowwise: nothing to precompute


def test_single_phase_flop_conservation(small_square, rng):
    p = random_s2d_partition(rng, small_square, 4)
    run = run_single_phase(p)
    flops = run.total_flops()
    # 2 flops per nonzero + 1 per received partial word
    recv_partials = flops.sum() - 2 * small_square.nnz
    assert recv_partials >= 0


def test_single_phase_rejects_wrong_x_size(small_square, rng):
    p = random_s2d_partition(rng, small_square, 2)
    with pytest.raises(SimulationError, match="size"):
        run_single_phase(p, np.ones(7))


def test_single_phase_rejects_inadmissible(small_square):
    m = small_square
    p = SpMVPartition(
        matrix=m,
        nnz_part=np.ones(m.nnz, dtype=np.int64),
        vectors=VectorPartition(
            x_part=np.zeros(30, dtype=np.int64),
            y_part=np.zeros(30, dtype=np.int64),
            nparts=2,
        ),
    )
    with pytest.raises(Exception):
        run_single_phase(p)


def test_two_phase_computes_product(medium_square, rng):
    p = partition_2d_finegrain(medium_square, 4, CFG)
    x = rng.random(medium_square.shape[1])
    run = run_two_phase(p, x)
    assert np.allclose(run.y, medium_square @ x)


def test_two_phase_runs_any_partition(small_square, rng):
    # completely arbitrary nonzero owners (not s2D-admissible)
    m = small_square
    k = 4
    nnz_part = rng.integers(0, k, m.nnz)
    x_part = rng.integers(0, k, m.shape[1])
    y_part = rng.integers(0, k, m.shape[0])
    p = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=k),
        kind="2D",
    )
    run = run_two_phase(p)
    assert np.allclose(run.y, m @ run.meta.get("x", np.arange(1, 31) / 30))


def test_two_phase_has_two_comm_phases(medium_square):
    p = partition_2d_finegrain(medium_square, 4, CFG)
    run = run_two_phase(p)
    assert "expand" in run.ledger.phase_names or run.ledger.total_msgs() == 0
    names = [ph.name for ph in run.phases]
    assert names == ["expand", "compute", "fold", "aggregate"]


def test_single_phase_has_one_comm_phase(medium_square):
    p = partition_1d_rowwise(medium_square, 4, CFG)
    run = run_single_phase(p)
    assert run.ledger.phase_names == ["expand-and-fold"]


def test_bounded_computes_product(medium_square, rng):
    from repro.core import make_s2d_bounded, s2d_heuristic

    p1 = partition_1d_rowwise(medium_square, 8, CFG)
    s = s2d_heuristic(medium_square, x_part=p1.vectors, nparts=8)
    b = make_s2d_bounded(s)
    x = rng.random(medium_square.shape[1])
    run = run_s2d_bounded(b, x)
    assert np.allclose(run.y, medium_square @ x)


def test_checkerboard_and_boman_verify(medium_square, rng):
    x = rng.random(medium_square.shape[1])
    for builder in (partition_checkerboard, partition_1d_boman):
        p = builder(medium_square, 8, CFG)
        run = run_two_phase(p, x)
        assert np.allclose(run.y, medium_square @ x)


def test_bounded_rejects_wrong_x_size(medium_square, rng):
    """Seed bug: run_s2d_bounded accepted a wrongly-sized x silently."""
    p = random_s2d_partition(rng, medium_square, 4)
    b = SpMVPartition(
        matrix=p.matrix, nnz_part=p.nnz_part, vectors=p.vectors, kind="s2D-b",
        meta={"mesh": (2, 2)},
    )
    with pytest.raises(SimulationError, match="size"):
        run_s2d_bounded(b, np.ones(7))


def test_bounded_rejects_inadmissible_classification(small_square):
    """Seed bug: an inadmissible partition could silently drop nonzeros
    and only fail (opaquely) at the final allclose."""
    m = small_square
    p = SpMVPartition(
        matrix=m,
        nnz_part=np.ones(m.nnz, dtype=np.int64),
        vectors=VectorPartition(
            x_part=np.zeros(30, dtype=np.int64),
            y_part=np.zeros(30, dtype=np.int64),
            nparts=2,
        ),
        kind="s2D-b",
        meta={"mesh": (1, 2)},
    )
    with pytest.raises(Exception):  # PartitionError or SimulationError
        run_s2d_bounded(p)


def test_bounded_matches_single_phase_volume_lower_bound(medium_square, rng):
    """Routing can only add words (two-hop items cost two), never lose any."""
    p = random_s2d_partition(rng, medium_square, 8)
    from repro.core import make_s2d_bounded

    v1 = run_single_phase(p).ledger.total_volume()
    vb = run_s2d_bounded(make_s2d_bounded(p)).ledger.total_volume()
    assert vb >= v1


def test_profiling_collects_phase_timings(medium_square, rng):
    from repro.simulate import profiling

    p = random_s2d_partition(rng, medium_square, 4)
    with profiling.collect() as prof:
        run_single_phase(p)
        run_two_phase(p)
    assert prof.runs == 2
    assert {"precompute", "exchange", "compute", "verify", "expand", "fold"} <= set(
        prof.stages
    )
    assert prof.total_s > 0
    assert "total" in prof.stage_table()
    assert prof.as_dict()["runs"] == 2


def test_profiling_inactive_is_noop(medium_square, rng):
    from repro.simulate import profiling

    assert profiling.active_profile() is None
    p = random_s2d_partition(rng, medium_square, 4)
    run_single_phase(p)  # must not fail without a collector
    assert profiling.active_profile() is None


def test_identity_matrix_no_communication():
    m = sp.eye(8, format="coo")
    y_part = np.arange(8) % 2
    p = SpMVPartition(
        matrix=m,
        nnz_part=y_part.copy(),
        vectors=VectorPartition(x_part=y_part.copy(), y_part=y_part, nparts=2),
        kind="1D",
    )
    run = run_single_phase(p)
    assert run.ledger.total_msgs() == 0
    assert np.allclose(run.y, np.arange(1, 9) / 8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), k=st.sampled_from([2, 4, 6]))
def test_all_executors_agree(seed, k):
    """Single-phase, two-phase and routed runs all produce A @ x."""
    rng = np.random.default_rng(seed)
    a = sp.random(20, 20, density=0.2, random_state=seed) + sp.eye(20)
    p = random_s2d_partition(rng, a, k)
    x = rng.random(20)
    y1 = run_single_phase(p, x).y
    y2 = run_two_phase(p, x).y
    from repro.core import make_s2d_bounded

    y3 = run_s2d_bounded(make_s2d_bounded(p), x).y
    ref = p.matrix @ x
    assert np.allclose(y1, ref)
    assert np.allclose(y2, ref)
    assert np.allclose(y3, ref)
