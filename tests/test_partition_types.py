"""Partition dataclasses: validation and predicates."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.partition.types import SpMVPartition, VectorPartition


def _vectors(k=2):
    return VectorPartition(
        x_part=np.array([0, 1, 0]), y_part=np.array([0, 1, 1]), nparts=k
    )


def _matrix():
    return sp.coo_matrix(
        (np.ones(4), ([0, 1, 2, 2], [0, 1, 2, 0])), shape=(3, 3)
    )


def test_vector_partition_sizes():
    v = _vectors()
    assert v.n == 3 and v.m == 3
    assert not v.is_symmetric()


def test_vector_partition_symmetric():
    part = np.array([0, 1, 1])
    v = VectorPartition(x_part=part, y_part=part.copy(), nparts=2)
    assert v.is_symmetric()


def test_vector_partition_rejects_bad_ids():
    with pytest.raises(PartitionError):
        VectorPartition(x_part=np.array([3]), y_part=np.array([0]), nparts=2)


def test_spmv_partition_validates_sizes():
    with pytest.raises(PartitionError, match="nnz_part"):
        SpMVPartition(matrix=_matrix(), nnz_part=np.array([0]), vectors=_vectors())


def test_spmv_partition_validates_vector_shape():
    vec = VectorPartition(x_part=np.array([0, 1]), y_part=np.array([0, 1]), nparts=2)
    with pytest.raises(PartitionError, match="shape"):
        SpMVPartition(matrix=_matrix(), nnz_part=np.zeros(4, dtype=int), vectors=vec)


def test_loads_and_imbalance():
    p = SpMVPartition(
        matrix=_matrix(), nnz_part=np.array([0, 0, 0, 1]), vectors=_vectors()
    )
    assert p.loads().tolist() == [3, 1]
    assert p.load_imbalance() == pytest.approx(3 / 2 - 1)


def test_s2d_admissibility_positive():
    # each nonzero with its row owner -> admissible (it's 1D rowwise)
    m = _matrix()
    y = np.array([0, 1, 1])
    p = SpMVPartition(
        matrix=m,
        nnz_part=y[m.row],
        vectors=VectorPartition(x_part=np.array([1, 0, 0]), y_part=y, nparts=2),
    )
    assert p.is_s2d_admissible()
    assert p.is_1d_rowwise()
    p.validate_s2d()


def test_s2d_admissibility_negative():
    m = _matrix()
    # nonzero (0,0): y owner 0, x owner 0 -> assigning part 1 violates
    p = SpMVPartition(
        matrix=m,
        nnz_part=np.array([1, 1, 1, 1]),
        vectors=VectorPartition(
            x_part=np.array([0, 1, 1]), y_part=np.array([0, 1, 1]), nparts=2
        ),
    )
    assert not p.is_s2d_admissible()
    with pytest.raises(PartitionError, match="violations"):
        p.validate_s2d()


def test_is_1d_columnwise():
    m = _matrix()
    x = np.array([0, 1, 0])
    p = SpMVPartition(
        matrix=m,
        nnz_part=x[m.col],
        vectors=VectorPartition(x_part=x, y_part=np.array([0, 1, 0]), nparts=2),
    )
    assert p.is_1d_columnwise()


def test_block_structure_matches_partition(small_square, rng):
    from tests.conftest import random_s2d_partition

    p = random_s2d_partition(rng, small_square, 4)
    bs = p.block_structure()
    assert bs.nparts == 4
    assert bs.nnz == small_square.nnz
