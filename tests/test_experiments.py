"""Experiment harness: Figure 1 pins and tiny-scale table invariants."""

import numpy as np
import pytest

from repro.core import pairwise_volumes, single_phase_comm_stats
from repro.experiments import ExperimentConfig, figure1_partition, figure1_report
from repro.experiments.tables import run_table1, run_table4
from repro.sparse.properties import matrix_properties


# ----------------------------------------------------------- Figure 1


def test_figure1_shape_and_parts():
    p = figure1_partition()
    assert p.matrix.shape == (10, 13)
    assert p.nparts == 3
    p.validate_s2d()


def test_figure1_worked_messages():
    """The exact numbers the paper narrates about Figure 1."""
    p = figure1_partition()
    lam = pairwise_volumes(p)
    # P2 sends [x_5, y~_2] to P1: 2 words (0-based: 1 -> 0)
    assert lam[(1, 0)] == 2
    # lambda_{3->2} = 3 (0-based: 2 -> 1)
    assert lam[(2, 1)] == 3


def test_figure1_x13_only_needed_by_p2():
    """Column 13 (0-based 12): only P2 (0-based 1) holds nonzeros."""
    p = figure1_partition()
    m = p.matrix
    col13 = m.col == 12
    assert np.all(p.nnz_part[col13] == 1)


def test_figure1_precompute_example():
    """y~_2 = a_{2,6} x_6 + a_{2,7} x_7 is precomputed by P2."""
    p = figure1_partition()
    m = p.matrix
    # 0-based row 1, cols 5 and 6, owned by part 1 (= paper's P2)
    sel = (m.row == 1) & ((m.col == 5) | (m.col == 6))
    assert sel.sum() == 2
    assert np.all(p.nnz_part[sel] == 1)


def test_figure1_report_renders():
    rep = figure1_report()
    assert "10x13" in rep
    assert "lambda_{2->1} = 2" in rep
    assert "lambda_{3->2} = 3" in rep


def test_figure1_spmv_runs():
    from repro.simulate import run_single_phase

    p = figure1_partition()
    run = run_single_phase(p)
    assert np.allclose(run.y, p.matrix @ (np.arange(1, 14) / 13))


# ----------------------------------------------------------- Tables


def test_table1_rows_match_suite():
    cfg = ExperimentConfig(scale="tiny")
    res = run_table1(cfg)
    assert len(res.records) == 8
    names = [r["name"] for r in res.records]
    assert "crystk02" in names and "pattern1" in names
    assert "Table I" in res.title
    assert res.text.count("\n") >= 9


def test_table4_has_dense_rows():
    cfg = ExperimentConfig(scale="tiny")
    res = run_table4(cfg)
    skews = {r["name"]: r["skew"] for r in res.records}
    assert skews["lp1"] > 10
    assert skews["ins2"] > 10


def test_experiment_config_scales():
    assert ExperimentConfig(scale="tiny").general_ks == (2, 4, 8)
    assert ExperimentConfig(scale="small").dense_ks == (16, 64, 256)


def test_experiment_config_partitioner_seeded():
    cfg = ExperimentConfig(scale="tiny", seed=7)
    assert cfg.partitioner(1).seed == 8
