"""Project lint: every rule has a positive (violating snippet flagged)
and a negative (compliant snippet clean) test, and — the tier-1 gate —
``run_lint()`` over the shipped ``src/repro`` tree reports nothing.
"""

import textwrap

import pytest

from repro.verify import lint_paths, lint_source, run_lint
from repro.verify.lint import RULES

pytestmark = pytest.mark.check


def _rules(source, rel="engine/somewhere.py"):
    """Rule IDs flagged for a dedented snippet at a synthetic path."""
    return {v.rule for v in lint_source(textwrap.dedent(source), rel)}


# ---------------------------------------------------------------- REP001


def test_rep001_flags_accumulation_outside_kernel_layers():
    src = """
    import numpy as np

    def tally(idx, vals, n):
        np.add.at(out := np.zeros(n), idx, vals)
        return np.bincount(idx, minlength=n), out
    """
    assert "REP001" in _rules(src, "engine/engine.py")
    assert "REP001" in _rules(src, "sweep/driver.py")


def test_rep001_allows_accumulation_in_kernel_layers():
    src = """
    import numpy as np

    def tally(idx, vals, n):
        np.add.at(out := np.zeros(n), idx, vals)
        return np.bincount(idx, minlength=n), out
    """
    assert "REP001" not in _rules(src, "kernels/spmv.py")
    assert "REP001" not in _rules(src, "runtime/apply.py")


# ---------------------------------------------------------------- REP002


def test_rep002_flags_barrier_and_condition():
    assert "REP002" in _rules("from multiprocessing import Barrier\n")
    assert "REP002" in _rules(
        """
        import multiprocessing as mp

        def pool(n):
            return mp.Barrier(n + 1)
        """
    )
    assert "REP002" in _rules(
        """
        from threading import Condition as Cv

        def gate():
            return Cv()
        """
    )


def test_rep002_allows_semaphores():
    src = """
    import multiprocessing as mp

    def gate(ctx):
        return ctx.Semaphore(0), mp.Semaphore(0)
    """
    assert "REP002" not in _rules(src)


# ---------------------------------------------------------------- REP003


def test_rep003_flags_unfinalized_shared_memory():
    src = """
    from multiprocessing.shared_memory import SharedMemory

    def alloc(n):
        return SharedMemory(create=True, size=n)
    """
    assert "REP003" in _rules(src, "runtime/segments.py")


def test_rep003_allows_shared_memory_with_finalizer():
    src = """
    import weakref
    from multiprocessing.shared_memory import SharedMemory

    def alloc(n):
        seg = SharedMemory(create=True, size=n)
        weakref.finalize(seg, seg.unlink)
        return seg
    """
    assert "REP003" not in _rules(src, "runtime/segments.py")
    # Attaching (create absent/False) needs no finalizer.
    assert "REP003" not in _rules(
        "from multiprocessing.shared_memory import SharedMemory\n"
        "def attach(name):\n"
        "    return SharedMemory(name=name)\n",
        "runtime/segments.py",
    )


# ---------------------------------------------------------------- REP004


def test_rep004_flags_env_reads_outside_resolvers():
    assert "REP004" in _rules("import os\nV = os.getenv('REPRO_X')\n")
    assert "REP004" in _rules("import os\nV = os.environ.get('REPRO_X')\n")
    assert "REP004" in _rules("from os import environ\n")


def test_rep004_allows_env_reads_in_resolver_modules():
    src = "import os\nV = os.getenv('REPRO_X')\nW = os.environ.get('Y')\n"
    assert "REP004" not in _rules(src, "native/build.py")
    assert "REP004" not in _rules(src, "experiments/config.py")


# ---------------------------------------------------------------- REP005


def test_rep005_flags_mutable_defaults():
    assert "REP005" in _rules("def f(xs=[]):\n    return xs\n")
    assert "REP005" in _rules("def f(*, opts={'a': 1}):\n    return opts\n")
    assert "REP005" in _rules("def f(seen=set()):\n    return seen\n")
    assert "REP005" in _rules("def f(acc=list()):\n    return acc\n")


def test_rep005_allows_immutable_defaults():
    src = "def f(xs=(), name='x', n=0, opt=None, shape=(2, 3)):\n    return xs\n"
    assert "REP005" not in _rules(src)


# ---------------------------------------------------------------- REP006


def test_rep006_flags_bare_except():
    src = """
    def f():
        try:
            return 1
        except:
            return 2
    """
    assert "REP006" in _rules(src)


def test_rep006_allows_typed_except():
    src = """
    def f():
        try:
            return 1
        except (ValueError, BaseException):
            return 2
    """
    assert "REP006" not in _rules(src)


# ---------------------------------------------------------------- REP007


def test_rep007_flags_native_importing_runtime():
    assert "REP007" in _rules("import repro.runtime.plan\n", "native/ops.py")
    assert "REP007" in _rules(
        "from repro.engine import PartitionEngine\n", "native/build.py"
    )


def test_rep007_allows_runtime_importing_native():
    src = "from repro.native import get_kernels\nimport repro.runtime.plan\n"
    assert "REP007" not in _rules(src, "runtime/apply.py")
    # The rule binds the native layer only.
    assert "REP007" not in _rules("import repro.runtime\n", "engine/engine.py")


# ---------------------------------------------------------------- REP008


def test_rep008_flags_perf_counter_outside_obs():
    assert "REP008" in _rules(
        "import time\nt0 = time.perf_counter()\n", "engine/engine.py"
    )
    assert "REP008" in _rules(
        "from time import perf_counter\n", "runtime/parallel.py"
    )


def test_rep008_allows_obs_and_other_time_calls():
    assert "REP008" not in _rules(
        "import time\nt0 = time.perf_counter()\n", "obs/trace.py"
    )
    # Other time functions are fine anywhere — the rule confines the
    # *clock*, not the module.
    assert "REP008" not in _rules(
        "import time\ntime.sleep(0.1)\nfrom time import sleep\n",
        "runtime/parallel.py",
    )


# ---------------------------------------------------------------- REP009


def test_rep009_flags_os_kill_and_sigkill_outside_faults():
    assert "REP009" in _rules(
        "import os\nos.kill(pid, 9)\n", "runtime/parallel.py"
    )
    assert "REP009" in _rules(
        "import signal\nSIG = signal.SIGKILL\n", "sweep/campaign.py"
    )
    assert "REP009" in _rules(
        "from os import kill\n", "engine/engine.py"
    )
    assert "REP009" in _rules(
        "from signal import SIGKILL\nx = SIGKILL\n", "sweep/orchestrator.py"
    )


def test_rep009_allows_faults_module_and_process_kill():
    src = "import os, signal\nos.kill(os.getpid(), signal.SIGKILL)\n"
    assert "REP009" not in _rules(src, "sweep/faults.py")
    # Coordinator-side reaping through the Process handle is the
    # sanctioned spelling everywhere.
    assert "REP009" not in _rules(
        "def reap(proc):\n    proc.kill()\n    proc.join()\n",
        "sweep/campaign.py",
    )


# ---------------------------------------------------------------- REP000


def test_syntax_error_is_a_violation_not_a_crash():
    flagged = lint_source("def broken(:\n", "engine/bad.py")
    assert [v.rule for v in flagged] == ["REP000"]
    assert "syntax error" in flagged[0].message


# ------------------------------------------------------------- machinery


def test_every_rule_has_catalog_entry_and_both_polarities_covered():
    assert set(RULES) == {f"REP00{i}" for i in range(1, 10)}
    for rule_id, (summary, rationale) in RULES.items():
        assert summary and rationale, rule_id


def test_violation_str_is_file_line_rule():
    v = lint_source("def f(xs=[]):\n    return xs\n", "engine/x.py")[0]
    assert str(v).startswith("engine/x.py:1: REP005")


def test_lint_paths_keys_allowlists_on_relative_path(tmp_path):
    pkg = tmp_path / "native"
    pkg.mkdir()
    mod = pkg / "build.py"
    mod.write_text("import os\nV = os.getenv('X')\n", encoding="utf-8")
    # Relative to tmp_path the file IS native/build.py → env read allowed.
    assert lint_paths([mod], tmp_path) == []
    # Against a different root it falls back to the bare name → flagged.
    flagged = lint_paths([mod], tmp_path / "elsewhere")
    assert [v.rule for v in flagged] == ["REP004"]


def test_shipped_source_tree_is_lint_clean():
    """The tier-1 gate: src/repro carries zero violations."""
    violations = run_lint()
    assert violations == [], "\n".join(str(v) for v in violations)
