"""Golden-equivalence tests: batched block analytics vs the legacy path.

The batched kernels (`BlockStructure.block_stats`, `batched_block_dm`)
must be *bit-identical* to the original one-``np.unique``-per-block /
slice-per-block computations on every matrix family the paper uses.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dm.batch import batched_block_dm, legacy_block_dm
from repro.generators.mesh import poisson2d
from repro.generators.powerlaw import chung_lu
from repro.generators.rmat import rmat
from repro.sparse.blocks import (
    BlockStructure,
    grouped_distinct_counts,
    legacy_block_stats,
)
from repro.sparse.coo import canonical_coo


def _matrices():
    rng = np.random.default_rng(2024)
    yield "random", canonical_coo(
        sp.random(80, 80, density=0.06, random_state=11) + sp.eye(80)
    ), rng
    yield "rect", canonical_coo(
        sp.random(50, 75, density=0.08, random_state=13)
    ), rng
    yield "mesh", poisson2d(9, seed=5), rng
    yield "powerlaw", chung_lu(120, 8.0, seed=6), rng
    yield "rmat", rmat(7, edge_factor=6.0, seed=8), rng


def _structures():
    for name, m, rng in _matrices():
        for k in (2, 5, 9):
            x = rng.integers(0, k, m.shape[1])
            y = rng.integers(0, k, m.shape[0])
            yield name, k, BlockStructure(m.row, m.col, x, y, k)


@pytest.mark.parametrize(
    "name,k,bs", list(_structures()), ids=lambda v: v if isinstance(v, str) else None
)
def test_block_stats_matches_legacy(name, k, bs):
    st = bs.block_stats()
    lg = legacy_block_stats(bs)
    assert np.array_equal(st.keys, lg.keys)
    assert np.array_equal(st.indptr, lg.indptr)
    assert np.array_equal(st.nnz, lg.nnz)
    assert np.array_equal(st.nhat, lg.nhat)
    assert np.array_equal(st.mhat, lg.mhat)


@pytest.mark.parametrize(
    "name,k,bs", list(_structures()), ids=lambda v: v if isinstance(v, str) else None
)
def test_batched_dm_matches_legacy(name, k, bs):
    batched = batched_block_dm(bs)
    legacy = legacy_block_dm(bs)
    assert len(batched) == len(legacy)
    for b, l in zip(batched, legacy):
        assert (b.row_part, b.col_part) == (l.row_part, l.col_part)
        assert np.array_equal(b.nnz_idx, l.nnz_idx)
        assert np.array_equal(b.h_mask, l.h_mask)
        assert np.array_equal(b.dm.row_ids, l.dm.row_ids)
        assert np.array_equal(b.dm.col_ids, l.dm.col_ids)
        assert np.array_equal(b.dm.row_label, l.dm.row_label)
        assert np.array_equal(b.dm.col_label, l.dm.col_label)
        assert b.dm.matching_size == l.dm.matching_size
        assert np.array_equal(b.h_nnz, l.h_nnz)


def test_batched_dm_includes_diagonal_when_asked(small_square, rng):
    k = 3
    x = rng.integers(0, k, small_square.shape[1])
    y = rng.integers(0, k, small_square.shape[0])
    bs = BlockStructure.from_matrix(small_square, x, y, k)
    all_blocks = batched_block_dm(bs, offdiagonal_only=False)
    off_blocks = batched_block_dm(bs, offdiagonal_only=True)
    assert len(all_blocks) == bs.block_keys.size
    assert len(off_blocks) == len(bs.nonempty_offdiagonal_blocks())
    assert all(r.row_part != r.col_part for r in off_blocks)


def test_block_stats_per_block_accessors(small_square, rng):
    k = 4
    x = rng.integers(0, k, small_square.shape[1])
    y = rng.integers(0, k, small_square.shape[0])
    bs = BlockStructure.from_matrix(small_square, x, y, k)
    st = bs.block_stats()
    for ell in range(k):
        for c in range(k):
            assert st.nnz_of(ell, c) == bs.block_nnz_count(ell, c)
            assert st.nhat_of(ell, c) == bs.block_nonempty_cols(ell, c).size
            assert st.mhat_of(ell, c) == bs.block_nonempty_rows(ell, c).size
    # rowwise_volume satellite: batched aggregate == manual per-block sum
    manual = sum(bs.block_nonempty_cols(l, c).size for l, c in bs.nonempty_offdiagonal_blocks())
    assert bs.rowwise_volume() == manual


def test_block_stats_empty_matrix():
    bs = BlockStructure(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.zeros(3, dtype=np.int64),
        np.zeros(3, dtype=np.int64),
        2,
    )
    st = bs.block_stats()
    assert st.nblocks == 0
    assert bs.rowwise_volume() == 0
    assert batched_block_dm(bs) == []


def test_grouped_distinct_counts_basic():
    group = np.array([0, 0, 0, 2, 2, 5])
    values = np.array([3, 3, 1, 0, 4, 2])
    groups, counts = grouped_distinct_counts(group, values, 5)
    assert groups.tolist() == [0, 2, 5]
    assert counts.tolist() == [2, 2, 1]


def test_grouped_distinct_counts_empty():
    groups, counts = grouped_distinct_counts(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 10
    )
    assert groups.size == 0 and counts.size == 0
