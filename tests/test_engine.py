"""PartitionEngine: registry, memoization, and cache-transparency tests.

The engine must be a pure accelerator: ``plan()`` results are identical
with and without intermediate caching, and identical to calling the
underlying construction functions directly.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import s2d_heuristic, s2d_optimal
from repro.engine import (
    PartitionEngine,
    available_methods,
    register_method,
    resolve_method,
)
from repro.errors import ConfigError
from repro.partition import partition_1d_rowwise
from repro.partition import plan as plan_oneshot
from repro.simulate import evaluate
from repro.sparse.coo import canonical_coo

S2D_METHODS = ("s2d-optimal", "s2d-heuristic", "s2d-balanced", "s2d-bounded")
ALL_METHODS = S2D_METHODS + (
    "1d-rowwise",
    "1d-columnwise",
    "finegrain",
    "checkerboard",
    "medium-grain",
    "mondriaan",
    "1d-boman",
)


@pytest.fixture(scope="module")
def matrix():
    return canonical_coo(sp.random(90, 90, density=0.06, random_state=21) + sp.eye(90))


def test_registry_lists_all_methods():
    names = available_methods()
    for m in ALL_METHODS:
        assert m in names


def test_alias_resolution():
    assert resolve_method("s2d") == "s2d-heuristic"
    assert resolve_method("2d") == "finegrain"
    assert resolve_method("s2d-b") == "s2d-bounded"
    with pytest.raises(ConfigError):
        resolve_method("no-such-method")


@pytest.mark.parametrize("method", ALL_METHODS)
def test_plan_identical_with_and_without_cache(matrix, method):
    cached = PartitionEngine(matrix, seed=3)
    uncached = PartitionEngine(matrix, seed=3, cache=False)
    p_on = cached.plan(method, 4).partition
    p_off = uncached.plan(method, 4).partition
    assert p_on.kind == p_off.kind
    assert np.array_equal(p_on.nnz_part, p_off.nnz_part)
    assert np.array_equal(p_on.vectors.x_part, p_off.vectors.x_part)
    assert np.array_equal(p_on.vectors.y_part, p_off.vectors.y_part)


def test_plan_memoized_and_cache_counted(matrix):
    eng = PartitionEngine(matrix, seed=3)
    first = eng.plan("s2d-heuristic", 4)
    hits_after_first = eng.cache_info()["hits"]
    again = eng.plan("s2d-heuristic", 4)
    assert again is first
    assert eng.cache_info()["hits"] > hits_after_first


def test_s2d_methods_share_block_analytics(matrix):
    eng = PartitionEngine(matrix, seed=3)
    eng.plan("s2d-heuristic", 4)
    entries_before = eng.cache_info()["entries"]
    eng.plan("s2d-optimal", 4)
    entries_after = eng.cache_info()["entries"]
    # s2d-optimal adds only its own plan entry: the 1D base plan, the
    # block structure and the block-DM results are all cache hits.
    assert entries_after == entries_before + 1


def test_engine_matches_direct_construction(matrix):
    eng = PartitionEngine(matrix, seed=3)
    config = eng.partitioner()
    base = partition_1d_rowwise(matrix, 4, config)
    direct_h = s2d_heuristic(matrix, x_part=base.vectors, nparts=4)
    direct_o = s2d_optimal(matrix, x_part=base.vectors, nparts=4)
    via_engine_h = eng.plan("s2d-heuristic", 4, config=config).partition
    via_engine_o = eng.plan("s2d-optimal", 4, config=config).partition
    assert np.array_equal(direct_h.nnz_part, via_engine_h.nnz_part)
    assert np.array_equal(direct_o.nnz_part, via_engine_o.nnz_part)


def test_quality_matches_evaluate(matrix):
    eng = PartitionEngine(matrix, seed=3)
    plan = eng.plan("s2d-heuristic", 4)
    q_engine = plan.quality()
    q_direct = evaluate(plan.partition, machine=eng.machine)
    assert q_engine.total_volume == q_direct.total_volume
    assert q_engine.load_imbalance == q_direct.load_imbalance
    assert q_engine.max_msgs == q_direct.max_msgs


def test_run_cached_across_machine_models(matrix):
    from repro.simulate import MachineModel

    eng = PartitionEngine(matrix, seed=3)
    plan = eng.plan("1d-rowwise", 4)
    q1 = plan.quality(MachineModel(alpha=20.0, beta=2.0, gamma=1.0))
    q2 = plan.quality(MachineModel(alpha=200.0, beta=2.0, gamma=1.0))
    # Same simulated run object, different pricing.
    assert q1.run is q2.run
    assert q1.total_volume == q2.total_volume
    assert q1.time < q2.time


def test_explicit_vectors_option(matrix):
    eng = PartitionEngine(matrix, seed=3)
    base = eng.plan("1d-columnwise", 4)
    p = eng.plan("s2d-heuristic", 4, vectors=base.partition.vectors).partition
    assert np.array_equal(p.vectors.x_part, base.partition.vectors.x_part)
    p.validate_s2d()


def test_compare_runs_all_methods(matrix):
    eng = PartitionEngine(matrix, seed=3)
    out = eng.compare(["1d-rowwise", "s2d-heuristic", "s2d-optimal"], 4)
    assert set(out) == {"1d-rowwise", "s2d-heuristic", "s2d-optimal"}
    assert out["s2d-optimal"].total_volume <= out["1d-rowwise"].total_volume


def test_clear_cache(matrix):
    eng = PartitionEngine(matrix, seed=3)
    eng.plan("1d-rowwise", 4)
    info = eng.cache_info()
    assert info["entries"] > 0
    assert info["cached_bytes"] > 0
    eng.clear_cache()
    assert eng.cache_info() == {
        "hits": 0, "misses": 0, "entries": 0, "cached_bytes": 0,
    }


def test_register_custom_method(matrix):
    @register_method("all-to-zero")
    def _build(engine, nparts, config, opts):
        from repro.partition.oned import rowwise_from_y_part

        y = np.zeros(engine.matrix.shape[0], dtype=np.int64)
        return rowwise_from_y_part(engine.matrix, y, nparts)

    try:
        eng = PartitionEngine(matrix, seed=3)
        p = eng.plan("all-to-zero", 4).partition
        assert p.loads()[0] == matrix.nnz
    finally:
        from repro.engine.registry import METHODS

        METHODS.pop("all-to-zero", None)


def test_partition_plan_oneshot(matrix):
    p = plan_oneshot(matrix, "s2d", 4)
    assert p.kind == "s2D"
    p.validate_s2d()


def test_simulate_all_runs_every_registered_method(matrix):
    eng = PartitionEngine(matrix, seed=3)
    runs = eng.simulate_all(4)
    assert set(runs) == set(available_methods())
    for run in runs.values():
        assert run.ledger.nparts == 4
        assert run.y.shape == (matrix.shape[0],)


def test_simulate_all_matches_individual_runs(matrix):
    eng = PartitionEngine(matrix, seed=3)
    runs = eng.simulate_all(4, ["1d-rowwise", "s2d-heuristic"])
    for name in ("1d-rowwise", "s2d-heuristic"):
        direct = eng.run(eng.plan(name, 4))
        assert runs[name] is direct  # cache-shared, not recomputed
    # Aliases resolve through the registry.
    aliased = eng.simulate_all(4, ["s2d"])
    assert set(aliased) == {"s2d-heuristic"}
    assert aliased["s2d-heuristic"] is runs["s2d-heuristic"]


def test_simulate_all_shares_intermediates(matrix):
    eng = PartitionEngine(matrix, seed=3)
    eng.simulate_all(4, S2D_METHODS)
    hits = eng.cache_info()["hits"]
    assert hits > 0  # the s2D family shared 1D vectors + block analytics
