"""Protocol model checker: the go/done semaphore protocol of the
shared-memory executor is deadlock-free and always reaches segment
cleanup for 2-4 workers, including under crash and raise faults — while
the contrast barrier model deadlocks under the same faults, proving the
checker actually finds bad protocols.
"""

import pytest

from repro.errors import VerificationError
from repro.verify import BarrierModel, ProtocolModel, check_protocol

pytestmark = pytest.mark.check


@pytest.mark.parametrize("nworkers", [2, 3, 4])
@pytest.mark.parametrize("nsteps", [2, 3])
def test_protocol_faultfree_is_clean(nworkers, nsteps):
    report = ProtocolModel(nworkers, nsteps).check()
    assert report.ok, report.summary()
    assert report.nstates > 0
    assert not report.deadlocks
    assert not report.unclean_terminals
    assert not report.bad_faultfree_terminals


@pytest.mark.parametrize("nworkers", [2, 3, 4])
def test_protocol_survives_crash_and_raise_faults(nworkers):
    """With up to one worker crash or in-step raise injected anywhere,
    every execution still terminates with segments unlinked."""
    report = ProtocolModel(nworkers, 2, max_faults=1, niters=2).check()
    assert report.ok, report.summary()
    assert not report.deadlocks
    assert not report.unclean_terminals
    assert not report.nonprogressing


def test_protocol_state_space_is_exhaustive():
    """Fault states genuinely appear in the explored space (the model
    is not vacuously fault-free) and faults strictly grow it."""
    plain = ProtocolModel(2, 2).check()
    faulty = ProtocolModel(2, 2, max_faults=1).check()
    assert faulty.nstates > plain.nstates


def test_faulty_runs_reach_failed_but_unlinked_terminals():
    model = ProtocolModel(2, 2, max_faults=1)
    states, _ = model.explore()
    terminals = [s for s in states if model.is_terminal(s)]
    failed = [s for s in terminals if s.coord == "end-failed"]
    # Crashes force the failed exit path, and even that path unlinks.
    assert failed
    assert all(s.segments == "unlinked" for s in terminals)
    # Fault-free runs never take it.
    assert all(s.faults > 0 for s in failed)


def test_barrier_model_deadlocks_under_crash():
    """The same faults that the semaphore protocol tolerates deadlock a
    naive (N+1)-party barrier: a crashed worker never arrives, so the
    coordinator waits forever. This is the negative control showing the
    checker detects real protocol bugs."""
    clean = BarrierModel(2, 2).check()
    assert clean.ok, clean.summary()

    broken = BarrierModel(2, 2, max_faults=1).check()
    assert not broken.ok
    assert broken.deadlocks
    # Every deadlock involves at least one crashed worker at a barrier.
    assert all("crashed" in s.workers for s in broken.deadlocks)


def test_check_protocol_driver_covers_required_configs():
    # 3 worker counts x 1 superstep count x fault budgets {0, 1}.
    reports = check_protocol(workers=(2, 3, 4), nsteps=(2,), max_faults=1)
    assert len(reports) == 6
    assert all(r.ok for r in reports)
    for r in reports:
        assert "OK" in r.summary()


def test_model_rejects_degenerate_shapes():
    with pytest.raises(VerificationError, match="bad protocol model shape"):
        ProtocolModel(0, 2)
    with pytest.raises(VerificationError, match="bad protocol model shape"):
        ProtocolModel(2, 2, max_faults=-1)


def test_check_protocol_raises_on_broken_model(monkeypatch):
    """Swap the barrier design in for the semaphore protocol: the
    driver must report its deadlock, proving check_protocol is not a
    rubber stamp."""
    import repro.verify.protocol as proto

    class _BrokenModel(proto.BarrierModel):
        def __init__(self, nworkers, nsteps, *, niters=1, max_faults=0):
            super().__init__(nworkers, nsteps, max_faults=max_faults)

    monkeypatch.setattr(proto, "ProtocolModel", _BrokenModel)
    with pytest.raises(VerificationError, match="deadlock"):
        proto.check_protocol(workers=(2,), nsteps=(2,), max_faults=1)
    reports = proto.check_protocol(
        workers=(2,), nsteps=(2,), max_faults=1, raise_on_error=False
    )
    assert not all(r.ok for r in reports)
