"""1D, 2D fine-grain, checkerboard, and Boman partitioning schemes."""

import numpy as np
import pytest

from repro.hypergraph import PartitionConfig
from repro.partition import (
    mesh_shape,
    partition_1d_block_rows,
    partition_1d_boman,
    partition_1d_columnwise,
    partition_1d_random_rows,
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_checkerboard,
)
from repro.partition.checkerboard import mesh_coords
from repro.partition.vector import conformal_x_partition

CFG = PartitionConfig(seed=123, ninitial=2, fm_passes=2)


# ---------------------------------------------------------------- 1D


def test_1d_rowwise_structure(small_square):
    p = partition_1d_rowwise(small_square, 4, CFG)
    assert p.kind == "1D"
    assert p.is_1d_rowwise()
    assert p.is_s2d_admissible()
    assert p.vectors.is_symmetric()  # square -> symmetric vectors
    assert set(np.unique(p.nnz_part)) <= set(range(4))


def test_1d_rowwise_rectangular(small_rect):
    p = partition_1d_rowwise(small_rect, 3, CFG)
    assert p.is_1d_rowwise()
    assert p.vectors.n == small_rect.shape[1]
    assert p.vectors.m == small_rect.shape[0]


def test_1d_columnwise(small_square):
    p = partition_1d_columnwise(small_square, 4, CFG)
    assert p.kind == "1D-col"
    assert p.is_1d_columnwise()
    assert p.is_s2d_admissible()


def test_1d_block_rows(small_square):
    p = partition_1d_block_rows(small_square, 5)
    y = p.vectors.y_part
    # contiguous: nondecreasing part ids over rows
    assert np.all(np.diff(y) >= 0)
    assert y.max() == 4


def test_1d_random_rows_deterministic(small_square):
    p1 = partition_1d_random_rows(small_square, 4, seed=5)
    p2 = partition_1d_random_rows(small_square, 4, seed=5)
    assert np.array_equal(p1.nnz_part, p2.nnz_part)


def test_1d_balance_reasonable(medium_square):
    p = partition_1d_rowwise(medium_square, 4, PartitionConfig(seed=3))
    assert p.load_imbalance() < 0.25


def test_conformal_x_partition_majority():
    import scipy.sparse as sp

    a = sp.coo_matrix(
        (np.ones(3), ([0, 1, 2], [0, 0, 0])), shape=(3, 2)
    )
    y = np.array([1, 1, 0])
    x = conformal_x_partition(a, y, 2)
    assert x[0] == 1  # two of three nonzeros in col 0 owned by part 1
    # empty column dealt round-robin
    assert 0 <= x[1] < 2


# ---------------------------------------------------------------- 2D


def test_finegrain_partition(small_square):
    p = partition_2d_finegrain(small_square, 4, CFG)
    assert p.kind == "2D"
    assert p.loads().sum() == small_square.nnz
    # fine-grain balance should be excellent (unit vertices)
    assert p.load_imbalance() < 0.2


def test_finegrain_beats_1d_balance_on_dense_row():
    from repro.generators import arrow_matrix

    a = arrow_matrix(120, nfull=1, seed=0)
    k = 8
    p1 = partition_1d_rowwise(a, k, CFG)
    p2 = partition_2d_finegrain(a, k, CFG)
    assert p2.load_imbalance() < p1.load_imbalance()


# ---------------------------------------------------------------- 2D-b


def test_mesh_shape_factorings():
    assert mesh_shape(16) == (4, 4)
    assert mesh_shape(64) == (8, 8)
    assert mesh_shape(8) == (2, 4)
    assert mesh_shape(7) == (1, 7)


def test_mesh_coords_roundtrip():
    pr, pc = 3, 4
    for p in range(12):
        r, c = mesh_coords(p, pc)
        assert r * pc + c == p


def test_checkerboard_structure(medium_square):
    k = 8
    p = partition_checkerboard(medium_square, k, CFG)
    assert p.kind == "2D-b"
    pr, pc = p.meta["mesh"]
    assert pr * pc == k
    stripe = p.meta["row_stripe"]
    group = p.meta["col_group"]
    m = p.matrix
    expect = stripe[m.row] * pc + group[m.col]
    assert np.array_equal(p.nnz_part, expect)


def test_checkerboard_bounded_messages(medium_square):
    from repro.simulate import run_two_phase

    k = 8
    p = partition_checkerboard(medium_square, k, CFG)
    pr, pc = p.meta["mesh"]
    run = run_two_phase(p)
    assert run.ledger.sent_msgs("expand").max(initial=0) <= pr - 1
    assert run.ledger.sent_msgs("fold").max(initial=0) <= pc - 1


def test_checkerboard_rejects_bad_shape(small_square):
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        partition_checkerboard(small_square, 8, CFG, shape=(3, 3))


# ---------------------------------------------------------------- 1D-b


def test_boman_keeps_vectors(medium_square):
    base = partition_1d_rowwise(medium_square, 8, CFG)
    p = partition_1d_boman(medium_square, 8, base=base)
    assert p.kind == "1D-b"
    assert np.array_equal(p.vectors.y_part, base.vectors.y_part)
    assert np.array_equal(p.vectors.x_part, base.vectors.x_part)


def test_boman_diagonal_blocks_stay(medium_square):
    base = partition_1d_rowwise(medium_square, 8, CFG)
    p = partition_1d_boman(medium_square, 8, base=base)
    m = p.matrix
    diag = base.vectors.y_part[m.row] == base.vectors.x_part[m.col]
    assert np.array_equal(
        p.nnz_part[diag], base.vectors.y_part[m.row][diag]
    )


def test_boman_bounded_messages(medium_square):
    from repro.simulate import run_two_phase

    k = 8
    p = partition_1d_boman(medium_square, k, CFG)
    pr, pc = p.meta["mesh"]
    run = run_two_phase(p)
    # expand stays within mesh columns; fold within mesh rows
    assert run.ledger.sent_msgs("expand").max(initial=0) <= pr - 1
    assert run.ledger.sent_msgs("fold").max(initial=0) <= pc - 1


def test_boman_total_nnz_preserved(medium_square):
    p = partition_1d_boman(medium_square, 8, CFG)
    assert p.loads().sum() == medium_square.nnz
