"""Correctness of the persistent artifact cache.

The contract under test: a warm rerun produces records *bit-identical*
to the cold run; any change to a cache-key component (matrix content,
partitioner config, seed, format/schema version) forces a rebuild
instead of serving a stale artifact; and a corrupted cache entry is
evicted and rebuilt, never an error.
"""

import numpy as np
import pytest

import repro.partition.serialize as serialize
import repro.sweep.cache as sweep_cache
from repro.engine import PartitionEngine
from repro.generators.rmat import rmat
from repro.hypergraph import PartitionConfig
from repro.simulate.machine import MachineModel
from repro.sweep import (
    ArtifactCache,
    MatrixRef,
    SchemeSpec,
    SweepGrid,
    cache_key,
    quality_identical,
    run_sweep,
)


@pytest.fixture()
def matrix():
    return rmat(7, edge_factor=4, seed=5)


@pytest.fixture()
def grid(matrix):
    return SweepGrid(
        matrices=(MatrixRef.from_matrix("rmat7", matrix),),
        schemes=(
            SchemeSpec("1d-rowwise", slot=0),
            SchemeSpec("s2d-heuristic", slot=0),
        ),
        ks=(3,),
    )


def _assert_identical(a, b):
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert (ra.matrix, ra.scheme, ra.k, ra.seed) == (
            rb.matrix, rb.scheme, rb.k, rb.seed,
        )
        assert quality_identical(ra.quality, rb.quality)


def test_warm_rerun_bit_identical(grid, tmp_path):
    cold = run_sweep(grid, cache_dir=tmp_path)
    warm = run_sweep(grid, cache_dir=tmp_path)
    assert not any(r.from_cache for r in cold.records)
    assert all(r.from_cache for r in warm.records)
    _assert_identical(cold, warm)
    # and identical to an uncached run
    plain = run_sweep(grid)
    _assert_identical(plain, warm)


def test_warm_rerun_does_no_partitioner_work(grid, tmp_path):
    run_sweep(grid, cache_dir=tmp_path)
    warm = run_sweep(grid, cache_dir=tmp_path)
    (info,) = warm.engines
    # every cell answered from the record store: the engine never
    # planned, simulated, or even touched its memo store
    assert info["entries"] == 0
    assert info["artifacts"]["hits"] == len(warm.records)
    assert info["artifacts"]["misses"] == 0


def test_matrix_digest_change_forces_rebuild(matrix, tmp_path):
    def grid_for(m, name):
        return SweepGrid(
            matrices=(MatrixRef.from_matrix(name, m),),
            schemes=(SchemeSpec("1d-rowwise"),),
            ks=(3,),
        )

    run_sweep(grid_for(matrix, "a"), cache_dir=tmp_path)
    perturbed = matrix.copy()
    perturbed.data = perturbed.data.copy()
    perturbed.data[0] += 1.0  # same pattern, different content
    res = run_sweep(grid_for(perturbed, "a"), cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)


def test_config_and_seed_changes_force_rebuild(grid, tmp_path):
    run_sweep(grid, cache_dir=tmp_path)
    # different base seed → different derived config seeds → miss
    reseeded = SweepGrid(
        matrices=grid.matrices, schemes=grid.schemes, ks=grid.ks, seeds=(7,)
    )
    res = run_sweep(reseeded, cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)
    # different epsilon (partitioner config field) → miss
    loosened = SweepGrid(
        matrices=grid.matrices, schemes=grid.schemes, ks=grid.ks, epsilon=0.5
    )
    res = run_sweep(loosened, cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)
    # unchanged grid still fully warm (the above polluted nothing)
    warm = run_sweep(grid, cache_dir=tmp_path)
    assert all(r.from_cache for r in warm.records)


def test_machine_model_participates_in_record_key(grid, tmp_path):
    run_sweep(grid, cache_dir=tmp_path)
    repriced = SweepGrid(
        matrices=grid.matrices,
        schemes=grid.schemes,
        ks=grid.ks,
        machines=(MachineModel(alpha=1.0, beta=1.0, gamma=1.0),),
    )
    res = run_sweep(repriced, cache_dir=tmp_path)
    # records rebuilt (different pricing), but the partitions themselves
    # come from the artifact store
    assert not any(r.from_cache for r in res.records)
    (info,) = res.engines
    assert info["artifacts"]["hits"] > 0


def test_format_version_bump_forces_rebuild(grid, tmp_path, monkeypatch):
    run_sweep(grid, cache_dir=tmp_path)
    monkeypatch.setattr(serialize, "FORMAT_VERSION", serialize.FORMAT_VERSION + 1)
    res = run_sweep(grid, cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)


def test_record_version_bump_forces_rebuild(grid, tmp_path, monkeypatch):
    run_sweep(grid, cache_dir=tmp_path)
    monkeypatch.setattr(
        sweep_cache, "RECORD_VERSION", sweep_cache.RECORD_VERSION + 1
    )
    res = run_sweep(grid, cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)


def test_corrupted_entries_are_rebuilt(grid, tmp_path):
    cold = run_sweep(grid, cache_dir=tmp_path)
    entries = [p for p in tmp_path.rglob("*") if p.is_file()]
    assert entries
    for path in entries:
        path.write_bytes(b"\x00garbage\xff" * 3)  # every artifact torn
    res = run_sweep(grid, cache_dir=tmp_path)
    assert not any(r.from_cache for r in res.records)
    _assert_identical(cold, res)
    (info,) = res.engines
    assert info["artifacts"]["corrupt"] > 0
    # the rebuilt store is healthy again
    warm = run_sweep(grid, cache_dir=tmp_path)
    assert all(r.from_cache for r in warm.records)
    _assert_identical(cold, warm)


def test_compile_plans_runs_even_on_warm_records(grid, tmp_path):
    """compile_plans=True must persist CommPlans even when every cell
    record is answered from the cache (regression: the compile branch
    used to be skipped on record hits)."""
    run_sweep(grid, cache_dir=tmp_path)  # warm the record store
    compiling = SweepGrid(
        matrices=grid.matrices,
        schemes=grid.schemes,
        ks=grid.ks,
        compile_plans=True,
    )
    res = run_sweep(compiling, cache_dir=tmp_path)
    assert all(r.from_cache for r in res.records)
    (info,) = res.engines
    assert info["artifacts"]["stores"] > 0  # the CommPlans were written
    # and a rerun fetches them instead of recompiling
    rerun = run_sweep(compiling, cache_dir=tmp_path)
    (info2,) = rerun.engines
    assert info2["artifacts"]["stores"] == 0
    assert info2["artifacts"]["hits"] > len(rerun.records)


def test_engine_artifact_roundtrip_partition_and_plan(matrix, tmp_path):
    """The engine-level hook: partitions and compiled CommPlans persist
    and load back apply-ready, bit-identically."""
    cache = ArtifactCache(tmp_path)
    eng = PartitionEngine(matrix, seed=3, artifacts=cache)
    config = PartitionConfig(seed=3)
    plan = eng.plan("s2d-heuristic", 3, config=config)
    cplan = eng.compiled_plan(plan)
    stores = cache.stats["stores"]
    assert stores > 0

    eng2 = PartitionEngine(matrix, seed=3, artifacts=ArtifactCache(tmp_path))
    plan2 = eng2.plan("s2d-heuristic", 3, config=config)
    assert np.array_equal(plan.partition.nnz_part, plan2.partition.nnz_part)
    assert np.array_equal(
        plan.partition.vectors.x_part, plan2.partition.vectors.x_part
    )
    cplan2 = eng2.compiled_plan(plan2)
    x = np.linspace(0.0, 1.0, matrix.shape[1])
    ra, rb = cplan.apply(x), cplan2.apply(x)
    assert np.array_equal(ra.y, rb.y)
    assert ra.ledger.as_dict() == rb.ledger.as_dict()


def test_cache_key_is_deterministic_and_type_strict():
    key = cache_key("partition", 2, "digest", ("plan", 1, (b"\x01", 0.5, None)))
    assert key == cache_key(
        "partition", 2, "digest", ("plan", 1, (b"\x01", 0.5, None))
    )
    assert key != cache_key("partition", 3, "digest", ("plan", 1, (b"\x01", 0.5, None)))
    with pytest.raises(TypeError):
        cache_key("partition", object())
