"""Slow-marked smoke tests keeping the benchmark scripts from rotting.

Every JSON-emitting benchmark runs end-to-end at tiny scale into a
temporary directory, and the pytest-benchmark table scripts are
executed at tiny scale through a pytest subprocess — the same code
paths ``benchmarks/run_all.py`` and the table harness drive for real.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

pytestmark = pytest.mark.slow


@pytest.fixture(autouse=True)
def _bench_on_path():
    sys.path.insert(0, str(BENCH_DIR))
    yield
    sys.path.remove(str(BENCH_DIR))


def test_bench_engine_quick(tmp_path):
    import bench_engine

    out = tmp_path / "BENCH_engine.json"
    result = bench_engine.run(out, quick=True)
    assert out.exists()
    data = json.loads(out.read_text())
    assert data == result
    assert {"matrix", "block_stats", "block_dm", "engine_pipeline"} <= set(data)
    assert data["block_stats"]["batched_s"] > 0


def test_bench_partitioner_quick(tmp_path):
    import bench_partitioner

    out = tmp_path / "BENCH_partitioner.json"
    result = bench_partitioner.run(out, quick=True)
    assert out.exists()
    data = json.loads(out.read_text())
    assert {"config", "end_to_end", "quality_suite", "acceptance"} <= set(data)
    assert len(data["end_to_end"]) == 4  # 2 models x 2 K values
    for entry in data["end_to_end"]:
        assert entry["vectorized_s"] > 0
        assert entry["stages"]["total_s"] > 0
    assert data["quality_suite"]["max_ratio"] == max(
        m["ratio"] for m in data["quality_suite"]["matrices"]
    )
    assert result["config"]["quick"] is True


def test_bench_simulate_quick(tmp_path):
    import bench_simulate

    out = tmp_path / "BENCH_simulate.json"
    result = bench_simulate.run(out, quick=True)
    assert out.exists()
    data = json.loads(out.read_text())
    assert {"config", "executors", "simulate_all", "acceptance"} <= set(data)
    assert len(data["executors"]) == 12  # 2 models x 2 K values x 3 executors
    for entry in data["executors"]:
        assert entry["vectorized_s"] > 0
        assert entry["ledger_identical"] is True
    assert data["simulate_all"]["methods"] > 0
    assert result["config"]["quick"] is True


def test_bench_runtime_quick(tmp_path):
    import bench_runtime

    out = tmp_path / "BENCH_runtime.json"
    result = bench_runtime.run(out, quick=True)
    assert out.exists()
    data = json.loads(out.read_text())
    assert {"config", "native", "entries", "solver", "acceptance"} <= set(data)
    assert len(data["entries"]) == 12  # 2 models x 2 K values x 3 executors
    for entry in data["entries"]:
        assert entry["apply_s"] > 0
        assert entry["vs_scipy"] > 0
        assert entry["apply_many_per_rhs_s"] > 0
        assert entry["identical"] is True
        if data["native"]["available"]:
            assert entry["apply_native_s"] > 0
            assert entry["native_speedup"] > 0
            assert entry["vs_scipy_native"] > 0
        else:
            assert entry["apply_native_s"] is None
    assert data["solver"]["comm_words_equal"] is True
    assert result["config"]["quick"] is True


def test_bench_parallel_quick(tmp_path):
    import bench_parallel

    out = tmp_path / "BENCH_parallel.json"
    result = bench_parallel.run(out, quick=True)
    assert out.exists()
    data = json.loads(out.read_text())
    assert {"config", "entries", "acceptance"} <= set(data)
    assert len(data["entries"]) == 4  # 2 models x 2 K values
    for entry in data["entries"]:
        assert entry["identical"] is True
        assert entry["reconciled"] is True
        assert entry["basis"] in ("measured", "projected-lpt")
        assert entry["host_cpus"] >= 1
        assert entry["parallel_measured_s"] > 0
        assert entry["scipy_csr_s"] > 0
    # Quick matrices are too small for real speedups; the contract
    # here is identity + reconciliation + an honest basis record.
    assert data["acceptance"]["identical"] is True
    assert result["config"]["quick"] is True


def test_bench_sweep_quick(tmp_path):
    import bench_sweep

    out = tmp_path / "BENCH_sweep.json"
    result = bench_sweep.run(out, quick=True, cache_dir=tmp_path / "cache")
    assert out.exists()
    data = json.loads(out.read_text())
    assert {"config", "serial_cold_s", "parallel_cold_s", "parallel_warm_s",
            "engines", "acceptance"} <= set(data)
    # parallel and warm records bit-identical to serial, warm is a pure
    # cache-read pass (the quick grid is tiny; speed targets apply to
    # the full-scale run only)
    assert data["acceptance"]["identical"] is True
    assert data["parallel_warm_s"] < data["serial_cold_s"]
    assert data["peak_cached_bytes"] > 0
    # the cold pass wrote through the artifact store and read nothing
    assert sum(e["artifacts"]["stores"] for e in data["engines"]) > 0
    assert data["acceptance"]["cold_cache_hits"] == 0
    assert result["config"]["quick"] is True


def test_run_all_driver_quick(tmp_path):
    import run_all

    results = run_all.run_all(tmp_path, quick=True)
    assert set(results) == {
        "BENCH_engine.json",
        "BENCH_partitioner.json",
        "BENCH_simulate.json",
        "BENCH_runtime.json",
        "BENCH_parallel.json",
        "BENCH_sweep.json",
    }
    for artifact in results:
        assert (tmp_path / artifact).exists()


def test_table_benchmarks_tiny_scale():
    """Run every pytest-benchmark table script at tiny scale."""
    env = dict(os.environ, REPRO_SCALE="tiny")
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", str(BENCH_DIR), "-q",
            "-p", "no:cacheprovider",
            "--override-ini", "python_files=bench_*.py",
            "--override-ini", "python_functions=test_*",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=1200,
    )
    assert proc.returncode == 0, proc.stdout[-4000:] + proc.stderr[-4000:]
