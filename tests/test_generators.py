"""Workload generators: structural signatures and determinism."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.generators import (
    arrow_matrix,
    banded_with_dense_rows,
    chung_lu,
    circuit_like,
    knn_mesh,
    poisson2d,
    poisson3d,
    rmat,
    table1_suite,
    table4_suite,
)
from repro.sparse.properties import matrix_properties


def test_poisson2d_structure():
    a = poisson2d(5, 4)
    assert a.shape == (20, 20)
    p = matrix_properties(a)
    assert p.dmax <= 5
    # pattern is symmetric (values are random, so compare structure)
    pat = (abs(a) > 0).astype(int)
    assert (pat != pat.T).nnz == 0


def test_poisson3d_structure():
    a = poisson3d(4)
    assert a.shape == (64, 64)
    assert matrix_properties(a).dmax <= 7


def test_knn_mesh_degree_target():
    a = knn_mesh(150, 8, seed=1)
    p = matrix_properties(a)
    assert 8 <= p.davg <= 18  # k..2k plus diagonal
    assert p.row_skew < 3  # near-regular


def test_knn_mesh_dense_rows():
    a = knn_mesh(150, 6, seed=2, dense_rows=1, dense_fraction=0.4)
    p = matrix_properties(a)
    assert p.dmax >= 0.3 * 150


def test_rmat_shape_and_skew():
    a = rmat(8, edge_factor=6, seed=3)
    assert a.shape == (256, 256)
    p = matrix_properties(a)
    assert p.row_skew > 3  # power-law-ish skew


def test_rmat_rejects_bad_probs():
    with pytest.raises(ConfigError):
        rmat(5, a=0.5, b=0.5, c=0.5, d=0.5)


def test_rmat_undirected_symmetric():
    a = rmat(6, seed=4, undirected=True)
    pat = (abs(a) > 0).astype(int)
    assert (pat != pat.T).nnz == 0


def test_chung_lu_average_degree():
    a = chung_lu(500, 6.0, seed=5)
    p = matrix_properties(a)
    assert 3.0 < p.davg < 12.0
    assert p.row_skew > 2


def test_chung_lu_rejects_gamma():
    with pytest.raises(ConfigError):
        chung_lu(10, 3.0, gamma=1.5)


def test_circuit_like_dense_row():
    a = circuit_like(300, avg_degree=4, ndense=2, dense_fraction=0.5, seed=6)
    p = matrix_properties(a)
    assert p.dmax >= 0.4 * 300
    assert p.davg < 12


def test_banded_with_dense_rows():
    a = banded_with_dense_rows(200, band=2, ndense=1, dense_fraction=0.3, seed=7)
    p = matrix_properties(a)
    assert p.dmax >= 0.25 * 200


def test_arrow_matrix_full_row():
    a = arrow_matrix(50, nfull=1, seed=8)
    p = matrix_properties(a)
    assert p.dmax == 50  # the full row


def test_generators_deterministic():
    a = circuit_like(100, seed=9)
    b = circuit_like(100, seed=9)
    assert (abs(a - b) > 0).nnz == 0


def test_table1_suite_contents():
    suite = table1_suite("tiny")
    assert [s.name for s in suite] == [
        "crystk02", "turon_m", "trdheim", "c-big",
        "ASIC_680k", "3dtube", "pkustk12", "pattern1",
    ]
    # low-skew FEM analogs vs high-skew circuit analog
    props = {s.name: s.properties() for s in suite}
    assert props["trdheim"].row_skew < 3
    assert props["ASIC_680k"].row_skew > 10


def test_table4_suite_dense_rows():
    suite = table4_suite("tiny")
    assert len(suite) == 8
    props = {s.name: s.properties() for s in suite}
    # ins2 analog contains a (near-)full row, like the paper notes
    assert props["ins2"].dmax == props["ins2"].nrows
    assert props["lp1"].dmax == props["lp1"].nrows


def test_suite_rejects_unknown_scale():
    with pytest.raises(ConfigError):
        table1_suite("huge")


def test_suite_scales_monotone():
    tiny = table1_suite("tiny")[0].properties().nnz
    small = table1_suite("small")[0].properties().nnz
    assert small > tiny


def test_values_bounded():
    for a in (rmat(6, seed=1), chung_lu(100, 5, seed=1), circuit_like(80, seed=1)):
        assert a.data.min() >= 0.5 - 1e-12
        assert a.data.max() <= 1.5 + 1e-12
