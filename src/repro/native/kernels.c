/* Fused gather / multiply / group-sum scatter kernels for the compiled
 * SpMV runtime (repro.runtime.plan, repro.runtime.parallel).
 *
 * Bit-identity contract with the NumPy kernels they replace:
 *
 * - every accumulation iterates items in index order, so the additions
 *   into each output slot happen in exactly the element order of
 *   np.bincount(idx, weights=w) and np.add.at(acc, idx, w);
 * - each product rounds to double before the add.  The build always
 *   passes -ffp-contract=off, so the compiler cannot contract the
 *   multiply-add into an FMA (which would skip the intermediate
 *   rounding and change the low bits);
 * - no reassociation: strict IEEE semantics are the C default, and the
 *   scatter loops carry a loop-dependent store that blocks
 *   autovectorization of the adds.
 *
 * The batched (_many) variants process r right-hand-side columns per
 * item, matching np.add.at's row-vector accumulation: per column the
 * item order is identical to the single-RHS kernel, so batched results
 * equal sequential single applies bitwise.
 */

#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

/* Bumped whenever an exported signature changes; the loader refuses a
 * cached .so whose ABI does not match (stale-cache guard). */
EXPORT int64_t repro_native_abi(void) { return 1; }

/* acc[idx[i]] += vals[i] * x[cols[i]]  — the fused expand/compute
 * inner loop: gather x, multiply by the nonzero value, scatter-add
 * into the group (or output-row) accumulator. */
EXPORT void repro_gather_mul_scatter(
    int64_t n,
    const double *restrict vals,
    const int64_t *restrict cols,
    const double *restrict x,
    const int64_t *restrict idx,
    double *restrict acc)
{
    for (int64_t i = 0; i < n; i++)
        acc[idx[i]] += vals[i] * x[cols[i]];
}

/* acc[idx[i]] += vals[i]  — the group-sum / fold scatter
 * (np.bincount(idx, weights=vals) / np.add.at element order). */
EXPORT void repro_scatter_add(
    int64_t n,
    const int64_t *restrict idx,
    const double *restrict vals,
    double *restrict acc)
{
    for (int64_t i = 0; i < n; i++)
        acc[idx[i]] += vals[i];
}

/* Batched repro_gather_mul_scatter over r columns:
 * acc[idx[i]*r + j] += vals[i] * x[cols[i]*r + j] for j in [0, r). */
EXPORT void repro_gather_mul_scatter_many(
    int64_t n,
    int64_t r,
    const double *restrict vals,
    const int64_t *restrict cols,
    const double *restrict x,
    const int64_t *restrict idx,
    double *restrict acc)
{
    for (int64_t i = 0; i < n; i++) {
        const double v = vals[i];
        const double *restrict xrow = x + cols[i] * r;
        double *restrict arow = acc + idx[i] * r;
        for (int64_t j = 0; j < r; j++)
            arow[j] += v * xrow[j];
    }
}

/* Batched repro_scatter_add over r columns:
 * acc[idx[i]*r + j] += vals[i*r + j]. */
EXPORT void repro_scatter_add_many(
    int64_t n,
    int64_t r,
    const int64_t *restrict idx,
    const double *restrict vals,
    double *restrict acc)
{
    for (int64_t i = 0; i < n; i++) {
        const double *restrict vrow = vals + i * r;
        double *restrict arow = acc + idx[i] * r;
        for (int64_t j = 0; j < r; j++)
            arow[j] += vrow[j];
    }
}
