"""On-demand build cache and dispatch policy for the native C kernels.

The reproduction environment has no network and no numba/Cython, but it
does ship a C compiler — so the native backend compiles its own tiny
kernel library (``kernels.c``) on first use with the host ``cc`` into a
content-hash-named shared object under a build cache directory, and
loads it via :mod:`ctypes`.

Cache key anatomy (the ``.so`` file name)::

    kernels-<sha256(source ‖ cflags ‖ platform ‖ compiler path ‖ abi)[:16]>.so

Any change to the C source, the flags, the interpreter's platform or
the compiler selection produces a new name, so stale libraries are
never picked up; unused old entries are harmless files in the cache.
The cache directory is ``$REPRO_NATIVE_CACHE`` when set, else
``$XDG_CACHE_HOME/repro-native`` (``~/.cache/repro-native``).  Builds
write to a temp name in the cache dir and ``os.replace`` into place, so
concurrent processes race benignly.

Backend resolution (:func:`resolve_backend`) maps the user-facing
``backend`` kwarg plus the ``REPRO_NATIVE`` environment flag onto a
concrete kernel choice:

- ``backend="numpy"`` / ``"native"`` — explicit; ``"native"`` raises
  :class:`~repro.errors.ConfigError` when the library cannot be built;
- ``backend="auto"`` (and the default ``None`` with ``REPRO_NATIVE``
  unset or ``1``) — native when a compiler is available, else a
  *silent* fall back to the NumPy kernels with the reason recorded in
  :func:`native_status`;
- ``REPRO_NATIVE=0`` — the default becomes ``"numpy"`` (explicit
  kwargs still win).

Build state is process-global: one failed build attempt is remembered
(with its reason) instead of re-running the compiler on every apply.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from repro.errors import ConfigError, NativeBuildError

__all__ = [
    "BACKENDS",
    "CACHE_ENV",
    "FLAG_ENV",
    "KernelLib",
    "cache_dir",
    "find_compiler",
    "get_kernels",
    "native_status",
    "resolve_backend",
    "set_default_backend",
]

CACHE_ENV = "REPRO_NATIVE_CACHE"
FLAG_ENV = "REPRO_NATIVE"
BACKENDS = ("auto", "numpy", "native")

ABI_VERSION = 1
CFLAGS = ("-std=c99", "-O3", "-fPIC", "-shared", "-ffp-contract=off")

_SOURCE = Path(__file__).with_name("kernels.c")

_F64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_SIGNATURES = {
    "repro_gather_mul_scatter": [ctypes.c_int64, _F64, _I64, _F64, _I64, _F64],
    "repro_scatter_add": [ctypes.c_int64, _I64, _F64, _F64],
    "repro_gather_mul_scatter_many": [
        ctypes.c_int64, ctypes.c_int64, _F64, _I64, _F64, _I64, _F64,
    ],
    "repro_scatter_add_many": [ctypes.c_int64, ctypes.c_int64, _I64, _F64, _F64],
}


class KernelLib:
    """The loaded kernel library: bound, signature-checked entry points.

    ``gather_mul_scatter(n, vals, cols, x, idx, acc)`` and friends are
    raw ctypes functions — callers pass C-contiguous float64/int64
    arrays (enforced by the ``ndpointer`` signatures) and own all
    allocation; see :mod:`repro.native.ops` for the array-level
    wrappers the runtime actually uses.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        dll = ctypes.CDLL(str(path))
        abi = dll.repro_native_abi
        abi.argtypes = []
        abi.restype = ctypes.c_int64
        got = int(abi())
        if got != ABI_VERSION:
            raise NativeBuildError(
                f"cached kernel library {path} has ABI {got}, expected {ABI_VERSION}"
            )
        for name, argtypes in _SIGNATURES.items():
            fn = getattr(dll, name)
            fn.argtypes = argtypes
            fn.restype = None
            setattr(self, name.removeprefix("repro_"), fn)
        self._dll = dll


def find_compiler() -> str | None:
    """Absolute path of the first usable C compiler, or None.

    Honours ``$CC`` first, then falls back to ``cc``/``gcc``/``clang``.
    """
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand:
            path = shutil.which(cand)
            if path:
                return path
    return None


def cache_dir() -> Path:
    """The build cache directory (not created until a build needs it)."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _build_key(compiler: str) -> str:
    h = hashlib.sha256()
    h.update(_SOURCE.read_bytes())
    h.update(" ".join(CFLAGS).encode())
    h.update(sys.platform.encode())
    h.update(compiler.encode())
    h.update(str(ABI_VERSION).encode())
    return h.hexdigest()[:16]


def _compile(compiler: str, out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out.parent, prefix=out.stem, suffix=".so.tmp")
    os.close(fd)
    cmd = [compiler, *CFLAGS, "-o", tmp, str(_SOURCE)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        raise NativeBuildError(f"C compiler failed to run ({exc})") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        detail = (proc.stderr or proc.stdout or "").strip()
        raise NativeBuildError(
            f"C kernel compile failed (exit {proc.returncode}): {detail[:500]}"
        )
    os.replace(tmp, out)


# ----------------------------------------------------------------------
# Process-global build state
# ----------------------------------------------------------------------

_lib: KernelLib | None = None
_attempted = False
_built_here = False
_reason: str | None = None
_default_override: str | None = None


def _load() -> KernelLib:
    global _built_here
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found on PATH (tried $CC, cc, gcc, clang)"
        )
    so = cache_dir() / f"kernels-{_build_key(compiler)}.so"
    if not so.exists():
        _compile(compiler, so)
        _built_here = True
    try:
        return KernelLib(so)
    except (OSError, NativeBuildError):
        # A truncated or stale cache entry: evict, rebuild once.
        so.unlink(missing_ok=True)
        _compile(compiler, so)
        _built_here = True
        return KernelLib(so)


def get_kernels() -> KernelLib | None:
    """The loaded kernel library, building it on first use.

    Returns None when the library cannot be built — the reason is
    recorded (see :func:`native_status`) and the failed attempt is
    cached, so repeated calls stay cheap.
    """
    global _lib, _attempted, _reason
    if _lib is not None:
        return _lib
    if _attempted:
        return None
    _attempted = True
    try:
        _lib = _load()
    except NativeBuildError as exc:
        _reason = str(exc)
        _lib = None
    return _lib


def _reset_native_state() -> None:
    """Forget the loaded library, any failure reason, and the default
    override (test hook; the next use re-resolves from scratch)."""
    global _lib, _attempted, _built_here, _reason, _default_override
    _lib = None
    _attempted = False
    _built_here = False
    _reason = None
    _default_override = None


def set_default_backend(backend: str | None) -> None:
    """Override what ``backend=None`` resolves to in this process.

    ``None`` restores the environment-driven default.  Used by the CLI
    to honour ``--backend`` across code paths that do not thread the
    kwarg explicitly.
    """
    if backend is not None and backend not in BACKENDS:
        raise ConfigError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    global _default_override
    _default_override = backend


def _env_default() -> str:
    env = os.environ.get(FLAG_ENV)
    if env is None or env == "" or env == "1":
        return "auto"
    if env == "0":
        return "numpy"
    raise ConfigError(f"{FLAG_ENV} must be '0' or '1', got {env!r}")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a ``backend`` kwarg to a concrete ``"numpy"``/``"native"``.

    ``None`` defers to :func:`set_default_backend` and then the
    ``REPRO_NATIVE`` environment flag; ``"auto"`` picks native when the
    kernel library is available and silently falls back otherwise (the
    reason is recorded in :func:`native_status`).  An explicit
    ``"native"`` that cannot be satisfied raises
    :class:`~repro.errors.ConfigError`.
    """
    if backend is None:
        backend = _default_override or _env_default()
    if backend == "numpy":
        return "numpy"
    if backend == "native":
        if get_kernels() is None:
            raise ConfigError(f"native backend unavailable: {_reason}")
        return "native"
    if backend == "auto":
        return "native" if get_kernels() is not None else "numpy"
    raise ConfigError(
        f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
    )


def native_status() -> dict:
    """Everything a user needs to tell which backend actually runs.

    Forces one build attempt (so ``kernels_built`` is meaningful) and
    reports: the compiler found, the cache directory, the loaded ``.so``
    path, what the default ``backend=None`` resolves to, and — when the
    native path is unavailable — the recorded reason.
    """
    lib = get_kernels()
    try:
        default = resolve_backend(None)
    except ConfigError as exc:  # explicit default "native" with no compiler
        default = f"error: {exc}"
    return {
        "available": lib is not None,
        "compiler": find_compiler(),
        "cache_dir": str(cache_dir()),
        "so_path": str(lib.path) if lib is not None else None,
        "built_this_process": _built_here,
        "default_backend": default,
        "reason": _reason,
    }
