"""On-demand build cache and dispatch policy for the native C kernels.

The reproduction environment has no network and no numba/Cython, but it
does ship a C compiler — so the native backend compiles its own tiny
kernel library (``kernels.c``) on first use with the host ``cc`` into a
content-hash-named shared object under a build cache directory, and
loads it via :mod:`ctypes`.

Cache key anatomy (the ``.so`` file name)::

    kernels-<sha256(source ‖ cflags ‖ platform ‖ compiler path ‖ abi)[:16]>.so

Any change to the C source, the flags, the interpreter's platform or
the compiler selection produces a new name, so stale libraries are
never picked up; unused old entries are harmless files in the cache.
The cache directory is ``$REPRO_NATIVE_CACHE`` when set, else
``$XDG_CACHE_HOME/repro-native`` (``~/.cache/repro-native``).  Builds
write to a temp name in the cache dir and ``os.replace`` into place, so
concurrent processes race benignly.

Backend resolution (:func:`resolve_backend`) maps the user-facing
``backend`` kwarg plus the ``REPRO_NATIVE`` environment flag onto a
concrete kernel choice:

- ``backend="numpy"`` / ``"native"`` — explicit; ``"native"`` raises
  :class:`~repro.errors.ConfigError` when the library cannot be built;
- ``backend="auto"`` (and the default ``None`` with ``REPRO_NATIVE``
  unset or ``1``) — native when a compiler is available, else a
  *silent* fall back to the NumPy kernels with the reason recorded in
  :func:`native_status`;
- ``REPRO_NATIVE=0`` — the default becomes ``"numpy"`` (explicit
  kwargs still win).

Build state is process-global: one failed build attempt is remembered
(with its reason) instead of re-running the compiler on every apply.

Sanitizer variant: ``get_kernels(sanitize=True)`` (or the environment
flag ``REPRO_NATIVE_SANITIZE=1``, which flips the default so *every*
native consumer in the process — including forked pool workers — runs
the instrumented library) builds the same source with
``-fsanitize=address,undefined``.  The variant gets its own
content-hash cache key (the flags are hashed), its own build-state
slot, and a **subprocess load probe**: an ASan runtime linked into a
``dlopen``-ed library can abort the host interpreter outright on
unsupported toolchains, so the library is first loaded in a throwaway
``python -c`` child; a probe failure is recorded as the skip reason
(surfaced via :func:`native_status` and the ``sanitize``-marked tests)
instead of taking the test process down.  ``ASAN_OPTIONS`` gains
``verify_asan_link_order=0`` (the runtime arrives by ``dlopen``, not
``LD_PRELOAD``) and ``detect_leaks=0`` (CPython's arenas are not this
suite's bug surface) before either load.

``REPRO_NATIVE_DEBUG=1`` enables the ctypes pre-call bounds validator
in :mod:`repro.native.ops` — pure-Python index/size validation ahead
of every kernel call, the cheap cousin of the sanitizer build.  Both
env flags are read here and nowhere else (lint rule ``REP004``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from repro import obs
from repro.errors import ConfigError, NativeBuildError

__all__ = [
    "BACKENDS",
    "CACHE_ENV",
    "DEBUG_ENV",
    "FLAG_ENV",
    "SANITIZE_ENV",
    "KernelLib",
    "cache_dir",
    "debug_bounds_enabled",
    "find_compiler",
    "get_kernels",
    "native_status",
    "resolve_backend",
    "sanitize_default",
    "set_default_backend",
]

CACHE_ENV = "REPRO_NATIVE_CACHE"
FLAG_ENV = "REPRO_NATIVE"
SANITIZE_ENV = "REPRO_NATIVE_SANITIZE"
DEBUG_ENV = "REPRO_NATIVE_DEBUG"
BACKENDS = ("auto", "numpy", "native")

ABI_VERSION = 1
CFLAGS = ("-std=c99", "-O3", "-fPIC", "-shared", "-ffp-contract=off")
# The sanitizer variant keeps -ffp-contract=off and the same loop code,
# so its outputs stay bit-identical; -O1 keeps ASan shadow checks fast
# to compile while preserving line-accurate UBSan reports.
SANITIZE_CFLAGS = (
    "-std=c99", "-O1", "-g", "-fno-omit-frame-pointer", "-fPIC", "-shared",
    "-ffp-contract=off", "-fsanitize=address,undefined",
)
_VARIANT_CFLAGS = {"std": CFLAGS, "sanitize": SANITIZE_CFLAGS}
_ASAN_OPTIONS = "verify_asan_link_order=0:detect_leaks=0"

_SOURCE = Path(__file__).with_name("kernels.c")

_F64 = ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64 = ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_SIGNATURES = {
    "repro_gather_mul_scatter": [ctypes.c_int64, _F64, _I64, _F64, _I64, _F64],
    "repro_scatter_add": [ctypes.c_int64, _I64, _F64, _F64],
    "repro_gather_mul_scatter_many": [
        ctypes.c_int64, ctypes.c_int64, _F64, _I64, _F64, _I64, _F64,
    ],
    "repro_scatter_add_many": [ctypes.c_int64, ctypes.c_int64, _I64, _F64, _F64],
}


class KernelLib:
    """The loaded kernel library: bound, signature-checked entry points.

    ``gather_mul_scatter(n, vals, cols, x, idx, acc)`` and friends are
    raw ctypes functions — callers pass C-contiguous float64/int64
    arrays (enforced by the ``ndpointer`` signatures) and own all
    allocation; see :mod:`repro.native.ops` for the array-level
    wrappers the runtime actually uses.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        dll = ctypes.CDLL(str(path))
        abi = dll.repro_native_abi
        abi.argtypes = []
        abi.restype = ctypes.c_int64
        got = int(abi())
        if got != ABI_VERSION:
            raise NativeBuildError(
                f"cached kernel library {path} has ABI {got}, expected {ABI_VERSION}"
            )
        for name, argtypes in _SIGNATURES.items():
            fn = getattr(dll, name)
            fn.argtypes = argtypes
            fn.restype = None
            setattr(self, name.removeprefix("repro_"), fn)
        self._dll = dll


def find_compiler() -> str | None:
    """Absolute path of the first usable C compiler, or None.

    Honours ``$CC`` first, then falls back to ``cc``/``gcc``/``clang``.
    """
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand:
            path = shutil.which(cand)
            if path:
                return path
    return None


def cache_dir() -> Path:
    """The build cache directory (not created until a build needs it)."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-native"


def _build_key(compiler: str, cflags: tuple = CFLAGS) -> str:
    h = hashlib.sha256()
    h.update(_SOURCE.read_bytes())
    h.update(" ".join(cflags).encode())
    h.update(sys.platform.encode())
    h.update(compiler.encode())
    h.update(str(ABI_VERSION).encode())
    return h.hexdigest()[:16]


def _compile(compiler: str, out: Path, cflags: tuple = CFLAGS) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out.parent, prefix=out.stem, suffix=".so.tmp")
    os.close(fd)
    cmd = [compiler, *cflags, "-o", tmp, str(_SOURCE)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        raise NativeBuildError(f"C compiler failed to run ({exc})") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        detail = (proc.stderr or proc.stdout or "").strip()
        raise NativeBuildError(
            f"C kernel compile failed (exit {proc.returncode}): {detail[:500]}"
        )
    os.replace(tmp, out)


# ----------------------------------------------------------------------
# Process-global build state (one slot per build variant)
# ----------------------------------------------------------------------


def _fresh_state() -> dict:
    return {
        v: {"lib": None, "attempted": False, "built": False, "reason": None}
        for v in _VARIANT_CFLAGS
    }


_state = _fresh_state()
_default_override: str | None = None


def _asan_preconfigured() -> bool:
    """Whether this interpreter was *started* with a usable ASAN_OPTIONS.

    The ASan runtime reads its options straight from
    ``/proc/self/environ`` during initialization, so a runtime
    ``os.environ`` write is invisible to it — only the exec-time
    environment counts.  Without ``verify_asan_link_order=0`` a
    ``dlopen``-ed ASan runtime aborts the whole process.
    """
    try:
        raw = Path("/proc/self/environ").read_bytes()
    except OSError:  # pragma: no cover - non-procfs platform
        return "verify_asan_link_order=0" in os.environ.get("ASAN_OPTIONS", "")
    for chunk in raw.split(b"\0"):
        if chunk.startswith(b"ASAN_OPTIONS="):
            return b"verify_asan_link_order=0" in chunk
    return False


def _probe_load(so: Path) -> None:
    """Try ``dlopen`` in a throwaway child before this process commits.

    A sanitizer runtime that cannot initialize under ``dlopen`` aborts
    the host; probing in a subprocess converts that abort into a
    recorded skip reason.
    """
    env = dict(os.environ, ASAN_OPTIONS=_ASAN_OPTIONS)
    code = f"import ctypes; ctypes.CDLL({str(so)!r})"
    try:
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60, env=env,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise NativeBuildError(f"load probe failed to run ({exc})") from exc
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout or "").strip()
        raise NativeBuildError(
            f"sanitized library failed the load probe "
            f"(exit {proc.returncode}): {detail[:500]}"
        )


def _load(variant: str) -> KernelLib:
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found on PATH (tried $CC, cc, gcc, clang)"
        )
    cflags = _VARIANT_CFLAGS[variant]
    so = cache_dir() / f"kernels-{_build_key(compiler, cflags)}.so"
    if not so.exists():
        with obs.span("native.build", variant=variant, compiler=compiler):
            _compile(compiler, so, cflags)
        _state[variant]["built"] = True
    else:
        obs.event("native.cache_hit", variant=variant, so=so.name)
    if variant == "sanitize":
        # The ASan/UBSan runtimes arrive via dlopen; probe in a child
        # (with ASAN_OPTIONS in its exec-time env) first, and refuse the
        # in-process load unless *this* interpreter was started with the
        # option — ASan reads /proc/self/environ at init, so setting it
        # now would not prevent the abort.
        os.environ["ASAN_OPTIONS"] = _ASAN_OPTIONS  # for exec'd children
        _probe_load(so)
        if not _asan_preconfigured():
            raise NativeBuildError(
                "sanitized library builds and probe-loads, but this "
                "interpreter was not started with "
                f"ASAN_OPTIONS={_ASAN_OPTIONS} — an in-process dlopen "
                "would abort; re-run under that environment (the "
                "sanitize test tier spawns such a child)"
            )
    try:
        return KernelLib(so)
    except (OSError, NativeBuildError):
        # A truncated or stale cache entry: evict, rebuild once.
        so.unlink(missing_ok=True)
        obs.event("native.cache_evict", variant=variant, so=so.name)
        with obs.span("native.build", variant=variant, compiler=compiler):
            _compile(compiler, so, cflags)
        _state[variant]["built"] = True
        return KernelLib(so)


def sanitize_default() -> bool:
    """Whether ``REPRO_NATIVE_SANITIZE=1`` makes the sanitized build the
    process default (the flag is read here and nowhere else)."""
    env = os.environ.get(SANITIZE_ENV)
    if env in (None, "", "0"):
        return False
    if env == "1":
        return True
    raise ConfigError(f"{SANITIZE_ENV} must be '0' or '1', got {env!r}")


def debug_bounds_enabled() -> bool:
    """Whether ``REPRO_NATIVE_DEBUG=1`` enables the ctypes pre-call
    bounds validator in :mod:`repro.native.ops`."""
    return os.environ.get(DEBUG_ENV) == "1"


def get_kernels(sanitize: bool | None = None) -> KernelLib | None:
    """The loaded kernel library, building it on first use.

    ``sanitize=True`` selects the ASan/UBSan build variant (its own
    cache entry and failure slot); ``None`` defers to the
    ``REPRO_NATIVE_SANITIZE`` flag.  Returns None when the requested
    variant cannot be built or loaded — the reason is recorded (see
    :func:`native_status`) and the failed attempt is cached, so
    repeated calls stay cheap.
    """
    variant = "sanitize" if (sanitize_default() if sanitize is None else sanitize) else "std"
    slot = _state[variant]
    if slot["lib"] is not None:
        return slot["lib"]
    if slot["attempted"]:
        return None
    slot["attempted"] = True
    try:
        slot["lib"] = _load(variant)
    except NativeBuildError as exc:
        slot["reason"] = str(exc)
        slot["lib"] = None
    return slot["lib"]


def _reset_native_state() -> None:
    """Forget the loaded libraries, any failure reasons, and the default
    override (test hook; the next use re-resolves from scratch)."""
    global _state, _default_override
    _state = _fresh_state()
    _default_override = None


def set_default_backend(backend: str | None) -> None:
    """Override what ``backend=None`` resolves to in this process.

    ``None`` restores the environment-driven default.  Used by the CLI
    to honour ``--backend`` across code paths that do not thread the
    kwarg explicitly.
    """
    if backend is not None and backend not in BACKENDS:
        raise ConfigError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    global _default_override
    _default_override = backend


def _env_default() -> str:
    env = os.environ.get(FLAG_ENV)
    if env is None or env == "" or env == "1":
        return "auto"
    if env == "0":
        return "numpy"
    raise ConfigError(f"{FLAG_ENV} must be '0' or '1', got {env!r}")


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a ``backend`` kwarg to a concrete ``"numpy"``/``"native"``.

    ``None`` defers to :func:`set_default_backend` and then the
    ``REPRO_NATIVE`` environment flag; ``"auto"`` picks native when the
    kernel library is available and silently falls back otherwise (the
    reason is recorded in :func:`native_status`).  An explicit
    ``"native"`` that cannot be satisfied raises
    :class:`~repro.errors.ConfigError`.
    """
    if backend is None:
        backend = _default_override or _env_default()
    if backend == "numpy":
        return "numpy"
    if backend == "native":
        if get_kernels() is None:
            variant = "sanitize" if sanitize_default() else "std"
            raise ConfigError(
                f"native backend unavailable: {_state[variant]['reason']}"
            )
        return "native"
    if backend == "auto":
        return "native" if get_kernels() is not None else "numpy"
    raise ConfigError(
        f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
    )


def native_status() -> dict:
    """Everything a user needs to tell which backend actually runs.

    Forces one build attempt (so ``kernels_built`` is meaningful) and
    reports: the compiler found, the cache directory, the loaded ``.so``
    path, what the default ``backend=None`` resolves to, and — when the
    native path is unavailable — the recorded reason.
    """
    lib = get_kernels()
    variant = "sanitize" if sanitize_default() else "std"
    try:
        default = resolve_backend(None)
    except ConfigError as exc:  # explicit default "native" with no compiler
        default = f"error: {exc}"
    return {
        "available": lib is not None,
        "compiler": find_compiler(),
        "cache_dir": str(cache_dir()),
        "so_path": str(lib.path) if lib is not None else None,
        "built_this_process": _state[variant]["built"],
        "default_backend": default,
        "reason": _state[variant]["reason"],
        "variant": variant,
        "sanitize_attempted": _state["sanitize"]["attempted"],
        "sanitize_reason": _state["sanitize"]["reason"],
        "debug_bounds": debug_bounds_enabled(),
    }
