"""Array-level wrappers over the native kernel library.

Each function mirrors one NumPy formulation used by the compiled
runtime and produces bit-identical float64 results (same element
order, same rounding — see ``kernels.c``).  All take the loaded
:class:`~repro.native.build.KernelLib` first; callers resolve the
backend and fetch the library once (per plan / per worker), so the per
-apply overhead is a handful of ctypes calls.

``group`` arguments are ``(index, length)`` pairs produced by
:func:`compact_group` from a duck-typed group plan with the
:class:`repro.runtime.plan._GroupPlan` fields (``mode``, ``index``,
``length``, ``take``); this module deliberately does not import the
runtime, so the dependency points one way (runtime → native; lint rule
``REP007``).

With ``REPRO_NATIVE_DEBUG=1`` (resolved by
:func:`repro.native.build.debug_bounds_enabled` — the flag is never
read here) every wrapper validates its index arrays and size contracts
*before* crossing the ctypes boundary, raising
:class:`~repro.errors.VerificationError` instead of letting the C
loops write out of bounds.  This is the pure-Python complement of the
``sanitize=True`` build: the sanitizer catches what validation cannot
model, validation gives exact array-level diagnostics the sanitizer
cannot phrase.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VerificationError
from repro.native import build as _build

__all__ = [
    "compact_group",
    "fused_group_gather",
    "fused_group_gather_many",
    "group_apply",
    "group_apply_many",
    "scatter_products",
    "scatter_products_many",
    "scatter_sum",
    "scatter_sum_many",
]


def _validate(kernel: str, n: int, *index_specs) -> None:
    """Debug-mode pre-call validator: each ``(name, idx, bound, size)``
    spec asserts ``idx`` is a size-``size`` int array into ``[0, bound)``.

    Runs only under ``REPRO_NATIVE_DEBUG=1``; the kernels themselves
    perform no checks (that is what makes them fast), so this is the
    last line before raw shared-memory writes.
    """
    for name, idx, bound, size in index_specs:
        idx = np.asarray(idx)
        if idx.size != size:
            raise VerificationError(
                f"native {kernel}: {name} has {idx.size} entries, "
                f"expected {size}"
            )
        if idx.size and not (int(idx.min()) >= 0 and int(idx.max()) < bound):
            raise VerificationError(
                f"native {kernel}: {name} indexes outside [0, {bound}) "
                f"(min {idx.min()}, max {idx.max()}) — refusing to enter "
                f"the unchecked C loop over {n} items"
            )


def _f64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.float64)


def _i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def compact_group(gp) -> tuple[np.ndarray, int]:
    """Densify a group plan to ``(index, n_groups)`` for the C kernels.

    Hist-mode plans scatter into a key-*span*-sized accumulator and
    gather the surviving bins afterwards (``sums[take]``) — fine for
    one ``np.bincount`` call, but for the native path the span alloc
    (often 10× the item count) and the take gather dominate.  Ranking
    each key among the surviving bins (``searchsorted(take, index)``)
    lets the kernel scatter straight into a dense ``take.size``
    accumulator with no post-gather.  Bit-identity is preserved: the
    elements of each output group still accumulate in exactly the same
    input order, so every per-group sum performs the identical FP
    additions.  Scatter-mode indices are already dense.  Precompute
    once per plan (this is O(n log n)); applies then reuse the pair.
    """
    if gp.mode == "hist":
        return _i64(np.searchsorted(gp.take, gp.index)), int(gp.take.size)
    return _i64(gp.index), int(gp.length)


def fused_group_gather(lib, group, vals, cols, x) -> np.ndarray:
    """``gp.apply(vals * x[cols])`` without the two temporaries."""
    idx, length = group
    if _build.debug_bounds_enabled():
        _validate(
            "gather_mul_scatter", vals.size,
            ("cols", cols, x.size, vals.size),
            ("group index", idx, length, vals.size),
        )
    acc = np.zeros(length)
    lib.gather_mul_scatter(vals.size, _f64(vals), _i64(cols), _f64(x), idx, acc)
    return acc


def group_apply(lib, group, values) -> np.ndarray:
    """``gp.apply(values)``: one index-order scatter-add pass."""
    idx, length = group
    if _build.debug_bounds_enabled():
        _validate(
            "scatter_add", values.size,
            ("group index", idx, length, values.size),
        )
    acc = np.zeros(length)
    lib.scatter_add(values.size, idx, _f64(values), acc)
    return acc


def scatter_products(lib, rows, vals, cols, x, nrows: int) -> np.ndarray:
    """``np.bincount(rows, weights=vals * x[cols], minlength=nrows)``."""
    if _build.debug_bounds_enabled():
        _validate(
            "gather_mul_scatter", vals.size,
            ("rows", rows, nrows, vals.size),
            ("cols", cols, x.size, vals.size),
        )
    y = np.zeros(nrows)
    lib.gather_mul_scatter(vals.size, _f64(vals), _i64(cols), _f64(x), _i64(rows), y)
    return y


def scatter_sum(lib, rows, values, nrows: int) -> np.ndarray:
    """``np.bincount(rows, weights=values, minlength=nrows)``."""
    if _build.debug_bounds_enabled():
        _validate(
            "scatter_add", values.size,
            ("rows", rows, nrows, values.size),
        )
    out = np.zeros(nrows)
    lib.scatter_add(values.size, _i64(rows), _f64(values), out)
    return out


# ---------------------------------------------------------------- batched


def fused_group_gather_many(lib, group, vals, cols, xs) -> np.ndarray:
    """Batched :func:`fused_group_gather` over ``xs`` of shape (ncols, r)."""
    idx, length = group
    r = xs.shape[1]
    if _build.debug_bounds_enabled():
        _validate(
            "gather_mul_scatter_many", vals.size,
            ("cols", cols, xs.shape[0], vals.size),
            ("group index", idx, length, vals.size),
        )
    acc = np.zeros((length, r))
    lib.gather_mul_scatter_many(
        vals.size, r, _f64(vals), _i64(cols), _f64(xs), idx, acc
    )
    return acc


def group_apply_many(lib, group, values) -> np.ndarray:
    """Batched :func:`group_apply` over ``values`` of shape (items, r)."""
    idx, length = group
    if _build.debug_bounds_enabled():
        _validate(
            "scatter_add_many", values.shape[0],
            ("group index", idx, length, values.shape[0]),
        )
    acc = np.zeros((length, values.shape[1]))
    lib.scatter_add_many(values.shape[0], values.shape[1], idx, _f64(values), acc)
    return acc


def scatter_products_many(lib, rows, vals, cols, xs, nrows: int) -> np.ndarray:
    """Batched :func:`scatter_products` over ``xs`` of shape (ncols, r)."""
    if _build.debug_bounds_enabled():
        _validate(
            "gather_mul_scatter_many", vals.size,
            ("rows", rows, nrows, vals.size),
            ("cols", cols, xs.shape[0], vals.size),
        )
    y = np.zeros((nrows, xs.shape[1]))
    lib.gather_mul_scatter_many(
        vals.size, xs.shape[1], _f64(vals), _i64(cols), _f64(xs), _i64(rows), y
    )
    return y


def scatter_sum_many(lib, rows, values, nrows: int) -> np.ndarray:
    """Batched :func:`scatter_sum` over ``values`` of shape (items, r)."""
    if _build.debug_bounds_enabled():
        _validate(
            "scatter_add_many", values.shape[0],
            ("rows", rows, nrows, values.shape[0]),
        )
    out = np.zeros((nrows, values.shape[1]))
    lib.scatter_add_many(values.shape[0], values.shape[1], _i64(rows), _f64(values), out)
    return out
