"""Native C kernel backend for the compiled SpMV runtime.

The compiled :class:`~repro.runtime.CommPlan` reduced every multiply
to a handful of NumPy gathers and scatter-sums, but each of those is
still a multi-pass, temporary-allocating operation; on the bench
matrices ``plan.apply`` sat ~5–6× above the raw single-core scipy CSR
floor.  This package closes most of that gap with four tiny C loops
(``kernels.c``) that fuse gather → multiply → group-sum scatter into
single passes, compiled on demand with the host ``cc`` into a
content-hash-named ``.so`` under a build cache (``build.py``), loaded
via :mod:`ctypes`, and dispatched behind a feature flag:

- ``backend="numpy" | "native" | "auto"`` kwargs on
  :meth:`~repro.runtime.CommPlan.apply` /
  :meth:`~repro.runtime.CommPlan.apply_many`, the solvers, the
  :class:`~repro.engine.PartitionEngine` and the parallel executor;
- the ``REPRO_NATIVE`` environment flag (``0`` forces NumPy, ``1`` or
  unset prefers native where a compiler exists);
- when no compiler is available, ``auto`` silently falls back to the
  NumPy kernels and records the reason (``native_status()``, surfaced
  by the CLI ``native-info`` subcommand).

The C accumulations iterate in index order, so every sum reproduces
``np.bincount``/``np.add.at`` element order bit for bit — the golden
y/ledger/flops pins hold unchanged under the native backend.
"""

from repro.native import ops
from repro.native.build import (
    BACKENDS,
    CACHE_ENV,
    DEBUG_ENV,
    FLAG_ENV,
    SANITIZE_ENV,
    KernelLib,
    cache_dir,
    debug_bounds_enabled,
    find_compiler,
    get_kernels,
    native_status,
    resolve_backend,
    sanitize_default,
    set_default_backend,
)

__all__ = [
    "BACKENDS",
    "CACHE_ENV",
    "DEBUG_ENV",
    "FLAG_ENV",
    "SANITIZE_ENV",
    "KernelLib",
    "cache_dir",
    "debug_bounds_enabled",
    "find_compiler",
    "get_kernels",
    "native_status",
    "ops",
    "resolve_backend",
    "sanitize_default",
    "set_default_backend",
]
