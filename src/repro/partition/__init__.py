"""Matrix partitioning schemes.

The baseline schemes of the paper's experimental section:

- :mod:`repro.partition.types` — the partition dataclasses shared by
  every scheme;
- :mod:`repro.partition.vector` — vector (x/y) partition strategies;
- :mod:`repro.partition.oned` — 1D rowwise / columnwise partitioning
  via the column-net / row-net hypergraph models;
- :mod:`repro.partition.finegrain` — 2D fine-grain (nonzero-based)
  partitioning;
- :mod:`repro.partition.checkerboard` — 2D-b Cartesian (checkerboard)
  partitioning with multi-constraint column partitioning;
- :mod:`repro.partition.boman` — 1D-b, the Boman-style post-processing
  of a 1D partition onto a virtual processor mesh.

The s2D schemes (the paper's contribution) live in :mod:`repro.core`.
Every scheme here is also registered with the unified
:class:`repro.engine.PartitionEngine` pipeline, which memoizes the
intermediates schemes share; prefer ``PartitionEngine(a).plan(name, k)``
when running several schemes on one matrix.
"""

from repro.partition.boman import partition_1d_boman
from repro.partition.checkerboard import mesh_shape, partition_checkerboard
from repro.partition.finegrain import partition_2d_finegrain
from repro.partition.mondriaan import partition_mondriaan
from repro.partition.oned import (
    partition_1d_block_rows,
    partition_1d_columnwise,
    partition_1d_random_rows,
    partition_1d_rowwise,
)
from repro.partition.types import SpMVPartition, VectorPartition
from repro.partition.vector import conformal_x_partition, symmetric_vector_partition


def plan(a, method: str, nparts: int, **kwargs) -> "SpMVPartition":
    """One-shot engine plan: build ``method`` on ``a`` at ``nparts``.

    Convenience for scripts that want a single partition; when running
    several methods on one matrix, construct a
    :class:`repro.engine.PartitionEngine` directly so the shared
    intermediates are reused.  (Imported lazily to keep the package
    import graph acyclic.)
    """
    from repro.engine import PartitionEngine

    return PartitionEngine(a).plan(method, nparts, **kwargs).partition


__all__ = [
    "plan",
    "SpMVPartition",
    "VectorPartition",
    "partition_1d_rowwise",
    "partition_1d_columnwise",
    "partition_1d_block_rows",
    "partition_1d_random_rows",
    "partition_2d_finegrain",
    "partition_mondriaan",
    "partition_checkerboard",
    "partition_1d_boman",
    "mesh_shape",
    "conformal_x_partition",
    "symmetric_vector_partition",
]
