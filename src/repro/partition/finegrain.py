"""2D fine-grain partitioning (the paper's ``2D`` baseline).

The row-column-net model of Çatalyürek & Aykanat (2001): one hypergraph
vertex per nonzero, one net per row and per column.  A K-way vertex
partition is an unconstrained 2D nonzero distribution whose
connectivity-1 cut equals the total expand+fold volume.
"""

from __future__ import annotations

from repro.hypergraph import PartitionConfig, fine_grain_model, partition_kway
from repro.partition.types import SpMVPartition, VectorPartition
from repro.sparse.coo import canonical_coo

__all__ = ["partition_2d_finegrain"]


def partition_2d_finegrain(
    a, nparts: int, config: PartitionConfig | None = None
) -> SpMVPartition:
    """Fine-grain 2D partition of ``a`` into ``nparts``."""
    m = canonical_coo(a)
    model = fine_grain_model(m)
    part = partition_kway(model.hypergraph, nparts, config)
    nnz_part, x_part, y_part = model.decode(part, nparts)
    vectors = VectorPartition(x_part=x_part, y_part=y_part, nparts=nparts)
    return SpMVPartition(matrix=m, nnz_part=nnz_part, vectors=vectors, kind="2D")
