"""Partition dataclasses shared by every scheme.

A complete SpMV data distribution is (i) a vector partition — who owns
each ``x_j`` and each ``y_i`` — and (ii) a nonzero partition aligned
with the canonical COO triplets of the matrix.  The s2D *admissibility*
predicate of the paper's Problem 1 (``π(a_ij) ∈ {π(y_i), π(x_j)}``) is
a method here so every scheme can be audited uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.sparse.blocks import BlockStructure
from repro.sparse.coo import canonical_coo

__all__ = ["VectorPartition", "SpMVPartition"]


@dataclass(frozen=True)
class VectorPartition:
    """K-way ownership of the input vector ``x`` and output vector ``y``."""

    x_part: np.ndarray
    y_part: np.ndarray
    nparts: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "x_part", np.asarray(self.x_part, dtype=np.int64))
        object.__setattr__(self, "y_part", np.asarray(self.y_part, dtype=np.int64))
        for name, arr in (("x_part", self.x_part), ("y_part", self.y_part)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.nparts):
                raise PartitionError(f"{name} has part ids outside [0, {self.nparts})")

    @property
    def n(self) -> int:
        """Input-vector length."""
        return int(self.x_part.size)

    @property
    def m(self) -> int:
        """Output-vector length."""
        return int(self.y_part.size)

    def is_symmetric(self) -> bool:
        """True when x and y are partitioned identically (square case)."""
        return self.x_part.size == self.y_part.size and bool(
            np.array_equal(self.x_part, self.y_part)
        )


@dataclass
class SpMVPartition:
    """A full SpMV data distribution: matrix nonzeros + both vectors.

    ``nnz_part[t]`` is the owner of the t-th canonical COO nonzero of
    ``matrix``.  ``kind`` is a human-readable scheme tag ("1D", "2D",
    "s2D", "2D-b", "1D-b", "s2D-mg", ...), carried through to reports.
    """

    matrix: sp.coo_matrix
    nnz_part: np.ndarray
    vectors: VectorPartition
    kind: str = "custom"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.matrix = canonical_coo(self.matrix)
        self.nnz_part = np.asarray(self.nnz_part, dtype=np.int64)
        if self.nnz_part.size != self.matrix.nnz:
            raise PartitionError(
                f"nnz_part has {self.nnz_part.size} entries for a matrix with "
                f"{self.matrix.nnz} nonzeros"
            )
        k = self.vectors.nparts
        if self.nnz_part.size and (self.nnz_part.min() < 0 or self.nnz_part.max() >= k):
            raise PartitionError(f"nnz_part has part ids outside [0, {k})")
        m, n = self.matrix.shape
        if self.vectors.m != m or self.vectors.n != n:
            raise PartitionError(
                f"vector partition sized ({self.vectors.m}, {self.vectors.n}) does "
                f"not match matrix shape ({m}, {n})"
            )

    # ------------------------------------------------------------------

    @property
    def nparts(self) -> int:
        return self.vectors.nparts

    def block_structure(self) -> BlockStructure:
        """The K×K block view under this partition's vectors."""
        return BlockStructure(
            self.matrix.row,
            self.matrix.col,
            self.vectors.x_part,
            self.vectors.y_part,
            self.nparts,
        )

    def loads(self) -> np.ndarray:
        """Per-processor computational load = number of owned nonzeros
        (eq. 7 of the paper)."""
        w = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(w, self.nnz_part, 1)
        return w

    def load_imbalance(self) -> float:
        """``max_k W_k / W_avg − 1`` (the paper's LI, before the ×100%)."""
        w = self.loads().astype(np.float64)
        avg = w.sum() / self.nparts
        return float(w.max() / avg - 1.0) if avg > 0 else 0.0

    # ------------------------------------------------------------------

    def is_s2d_admissible(self) -> bool:
        """Problem 1 predicate: every nonzero lives with its x or y owner."""
        row_owner = self.vectors.y_part[self.matrix.row]
        col_owner = self.vectors.x_part[self.matrix.col]
        return bool(
            np.all((self.nnz_part == row_owner) | (self.nnz_part == col_owner))
        )

    def validate_s2d(self) -> None:
        """Raise :class:`PartitionError` if not s2D-admissible."""
        if not self.is_s2d_admissible():
            row_owner = self.vectors.y_part[self.matrix.row]
            col_owner = self.vectors.x_part[self.matrix.col]
            bad = np.flatnonzero(
                (self.nnz_part != row_owner) & (self.nnz_part != col_owner)
            )
            t = int(bad[0])
            raise PartitionError(
                f"nonzero ({self.matrix.row[t]}, {self.matrix.col[t]}) assigned to "
                f"P{self.nnz_part[t]}, but y-owner is P{row_owner[t]} and x-owner "
                f"is P{col_owner[t]} ({bad.size} violations total)"
            )

    def is_1d_rowwise(self) -> bool:
        """True when every nonzero lives with its y owner."""
        return bool(np.all(self.nnz_part == self.vectors.y_part[self.matrix.row]))

    def is_1d_columnwise(self) -> bool:
        """True when every nonzero lives with its x owner."""
        return bool(np.all(self.nnz_part == self.vectors.x_part[self.matrix.col]))
