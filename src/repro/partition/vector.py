"""Vector-partition strategies.

The s2D method takes an input- and output-vector partition as *given*
(Problem 1) and the paper derives them from a 1D rowwise partition:
``y`` follows the rows, and ``x`` is chosen conformally.  For square
matrices the conformal choice is the symmetric one (``x_j`` with row
``j``); for rectangular matrices each ``x_j`` goes to the part that
holds the most nonzeros of column ``j`` — a consumer of ``x_j`` —
falling back to the least-loaded part for empty columns.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.partition.types import VectorPartition
from repro.sparse.coo import coo_triplets

__all__ = ["symmetric_vector_partition", "conformal_x_partition", "vector_partition_from_rows"]


def symmetric_vector_partition(part: np.ndarray, nparts: int) -> VectorPartition:
    """x and y both follow ``part`` (square matrices only)."""
    part = np.asarray(part, dtype=np.int64)
    return VectorPartition(x_part=part.copy(), y_part=part.copy(), nparts=nparts)


def conformal_x_partition(a, y_part: np.ndarray, nparts: int) -> np.ndarray:
    """Choose an x partition conformal with a row (y) partition.

    Each column's x-entry goes to the y-part owning the plurality of the
    column's nonzeros; ties break toward the lower part id (stable), and
    empty columns are dealt round-robin by column index.
    """
    rows, cols, _ = coo_triplets(a)
    m, n = a.shape
    y_part = np.asarray(y_part, dtype=np.int64)
    if y_part.size != m:
        raise PartitionError("y_part length must equal the number of rows")
    counts = np.zeros((n, nparts), dtype=np.int64)
    np.add.at(counts, (cols, y_part[rows]), 1)
    x_part = np.argmax(counts, axis=1).astype(np.int64)
    empty = counts.sum(axis=1) == 0
    x_part[empty] = np.flatnonzero(empty) % nparts
    return x_part


def vector_partition_from_rows(a, y_part: np.ndarray, nparts: int) -> VectorPartition:
    """Vector partition induced by a row partition.

    Square matrices get the symmetric partition (the paper's composite-
    model observation: symmetric vector partitions are desirable);
    rectangular ones get the conformal plurality assignment.
    """
    m, n = a.shape
    y_part = np.asarray(y_part, dtype=np.int64)
    if m == n:
        return VectorPartition(x_part=y_part.copy(), y_part=y_part, nparts=nparts)
    return VectorPartition(
        x_part=conformal_x_partition(a, y_part, nparts),
        y_part=y_part,
        nparts=nparts,
    )
