"""2D-b Cartesian (checkerboard) partitioning.

The hypergraph-based checkerboard scheme of Çatalyürek & Aykanat
(2001) / Çatalyürek, Aykanat & Uçar (2010): rows are partitioned into
``Pr`` stripes with the column-net model; columns are then partitioned
into ``Pc`` groups with a *multi-constraint* row-net model whose vertex
weights are vectors — the nonzero counts of the column within each row
stripe — so that every mesh cell (not just every column group) ends up
balanced.  Processor ``(r, c)`` of the ``Pr × Pc`` virtual mesh owns
block ``(stripe r) × (group c)``.

Expand messages travel within mesh columns (≤ Pr − 1 per processor)
and fold messages within mesh rows (≤ Pc − 1), which is the bounded-
latency property the paper's Tables III and VI exercise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hypergraph import PartitionConfig, column_net_model, partition_kway
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.types import SpMVPartition, VectorPartition
from repro.sparse.coo import canonical_coo, coo_triplets

__all__ = ["mesh_shape", "partition_checkerboard", "mesh_coords", "mesh_rank"]


def mesh_shape(nparts: int) -> tuple[int, int]:
    """Nearly square ``(Pr, Pc)`` with ``Pr · Pc = nparts``.

    Picks the factor pair closest to √K (the paper's meshes are square:
    16 = 4×4, 64 = 8×8, 256 = 16×16, 1024 = 32×32, 4096 = 64×64).
    """
    best = (1, nparts)
    for pr in range(1, int(np.sqrt(nparts)) + 1):
        if nparts % pr == 0:
            best = (pr, nparts // pr)
    return best


def mesh_coords(p: int, pc: int) -> tuple[int, int]:
    """Mesh coordinates ``(r, c)`` of processor ``p`` (row-major)."""
    return divmod(p, pc)


def mesh_rank(r: int, c: int, pc: int) -> int:
    """Processor id of mesh cell ``(r, c)``."""
    return r * pc + c


def _multiconstraint_column_groups(
    m, row_stripe: np.ndarray, pr: int, pc: int, config: PartitionConfig
) -> np.ndarray:
    """Partition columns into ``pc`` groups balancing all ``pr`` stripes.

    Vertices are columns; vertex weight is the ``pr``-vector of nonzero
    counts per stripe; nets are rows (a cut row-net means its x/fold
    traffic crosses column groups).
    """
    rows, cols, _ = coo_triplets(m)
    nrows, ncols = m.shape
    vweights = np.zeros((ncols, pr), dtype=np.int64)
    np.add.at(vweights, (cols, row_stripe[rows]), 1)
    order = np.argsort(rows, kind="stable")
    counts = np.bincount(rows, minlength=nrows)
    xpins = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=xpins[1:])
    hg = Hypergraph(
        xpins=xpins,
        pins=cols[order],
        vweights=vweights,
        ncosts=np.ones(nrows, dtype=np.int64),
    )
    return partition_kway(hg, pc, config)


def partition_checkerboard(
    a,
    nparts: int,
    config: PartitionConfig | None = None,
    shape: tuple[int, int] | None = None,
) -> SpMVPartition:
    """Checkerboard (2D-b) partition of ``a`` into ``nparts`` processors."""
    m = canonical_coo(a)
    nrows, ncols = m.shape
    config = config or PartitionConfig()
    pr, pc = shape if shape is not None else mesh_shape(nparts)
    if pr * pc != nparts:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {nparts} processors")

    stripe_cfg = config
    row_stripe = partition_kway(column_net_model(m), pr, stripe_cfg)
    col_group = _multiconstraint_column_groups(m, row_stripe, pr, pc, config)

    nnz_part = row_stripe[m.row] * pc + col_group[m.col]
    # Vector ownership on the mesh: y_i at (stripe(i), group(i)) and
    # x_j at (stripe(j), group(j)) for square matrices, so each vector
    # entry sits on the processor owning the matching diagonal block.
    if nrows == ncols:
        y_part = row_stripe * pc + col_group
        x_part = y_part.copy()
    else:
        y_part = row_stripe * pc + (np.arange(nrows, dtype=np.int64) % pc)
        x_part = (np.arange(ncols, dtype=np.int64) % pr) * pc + col_group
    vectors = VectorPartition(x_part=x_part, y_part=y_part, nparts=nparts)
    return SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=vectors,
        kind="2D-b",
        meta={"mesh": (pr, pc), "row_stripe": row_stripe, "col_group": col_group},
    )
