"""1D (rowwise and columnwise) partitioning.

The paper's ``1D`` baseline: the column-net hypergraph model of
Çatalyürek & Aykanat (1999) partitioned by the multilevel recursive
bisection engine, with the connectivity-1 cut equal to the expand
volume.  Block and random row partitions are provided as cheap
reference points and for tests.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph import PartitionConfig, column_net_model, partition_kway, row_net_model
from repro.partition.types import SpMVPartition, VectorPartition
from repro.partition.vector import vector_partition_from_rows
from repro.rng import as_generator
from repro.sparse.coo import canonical_coo

__all__ = [
    "partition_1d_rowwise",
    "partition_1d_columnwise",
    "partition_1d_block_rows",
    "partition_1d_random_rows",
    "rowwise_from_y_part",
]


def rowwise_from_y_part(a, y_part: np.ndarray, nparts: int) -> SpMVPartition:
    """The 1D rowwise partition induced by a given row ownership."""
    m = canonical_coo(a)
    vectors = vector_partition_from_rows(m, np.asarray(y_part, dtype=np.int64), nparts)
    nnz_part = vectors.y_part[m.row]
    return SpMVPartition(matrix=m, nnz_part=nnz_part, vectors=vectors, kind="1D")


def partition_1d_rowwise(
    a, nparts: int, config: PartitionConfig | None = None
) -> SpMVPartition:
    """Hypergraph-based 1D rowwise partition (the paper's ``1D``)."""
    m = canonical_coo(a)
    hg = column_net_model(m)
    y_part = partition_kway(hg, nparts, config)
    return rowwise_from_y_part(m, y_part, nparts)


def partition_1d_columnwise(
    a, nparts: int, config: PartitionConfig | None = None
) -> SpMVPartition:
    """Hypergraph-based 1D columnwise partition (row-net model)."""
    m = canonical_coo(a)
    hg = row_net_model(m)
    x_part = partition_kway(hg, nparts, config)
    mrows, ncols = m.shape
    if mrows == ncols:
        y_part = x_part.copy()
    else:
        # Rows follow the plurality of their nonzeros' x owners.
        counts = np.zeros((mrows, nparts), dtype=np.int64)
        np.add.at(counts, (m.row, x_part[m.col]), 1)
        y_part = np.argmax(counts, axis=1).astype(np.int64)
        empty = counts.sum(axis=1) == 0
        y_part[empty] = np.flatnonzero(empty) % nparts
    vectors = VectorPartition(x_part=x_part, y_part=y_part, nparts=nparts)
    nnz_part = x_part[m.col]
    return SpMVPartition(matrix=m, nnz_part=nnz_part, vectors=vectors, kind="1D-col")


def partition_1d_block_rows(a, nparts: int) -> SpMVPartition:
    """Contiguous equal-row blocks (no balance or volume optimisation)."""
    m = canonical_coo(a)
    nrows = m.shape[0]
    y_part = np.minimum(
        (np.arange(nrows, dtype=np.int64) * nparts) // max(nrows, 1), nparts - 1
    )
    return rowwise_from_y_part(m, y_part, nparts)


def partition_1d_random_rows(a, nparts: int, seed=None) -> SpMVPartition:
    """Uniformly random row assignment (worst-case-ish baseline)."""
    m = canonical_coo(a)
    rng = as_generator(seed)
    y_part = rng.integers(0, nparts, size=m.shape[0], dtype=np.int64)
    return rowwise_from_y_part(m, y_part, nparts)
