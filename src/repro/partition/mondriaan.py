"""Mondriaan-style orthogonal recursive bisection (Vastenhouw &
Bisseling 2005 — the paper's ref [18]).

A 2D nonzero partitioning obtained by recursively bisecting the current
nonzero set either *rowwise* (column-net model of the submatrix) or
*columnwise* (row-net model), whichever bisection cuts less; the split
direction is therefore data-driven per subproblem, giving the familiar
"Mondriaan painting" block structure.  Listed in the paper's related
work among the 2D methods that bound the number of messages per
processor; included here as an additional 2D baseline.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph import PartitionConfig
from repro.hypergraph.bisect import multilevel_bisect
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.models import _majority_owner
from repro.partition.types import SpMVPartition, VectorPartition
from repro.rng import as_generator, spawn
from repro.sparse.coo import canonical_coo

__all__ = ["partition_mondriaan"]


def _line_bisection(
    lines: np.ndarray,
    crosses: np.ndarray,
    frac0: float,
    epsilon: float,
    rng,
    config: PartitionConfig,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Bisect the distinct values of ``lines`` (rows or columns of the
    submatrix) minimizing cut nets over ``crosses`` (the other axis).

    Returns ``(side_of_nnz, cut, line_ids)``.
    """
    line_ids, line_idx = np.unique(lines, return_inverse=True)
    cross_ids, cross_idx = np.unique(crosses, return_inverse=True)
    nlines = line_ids.size
    vweights = np.bincount(line_idx, minlength=nlines).astype(np.int64)
    order = np.argsort(cross_idx, kind="stable")
    counts = np.bincount(cross_idx, minlength=cross_ids.size)
    xpins = np.zeros(cross_ids.size + 1, dtype=np.int64)
    np.cumsum(counts, out=xpins[1:])
    # Deduplicate pins per net (a line may hit a cross-line repeatedly
    # only via duplicate nonzeros, which canonical COO rules out).
    hg = Hypergraph(
        xpins=xpins,
        pins=line_idx[order],
        vweights=vweights,
        ncosts=np.ones(cross_ids.size, dtype=np.int64),
    )
    total = hg.total_weight().astype(np.float64)
    t0 = total * frac0
    part, cut = multilevel_bisect(
        hg,
        (t0, total - t0),
        epsilon,
        rng,
        coarsen_to=config.coarsen_to,
        ninitial=config.ninitial,
        fm_passes=config.fm_passes,
        max_net_size=config.max_net_size,
    )
    return part[line_idx].astype(np.int64), int(cut), line_ids


def partition_mondriaan(
    a, nparts: int, config: PartitionConfig | None = None
) -> SpMVPartition:
    """Mondriaan ORB partition of ``a`` into ``nparts``."""
    m = canonical_coo(a)
    config = config or PartitionConfig()
    rng = as_generator(config.seed)
    nnz_part = np.zeros(m.nnz, dtype=np.int64)
    depth = max(1, int(np.ceil(np.log2(max(nparts, 2)))))
    eps_level = (1.0 + config.epsilon) ** (1.0 / depth) - 1.0

    def recurse(idx: np.ndarray, k: int, offset: int, rng) -> None:
        if k == 1 or idx.size == 0:
            nnz_part[idx] = offset
            return
        k0 = (k + 1) // 2
        frac0 = k0 / k
        rows = m.row[idx]
        cols = m.col[idx]
        r_rng, c_rng, rec_rng0, rec_rng1 = spawn(rng, 4)
        side_r, cut_r, _ = _line_bisection(
            rows, cols, frac0, eps_level, r_rng, config
        )
        side_c, cut_c, _ = _line_bisection(
            cols, rows, frac0, eps_level, c_rng, config
        )
        side = side_r if cut_r <= cut_c else side_c
        left = idx[side == 0]
        right = idx[side == 1]
        recurse(left, k0, offset, rec_rng0)
        recurse(right, k - k0, offset + k0, rec_rng1)

    recurse(np.arange(m.nnz), nparts, 0, rng)

    x_part = _majority_owner(m.col, nnz_part, m.shape[1], nparts)
    y_part = _majority_owner(m.row, nnz_part, m.shape[0], nparts)
    vectors = VectorPartition(x_part=x_part, y_part=y_part, nparts=nparts)
    return SpMVPartition(
        matrix=m, nnz_part=nnz_part, vectors=vectors, kind="2D-orb"
    )
