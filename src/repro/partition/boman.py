"""1D-b: Boman-style post-processing of a 1D partition (ref [2]).

Boman, Devine & Rajamanickam (SC 2013) bound the message count of a 1D
partition by mapping the ``K × K`` block structure onto a ``Pr × Pc``
virtual mesh: the off-diagonal block ``A_{ℓk}`` of the 1D partition is
reassigned from processor ``ℓ`` to the processor at mesh row ``r(ℓ)``
and mesh column ``c(k)``.  Expand traffic then flows within mesh
columns and fold traffic within mesh rows, so every processor touches
at most ``(Pr − 1) + (Pc − 1)`` messages per SpMV — at the price of
disturbing the 1D scheme's load balance and volume, which is exactly
the behaviour the paper's Table VI measures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.hypergraph import PartitionConfig
from repro.partition.checkerboard import mesh_shape
from repro.partition.oned import partition_1d_rowwise, rowwise_from_y_part
from repro.partition.types import SpMVPartition

__all__ = ["partition_1d_boman"]


def partition_1d_boman(
    a,
    nparts: int,
    config: PartitionConfig | None = None,
    shape: tuple[int, int] | None = None,
    base: SpMVPartition | None = None,
) -> SpMVPartition:
    """1D-b partition of ``a``.

    ``base`` may supply the starting 1D rowwise partition (the paper
    constructs 1D-b on the same vector partition as s2D-b to make the
    comparison fair); otherwise one is computed here.
    """
    if base is None:
        base = partition_1d_rowwise(a, nparts, config)
    elif not base.is_1d_rowwise():
        base = rowwise_from_y_part(base.matrix, base.vectors.y_part, nparts)
    m = base.matrix
    pr, pc = shape if shape is not None else mesh_shape(nparts)
    if pr * pc != nparts:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {nparts} processors")

    y_part = base.vectors.y_part
    x_part = base.vectors.x_part
    row_owner = y_part[m.row]
    col_owner = x_part[m.col]
    # Mesh coordinates of the 1D owners (row-major ranks).
    r_of_rowner = row_owner // pc
    c_of_cowner = col_owner % pc
    nnz_part = np.where(
        row_owner == col_owner,
        row_owner,  # diagonal blocks stay with their 1D owner
        r_of_rowner * pc + c_of_cowner,
    ).astype(np.int64)
    return SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=base.vectors,
        kind="1D-b",
        meta={"mesh": (pr, pc)},
    )
