"""Save / load partitions.

Partitioning dominates experiment runtime (the multilevel partitioner is
pure Python), so cached partitions are worth real money.  Format: a
single ``.npz`` holding the canonical triplets, both vector partitions,
the nonzero partition, and a small JSON header (kind, meta subset).
"""

from __future__ import annotations

import json
import os

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproError
from repro.partition.types import SpMVPartition, VectorPartition

__all__ = ["save_partition", "load_partition"]

_FORMAT_VERSION = 1


def save_partition(p: SpMVPartition, path) -> None:
    """Write ``p`` to ``path`` (.npz).  Only JSON-safe meta entries are
    kept (mesh shapes, method tags); arrays in meta are dropped."""
    meta: dict = {}
    for key, value in p.meta.items():
        if isinstance(value, (str, int, float, bool)):
            meta[key] = value
        elif isinstance(value, tuple) and all(isinstance(v, int) for v in value):
            meta[key] = list(value)
    header = {
        "version": _FORMAT_VERSION,
        "kind": p.kind,
        "nparts": p.nparts,
        "shape": list(p.matrix.shape),
        "meta": meta,
    }
    np.savez_compressed(
        os.fspath(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        row=p.matrix.row,
        col=p.matrix.col,
        data=p.matrix.data,
        nnz_part=p.nnz_part,
        x_part=p.vectors.x_part,
        y_part=p.vectors.y_part,
    )


def load_partition(path) -> SpMVPartition:
    """Read a partition written by :func:`save_partition`."""
    with np.load(os.fspath(path)) as z:
        try:
            header = json.loads(bytes(z["header"].tobytes()).decode())
        except (KeyError, json.JSONDecodeError) as exc:
            raise ReproError(f"not a partition file: {path}") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported partition format version {header.get('version')}"
            )
        shape = tuple(header["shape"])
        matrix = sp.coo_matrix((z["data"], (z["row"], z["col"])), shape=shape)
        meta = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in header.get("meta", {}).items()
        }
        return SpMVPartition(
            matrix=matrix,
            nnz_part=z["nnz_part"],
            vectors=VectorPartition(
                x_part=z["x_part"], y_part=z["y_part"], nparts=header["nparts"]
            ),
            kind=header["kind"],
            meta=meta,
        )
