"""Save / load partitions and compiled communication plans.

Partitioning dominates experiment runtime (the multilevel partitioner is
pure Python), so cached partitions are worth real money; compiling a
partition into a :class:`~repro.runtime.CommPlan` costs another
executor run, so long-lived iterative workloads cache the compiled plan
too.  Format: a single ``.npz`` holding the payload arrays and a small
JSON header carrying an explicit format version and a payload tag
(``"partition"`` or ``"comm-plan"``) — loading a file of the wrong
payload type or an unknown version fails with a clear
:class:`~repro.errors.SerializationError`, and version-1 partition
files (written before the tag existed) still load.

A loaded plan is **untrusted input**: its index arrays drive raw
gathers and scatters (and, on the native backend, unchecked C loops),
so :func:`load_plan` routes every plan through the static plan-IR
checker (:func:`repro.verify.check_plan`) before returning it.  A
corrupted or hand-edited file surfaces as a ``SerializationError``
listing the violated invariants instead of a downstream ``IndexError``
— or a silent out-of-bounds memory write.  Callers that have already
verified a file (or are round-tripping in-process) can opt out with
``verify=False``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import scipy.sparse as sp

from repro.errors import SerializationError
from repro.partition.types import SpMVPartition, VectorPartition

__all__ = ["save_partition", "load_partition", "save_plan", "load_plan"]

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

_PARTITION = "partition"
_PLAN = "comm-plan"


def json_safe_meta(meta: dict) -> dict:
    """The JSON-storable subset of a meta dict: scalars pass, int
    tuples (mesh shapes) become lists, everything else is dropped."""
    out: dict = {}
    for key, value in meta.items():
        if isinstance(value, (str, int, float, bool)):
            out[key] = value
        elif isinstance(value, tuple) and all(isinstance(v, int) for v in value):
            out[key] = list(value)
    return out


def _pack_header(header: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)


def _read_header(z, path) -> dict:
    try:
        header = json.loads(bytes(z["header"].tobytes()).decode())
    except (KeyError, json.JSONDecodeError) as exc:
        raise SerializationError(f"not a repro save file: {path}") from exc
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported save format version {version!r} in {path}; "
            f"this build supports versions {list(SUPPORTED_VERSIONS)}"
        )
    return header


def _check_payload(header: dict, expected: str, path, hint: str) -> None:
    # Version-1 files predate the payload tag and are always partitions.
    payload = header.get("payload", _PARTITION)
    if payload != expected:
        raise SerializationError(
            f"{path} holds a {payload!r} save, not a {expected!r}; use {hint}"
        )


def save_partition(p: SpMVPartition, path) -> None:
    """Write ``p`` to ``path`` (.npz).  Only JSON-safe meta entries are
    kept (mesh shapes, method tags); arrays in meta are dropped."""
    header = {
        "version": FORMAT_VERSION,
        "payload": _PARTITION,
        "kind": p.kind,
        "nparts": p.nparts,
        "shape": list(p.matrix.shape),
        "meta": json_safe_meta(p.meta),
    }
    np.savez_compressed(
        os.fspath(path),
        header=_pack_header(header),
        row=p.matrix.row,
        col=p.matrix.col,
        data=p.matrix.data,
        nnz_part=p.nnz_part,
        x_part=p.vectors.x_part,
        y_part=p.vectors.y_part,
    )


def load_partition(path) -> SpMVPartition:
    """Read a partition written by :func:`save_partition`."""
    with np.load(os.fspath(path)) as z:
        header = _read_header(z, path)
        _check_payload(header, _PARTITION, path, "load_plan for compiled plans")
        shape = tuple(header["shape"])
        matrix = sp.coo_matrix((z["data"], (z["row"], z["col"])), shape=shape)
        meta = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in header.get("meta", {}).items()
        }
        return SpMVPartition(
            matrix=matrix,
            nnz_part=z["nnz_part"],
            vectors=VectorPartition(
                x_part=z["x_part"], y_part=z["y_part"], nparts=header["nparts"]
            ),
            kind=header["kind"],
            meta=meta,
        )


def save_plan(plan, path) -> None:
    """Write a compiled :class:`~repro.runtime.CommPlan` to ``path`` (.npz).

    The compiled state — gather/scatter index arrays, the static
    per-iteration ledger and the superstep schedule — is stored as-is,
    so :func:`load_plan` rebuilds an immediately applicable plan with
    no recompilation (and no reference to the original matrix).
    """
    header, arrays = plan.to_state()
    header = {"version": FORMAT_VERSION, "payload": _PLAN, **header}
    np.savez_compressed(os.fspath(path), header=_pack_header(header), **arrays)


def load_plan(path, *, verify: bool = True):
    """Read a compiled plan written by :func:`save_plan`.

    By default the reconstructed plan is run through the static plan-IR
    checker; any violation (out-of-bounds index arrays, inconsistent
    group plans, a tampered ledger…) raises
    :class:`~repro.errors.SerializationError` naming the failed
    invariants.  ``verify=False`` skips the check for trusted
    round-trips.
    """
    from repro.runtime.plan import CommPlan

    with np.load(os.fspath(path)) as z:
        header = _read_header(z, path)
        _check_payload(header, _PLAN, path, "load_partition for partitions")
        arrays = {name: z[name] for name in z.files if name != "header"}
    try:
        plan = CommPlan.from_state(header, arrays)
    except SerializationError:
        raise
    except Exception as exc:
        # Structurally broken state (missing arrays, bad dtypes) dies
        # inside from_state before the checker can even run.
        raise SerializationError(
            f"{path} does not decode to a compiled plan: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if verify:
        from repro.verify import check_plan

        report = check_plan(plan)
        if not report.ok:
            raise SerializationError(
                f"{path} failed plan verification (pass verify=False only "
                f"for trusted files):\n{report.summary()}"
            )
    return plan
