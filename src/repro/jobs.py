"""Worker-count resolution shared by every parallel entry point.

The sweep orchestrator, the parallel SpMV executor and the CLI all
take a ``jobs`` knob.  The convention is uniform:

- ``None``  → the caller's default (serial unless stated otherwise);
- ``0``     → auto: one job per usable core;
- ``n > 0`` → exactly ``n`` jobs;
- ``n < 0`` → :class:`~repro.errors.UsageError` (previously this fell
  through to the process pool as a ``ValueError`` traceback).
"""

from __future__ import annotations

import os

from repro.errors import UsageError

__all__ = ["host_cpus", "resolve_jobs"]


def host_cpus() -> int:
    """Usable cores: CPU affinity where the platform exposes it."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux platforms


def resolve_jobs(jobs: int | None, *, default: int = 1, what: str = "jobs") -> int:
    """Resolve a ``jobs`` knob to a concrete worker count (see module
    docstring for the convention)."""
    if jobs is None:
        return default
    jobs = int(jobs)
    if jobs < 0:
        raise UsageError(
            f"{what} must be >= 0 (0 means auto: one per core), got {jobs}"
        )
    if jobs == 0:
        return host_cpus()
    return jobs
