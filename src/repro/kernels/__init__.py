"""Shared array kernels used across the analytics and partitioner layers.

Small, allocation-light building blocks that several subsystems need:
the batched block analytics (:mod:`repro.sparse.blocks`), the simulated
SpMV executors (:mod:`repro.simulate`) and the vectorized multilevel
partitioner (:mod:`repro.hypergraph`).  Everything here operates on
plain NumPy arrays and is deterministic.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "concat_ranges",
    "concat_spans",
    "group_sum",
    "grouped_distinct_counts",
    "in_sorted",
    "pair_counts",
    "unique_ints",
]


def concat_spans(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Unchecked core of :func:`concat_ranges`.

    Every ``lens[i]`` must be strictly positive and there must be at
    least one span — hot paths that guarantee this (e.g. FM's critical
    nets all have ≥ 2 pins) skip the validation and filtering.
    """
    cum = np.cumsum(lens)
    # Within-segment offset = global position − segment start position.
    out = np.repeat(starts - (cum - lens), lens)
    out += np.arange(int(cum[-1]), dtype=np.int64)
    return out


def concat_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(starts[i], ends[i])`` over all ``i``.

    The ragged-gather kernel: given CSR-style span boundaries it yields
    the flat index array selecting every spanned element, without a
    Python-level loop.  Empty spans contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lens = ends - starts
    if np.any(lens < 0):
        raise ValueError("range ends must not precede starts")
    nonempty = lens > 0
    if not np.all(nonempty):
        starts, lens = starts[nonempty], lens[nonempty]
    if lens.size == 0:
        return np.empty(0, dtype=np.int64)
    return concat_spans(starts, lens)


def _use_histogram(span: int, nitems: int) -> bool:
    """Shared histogram-vs-sort policy for integer-key kernels: one
    histogram pass wins while the key span stays within a constant
    factor of the item count (or about 1M bins)."""
    return span <= max(64 * nitems, 1 << 20)


def group_sum(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` by integer ``keys``; returns ``(unique_keys, sums)``.

    Dense key ranges take an ``np.bincount`` fastpath (one histogram
    pass, no sort); sparse ranges fall back to the ``np.unique`` +
    ``np.add.at`` formulation.  Both paths return identical results with
    ``unique_keys`` sorted ascending.
    """
    keys = np.asarray(keys, dtype=np.int64)
    values = np.asarray(values)
    if keys.size == 0:
        return keys.copy(), values.copy()
    kmin = int(keys.min())
    span = int(keys.max()) - kmin + 1
    if _use_histogram(span, keys.size):
        shifted = keys - kmin
        counts = np.bincount(shifted, minlength=span)
        sums = np.bincount(shifted, weights=values, minlength=span)
        present = counts > 0
        uniq = np.flatnonzero(present) + kmin
        return uniq, sums[present].astype(values.dtype, copy=False)
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.zeros(uniq.size, dtype=values.dtype)
    np.add.at(sums, inv, values)
    return uniq, sums


def in_sorted(haystack: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Boolean membership of each ``queries[i]`` in sorted ``haystack``.

    The searchsorted-join kernel: one binary-search pass replaces a
    per-element dict lookup loop.  ``haystack`` must be sorted ascending
    (``np.unique`` output qualifies); duplicates are allowed.
    """
    haystack = np.asarray(haystack)
    queries = np.asarray(queries)
    if haystack.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    pos = np.searchsorted(haystack, queries)
    pos[pos == haystack.size] = haystack.size - 1
    return haystack[pos] == queries


def pair_counts(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Occurrence count of each distinct ``(src, dst)`` pair.

    Returns ``(src, dst, counts)`` sorted by ``(src, dst)``; both inputs
    must hold ids in ``[0, n)``.  This is the message-packet counting
    kernel of the SpMV executors: every item stream contributes one word
    to its (sender, receiver) packet.  The ``n²`` key domain is usually
    tiny next to the item count, so a histogram replaces the sort
    whenever it fits (same condition as :func:`group_sum`).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    keys = src * np.int64(n) + dst
    span = int(n) * int(n)
    if keys.size and _use_histogram(span, keys.size):
        hist = np.bincount(keys, minlength=span)
        uniq = np.flatnonzero(hist)
        counts = hist[uniq]
    else:
        uniq, counts = np.unique(keys, return_counts=True)
    return uniq // n, uniq % n, counts


def unique_ints(keys: np.ndarray) -> np.ndarray:
    """``np.unique`` for integer keys with a dense-range fastpath.

    Dense key ranges dedupe with one boolean scatter (no comparison
    sort, ``O(span + n)``); sparse ranges fall back to ``np.unique``.
    Both return the sorted distinct keys.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.size == 0:
        return keys.copy()
    kmin = int(keys.min())
    span = int(keys.max()) - kmin + 1
    if _use_histogram(span, keys.size):
        seen = np.zeros(span, dtype=bool)
        seen[keys - kmin] = True
        return np.flatnonzero(seen) + kmin
    return np.unique(keys)


def grouped_distinct_counts(
    group: np.ndarray, values: np.ndarray, nvalues: int
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct-``values`` count per distinct ``group`` id, in one pass.

    The shared counting kernel of the analytics layer: encode each
    ``(group, value)`` pair as ``group * (nvalues + 1) + value``,
    deduplicate once, and histogram the surviving pairs by group.
    Returns ``(groups, counts)`` with ``groups`` sorted ascending;
    groups with no pairs do not appear.
    """
    group = np.asarray(group, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    stride = np.int64(nvalues) + 1
    pairs = np.unique(group * stride + values)
    # ``pairs`` is sorted, so the group column is nondecreasing: count
    # runs with a boundary scan instead of a second sort.
    if pairs.size == 0:
        return pairs, pairs.copy()
    pair_groups = pairs // stride
    boundary = np.flatnonzero(pair_groups[1:] != pair_groups[:-1]) + 1
    starts = np.concatenate(([0], boundary, [pair_groups.size]))
    return pair_groups[starts[:-1]], np.diff(starts)
