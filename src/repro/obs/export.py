"""Trace exporters: human tree, schema-versioned JSON, Chrome trace.

Three views of one :class:`~repro.obs.trace.Trace`:

- :func:`tree_str` — the CLI ``--trace -`` view: an indented tree with
  per-span seconds, share of the parent, attributes and counters;
- :func:`to_json` / :func:`from_json` — a schema-versioned dict with
  stable (sorted) keys that round-trips exactly; the machine-readable
  record bench/regression tooling consumes;
- :func:`to_chrome` — Chrome trace-event format (the ``traceEvents``
  array), loadable in Perfetto / ``chrome://tracing``.  Span ``attrs``
  become ``args``; a ``worker`` attribute maps to the event's ``tid``
  so a parallel solve's per-worker superstep slices render as separate
  timeline rows, and ``pid`` (when present, e.g. sweep pool workers)
  maps through as the process row.

All timestamps are measured from the trace's ``t0``, so timelines
start at zero regardless of process uptime.
"""

from __future__ import annotations

import json

from repro.obs.trace import SCHEMA_VERSION, Span, Trace

__all__ = [
    "from_json",
    "to_chrome",
    "to_json",
    "tree_str",
    "write_trace",
]


# ----------------------------------------------------------------------
# Human-readable tree
# ----------------------------------------------------------------------


def _fmt_attrs(sp: Span) -> str:
    parts = [f"{k}={v}" for k, v in sp.attrs.items()]
    parts += [f"{k}={v}" for k, v in sp.counters.items()]
    return (" [" + " ".join(parts) + "]") if parts else ""


def tree_str(trace: Trace) -> str:
    """Indented span tree with durations and parent share."""
    lines = ["span" + " " * 40 + "seconds   share"]

    def walk(sp: Span, depth: int, parent_dur: float) -> None:
        label = "  " * depth + sp.name
        share = 100.0 * sp.dur / parent_dur if parent_dur > 0 else 100.0
        lines.append(f"{label:<42}  {sp.dur:8.4f}  {share:5.1f}%{_fmt_attrs(sp)}")
        for child in sp.children:
            walk(child, depth + 1, sp.dur)

    total = sum(sp.dur for sp in trace.spans)
    for sp in trace.spans:
        walk(sp, 0, total)
    totals = trace.total_counters()
    if totals:
        lines.append(
            "counters: "
            + " ".join(f"{k}={totals[k]}" for k in sorted(totals))
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Schema-versioned JSON
# ----------------------------------------------------------------------


def _span_dict(sp: Span) -> dict:
    return {
        "name": sp.name,
        "t0": sp.t0,
        "dur": sp.dur,
        "attrs": {k: sp.attrs[k] for k in sorted(sp.attrs)},
        "counters": {k: sp.counters[k] for k in sorted(sp.counters)},
        "children": [_span_dict(c) for c in sp.children],
    }


def to_json(trace: Trace) -> dict:
    """The stable-keyed, schema-versioned span-tree document."""
    return {
        "schema": SCHEMA_VERSION,
        "t0": trace.t0,
        "counters": {k: trace.counters[k] for k in sorted(trace.counters)},
        "spans": [_span_dict(sp) for sp in trace.spans],
    }


def _span_from(d: dict) -> Span:
    return Span(
        name=d["name"],
        t0=float(d["t0"]),
        dur=float(d["dur"]),
        attrs=dict(d.get("attrs", {})),
        counters=dict(d.get("counters", {})),
        children=[_span_from(c) for c in d.get("children", [])],
    )


def from_json(doc: dict) -> Trace:
    """Rebuild a trace saved by :func:`to_json`.

    Raises ``ValueError`` on an unknown schema version — the document
    is versioned precisely so silent misreads cannot happen.
    """
    got = doc.get("schema")
    if got != SCHEMA_VERSION:
        raise ValueError(
            f"trace document has schema {got!r}, expected {SCHEMA_VERSION}"
        )
    return Trace(
        t0=float(doc["t0"]),
        spans=[_span_from(d) for d in doc.get("spans", [])],
        counters=dict(doc.get("counters", {})),
    )


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------


def to_chrome(trace: Trace) -> dict:
    """The ``{"traceEvents": [...]}`` document Perfetto loads.

    Every span becomes one complete (``"ph": "X"``) event; zero-length
    spans (markers from :func:`~repro.obs.trace.event`) become instant
    (``"ph": "i"``) events.  ``ts``/``dur`` are microseconds from the
    trace's ``t0``.
    """
    events: list[dict] = []

    def walk(sp: Span) -> None:
        args = {k: sp.attrs[k] for k in sorted(sp.attrs)}
        args.update((k, sp.counters[k]) for k in sorted(sp.counters))
        ev = {
            "name": sp.name,
            "ts": (sp.t0 - trace.t0) * 1e6,
            "pid": int(sp.attrs.get("pid", 0)),
            "tid": int(sp.attrs.get("worker", sp.attrs.get("tid", 0))),
            "args": args,
        }
        if sp.dur > 0 or sp.children:
            ev["ph"] = "X"
            ev["dur"] = sp.dur * 1e6
        else:
            ev["ph"] = "i"
            ev["s"] = "t"
        events.append(ev)
        for child in sp.children:
            walk(child)

    for sp in trace.spans:
        walk(sp)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# One-call file writer (the CLI --trace back end)
# ----------------------------------------------------------------------

FORMATS = ("chrome", "json", "tree")


def write_trace(trace: Trace, path: str, fmt: str = "chrome") -> None:
    """Write ``trace`` to ``path`` in one of :data:`FORMATS`."""
    if fmt == "tree":
        payload = tree_str(trace) + "\n"
    elif fmt == "json":
        payload = json.dumps(to_json(trace), indent=2, sort_keys=True) + "\n"
    elif fmt == "chrome":
        payload = json.dumps(to_chrome(trace)) + "\n"
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
