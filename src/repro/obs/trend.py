"""Bench-trend regression gate over the committed ``BENCH_*.json`` files.

Every benchmark driver under ``benchmarks/`` writes a ``BENCH_*.json``
whose ``acceptance`` block records the measured headline metrics next
to the floors they must clear (``speedup`` vs ``speedup_target``,
``warm_speedup`` vs ``warm_target``, ``amortize_iters`` vs
``amortize_target`` — a *ceiling* — and so on).  This module diffs a
freshly generated set of BENCH files against the committed baselines
and fails when any metric **regresses past the baseline's recorded
floor** — the committed history, not the fresh file, supplies the bar,
so a regressed run cannot lower its own acceptance criteria.

Semantics per metric:

- below the floor (or above a ceiling) → ``regression`` — the gate
  fails;
- worse than the baseline but still clearing the floor → ``drift`` —
  reported, not fatal (hardware noise lives here);
- any boolean acceptance flag (``passed``, ``identical``,
  ``ledgers_identical`` …) false in the fresh file → failure.

:func:`compare_bench` diffs one pair of documents; :func:`trend_report`
walks two directories; ``tools/bench_trend.py`` is the CLI and
``tools/check_all.py --bench`` runs it as a gate step.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BENCH_GLOB",
    "acceptance_metrics",
    "compare_bench",
    "load_bench",
    "trend_report",
    "trend_text",
]

BENCH_GLOB = "BENCH_*.json"

#: Metrics where the recorded bound is a ceiling (lower is better).
_CEILINGS = ("amortize",)


def load_bench(path) -> dict:
    """Parse one BENCH file (raises on malformed JSON — a torn bench
    file should fail the gate loudly, not read as 'no data')."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _floor_key(name: str, acceptance: dict) -> str | None:
    """The acceptance key recording ``name``'s floor/ceiling, if any.

    Handles the shipped naming variants: ``speedup``→``speedup_target``,
    ``cold_speedup``→``cold_target``, ``amortize_iters``→
    ``amortize_target``, ``cold_speedup_measured``→
    ``cold_measured_floor``.
    """
    candidates = (
        f"{name}_target",
        name.replace("_speedup", "") + "_target",
        name.replace("_iters", "") + "_target",
        name.replace("_speedup_measured", "_measured") + "_floor",
    )
    for cand in candidates:
        if cand != name and cand in acceptance:
            return cand
    return None


def acceptance_metrics(doc: dict) -> dict[str, dict]:
    """Extract ``{metric: {value, floor, ceiling?}}`` from a BENCH doc.

    Scalar numeric acceptance entries with a recorded bound are
    metrics; dict-valued entries (e.g. ``native_speedups`` per model)
    fan out one metric per key sharing the collective bound.  Bounds
    themselves and booleans are not metrics.
    """
    acceptance = doc.get("acceptance") or {}
    bound_keys = {
        _floor_key(name, acceptance)
        for name in acceptance
        if _floor_key(name, acceptance)
    }
    metrics: dict[str, dict] = {}
    for name, value in acceptance.items():
        if name in bound_keys or isinstance(value, bool):
            continue
        if isinstance(value, dict):
            bound = _floor_key(name.rstrip("s"), acceptance)
            if bound is None:
                continue
            for sub, subval in value.items():
                if isinstance(subval, (int, float)) and not isinstance(subval, bool):
                    metrics[f"{name}.{sub}"] = {
                        "value": float(subval),
                        "bound": float(acceptance[bound]),
                        "ceiling": any(c in name for c in _CEILINGS),
                        "applies": bool(acceptance.get(f"{bound}_applies", True)),
                    }
            continue
        if not isinstance(value, (int, float)):
            continue
        bound = _floor_key(name, acceptance)
        if bound is None:
            continue
        metrics[name] = {
            "value": float(value),
            "bound": float(acceptance[bound]),
            "ceiling": any(c in name for c in _CEILINGS),
            "applies": bool(acceptance.get(f"{bound}_applies", True)),
        }
    return metrics


def _bool_flags(doc: dict) -> dict[str, bool]:
    """Pass/fail acceptance booleans.  ``*_applies`` flags are host
    condition markers (does this target bind here?), not verdicts."""
    acceptance = doc.get("acceptance") or {}
    return {
        k: v
        for k, v in acceptance.items()
        if isinstance(v, bool) and not k.endswith("_applies")
    }


def compare_bench(baseline: dict, fresh: dict) -> dict:
    """Diff one fresh BENCH document against its committed baseline.

    Returns ``{"ok", "metrics": {name: {...}}, "flags": {...}}``.
    Bounds come from the *baseline* where recorded (falling back to the
    fresh file for metrics the baseline predates).
    """
    base_metrics = acceptance_metrics(baseline)
    fresh_metrics = acceptance_metrics(fresh)
    out: dict[str, dict] = {}
    ok = True
    for name, fm in fresh_metrics.items():
        bm = base_metrics.get(name)
        bound = bm["bound"] if bm is not None else fm["bound"]
        ceiling = fm["ceiling"]
        new = fm["value"]
        old = bm["value"] if bm is not None else None
        # The *fresh* run decides whether the bound binds on this host
        # (e.g. speedup_target_applies=false on a 1-CPU machine).
        applies = fm.get("applies", True)
        violates = applies and ((new > bound) if ceiling else (new < bound))
        drifted = old is not None and ((new > old) if ceiling else (new < old))
        if violates:
            status = "regression"
        elif not applies:
            status = "advisory"
        elif drifted:
            status = "drift"
        else:
            status = "ok"
        ok &= not violates
        out[name] = {
            "new": new,
            "baseline": old,
            "bound": bound,
            "ceiling": ceiling,
            "status": status,
        }
    flags = {}
    for name, value in _bool_flags(fresh).items():
        flags[name] = bool(value)
        ok &= bool(value)
    # A baseline metric vanishing from the fresh file is a silent hole
    # in the gate, not a pass.
    for name in base_metrics:
        if name not in fresh_metrics:
            out[name] = {
                "new": None,
                "baseline": base_metrics[name]["value"],
                "bound": base_metrics[name]["bound"],
                "ceiling": base_metrics[name]["ceiling"],
                "status": "missing",
            }
            ok = False
    return {"ok": ok, "metrics": out, "flags": flags}


def trend_report(baseline_dir, fresh_dir) -> dict:
    """Compare every ``BENCH_*.json`` under ``fresh_dir`` against
    ``baseline_dir``; baseline-only files count as missing benches.

    Files without an ``acceptance`` block (e.g. ``BENCH_engine.json``)
    are listed as uncomparable but do not fail the gate.
    """
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    names = sorted(
        {p.name for p in baseline_dir.glob(BENCH_GLOB)}
        | {p.name for p in fresh_dir.glob(BENCH_GLOB)}
    )
    benches: dict[str, dict] = {}
    ok = True
    for name in names:
        base_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            benches[name] = {"ok": False, "error": "missing fresh file"}
            ok = False
            continue
        fresh = load_bench(fresh_path)
        baseline = load_bench(base_path) if base_path.exists() else fresh
        if not (fresh.get("acceptance") or baseline.get("acceptance")):
            benches[name] = {"ok": True, "skipped": "no acceptance block"}
            continue
        result = compare_bench(baseline, fresh)
        benches[name] = result
        ok &= result["ok"]
    return {"ok": ok, "benches": benches}


def trend_text(report: dict) -> str:
    """Human rendering of :func:`trend_report`."""
    lines = []
    for name, bench in report["benches"].items():
        if "error" in bench:
            lines.append(f"{name}: FAIL ({bench['error']})")
            continue
        if "skipped" in bench:
            lines.append(f"{name}: skipped ({bench['skipped']})")
            continue
        lines.append(f"{name}: {'ok' if bench['ok'] else 'FAIL'}")
        for metric, m in bench["metrics"].items():
            rel = "<=" if m["ceiling"] else ">="
            base = "n/a" if m["baseline"] is None else f"{m['baseline']:.3f}"
            new = "missing" if m["new"] is None else f"{m['new']:.3f}"
            lines.append(
                f"  {metric:<28} {new:>9} (baseline {base}, "
                f"must be {rel} {m['bound']:.3f}) [{m['status']}]"
            )
        for flag, value in bench["flags"].items():
            if not value:
                lines.append(f"  {flag:<28} False [flag-failure]")
    lines.append(f"bench-trend: {'PASS' if report['ok'] else 'FAIL'}")
    return "\n".join(lines)
