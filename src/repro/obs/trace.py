"""The tracer core: ambient span trees, counters, and the clock.

One mechanism replaces the repo's scattered self-observation plumbing
(two copy-pasted ambient profilers, ad-hoc ``perf_counter`` pairs):

- :func:`tracing` opens an ambient :class:`Trace` collector;
- :func:`span` times a named block into the current trace as a node of
  a hierarchical span tree (engine plan/compile, partitioner stages,
  simulator phases, solver iterations, parallel supersteps, sweep
  cells — see the taxonomy in DESIGN.md "Observability layer");
- :func:`add` bumps a counter (cache hits, words sent, flops) on the
  innermost open span;
- :func:`event` records an instantaneous marker (a native kernel
  build, an artifact-cache store);
- :func:`record` appends an *already measured* span — the hook the
  parallel executor's coordinator uses to merge per-worker superstep
  timings read from the shared-memory stats block into the trace with
  ``worker=``/``step=`` labels.

Every helper is a cheap no-op when no trace is open (one thread-local
read), so call sites instrument unconditionally; traced runs stay
bit-identical to untraced runs because nothing here touches numeric
state.  Collection is **thread-confined**: the trace binds to the
opening thread, spans recorded by other threads fall into that
thread's own ambient slot (or nowhere).  Worker *processes* never
share a trace object — they report through shared-memory blocks and
the coordinator merges (see :mod:`repro.runtime.parallel`).

:func:`now` is the repository's one sanctioned wall-clock read; lint
rule ``REP008`` confines direct ``time.perf_counter`` calls to this
package so every timing in ``src/`` flows through the same clock.

:class:`AmbientCollector` is the generic single-slot ambient pattern
both legacy profiling modules (:mod:`repro.hypergraph.profiling`,
:mod:`repro.simulate.profiling`) are now thin adapters over.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "AmbientCollector",
    "SCHEMA_VERSION",
    "Span",
    "Trace",
    "active_trace",
    "add",
    "current_span",
    "event",
    "now",
    "record",
    "span",
    "tracing",
]

#: Version of the exported JSON span-tree schema (see repro.obs.export).
SCHEMA_VERSION = 1


def now() -> float:
    """Monotonic seconds (``CLOCK_MONOTONIC`` under CPython on Linux).

    The single sanctioned timing primitive: system-wide, so timestamps
    taken in forked worker processes are directly comparable with the
    coordinator's (the property the per-worker superstep slices in the
    Chrome trace ride on).
    """
    return time.perf_counter()


@dataclass
class Span:
    """One timed node of the trace tree.

    ``t0`` is a :func:`now` timestamp, ``dur`` elapsed seconds (0 while
    open), ``attrs`` structured labels (method, K, worker, step …),
    ``counters`` accumulated numeric tallies charged via :func:`add`.
    """

    name: str
    t0: float
    dur: float = 0.0
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def bump(self, counter: str, value: float = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Trace:
    """A collected span forest plus trace-global counters.

    ``t0`` (the collector-open timestamp) is the zero point every
    exporter measures from, so timelines start at 0 regardless of
    process uptime.
    """

    t0: float = field(default_factory=now)
    spans: list[Span] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    def walk(self):
        """Yield every span in the forest, depth-first."""
        for root in self.spans:
            yield from root.walk()

    def total_counters(self) -> dict:
        """Trace-global counters plus every span's, summed by name."""
        totals = dict(self.counters)
        for sp in self.walk():
            for key, value in sp.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


class AmbientCollector:
    """A generic thread-confined ambient slot with save/restore nesting.

    ``collect(value)`` installs ``value`` (or ``factory()``) as the
    active collector for the dynamic extent of the ``with`` block and
    restores the previous one afterwards — exception or not.  This is
    the one implementation of the pattern the two legacy profiling
    modules each used to carry privately as a module global.
    """

    def __init__(self, factory=None):
        self._factory = factory
        self._tls = threading.local()

    def active(self):
        """The installed collector, or None outside any block."""
        return getattr(self._tls, "value", None)

    @contextmanager
    def collect(self, value=None):
        if value is None:
            if self._factory is None:
                raise ValueError("no collector value and no factory")
            value = self._factory()
        prev = self.active()
        self._tls.value = value
        try:
            yield value
        finally:
            self._tls.value = prev


# The ambient trace slot and the per-thread open-span stack.
_TRACE = AmbientCollector(Trace)
_TLS = threading.local()


def active_trace() -> Trace | None:
    """The ambient trace, if a :func:`tracing` block is open."""
    return _TRACE.active()


def current_span() -> Span | None:
    """The innermost open span of this thread, or None."""
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def tracing(trace: Trace | None = None):
    """Collect a span tree from everything run inside.

    Yields the :class:`Trace`; nested ``tracing`` blocks shadow the
    outer collector and restore it on exit (the outer trace does not
    see the inner block's spans).
    """
    with _TRACE.collect(trace) as tr:
        prev_stack = getattr(_TLS, "stack", None)
        _TLS.stack = []
        try:
            yield tr
        finally:
            _TLS.stack = prev_stack


def _attach(trace: Trace, sp: Span) -> None:
    parent = current_span()
    if parent is not None:
        parent.children.append(sp)
    else:
        trace.spans.append(sp)


@contextmanager
def span(name: str, **attrs):
    """Time a block as one node of the ambient trace tree.

    No trace open → yields None and does nothing else.  On exception
    the span still closes (stack restored, duration recorded) and is
    labelled ``error=<exception type>`` before the exception
    propagates.
    """
    trace = _TRACE.active()
    if trace is None:
        yield None
        return
    sp = Span(name=name, t0=now(), attrs=attrs)
    _attach(trace, sp)
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(sp)
    try:
        yield sp
    except BaseException as exc:
        sp.attrs["error"] = type(exc).__name__
        raise
    finally:
        sp.dur = now() - sp.t0
        stack.pop()


def add(counter: str, value: float = 1) -> None:
    """Bump ``counter`` on the innermost open span (or the trace's
    global counters between spans).  No trace open → no-op."""
    trace = _TRACE.active()
    if trace is None:
        return
    sp = current_span()
    if sp is not None:
        sp.bump(counter, value)
    else:
        trace.counters[counter] = trace.counters.get(counter, 0) + value


def event(name: str, **attrs) -> None:
    """Record an instantaneous marker (a zero-duration span)."""
    trace = _TRACE.active()
    if trace is None:
        return
    _attach(trace, Span(name=name, t0=now(), attrs=attrs))


def record(name: str, t0: float, dur: float, **attrs) -> None:
    """Append an externally measured span under the current position.

    ``t0``/``dur`` are :func:`now` seconds measured elsewhere — e.g. a
    pool worker's superstep window read back from shared memory; the
    coordinator calls this to merge them into its trace.
    """
    trace = _TRACE.active()
    if trace is None:
        return
    _attach(trace, Span(name=name, t0=float(t0), dur=float(dur), attrs=attrs))
