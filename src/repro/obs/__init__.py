"""repro.obs — the unified tracing/metrics layer.

One tracer core (:mod:`repro.obs.trace`) behind every way the repo
observes itself: the legacy partition/simulate profilers are adapters
over it, the CLI ``--trace`` flag exports its span tree (human tree,
schema-versioned JSON, Chrome trace-event for Perfetto), ``repro
stats`` aggregates the cache/native counter stores, and
``tools/bench_trend.py`` gates BENCH acceptance metrics against the
committed history.
"""

from repro.obs.export import (
    FORMATS,
    from_json,
    to_chrome,
    to_json,
    tree_str,
    write_trace,
)
from repro.obs.stats import gather_stats, register_cache, register_engine, stats_text
from repro.obs.trace import (
    SCHEMA_VERSION,
    AmbientCollector,
    Span,
    Trace,
    active_trace,
    add,
    current_span,
    event,
    now,
    record,
    span,
    tracing,
)
from repro.obs.trend import compare_bench, load_bench, trend_report, trend_text

__all__ = [
    "AmbientCollector",
    "FORMATS",
    "SCHEMA_VERSION",
    "Span",
    "Trace",
    "active_trace",
    "add",
    "compare_bench",
    "current_span",
    "event",
    "from_json",
    "gather_stats",
    "load_bench",
    "now",
    "record",
    "register_cache",
    "register_engine",
    "span",
    "stats_text",
    "to_chrome",
    "to_json",
    "tracing",
    "tree_str",
    "trend_report",
    "trend_text",
    "write_trace",
]
