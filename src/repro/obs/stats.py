"""Unified cache/counter reporting: one report over every store.

The repo accumulates operational counters in three unrelated places —
:meth:`repro.engine.PartitionEngine.cache_info` (memo hits/misses and
cached bytes), :attr:`repro.sweep.cache.ArtifactCache.stats` (on-disk
artifact hits/misses/stores/corrupt evictions), and
:func:`repro.native.build.native_status` (kernel build-cache state).
This module aggregates them into one schema-stable report (the CLI
``repro stats`` subcommand's back end).

Engines and artifact caches self-register at construction into
process-wide weak sets, so :func:`gather_stats` sees every live store
without the caller threading references around; dead ones drop out
with garbage collection.  Registration is duck-typed (anything with
``cache_info()`` / ``.stats``), keeping this module a leaf — the
native status is imported lazily at call time for the same reason.
"""

from __future__ import annotations

import weakref

__all__ = ["gather_stats", "register_cache", "register_engine", "stats_text"]

_ENGINES: "weakref.WeakSet" = weakref.WeakSet()
_CACHES: "weakref.WeakSet" = weakref.WeakSet()


def register_engine(engine) -> None:
    """Track a live engine (anything with ``cache_info()``)."""
    _ENGINES.add(engine)


def register_cache(cache) -> None:
    """Track a live artifact cache (anything with a ``stats`` dict)."""
    _CACHES.add(cache)


def gather_stats(engines=None, caches=None, native: bool = True) -> dict:
    """The unified counter report.

    ``engines``/``caches`` default to every registered live object;
    ``native=False`` skips the kernel build-cache probe (which would
    otherwise attempt one build).  Keys are stable: ``engines`` (list
    of ``cache_info()`` dicts), ``engine_totals`` (summed counters),
    ``artifact_caches`` (list of per-cache dicts), ``artifact_totals``,
    and ``native`` (the :func:`~repro.native.build.native_status`
    dict, or None when skipped).
    """
    engines = list(_ENGINES) if engines is None else list(engines)
    caches = list(_CACHES) if caches is None else list(caches)

    engine_infos = [e.cache_info() for e in engines]
    engine_totals = {"hits": 0, "misses": 0, "entries": 0, "cached_bytes": 0}
    for info in engine_infos:
        for key in engine_totals:
            engine_totals[key] += int(info.get(key, 0))

    cache_infos = [
        {"root": str(getattr(c, "root", "")), **dict(c.stats)} for c in caches
    ]
    artifact_totals = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
    for info in cache_infos:
        for key in artifact_totals:
            artifact_totals[key] += int(info.get(key, 0))

    native_info = None
    if native:
        from repro.native.build import native_status

        native_info = native_status()
    return {
        "engines": engine_infos,
        "engine_totals": engine_totals,
        "artifact_caches": cache_infos,
        "artifact_totals": artifact_totals,
        "native": native_info,
    }


def stats_text(report: dict) -> str:
    """Human rendering of :func:`gather_stats` (the non-``--json`` CLI view)."""
    lines = []
    et = report["engine_totals"]
    lines.append(
        f"engines: {len(report['engines'])} live  "
        f"hits={et['hits']} misses={et['misses']} "
        f"entries={et['entries']} cached_bytes={et['cached_bytes']}"
    )
    at = report["artifact_totals"]
    lines.append(
        f"artifact caches: {len(report['artifact_caches'])} live  "
        f"hits={at['hits']} misses={at['misses']} "
        f"stores={at['stores']} corrupt={at['corrupt']}"
    )
    for info in report["artifact_caches"]:
        lines.append(
            f"  {info['root']}: hits={info['hits']} misses={info['misses']} "
            f"stores={info['stores']} corrupt={info['corrupt']}"
        )
    native = report.get("native")
    if native is not None:
        lines.append(
            f"native: available={native['available']} "
            f"compiler={native['compiler'] or '(none)'} "
            f"built_this_process={native['built_this_process']} "
            f"default={native['default_backend']}"
        )
        lines.append(f"  cache_dir={native['cache_dir']}")
        if native["reason"]:
            lines.append(f"  reason={native['reason']}")
    return "\n".join(lines)
