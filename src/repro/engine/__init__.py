"""Unified partitioning pipeline.

:class:`PartitionEngine` composes vector partitioning → nonzero
partitioning → simulation/evaluation behind a single ``plan()`` call,
memoizing every intermediate the methods share (canonical COO, block
structure, batched block-DM results, simulated runs).  The method
registry (:mod:`repro.engine.registry`) names every scheme the library
implements; new backends register themselves with
:func:`register_method`.
"""

from repro.engine.engine import PartitionEngine, Plan
from repro.engine.registry import (
    ALIASES,
    available_methods,
    register_method,
    resolve_method,
)

__all__ = [
    "PartitionEngine",
    "Plan",
    "ALIASES",
    "available_methods",
    "register_method",
    "resolve_method",
]
