"""Method registry of the :class:`repro.engine.PartitionEngine`.

Each entry maps a canonical method name to a builder
``build(engine, nparts, config, opts) -> SpMVPartition``.  Builders
compose the library's partitioning stages — vector partitioning →
nonzero partitioning — and pull every shareable intermediate (base 1D
vector partitions, :class:`~repro.sparse.blocks.BlockStructure`, batched
block-DM results) from the engine's memo store, so running several
methods on one matrix never recomputes block analytics.

Aliases cover the CLI's historical spellings (``1d``, ``2d``,
``s2d`` …) so every entry point resolves through one table.
"""

from __future__ import annotations

from repro.core.s2d import choices_from_block_dm, s2d_heuristic, s2d_optimal
from repro.core.s2d_bounded import make_s2d_bounded
from repro.core.s2d_ext import s2d_heuristic_balanced
from repro.core.s2d_mg import partition_s2d_medium_grain
from repro.errors import ConfigError
from repro.partition.boman import partition_1d_boman
from repro.partition.checkerboard import partition_checkerboard
from repro.partition.finegrain import partition_2d_finegrain
from repro.partition.mondriaan import partition_mondriaan
from repro.partition.oned import partition_1d_columnwise, partition_1d_rowwise

__all__ = ["METHODS", "ALIASES", "available_methods", "register_method", "resolve_method"]

METHODS: dict = {}

ALIASES = {
    "1d": "1d-rowwise",
    "1d-col": "1d-columnwise",
    "2d": "finegrain",
    "2d-orb": "mondriaan",
    "2d-b": "checkerboard",
    "1d-b": "1d-boman",
    "s2d": "s2d-heuristic",
    "s2d-opt": "s2d-optimal",
    "s2d-bal": "s2d-balanced",
    "s2d-b": "s2d-bounded",
    "s2d-mg": "medium-grain",
}


def register_method(name: str):
    """Decorator adding a builder under ``name`` (idempotent overwrite)."""

    def deco(fn):
        METHODS[name] = fn
        return fn

    return deco


def resolve_method(name: str) -> str:
    """Canonical method name for ``name`` (resolving aliases)."""
    name = name.lower()
    name = ALIASES.get(name, name)
    if name not in METHODS:
        raise ConfigError(
            f"unknown partitioning method {name!r}; "
            f"known: {', '.join(available_methods())}"
        )
    return name


def available_methods() -> list[str]:
    """Canonical method names, sorted."""
    return sorted(METHODS)


# ----------------------------------------------------------------------
# Direct builders (vector + nonzero partition in one construction)
# ----------------------------------------------------------------------


@register_method("1d-rowwise")
def _build_1d_rowwise(engine, nparts, config, opts):
    return partition_1d_rowwise(engine.matrix, nparts, config)


@register_method("1d-columnwise")
def _build_1d_columnwise(engine, nparts, config, opts):
    return partition_1d_columnwise(engine.matrix, nparts, config)


@register_method("finegrain")
def _build_finegrain(engine, nparts, config, opts):
    return partition_2d_finegrain(engine.matrix, nparts, config)


@register_method("mondriaan")
def _build_mondriaan(engine, nparts, config, opts):
    return partition_mondriaan(engine.matrix, nparts, config)


@register_method("checkerboard")
def _build_checkerboard(engine, nparts, config, opts):
    return partition_checkerboard(
        engine.matrix, nparts, config, shape=opts.get("shape")
    )


@register_method("medium-grain")
def _build_medium_grain(engine, nparts, config, opts):
    return partition_s2d_medium_grain(
        engine.matrix, nparts, config, to_row=opts.get("to_row")
    )


# ----------------------------------------------------------------------
# Derived builders (compose a cached base plan with a second stage)
# ----------------------------------------------------------------------


def _s2d_vectors(engine, nparts, config, opts):
    """The vector partition an s2D method refines.

    ``opts['vectors']`` overrides; otherwise the memoized 1D-rowwise
    plan with the same partitioner config supplies it — exactly the
    paper's setup (s2D reuses the 1D hypergraph vector partition), and
    the reason table runs share one hypergraph call per (matrix, K).
    """
    vectors = opts.get("vectors")
    if vectors is not None:
        return vectors
    return engine.plan("1d-rowwise", nparts, config=config).partition.vectors


@register_method("1d-boman")
def _build_1d_boman(engine, nparts, config, opts):
    base = opts.get("base")
    if base is None:
        base = engine.plan("1d-rowwise", nparts, config=config).partition
    return partition_1d_boman(
        engine.matrix, nparts, config, shape=opts.get("shape"), base=base
    )


@register_method("s2d-optimal")
def _build_s2d_optimal(engine, nparts, config, opts):
    vectors = _s2d_vectors(engine, nparts, config, opts)
    return s2d_optimal(
        engine.matrix,
        x_part=vectors,
        nparts=nparts,
        block_structure=engine.block_structure(vectors),
        choices=choices_from_block_dm(engine.block_dm(vectors)),
    )


@register_method("s2d-heuristic")
def _build_s2d_heuristic(engine, nparts, config, opts):
    vectors = _s2d_vectors(engine, nparts, config, opts)
    return s2d_heuristic(
        engine.matrix,
        x_part=vectors,
        nparts=nparts,
        w_lim=opts.get("w_lim"),
        epsilon=opts.get("epsilon", engine.epsilon),
        block_structure=engine.block_structure(vectors),
        choices=choices_from_block_dm(engine.block_dm(vectors)),
    )


@register_method("s2d-balanced")
def _build_s2d_balanced(engine, nparts, config, opts):
    vectors = _s2d_vectors(engine, nparts, config, opts)
    return s2d_heuristic_balanced(
        engine.matrix,
        x_part=vectors,
        nparts=nparts,
        w_lim=opts.get("w_lim"),
        epsilon=opts.get("epsilon", engine.epsilon),
        block_structure=engine.block_structure(vectors),
        choices=choices_from_block_dm(engine.block_dm(vectors)),
    )


@register_method("s2d-bounded")
def _build_s2d_bounded(engine, nparts, config, opts):
    passthrough = {
        k: v for k, v in opts.items() if k in ("vectors", "w_lim", "epsilon")
    }
    base = engine.plan("s2d-heuristic", nparts, config=config, **passthrough)
    return make_s2d_bounded(base.partition, shape=opts.get("shape"))
