"""The unified partitioning pipeline: :class:`PartitionEngine`.

One engine wraps one matrix and memoizes every intermediate the
partitioning methods share:

- the canonical COO form (computed once, at construction);
- hypergraph vector partitions, keyed by (method, K, partitioner
  config) — an s2D plan and the 1D plan it refines share one
  hypergraph run;
- the :class:`~repro.sparse.blocks.BlockStructure` and the batched
  block-DM results, keyed by the vector partition's content hash —
  ``s2d-optimal``, ``s2d-heuristic`` and ``s2d-bounded`` on the same
  vectors share one block-analytics pass;
- simulated :class:`~repro.simulate.machine.SpMVRun` executions, keyed
  by plan — re-pricing a run under a different machine model is free.

``plan()`` itself is memoized, so a table experiment comparing five
methods on one matrix touches the matrix's block structure exactly
once.  Set ``cache=False`` to rebuild everything per call (the
equivalence tests pin that both modes produce identical results).
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass, field

import numpy as np

from repro import obs
from repro.dm.batch import BlockDM, batched_block_dm
from repro.engine.registry import METHODS, available_methods, resolve_method
from repro.hypergraph import PartitionConfig, PartitionProfile
from repro.hypergraph import profiling as hg_profiling
from repro.partition.types import SpMVPartition, VectorPartition
from repro.runtime import CommPlan, ParallelExecutor, compile_plan, shard_plan
from repro.simulate.machine import MachineModel, SpMVRun
from repro.simulate.report import PartitionQuality, run_partition, summarize
from repro.sparse.blocks import BlockStructure
from repro.sparse.coo import canonical_coo

__all__ = ["PartitionEngine", "Plan"]


@dataclass
class Plan:
    """One partitioning result produced by :meth:`PartitionEngine.plan`.

    Holds the constructed :class:`SpMVPartition` plus enough context to
    evaluate it lazily through the engine's run cache.
    """

    method: str
    nparts: int
    partition: SpMVPartition
    engine: "PartitionEngine" = field(repr=False)
    key: tuple = field(repr=False, default=())
    profile: PartitionProfile | None = field(repr=False, default=None)
    """Per-stage partitioner timings; populated by ``plan(profile=True)``."""

    @property
    def kind(self) -> str:
        return self.partition.kind

    def quality(self, machine: MachineModel | None = None) -> PartitionQuality:
        """Evaluate (simulate + summarise) through the engine's caches."""
        return self.engine.evaluate(self, machine=machine)


def _digest(*arrays: np.ndarray) -> bytes:
    h = hashlib.sha1()
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


def _reachable_ndarray_bytes(values) -> int:
    """Total ``nbytes`` of the distinct ndarrays reachable from
    ``values`` through containers and object attributes.

    Arrays are deduplicated by identity (a vector partition shared by
    five plans counts once).  Engine back-references (``Plan.engine``)
    are not descended into, so the walk stays within one memo store.
    """
    seen: set[int] = set()
    total = 0
    work = list(values)
    while work:
        obj = work.pop()
        if isinstance(obj, PartitionEngine):
            continue
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(obj, np.ndarray):
            total += obj.nbytes
        elif isinstance(obj, dict):
            work.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            work.extend(obj)
        elif hasattr(obj, "__dict__"):
            work.extend(vars(obj).values())
    return total


class PartitionEngine:
    """Unified partition/evaluate pipeline over one matrix.

    Parameters
    ----------
    a:
        Anything :func:`repro.sparse.coo.canonical_coo` accepts.
    seed, epsilon:
        Defaults for partitioner configs created via :meth:`partitioner`
        and for the s2D load tolerance.
    machine:
        Default cost model for :meth:`evaluate`.
    cache:
        When False, every call rebuilds its intermediates (results are
        identical; only work is repeated).
    artifacts:
        Optional persistent artifact store (duck-typed; see
        :class:`repro.sweep.cache.ArtifactCache`).  When set, built
        partitions and compiled communication plans are written through
        to disk keyed on the matrix digest plus the full plan key, and
        :meth:`plan` / :meth:`compiled_plan` consult the store before
        building — a warm process reconstructs a table's plans from
        pure cache reads.
    backend:
        Default kernel backend (``"auto"``/``"numpy"``/``"native"``)
        for executors built through this engine; ``None`` defers to the
        process-wide policy (see :func:`repro.native.resolve_backend`).
    """

    def __init__(
        self,
        a,
        *,
        seed: int = 42,
        epsilon: float = 0.03,
        machine: MachineModel | None = None,
        cache: bool = True,
        artifacts=None,
        backend: str | None = None,
    ) -> None:
        self._matrix = canonical_coo(a)
        self.seed = seed
        self.epsilon = epsilon
        self.machine = machine or MachineModel()
        self.cache_enabled = bool(cache)
        self.artifacts = artifacts
        self.backend = backend
        self._store: dict = {}
        self._matrix_digest: str | None = None
        self.cache_stats = {"hits": 0, "misses": 0}
        self._executors: list[ParallelExecutor] = []
        obs.register_engine(self)

    # ------------------------------------------------------------------
    # Memo substrate
    # ------------------------------------------------------------------

    @property
    def matrix(self):
        """The canonical COO matrix every method partitions."""
        return self._matrix

    @property
    def matrix_digest(self) -> str:
        """Content digest of the canonical matrix (pattern + values +
        shape).  The persistent-cache component that makes artifact
        keys content-addressed: two engines over equal matrices share
        disk artifacts, any change to the matrix invalidates them."""
        if self._matrix_digest is None:
            h = hashlib.sha1()
            h.update(repr(self._matrix.shape).encode())
            h.update(_digest(self._matrix.row, self._matrix.col, self._matrix.data))
            self._matrix_digest = h.hexdigest()
        return self._matrix_digest

    def _memo(self, key: tuple, build):
        if not self.cache_enabled:
            return build()
        if key in self._store:
            self.cache_stats["hits"] += 1
            obs.add("engine.cache_hits")
            return self._store[key]
        self.cache_stats["misses"] += 1
        obs.add("engine.cache_misses")
        value = build()
        self._store[key] = value
        return value

    def clear_cache(self) -> None:
        """Drop every memoized intermediate (the matrix stays).

        Memoized parallel executors are process-backed, so they are
        shut down — not just dropped — before the store is cleared.
        """
        self.shutdown()
        self._store.clear()
        self.cache_stats = {"hits": 0, "misses": 0}

    def shutdown(self) -> None:
        """Close every parallel executor this engine built (idempotent).

        The executors stay memoized until :meth:`clear_cache`; a closed
        executor fetched again through :meth:`parallel_executor` is
        replaced by a fresh pool.
        """
        for ex in self._executors:
            ex.close()
        self._executors.clear()

    def cache_info(self) -> dict:
        """Hit/miss counters, stored-entry count, and ``cached_bytes``
        — the total ``nbytes`` of every distinct ndarray reachable from
        the memo store.  Sweep workers log it to track per-engine
        memory pressure across a long grid."""
        return {
            **self.cache_stats,
            "entries": len(self._store),
            "cached_bytes": _reachable_ndarray_bytes(self._store.values()),
        }

    # -- keys ----------------------------------------------------------

    @staticmethod
    def _config_key(config: PartitionConfig | None) -> tuple:
        return ("default-config",) if config is None else astuple(config)

    def _vectors_key(self, vectors: VectorPartition) -> tuple:
        return (
            "vectors",
            vectors.nparts,
            _digest(vectors.x_part, vectors.y_part),
        )

    def _opts_key(self, opts: dict) -> tuple:
        items = []
        for name in sorted(opts):
            value = opts[name]
            if isinstance(value, VectorPartition):
                items.append((name, self._vectors_key(value)))
            elif isinstance(value, SpMVPartition):
                items.append(
                    (name, (value.kind, value.nparts, _digest(value.nnz_part)))
                )
            elif isinstance(value, np.ndarray):
                items.append((name, (value.shape, _digest(value))))
            else:
                items.append((name, value))
        return tuple(items)

    # ------------------------------------------------------------------
    # Shared intermediates
    # ------------------------------------------------------------------

    def partitioner(self, seed_offset: int = 0) -> PartitionConfig:
        """A deterministic partitioner config derived from the engine seed."""
        return PartitionConfig(epsilon=self.epsilon, seed=self.seed + seed_offset)

    def block_structure(self, vectors: VectorPartition) -> BlockStructure:
        """Memoized K×K block structure under ``vectors``."""
        key = ("block-structure", self._vectors_key(vectors))
        return self._memo(
            key,
            lambda: BlockStructure(
                self._matrix.row,
                self._matrix.col,
                vectors.x_part,
                vectors.y_part,
                vectors.nparts,
            ),
        )

    def block_dm(self, vectors: VectorPartition) -> list[BlockDM]:
        """Memoized batched coarse-DM results of all off-diagonal blocks."""
        key = ("block-dm", self._vectors_key(vectors))
        return self._memo(
            key, lambda: batched_block_dm(self.block_structure(vectors))
        )

    # ------------------------------------------------------------------
    # Planning and evaluation
    # ------------------------------------------------------------------

    def plan_key(
        self,
        method: str,
        nparts: int,
        *,
        config: PartitionConfig | None = None,
        profile: bool = False,
        **opts,
    ) -> tuple:
        """The full memo/artifact key :meth:`plan` would use.

        Public so the sweep orchestrator can address persistent
        artifacts (cached cell records) without building the plan
        first.  ``config=None`` keys the engine-default config, exactly
        as :meth:`plan` resolves it."""
        if config is None:
            config = self.partitioner()
        return (
            "plan",
            resolve_method(method),
            int(nparts),
            self._config_key(config),
            self._opts_key(opts),
            ("defaults", self.epsilon),
            ("profile", bool(profile)),
        )

    def plan(
        self,
        method: str,
        nparts: int,
        *,
        config: PartitionConfig | None = None,
        profile: bool = False,
        **opts,
    ) -> Plan:
        """Build (or fetch) the partition of ``method`` at ``nparts``.

        ``config`` seeds the hypergraph stage where the method has one;
        omitted, it defaults to :meth:`partitioner` so the engine's
        ``seed`` actually governs the result.  Method-specific options
        (``w_lim``, ``shape``, ``vectors`` …) pass through ``opts`` and
        participate in the memo key, as does the engine-level
        ``epsilon`` default the s2D builders fall back to.

        With ``profile=True`` the returned plan carries a
        :class:`~repro.hypergraph.PartitionProfile` with per-stage
        wall-clock timings of every ``partition_kway`` run during the
        build (nested method builders included).  Profiled plans are
        memoized separately, so a cached unprofiled plan never masks
        the timing request — note that intermediates already in the
        engine cache (e.g. a shared 1D vector partition) are *not*
        rebuilt, and their partitioner time will read as zero.
        """
        name = resolve_method(method)
        if config is None:
            config = self.partitioner()
        key = self.plan_key(name, nparts, config=config, profile=profile, **opts)

        def build() -> Plan:
            prof = None
            partition = None
            # Profiled builds bypass the persistent store: a cached
            # partition would report zero partitioner time.
            use_artifacts = self.artifacts is not None and not profile
            if use_artifacts:
                partition = self.artifacts.fetch_partition(self.matrix_digest, key)
            if partition is None:
                if profile:
                    with hg_profiling.collect() as prof:
                        partition = METHODS[name](self, nparts, config, opts)
                else:
                    partition = METHODS[name](self, nparts, config, opts)
                if use_artifacts:
                    self.artifacts.store_partition(self.matrix_digest, key, partition)
            return Plan(
                method=name,
                nparts=int(nparts),
                partition=partition,
                engine=self,
                key=key,
                profile=prof,
            )

        with obs.span("engine.plan", method=name, k=int(nparts)):
            return self._memo(key, build)

    def run(self, plan: Plan, x: np.ndarray | None = None) -> SpMVRun:
        """Memoized simulated SpMV execution of a plan."""
        xkey = ("run", plan.key, None if x is None else (x.shape, _digest(x)))
        with obs.span("engine.run", method=plan.method, k=plan.nparts):
            return self._memo(xkey, lambda: run_partition(plan.partition, x))

    def compiled_plan(self, plan: Plan, *, verify: bool = False) -> CommPlan:
        """Memoized communication plan compiled from ``plan``'s partition.

        The :class:`~repro.runtime.CommPlan` sits next to the block
        structure and DM results as a shared intermediate: the solvers,
        the CLI ``solve`` subcommand and repeated-apply workloads all
        fetch one compiled plan per (method, K, config) instead of
        re-deriving the message structure per multiply.

        ``verify=True`` runs the static plan-IR checker
        (:func:`repro.verify.verify_plan`) on the result — whether
        freshly compiled, memoized, or fetched from the artifact store
        — raising :class:`~repro.errors.VerificationError` on any
        violation.  Verification is not part of the memo key: it is a
        read-only audit of the same plan object.
        """
        key = ("comm-plan", plan.key)

        def build() -> CommPlan:
            # The artifact store applies its own "comm-plan" tag, so it
            # is addressed by the bare plan key (see cache-key anatomy
            # in DESIGN.md).
            if self.artifacts is not None:
                cached = self.artifacts.fetch_plan(self.matrix_digest, plan.key)
                if cached is not None:
                    return cached
            built = compile_plan(plan.partition)
            if self.artifacts is not None:
                self.artifacts.store_plan(self.matrix_digest, plan.key, built)
            return built

        with obs.span("engine.compile", method=plan.method, k=plan.nparts):
            cplan = self._memo(key, build)
        if verify:
            from repro.verify import verify_plan

            verify_plan(cplan)
        return cplan

    def plan_shards(self, plan: Plan) -> list:
        """Memoized per-part shards of ``plan``'s compiled CommPlan.

        Sharding re-derives the superstep traffic per part and runs the
        serial-replay audit, so it is worth caching alongside the
        compiled plan it decomposes.
        """
        cplan = self.compiled_plan(plan)
        key = ("plan-shards", plan.key)
        with obs.span("engine.shard", method=plan.method, k=plan.nparts):
            return self._memo(key, lambda: shard_plan(plan.partition, cplan))

    def parallel_executor(
        self,
        plan: Plan,
        *,
        jobs: int | None = None,
        timeout: float = 60.0,
        backend: str | None = None,
    ) -> ParallelExecutor:
        """Memoized shared-memory worker pool for ``plan``'s SpMV.

        One persistent :class:`~repro.runtime.ParallelExecutor` per
        (plan, jobs, resolved backend): repeated solves against the same
        plan reuse the live pool and its shared segments.  ``backend``
        defaults to the engine-level setting; it is resolved to a
        concrete ``"numpy"``/``"native"`` *before* keying, so an
        ``"auto"`` request and the explicit backend it resolves to share
        one pool.  A pool that has been closed (or broke) is evicted and
        rebuilt transparently.  Pools are process-backed, so call
        :meth:`shutdown` (or :meth:`clear_cache`) when done; executors
        also self-reap at garbage collection.
        """
        from repro.native import resolve_backend

        resolved = resolve_backend(self.backend if backend is None else backend)
        key = (
            "parallel-exec",
            plan.key,
            None if jobs is None else int(jobs),
            resolved,
        )
        cached = self._store.get(key)
        if cached is not None and cached.closed:
            del self._store[key]

        def build() -> ParallelExecutor:
            cplan = self.compiled_plan(plan)
            shards = self.plan_shards(plan)
            ex = ParallelExecutor(
                cplan, shards, jobs=jobs, timeout=timeout, backend=resolved
            )
            self._executors.append(ex)
            return ex

        return self._memo(key, build)

    def simulate_all(
        self,
        nparts: int,
        methods=None,
        *,
        x: np.ndarray | None = None,
        config: PartitionConfig | None = None,
        **opts,
    ) -> dict[str, SpMVRun]:
        """Plan and execute every method's simulated SpMV in one batch.

        ``methods`` defaults to every registered method.  All runs share
        this engine's memoized intermediates — the s2D family reuses one
        1D hypergraph vector partition and one block-analytics pass, and
        repeated methods (or later :meth:`evaluate` calls) reuse the
        cached :class:`~repro.simulate.machine.SpMVRun` — so simulating
        the whole registry costs far less than independent executions.
        Returns ``{canonical method name: run}`` in iteration order.
        """
        names = (
            [resolve_method(m) for m in methods]
            if methods is not None
            else available_methods()
        )
        runs: dict[str, SpMVRun] = {}
        for name in names:
            plan = self.plan(name, nparts, config=config, **opts)
            runs[name] = self.run(plan, x)
        return runs

    def evaluate(
        self,
        plan: Plan | SpMVPartition,
        x: np.ndarray | None = None,
        machine: MachineModel | None = None,
    ) -> PartitionQuality:
        """Quality summary of a plan (or raw partition) under ``machine``.

        The expensive simulated run is cached per plan; summarising it
        under a different machine model reuses the same run.
        """
        machine = machine or self.machine
        if isinstance(plan, SpMVPartition):
            return summarize(plan, run_partition(plan, x), machine)
        return summarize(plan.partition, self.run(plan, x), machine)

    def compare(
        self,
        methods,
        nparts: int,
        *,
        config: PartitionConfig | None = None,
        machine: MachineModel | None = None,
        **opts,
    ) -> dict[str, PartitionQuality]:
        """Plan and evaluate several methods on the shared intermediates."""
        return {
            m: self.plan(m, nparts, config=config, **opts).quality(machine)
            for m in methods
        }
