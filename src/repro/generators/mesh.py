"""FEM-like sparse matrices: stencils and k-NN graphs.

The paper's low-skew matrices (crystk02, trdheim, turon_m, 3dtube,
pkustk12) are structural-engineering stiffness matrices: near-regular
row degrees with strong geometric locality.  A k-nearest-neighbour
graph over a random point cloud reproduces both properties at any
target average degree; classic Poisson stencils give the very sparse,
perfectly regular end of the spectrum.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.spatial import cKDTree

from repro.rng import as_generator
from repro.sparse.coo import canonical_coo

__all__ = ["poisson2d", "poisson3d", "knn_mesh"]


def _with_values(rows, cols, n, rng) -> sp.coo_matrix:
    vals = rng.uniform(0.5, 1.5, size=len(rows))
    return canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))


def poisson2d(nx: int, ny: int | None = None, seed=None) -> sp.coo_matrix:
    """5-point Laplacian stencil on an ``nx × ny`` grid (davg ≈ 5)."""
    ny = ny if ny is not None else nx
    rng = as_generator(seed)
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    for shift_r, shift_c in (((1, 0)), (0, 1)):
        a = idx[shift_r:, shift_c:].ravel()
        b = idx[: nx - shift_r, : ny - shift_c].ravel()
        rows += [a, b]
        cols += [b, a]
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    return _with_values(rows, cols, n, rng)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None, seed=None) -> sp.coo_matrix:
    """7-point Laplacian stencil on an ``nx × ny × nz`` grid (davg ≈ 7)."""
    ny = ny if ny is not None else nx
    nz = nz if nz is not None else nx
    rng = as_generator(seed)
    n = nx * ny * nz
    idx = np.arange(n).reshape(nx, ny, nz)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    for axis in range(3):
        sl_a = [slice(None)] * 3
        sl_b = [slice(None)] * 3
        sl_a[axis] = slice(1, None)
        sl_b[axis] = slice(None, -1)
        a = idx[tuple(sl_a)].ravel()
        b = idx[tuple(sl_b)].ravel()
        rows += [a, b]
        cols += [b, a]
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    return _with_values(rows, cols, n, rng)


def knn_mesh(
    n: int,
    k: int,
    dim: int = 3,
    seed=None,
    dense_rows: int = 0,
    dense_fraction: float = 0.1,
) -> sp.coo_matrix:
    """Symmetric k-NN graph over ``n`` random points in ``dim``-space.

    Every vertex links to its ``k`` nearest neighbours (symmetrised),
    giving davg ≈ k..2k with geometric locality, like an FEM stiffness
    pattern.  ``dense_rows`` optionally plants rows (and the matching
    columns) touching a ``dense_fraction`` of all vertices — the "a few
    dense rows inside an otherwise regular matrix" signature of
    pkustk12 and 3dtube.
    """
    rng = as_generator(seed)
    pts = rng.random((n, dim))
    tree = cKDTree(pts)
    _, nbr = tree.query(pts, k=min(k + 1, n))
    src = np.repeat(np.arange(n), nbr.shape[1])
    dst = nbr.ravel()
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst, np.arange(n)])
    cols = np.concatenate([dst, src, np.arange(n)])
    if dense_rows > 0:
        nd = max(1, int(dense_fraction * n))
        chosen = rng.choice(n, size=dense_rows, replace=False)
        for r in chosen:
            targets = rng.choice(n, size=nd, replace=False)
            rows = np.concatenate([rows, np.full(nd, r), targets])
            cols = np.concatenate([cols, targets, np.full(nd, r)])
    return _with_values(rows, cols, n, rng)
