"""Synthetic workload generators.

The paper's matrices come from the UFL collection and SNAP; offline we
generate structural analogs that reproduce the signatures the paper's
analysis keys on — average row degree, maximum row degree (dense rows),
and degree skew:

- :mod:`repro.generators.mesh` — FEM-like matrices (stencils, k-NN
  graphs of point clouds) for the structural-engineering analogs;
- :mod:`repro.generators.rmat` — the R-MAT generator with the paper's
  exact parameters (a=0.57, b=c=0.19, d=0.05);
- :mod:`repro.generators.powerlaw` — Chung–Lu scale-free graphs
  (social-network analogs);
- :mod:`repro.generators.circuit` — circuit/optimization analogs with
  extremely dense rows and columns;
- :mod:`repro.generators.suite` — the named Table I / Table IV suites.
"""

from repro.generators.circuit import arrow_matrix, banded_with_dense_rows, circuit_like
from repro.generators.mesh import knn_mesh, poisson2d, poisson3d
from repro.generators.powerlaw import chung_lu
from repro.generators.rmat import rmat
from repro.generators.suite import SuiteMatrix, table1_suite, table4_suite

__all__ = [
    "poisson2d",
    "poisson3d",
    "knn_mesh",
    "rmat",
    "chung_lu",
    "circuit_like",
    "banded_with_dense_rows",
    "arrow_matrix",
    "SuiteMatrix",
    "table1_suite",
    "table4_suite",
]
