"""Chung–Lu scale-free graphs (social-network analogs).

The com-Youtube analog of Table IV: a power-law degree sequence
``w_i ∝ (i + i0)^{-1/(γ-1)}`` scaled to the target average degree,
edges sampled with probability ``w_i w_j / Σw``.  Sampling is done per
high-degree vertex against the stationary distribution, which keeps
generation near-linear in the edge count.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.rng import as_generator
from repro.sparse.coo import canonical_coo

__all__ = ["chung_lu"]


def chung_lu(
    n: int,
    avg_degree: float,
    gamma: float = 2.3,
    seed=None,
    with_diagonal: bool = True,
) -> sp.coo_matrix:
    """Symmetric Chung–Lu matrix with a power-law degree sequence."""
    if gamma <= 2.0:
        raise ConfigError("gamma must exceed 2 for a finite mean degree")
    rng = as_generator(seed)
    i0 = 10.0
    w = (np.arange(n) + i0) ** (-1.0 / (gamma - 1.0))
    w *= (avg_degree * n) / w.sum()
    total = w.sum()
    prob = w / total
    # Expected edge count ~ avg_degree * n / 2; sample endpoints i.i.d.
    # from the weight distribution (the standard fast CL sampler).
    nedges = max(1, int(avg_degree * n / 2))
    src = rng.choice(n, size=nedges, p=prob)
    dst = rng.choice(n, size=nedges, p=prob)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    if with_diagonal:
        rows = np.concatenate([rows, np.arange(n)])
        cols = np.concatenate([cols, np.arange(n)])
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    m = canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))
    m.data = np.clip(m.data, 0.5, 1.5)
    return m
