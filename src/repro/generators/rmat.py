"""R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos 2004).

The paper's ``rmat_20`` instance uses parameters a=0.57, b=c=0.19,
d=0.05 with edges made undirected (Graph500 style); those are the
defaults here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.rng import as_generator
from repro.sparse.coo import canonical_coo

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: float = 8.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    d: float = 0.05,
    undirected: bool = True,
    seed=None,
) -> sp.coo_matrix:
    """Generate an R-MAT matrix of size ``2**scale``.

    ``edge_factor`` edges per vertex are sampled (duplicates collapse,
    so the realised nnz is somewhat smaller, as in the reference
    generator).  Quadrant probabilities must sum to 1.
    """
    if not np.isclose(a + b + c + d, 1.0):
        raise ConfigError("R-MAT probabilities must sum to 1")
    rng = as_generator(seed)
    n = 1 << scale
    nedges = int(edge_factor * n)
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    # Sample all bit levels at once: each level independently picks a
    # quadrant with probabilities (a, b, c, d).
    for _level in range(scale):
        r = rng.random(nedges)
        right = (r >= a) & (r < a + b)          # quadrant b: col bit set
        down = (r >= a + b) & (r < a + b + c)   # quadrant c: row bit set
        both = r >= a + b + c                   # quadrant d: both bits
        rows = (rows << 1) | (down | both)
        cols = (cols << 1) | (right | both)
    if undirected:
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = rng.uniform(0.5, 1.5, size=rows.size)
    m = canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))
    # Canonicalisation sums duplicate samples; renormalise values so
    # heavy cells don't get huge numerics.
    m.data = np.clip(m.data, 0.5, 1.5)
    return m
