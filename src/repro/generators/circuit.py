"""Circuit-simulation and optimization analogs: dense rows and columns.

Table IV's matrices (ASIC_680k, ins2, rajat30, boyd2, lp1) share one
decisive feature: a handful of rows/columns touching a large fraction
of the matrix (power/ground nets in circuits, coupling constraints in
LPs) on top of an otherwise very sparse, near-banded structure.  That
is exactly what makes 1D partitioning collapse — the dense row's
nonzeros cannot be split — and what the s2D schemes exploit.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.rng import as_generator
from repro.sparse.coo import canonical_coo

__all__ = ["banded_with_dense_rows", "circuit_like", "arrow_matrix"]


def _values(rows, cols, n, rng) -> sp.coo_matrix:
    vals = rng.uniform(0.5, 1.5, size=len(rows))
    m = canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))
    m.data = np.clip(m.data, 0.5, 1.5)
    return m


def banded_with_dense_rows(
    n: int,
    band: int = 2,
    ndense: int = 2,
    dense_fraction: float = 0.2,
    symmetric_dense: bool = False,
    seed=None,
) -> sp.coo_matrix:
    """A banded matrix plus ``ndense`` rows touching ``dense_fraction·n``
    random columns (boyd2 / ins2 analog; with ``symmetric_dense`` the
    matching columns are dense too)."""
    rng = as_generator(seed)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    for off in range(1, band + 1):
        rows += [np.arange(n - off), np.arange(off, n)]
        cols += [np.arange(off, n), np.arange(n - off)]
    nd = max(1, int(dense_fraction * n))
    dense_ids = rng.choice(n, size=ndense, replace=False)
    for r in dense_ids:
        targets = rng.choice(n, size=nd, replace=False)
        rows.append(np.full(nd, r))
        cols.append(targets)
        if symmetric_dense:
            rows.append(targets)
            cols.append(np.full(nd, r))
    return _values(np.concatenate(rows), np.concatenate(cols), n, rng)


def circuit_like(
    n: int,
    avg_degree: float = 4.0,
    ndense: int = 3,
    dense_fraction: float = 0.4,
    seed=None,
) -> sp.coo_matrix:
    """Random sparse connectivity plus dense power/ground-style nets.

    ASIC_680k / rajat30 analog: davg ≈ ``avg_degree`` but dmax ≈
    ``dense_fraction · n`` — the three-orders-of-magnitude skew that
    drives the paper's 96% volume reductions.
    """
    rng = as_generator(seed)
    nrand = max(1, int((avg_degree - 1.0) * n / 2))
    src = rng.integers(0, n, size=nrand)
    dst = rng.integers(0, n, size=nrand)
    keep = src != dst
    rows = [np.arange(n), src[keep], dst[keep]]
    cols = [np.arange(n), dst[keep], src[keep]]
    nd = max(1, int(dense_fraction * n))
    dense_ids = rng.choice(n, size=ndense, replace=False)
    for r in dense_ids:
        targets = rng.choice(n, size=nd, replace=False)
        rows += [np.full(nd, r), targets]
        cols += [targets, np.full(nd, r)]
    return _values(np.concatenate(rows), np.concatenate(cols), n, rng)


def arrow_matrix(n: int, nfull: int = 2, seed=None) -> sp.coo_matrix:
    """Diagonal plus ``nfull`` completely full rows and columns.

    The lp1 / ins2 extreme: a row of ``n`` nonzeros (ins2 "contains a
    row that is full") makes perfect 1D balance impossible beyond
    ``nnz/dmax`` processors — the theoretical bound the paper invokes.
    """
    rng = as_generator(seed)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    for r in range(nfull):
        others = np.delete(np.arange(n), r)
        rows += [np.full(n - 1, r), others]
        cols += [others, np.full(n - 1, r)]
    return _values(np.concatenate(rows), np.concatenate(cols), n, rng)
