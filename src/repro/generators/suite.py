"""The named matrix suites mirroring the paper's Table I and Table IV.

Each suite entry is a scaled structural analog of one UFL/SNAP matrix:
the *name* is kept so the benchmark output lines up with the paper, and
the generator is chosen to reproduce the property the paper keys on
(davg, dmax skew, dense rows).  Three scales are provided:

- ``tiny``  — for unit/CI tests (hundreds of nonzeros);
- ``small`` — the default benchmark scale (thousands of nonzeros);
- ``medium`` — closer-to-paper trends, minutes of runtime.

Set the environment variable ``REPRO_SCALE`` to override the scale used
by the benchmark harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import scipy.sparse as sp

from repro.errors import ConfigError
from repro.generators.circuit import arrow_matrix, banded_with_dense_rows, circuit_like
from repro.generators.mesh import knn_mesh, poisson3d
from repro.generators.powerlaw import chung_lu
from repro.generators.rmat import rmat
from repro.sparse.properties import MatrixProperties, matrix_properties

__all__ = ["SuiteMatrix", "table1_suite", "table4_suite", "SCALES"]

SCALES = ("tiny", "small", "medium")


@dataclass(frozen=True)
class SuiteMatrix:
    """A named workload: paper analog + its generator."""

    name: str
    paper_name: str
    application: str
    build: Callable[[], sp.coo_matrix]

    def matrix(self) -> sp.coo_matrix:
        return self.build()

    def properties(self) -> MatrixProperties:
        return matrix_properties(self.matrix(), name=self.name)


def _scale_factor(scale: str) -> float:
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; pick one of {SCALES}")
    return {"tiny": 0.25, "small": 1.0, "medium": 3.0}[scale]


def table1_suite(scale: str = "small", seed: int = 1) -> list[SuiteMatrix]:
    """Analogs of Table I (general matrices, mostly low-skew FEM).

    Ordered by nonzero count, like the paper's table.
    """
    f = _scale_factor(scale)
    n_mesh = max(80, int(220 * f))

    def g(i):  # per-matrix seed, stable across scales
        return seed * 1000 + i

    return [
        SuiteMatrix(
            "crystk02", "crystk02", "materials problem",
            lambda: knn_mesh(max(90, int(260 * f)), 16, dim=3, seed=g(1)),
        ),
        SuiteMatrix(
            "turon_m", "turon_m", "structural engineering",
            lambda: poisson3d(max(5, int(9 * f ** (1 / 3) * 1.4)), seed=g(2)),
        ),
        SuiteMatrix(
            "trdheim", "trdheim", "structural engineering",
            lambda: knn_mesh(max(70, int(190 * f)), 24, dim=2, seed=g(3)),
        ),
        SuiteMatrix(
            "c-big", "c-big", "non-linear optimization",
            lambda: chung_lu(max(250, int(900 * f)), 6.8, gamma=2.25, seed=g(4)),
        ),
        SuiteMatrix(
            "ASIC_680k", "ASIC_680k", "circuit simulation",
            lambda: circuit_like(
                max(300, int(1000 * f)), avg_degree=3.9, ndense=3,
                dense_fraction=0.45, seed=g(5),
            ),
        ),
        SuiteMatrix(
            "3dtube", "3dtube", "structural engineering",
            lambda: knn_mesh(
                n_mesh, 18, dim=3, seed=g(6), dense_rows=1, dense_fraction=0.12,
            ),
        ),
        SuiteMatrix(
            "pkustk12", "pkustk12", "structural engineering",
            lambda: knn_mesh(
                max(100, int(280 * f)), 22, dim=3, seed=g(7),
                dense_rows=2, dense_fraction=0.15,
            ),
        ),
        SuiteMatrix(
            "pattern1", "pattern1", "optimization problem",
            lambda: chung_lu(max(90, int(250 * f)), 40.0, gamma=2.6, seed=g(8)),
        ),
    ]


def table4_suite(scale: str = "small", seed: int = 2) -> list[SuiteMatrix]:
    """Analogs of Table IV (matrices with very dense rows)."""
    f = _scale_factor(scale)

    def g(i):
        return seed * 1000 + i

    n_big = max(300, int(1100 * f))
    return [
        SuiteMatrix(
            "boyd2", "boyd2", "optimization",
            lambda: banded_with_dense_rows(
                n_big, band=1, ndense=2, dense_fraction=0.20, seed=g(1),
            ),
        ),
        SuiteMatrix(
            "lp1", "lp1", "optimization",
            lambda: arrow_matrix(max(280, int(1000 * f)), nfull=2, seed=g(2)),
        ),
        SuiteMatrix(
            "c-big", "c-big", "non-linear opt.",
            lambda: chung_lu(max(250, int(900 * f)), 6.8, gamma=2.25, seed=g(3)),
        ),
        SuiteMatrix(
            "ASIC_680k", "ASIC_680k", "optimization",
            lambda: circuit_like(
                max(300, int(1000 * f)), avg_degree=3.9, ndense=3,
                dense_fraction=0.45, seed=g(4),
            ),
        ),
        SuiteMatrix(
            "ins2", "ins2", "circuit sim.",
            lambda: banded_with_dense_rows(
                max(280, int(950 * f)), band=3, ndense=1, dense_fraction=1.0,
                symmetric_dense=True, seed=g(5),
            ),
        ),
        SuiteMatrix(
            "com-Youtube", "com-Youtube", "Youtube social",
            lambda: chung_lu(max(400, int(1400 * f)), 5.2, gamma=2.2, seed=g(6)),
        ),
        SuiteMatrix(
            "rajat30", "rajat30", "circuit sim.",
            lambda: circuit_like(
                max(320, int(1100 * f)), avg_degree=9.6, ndense=4,
                dense_fraction=0.55, seed=g(7),
            ),
        ),
        SuiteMatrix(
            "rmat_20", "rmat_20", "Graph500 ben.",
            lambda: rmat(
                int(round(10 + math.log2(f))), edge_factor=7.8 / 2, seed=g(8),
            ),
        ),
    ]
