"""Declarative sweep grids and their compilation into a task DAG.

A :class:`SweepGrid` names the axes of a table-scale experiment —
matrices × schemes × K × seeds × machine models (scales enter through
the matrix references, so one grid can mix scales for scenario
diversity).  :meth:`SweepGrid.tasks` compiles the grid into
:class:`MatrixTask` nodes, the unit the orchestrator schedules:

- **engine affinity** — all cells of one (matrix, base seed) share one
  :class:`~repro.engine.PartitionEngine`, so the s2D family reuses the
  1D hypergraph run, one block structure and one block-DM pass per
  (matrix, K), exactly as the serial table harness does;
- **intra-task DAG order** — cells are topologically ordered by scheme
  dependency (1D before the s2D family, s2D before s2D-b), so the plan
  a derived scheme refines is already memoized when its cell runs;
- **deterministic seed derivation** — a cell's partitioner seed is
  :func:`derive_seed`\\ ``(base, matrix_index, slot)``, a pure function
  of the cell's coordinates.  Parallel workers therefore produce
  records bit-identical to a serial run: no RNG state is shared, and
  nothing depends on execution order.

Everything here is picklable: matrices travel as :class:`MatrixRef`
descriptions (suite name + scale + matrix name, or raw COO arrays) and
are materialized inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.engine.registry import resolve_method
from repro.errors import ConfigError
from repro.simulate.machine import MachineModel

__all__ = [
    "Cell",
    "MatrixRef",
    "MatrixTask",
    "SchemeSpec",
    "SweepGrid",
    "derive_seed",
    "suite_refs",
]

#: Scheme → schemes whose cached plans it refines.  Drives the
#: topological cell ordering inside a task; the engine's memo store is
#: what actually enforces the sharing.
SCHEME_DEPS = {
    "s2d-optimal": ("1d-rowwise",),
    "s2d-heuristic": ("1d-rowwise",),
    "s2d-balanced": ("1d-rowwise",),
    "s2d-bounded": ("s2d-heuristic",),
    "1d-boman": ("1d-rowwise",),
}


def derive_seed(base: int, matrix_index: int, slot: int) -> int:
    """Deterministic partitioner seed of one cell.

    ``base + 10 * matrix_index + slot`` — the same derivation the
    serial table harness has always used (matrices get disjoint decades
    of the seed space; schemes sharing a slot share a hypergraph run).
    """
    return base + 10 * matrix_index + slot


def _scheme_depth(scheme: str) -> int:
    deps = SCHEME_DEPS.get(scheme, ())
    return 1 + max((_scheme_depth(d) for d in deps), default=-1)


@dataclass(frozen=True, eq=False)
class MatrixRef:
    """A picklable recipe for one matrix.

    ``source`` is either ``("suite", which, scale)`` — resolved by name
    through :mod:`repro.generators.suite` inside the worker — or
    ``("coo", row, col, data, shape)`` carrying the arrays directly
    (hence ``eq=False``: generated equality/hash would trip over raw
    ndarray fields; refs compare by identity).
    """

    name: str
    source: tuple
    seed_index: int | None = None
    """Position of this matrix in its *full* suite.  Seed derivation
    uses it when set, so a names-restricted grid partitions each matrix
    with exactly the seeds the full table would — its cells share cache
    artifacts with (and reproduce the rows of) the published tables."""

    @property
    def scale(self) -> str | None:
        return self.source[2] if self.source[0] == "suite" else None

    def suite_entry(self):
        """The :class:`~repro.generators.suite.SuiteMatrix` behind a
        suite-backed ref."""
        from repro.generators.suite import table1_suite, table4_suite

        kind, which, scale = self.source
        if kind != "suite":
            raise ConfigError(f"{self.name!r} is not a suite-backed matrix ref")
        suite = table1_suite(scale) if which == "table1" else table4_suite(scale)
        for sm in suite:
            if sm.name == self.name:
                return sm
        raise ConfigError(f"unknown {which} suite matrix {self.name!r}")

    def materialize(self) -> sp.coo_matrix:
        """Build the matrix (deterministic: generators are seeded)."""
        if self.source[0] == "suite":
            return self.suite_entry().matrix()
        _, row, col, data, shape = self.source
        return sp.coo_matrix(
            (np.asarray(data), (np.asarray(row), np.asarray(col))),
            shape=tuple(shape),
        )

    @staticmethod
    def from_matrix(name: str, a) -> "MatrixRef":
        """Wrap an in-memory matrix (canonicalized) as a ref."""
        from repro.sparse.coo import canonical_coo

        m = canonical_coo(a)
        return MatrixRef(
            name=name, source=("coo", m.row, m.col, m.data, tuple(m.shape))
        )


def suite_refs(
    which: str, scale: str, names: tuple[str, ...] | None = None
) -> tuple[MatrixRef, ...]:
    """Refs for a named suite (``"table1"`` / ``"table4"``), optionally
    restricted to ``names`` — suite order (ascending nnz) and each
    matrix's full-suite ``seed_index`` are kept, so derived seeds line
    up with the tables even in a restricted grid."""
    from repro.generators.suite import table1_suite, table4_suite

    if which not in ("table1", "table4"):
        raise ConfigError(f"unknown suite {which!r}; pick 'table1' or 'table4'")
    suite = table1_suite(scale) if which == "table1" else table4_suite(scale)
    refs = [
        MatrixRef(name=sm.name, source=("suite", which, scale), seed_index=i)
        for i, sm in enumerate(suite)
        if names is None or sm.name in names
    ]
    if names is not None and len(refs) != len(names):
        missing = set(names) - {r.name for r in refs}
        raise ConfigError(f"unknown {which} suite matrices: {sorted(missing)}")
    return tuple(refs)


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme axis entry: method name (aliases fine) + seed slot.

    Schemes sharing a ``slot`` share a partitioner config per (matrix,
    K) — the paper's setup, where s2D refines the 1D run's vector
    partition.  ``opts`` are extra keyword arguments for
    :meth:`~repro.engine.PartitionEngine.plan`, as a sorted tuple of
    ``(name, value)`` pairs of picklable scalars.
    """

    scheme: str
    slot: int = 0
    opts: tuple = ()

    @property
    def canonical(self) -> str:
        return resolve_method(self.scheme)


@dataclass(frozen=True)
class Cell:
    """One grid point inside a task: scheme × K × machine index."""

    scheme: str
    slot: int
    k: int
    machine_index: int
    opts: tuple = ()


@dataclass(frozen=True)
class MatrixTask:
    """One schedulable DAG node: a matrix, a base seed, and its cells
    in topological scheme order.  Executed by one worker with one
    engine; independent of every other task."""

    task_index: int
    matrix_index: int
    ref: MatrixRef
    seed: int
    epsilon: float
    machines: tuple[MachineModel, ...]
    cells: tuple[Cell, ...]
    compile_plans: bool = False

    @property
    def name(self) -> str:
        return self.ref.name


@dataclass(frozen=True)
class SweepGrid:
    """The declarative experiment grid.

    ``matrices`` × ``schemes`` × ``ks`` × ``seeds`` × ``machines``;
    ``epsilon`` is both the partitioner imbalance tolerance and the
    engines' s2D default.  ``compile_plans=True`` additionally compiles
    (and, with a cache, persists) a :class:`~repro.runtime.CommPlan`
    per cell — for sweeps feeding iterative-solver scenarios.
    """

    matrices: tuple[MatrixRef, ...]
    schemes: tuple[SchemeSpec, ...]
    ks: tuple[int, ...]
    seeds: tuple[int, ...] = (42,)
    machines: tuple[MachineModel, ...] = (MachineModel(),)
    epsilon: float = 0.03
    compile_plans: bool = False

    def __post_init__(self) -> None:
        if not (self.matrices and self.schemes and self.ks):
            raise ConfigError("sweep grid needs matrices, schemes and ks")
        if not (self.seeds and self.machines):
            raise ConfigError("sweep grid needs at least one seed and machine")
        for spec in self.schemes:
            spec.canonical  # fail fast on unknown scheme names

    @property
    def ncells(self) -> int:
        return (
            len(self.matrices)
            * len(self.schemes)
            * len(self.ks)
            * len(self.seeds)
            * len(self.machines)
        )

    def tasks(self) -> list[MatrixTask]:
        """Compile the grid into per-(matrix, seed) DAG nodes."""
        ordered = sorted(
            self.schemes, key=lambda s: _scheme_depth(s.canonical)
        )  # stable: caller order within a dependency rank
        tasks = []
        for seed in self.seeds:
            for mi, ref in enumerate(self.matrices):
                seed_index = ref.seed_index if ref.seed_index is not None else mi
                cells = tuple(
                    Cell(
                        scheme=spec.canonical,
                        slot=spec.slot,
                        k=int(k),
                        machine_index=wi,
                        opts=spec.opts,
                    )
                    for k in self.ks
                    for spec in ordered
                    for wi in range(len(self.machines))
                )
                tasks.append(
                    MatrixTask(
                        task_index=len(tasks),
                        matrix_index=seed_index,
                        ref=ref,
                        seed=int(seed),
                        epsilon=self.epsilon,
                        machines=self.machines,
                        cells=cells,
                        compile_plans=self.compile_plans,
                    )
                )
        return tasks
