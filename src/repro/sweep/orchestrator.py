"""Parallel sweep execution over the compiled task DAG.

:func:`run_sweep` executes a :class:`~repro.sweep.grid.SweepGrid` —
serially, or on a fork-based process pool (``jobs > 1``).  Each
:class:`~repro.sweep.grid.MatrixTask` is one unit of work: the worker
materializes the matrix, builds one :class:`~repro.engine.\
PartitionEngine` (threading the shared :class:`~repro.sweep.cache.\
ArtifactCache` through its ``artifacts`` hook) and walks the task's
cells in DAG order.  Results come back as :class:`CellRecord` lists and
are reassembled in grid order, so the output is byte-for-byte
independent of scheduling.

Determinism guarantees (pinned by the parity tests):

- cell seeds are pure functions of grid coordinates
  (:func:`~repro.sweep.grid.derive_seed`) — no shared RNG;
- tasks share no mutable state; the artifact cache is content-addressed
  and written atomically, so concurrent writers race only toward
  identical bytes;
- ``pool.imap_unordered`` is used purely for scheduling; records are
  re-sorted by task index before return.

Tasks are dispatched largest-first (suite order is ascending nnz, so
dispatch order is reversed) to keep the pool's makespan short.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.engine import PartitionEngine
from repro.errors import CellExecutionError
from repro.hypergraph import PartitionConfig
from repro.jobs import resolve_jobs
from repro.simulate.machine import MachineModel
from repro.simulate.report import PartitionQuality
from repro.sweep.cache import ArtifactCache
from repro.sweep.grid import MatrixTask, SweepGrid, derive_seed

__all__ = [
    "CellRecord",
    "SweepResult",
    "map_tasks",
    "quality_identical",
    "run_sweep",
]


@dataclass(frozen=True)
class CellRecord:
    """One evaluated grid cell, self-describing and picklable."""

    matrix: str
    scale: str | None
    scheme: str
    k: int
    seed: int
    slot: int
    machine: MachineModel
    quality: PartitionQuality
    from_cache: bool = False


@dataclass
class SweepResult:
    """All records of one sweep plus per-engine bookkeeping.

    ``engines`` holds one dict per task — matrix name, seed, the
    engine's :meth:`~repro.engine.PartitionEngine.cache_info` (hits,
    misses, entries and ``cached_bytes`` for memory-pressure logging)
    and the worker's artifact-cache stats.
    """

    records: list[CellRecord]
    engines: list[dict] = field(default_factory=list)

    def get(
        self,
        matrix: str,
        scheme: str,
        k: int,
        *,
        seed: int | None = None,
        machine: MachineModel | None = None,
    ) -> CellRecord:
        """The unique record at the given grid coordinates."""
        hits = [
            r
            for r in self.records
            if r.matrix == matrix
            and r.scheme == scheme
            and r.k == k
            and (seed is None or r.seed == seed)
            and (machine is None or r.machine == machine)
        ]
        if len(hits) != 1:
            raise KeyError(
                f"{len(hits)} records for ({matrix!r}, {scheme!r}, K={k}); "
                "pass seed=/machine= to disambiguate"
            )
        return hits[0]

    def quality(self, matrix: str, scheme: str, k: int, **kw) -> PartitionQuality:
        return self.get(matrix, scheme, k, **kw).quality


def quality_identical(a: PartitionQuality, b: PartitionQuality) -> bool:
    """Bitwise equality of two cell results: every tabulated number,
    the simulated output vector, and the full communication ledger."""
    return bool(
        a.kind == b.kind
        and a.nparts == b.nparts
        and a.load_imbalance == b.load_imbalance
        and a.total_volume == b.total_volume
        and a.avg_msgs == b.avg_msgs
        and a.max_msgs == b.max_msgs
        and a.speedup == b.speedup
        and a.time == b.time
        and np.array_equal(a.run.y, b.run.y)
        and a.run.ledger.phase_names == b.run.ledger.phase_names
        and a.run.ledger.as_dict() == b.run.ledger.as_dict()
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _machine_key(machine: MachineModel) -> tuple:
    return ("machine", machine.alpha, machine.beta, machine.gamma)


def _execute_task(task: MatrixTask, cache_dir) -> tuple[list[CellRecord], dict]:
    """Run every cell of one task through one engine (worker body)."""
    t_start = obs.now()
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    engine = PartitionEngine(
        task.ref.materialize(),
        seed=task.seed,
        epsilon=task.epsilon,
        machine=task.machines[0],
        artifacts=cache,
    )
    digest = engine.matrix_digest
    records: list[CellRecord] = []
    with obs.span(
        "sweep.task", matrix=task.name, seed=task.seed, pid=os.getpid()
    ):
        for cell in task.cells:
            with obs.span("sweep.cell", scheme=cell.scheme, k=cell.k):
                try:
                    records.append(
                        _execute_cell(task, engine, cache, digest, cell)
                    )
                except CellExecutionError:
                    raise
                except Exception as exc:
                    # Name the cell before the exception crosses the
                    # pool boundary: a raw pickled traceback from an
                    # 8-matrix grid says nothing about *which*
                    # (matrix, scheme, K, seed) blew up.
                    ident = {
                        "matrix": task.name,
                        "scheme": cell.scheme,
                        "k": cell.k,
                        "seed": task.seed,
                        "slot": cell.slot,
                    }
                    raise CellExecutionError(
                        f"cell (matrix={task.name!r}, scheme={cell.scheme!r},"
                        f" K={cell.k}, seed={task.seed}) failed in task"
                        f" {task.task_index} [pid {os.getpid()}]:"
                        f" {type(exc).__name__}: {exc}",
                        cell=ident,
                        task_index=task.task_index,
                        worker_tb=traceback.format_exc(),
                    ) from exc
    info = {
        "matrix": task.name,
        "seed": task.seed,
        "pid": os.getpid(),
        "task_s": obs.now() - t_start,
        **engine.cache_info(),
    }
    if cache is not None:
        info["artifacts"] = dict(cache.stats)
    return records, info


def _execute_cell(task, engine, cache, digest, cell) -> CellRecord:
    """Plan and evaluate one grid cell (record-cache aware)."""
    machine = task.machines[cell.machine_index]
    config = PartitionConfig(
        epsilon=task.epsilon,
        seed=derive_seed(task.seed, task.matrix_index, cell.slot),
    )
    opts = dict(cell.opts)
    quality = None
    from_cache = False
    plan_key = None
    if cache is not None:
        # Address the record without building the plan.
        plan_key = engine.plan_key(cell.scheme, cell.k, config=config, **opts)
        quality = cache.fetch_record(digest, plan_key, _machine_key(machine))
        from_cache = quality is not None
    plan = None
    if quality is None:
        plan = engine.plan(cell.scheme, cell.k, config=config, **opts)
        quality = engine.evaluate(plan, machine=machine)
        if cache is not None:
            cache.store_record(digest, plan_key, _machine_key(machine), quality)
    if task.compile_plans:
        # Compile even when the record came from the cache: the
        # plan itself is then a cheap artifact fetch, and the
        # CommPlan contract holds regardless of record warmth.
        if plan is None:
            plan = engine.plan(cell.scheme, cell.k, config=config, **opts)
        engine.compiled_plan(plan)
    return CellRecord(
        matrix=task.name,
        scale=task.ref.scale,
        scheme=cell.scheme,
        k=cell.k,
        seed=task.seed,
        slot=cell.slot,
        machine=machine,
        quality=quality,
        from_cache=from_cache,
    )


def _execute_indexed(args):
    index, task, cache_dir = args
    return index, _execute_task(task, cache_dir)


def _call_indexed(args):
    index, fn, item = args
    return index, fn(item)


# ----------------------------------------------------------------------
# Pool driver
# ----------------------------------------------------------------------


def _fork_context():
    """The fork multiprocessing context, or None where unsupported
    (workers then run serially — results are identical either way)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return None  # pragma: no cover - non-POSIX platforms
    return multiprocessing.get_context("fork")


def _pool_map(indexed_call, jobs: int, items: list):
    """Order-restoring parallel map: ``items`` are ``(index, …)``
    tuples, dispatched as given, reassembled by index."""
    results: dict[int, object] = {}
    ctx = _fork_context()
    if jobs <= 1 or len(items) <= 1 or ctx is None:
        for item in items:
            index, value = indexed_call(item)
            results[index] = value
    else:
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            for index, value in pool.imap_unordered(indexed_call, items, chunksize=1):
                results[index] = value
    return [results[i] for i in sorted(results)]


def map_tasks(fn, items, *, jobs: int = 1) -> list:
    """Generic orchestrator entry point: apply a picklable ``fn`` to
    every item on the sweep pool, preserving input order.  The property
    tables and the Figure 1 harness route through this, so every
    experiment artifact shares one execution layer.

    ``jobs=0`` means one worker per core; negative values raise
    :class:`~repro.errors.UsageError`."""
    jobs = resolve_jobs(jobs, what="jobs")
    indexed = [(i, fn, item) for i, item in enumerate(items)]
    return _pool_map(_call_indexed, jobs, indexed)


def run_sweep(
    grid: SweepGrid, *, jobs: int = 1, cache_dir=None
) -> SweepResult:
    """Execute a sweep grid; see the module docstring for guarantees.

    ``jobs`` caps the worker processes (1 = in-process serial, 0 = one
    per core; negative raises :class:`~repro.errors.UsageError`);
    ``cache_dir`` enables the persistent artifact cache — cold runs
    write partitions, compiled plans and cell records through it, warm
    reruns are pure cache reads.
    """
    jobs = resolve_jobs(jobs, what="jobs")
    if cache_dir is not None:
        ArtifactCache(cache_dir)  # create the root eagerly (fail fast)
    tasks = grid.tasks()
    # Largest-first dispatch: suites are ordered by ascending nnz.
    indexed = [(t.task_index, t, cache_dir) for t in reversed(tasks)]
    outcomes = _pool_map(_execute_indexed, jobs, indexed)
    records: list[CellRecord] = []
    engines: list[dict] = []
    for task_records, info in outcomes:
        records.extend(task_records)
        engines.append(info)
    return SweepResult(records=records, engines=engines)
