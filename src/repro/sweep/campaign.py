"""Crash-safe, resumable campaign execution of sweep grids.

:func:`~repro.sweep.orchestrator.run_sweep` executes a grid but owns no
durable state: a worker crash, OOM kill or host reboot loses every
in-flight cell and forces a cold restart.  A :class:`Campaign` promotes
the same :class:`~repro.sweep.grid.SweepGrid` into a supervised run
that survives all of those:

- **journal** — every cell lifecycle transition (``scheduled`` /
  ``started`` / ``done`` / ``failed`` / ``quarantined``) is an
  append-only, fsync'd, checksummed JSONL event
  (:mod:`repro.sweep.journal`).  The journal is written *before* the
  campaign's in-memory state advances, so ``kill -9`` at any byte
  offset loses at most the in-flight cells.
- **resume** — :meth:`Campaign.resume` replays the journal (recovering
  a torn or corrupted tail first), rehydrates completed cells' records
  from the :class:`~repro.sweep.cache.ArtifactCache` (write-through
  during execution, so it is the source of truth), and re-queues only
  the rest.  Resumed records are bit-identical to an unfaulted serial
  run — the cache stores exact pickles and cell seeds are pure
  functions of grid coordinates.
- **supervision** — cells run in forked worker processes (one process
  per task batch, streaming per-cell results over a pipe).  A per-task
  watchdog reaps stuck children (``Process.kill`` from the
  coordinator — the same reaper discipline as
  :mod:`repro.runtime.parallel`), marks the in-flight cell
  ``timed_out`` and respawns the worker.
- **retry policy** — transient faults (worker SIGKILL, watchdog
  timeout, interrupted-by-crash) are retried with exponential backoff
  plus deterministic jitter up to a per-cell attempt budget.  A cell
  that raises the *same exception twice* is deterministic and is
  quarantined immediately: it lands in the ``failed_cells`` report and
  the campaign still completes every other cell — graceful
  degradation, never a hung pool or an aborted grid.

Fault injection for tests lives in :mod:`repro.sweep.faults`; the
deterministic :class:`~repro.sweep.faults.FaultPlan` threads through to
workers so a faulted campaign replays exactly.

Observability: the coordinator merges worker-measured cell windows into
the ambient trace as ``campaign.cell`` spans (monotonic clocks are
system-wide, the same trick the parallel executor uses), and bumps
``campaign.retries`` / ``campaign.resumed_cells`` /
``campaign.timeouts`` / ``campaign.quarantined`` counters; journal
replay and recovery emit ``journal.*`` events.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from pathlib import Path

from repro import obs
from repro.engine import PartitionEngine
from repro.errors import CampaignError, ConfigError
from repro.hypergraph import PartitionConfig
from repro.jobs import resolve_jobs
from repro.sweep.cache import ArtifactCache
from repro.sweep.faults import FaultPlan
from repro.sweep.grid import Cell, MatrixTask, SweepGrid, derive_seed
from repro.sweep.journal import Journal
from repro.sweep.orchestrator import (
    CellRecord,
    SweepResult,
    _execute_cell,
    _fork_context,
    _machine_key,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "FailedCell",
    "RetryPolicy",
    "campaign_status",
    "cell_uid",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry budget and backoff shape.

    ``max_attempts`` caps total tries per cell (failures beyond it
    quarantine the cell).  Backoff before attempt *n* (n ≥ 2) is
    ``base * factor**(n-2)`` capped at ``cap``, scaled by a
    deterministic jitter in ``[1, 1+jitter)`` derived from the cell uid
    — campaigns with the same faults back off identically.
    """

    max_attempts: int = 3
    base: float = 0.25
    factor: float = 2.0
    cap: float = 10.0
    jitter: float = 0.25

    def backoff(self, attempts: int, uid: str = "") -> float:
        """Delay in seconds after the ``attempts``-th failure."""
        delay = min(self.cap, self.base * self.factor ** max(0, attempts - 1))
        h = int.from_bytes(
            hashlib.sha256(f"{uid}:{attempts}".encode()).digest()[:8], "big"
        )
        return delay * (1.0 + self.jitter * (h / 2.0**64))


def cell_uid(task: MatrixTask, cell: Cell) -> str:
    """Stable identity of one grid cell — a pure function of its
    coordinates, so journal entries address the same cell across
    processes and resumes."""
    uid = (
        f"{task.name}:s{task.seed}:{cell.scheme}:K{cell.k}"
        f":m{cell.machine_index}:slot{cell.slot}"
    )
    if cell.opts:
        uid += ":" + hashlib.sha256(repr(cell.opts).encode()).hexdigest()[:8]
    return uid


#: Failure kinds considered transient (retried up to the budget).
#: ``raise`` failures are transient *once*: repeating the same
#: exception is deterministic and quarantines immediately.
_TRANSIENT_KINDS = frozenset({"killed", "timeout", "interrupted", "task-raise"})


@dataclass
class FailedCell:
    """One quarantined cell in the campaign's degradation report."""

    uid: str
    matrix: str
    scheme: str
    k: int
    seed: int
    attempts: int
    reason: str  # "deterministic" | "budget"
    failures: list = field(default_factory=list)  # (kind, exc_type, msg)

    def summary(self) -> str:
        last = self.failures[-1] if self.failures else ("?", "", "")
        return (
            f"{self.uid}: quarantined after {self.attempts} attempt(s) "
            f"[{self.reason}] last={last[0]}"
            + (f" {last[1]}: {last[2]}" if last[1] else "")
        )


@dataclass
class CampaignStatus:
    """Progress snapshot (CLI ``campaign status`` / progress callback)."""

    total: int
    done: int
    quarantined: int
    pending: int
    running: int
    retries: int
    avg_cell_s: float
    eta_s: float

    def line(self) -> str:
        eta = f"{self.eta_s:.0f}s" if self.eta_s > 0 else "-"
        return (
            f"[{self.done}/{self.total}] done"
            + (f" quarantined={self.quarantined}" if self.quarantined else "")
            + (f" retries={self.retries}" if self.retries else "")
            + f" avg={self.avg_cell_s * 1e3:.0f}ms/cell eta={eta}"
        )


@dataclass
class CampaignResult:
    """Everything a finished (or aborted) campaign produced.

    ``records`` hold the completed cells in grid order;
    ``failed_cells`` the quarantined ones; ``complete`` is True iff
    every grid cell is done (no pending, no quarantined).  ``counters``
    carries the robustness bookkeeping (retries, resumed cells,
    timeouts, journal stats).
    """

    records: list[CellRecord]
    failed_cells: list[FailedCell] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    engines: list[dict] = field(default_factory=list)
    complete: bool = True

    @property
    def sweep(self) -> SweepResult:
        """The records as a :class:`SweepResult` (``get``/``quality``)."""
        return SweepResult(records=list(self.records), engines=list(self.engines))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _exc_fields(exc: BaseException) -> tuple[str, str, str]:
    import traceback

    return (
        type(exc).__name__,
        str(exc),
        "".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
    )


def _campaign_worker(conn, task, items, cache_dir, faults) -> None:
    """One worker batch: stream per-cell outcomes back over ``conn``.

    ``items`` is a list of ``(uid, cell, attempt)`` for one task, in
    DAG order.  The worker materializes the matrix once, runs each cell
    through one engine (record-cache aware, write-through), and sends
    ``started`` / ``done`` / ``failed`` messages as they happen — the
    coordinator journals them, so everything acknowledged here is
    durable before the next cell begins.  Exits via ``os._exit`` like
    every forked worker in this repo (no inherited-teardown noise).
    """
    try:
        try:
            cache = ArtifactCache(cache_dir)
            engine = PartitionEngine(
                task.ref.materialize(),
                seed=task.seed,
                epsilon=task.epsilon,
                machine=task.machines[0],
                artifacts=cache,
            )
            digest = engine.matrix_digest
        except BaseException as exc:
            conn.send(("taskfail", _exc_fields(exc)))
            conn.send(("end", None))
            return
        for uid, cell, attempt in items:
            conn.send(("started", uid))
            t0 = obs.now()
            try:
                if faults is not None:
                    faults.fire(uid, attempt)
                record = _execute_cell(task, engine, cache, digest, cell)
                machine = task.machines[cell.machine_index]
                config = PartitionConfig(
                    epsilon=task.epsilon,
                    seed=derive_seed(task.seed, task.matrix_index, cell.slot),
                )
                plan_key = engine.plan_key(
                    cell.scheme, cell.k, config=config, **dict(cell.opts)
                )
                key_hex = ArtifactCache.record_key(
                    digest, plan_key, _machine_key(machine)
                )
                conn.send(
                    ("done", uid, key_hex, t0, obs.now() - t0, record.from_cache)
                )
            except BaseException as exc:
                conn.send(("failed", uid, t0, obs.now() - t0, _exc_fields(exc)))
        info = {"matrix": task.name, "seed": task.seed, "pid": os.getpid()}
        info.update(engine.cache_info())
        info["artifacts"] = dict(cache.stats)
        conn.send(("end", info))
    except BaseException:  # pragma: no cover - broken pipe: parent died
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        os._exit(0)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


@dataclass
class _CellState:
    uid: str
    task_index: int
    pos: int
    cell: Cell
    status: str = "pending"  # pending | running | done | quarantined
    attempts: int = 0  # failures charged so far
    failures: list = field(default_factory=list)  # (kind, exc_type, msg)
    not_before: float = 0.0
    record_key: str | None = None
    from_cache: bool = False
    dur: float = 0.0
    quarantine_reason: str = ""


@dataclass
class _Job:
    proc: object
    conn: object
    task_index: int
    items: list  # [(uid, cell, attempt), ...]
    deadline: float
    current: str | None = None  # uid of the started-but-unresolved cell
    resolved: set = field(default_factory=set)
    any_message: bool = False
    ended: bool = False
    inline: bool = False  # no-fork fallback: conn is a buffer, not an fd


class Campaign:
    """Supervised, journaled, resumable execution of one sweep grid.

    Parameters
    ----------
    grid:
        The :class:`SweepGrid` to evaluate.
    root:
        Campaign directory: holds ``journal.jsonl`` and the artifact
        cache under ``cache/`` (shared with any other run of the same
        grid — content addressing makes that safe).
    jobs:
        Max concurrent worker processes (``resolve_jobs`` convention).
    retry, watchdog_s, faults:
        Retry policy, per-cell watchdog timeout, optional
        :class:`FaultPlan` (tests/benchmarks).
    fsync:
        Journal durability (default on; tests may disable).
    progress:
        Optional callable receiving a :class:`CampaignStatus` after
        every cell completion/failure.
    stop_after:
        Test/bench harness hook: abruptly stop the coordinator after
        this many cells are ``done`` — *without* any graceful journal
        marker, exactly as a ``kill -9`` of the campaign process would.
    """

    def __init__(
        self,
        grid: SweepGrid,
        root,
        *,
        jobs: int = 1,
        retry: RetryPolicy | None = None,
        watchdog_s: float = 300.0,
        faults: FaultPlan | None = None,
        fsync: bool = True,
        progress=None,
        stop_after: int | None = None,
        sleep=time.sleep,
    ) -> None:
        self.grid = grid
        self.root = Path(root).expanduser()
        self.jobs = resolve_jobs(jobs, what="jobs")
        self.retry = retry or RetryPolicy()
        self.watchdog_s = float(watchdog_s)
        self.faults = faults
        self.fsync = bool(fsync)
        self.progress = progress
        self.stop_after = stop_after
        self._sleep = sleep
        self.tasks = grid.tasks()
        self.cells: dict[str, _CellState] = {}
        self.order: list[str] = []
        for task in self.tasks:
            for pos, cell in enumerate(task.cells):
                uid = cell_uid(task, cell)
                if uid in self.cells:
                    raise ConfigError(f"duplicate campaign cell uid {uid!r}")
                self.cells[uid] = _CellState(
                    uid=uid, task_index=task.task_index, pos=pos, cell=cell
                )
                self.order.append(uid)
        self.grid_sig = hashlib.sha256(
            "\n".join(self.order).encode()
        ).hexdigest()[:16]
        self.counters: dict[str, float] = {
            "retries": 0,
            "resumed_cells": 0,
            "quarantined": 0,
            "timeouts": 0,
            "killed": 0,
            "cells_executed": 0,
            "cells_from_cache": 0,
            "rehydrate_miss": 0,
            "journal_recovered": 0,
        }
        self.engines: list[dict] = []
        self._ctx = _fork_context()
        if self._ctx is None and faults is not None and any(
            s.kind in ("kill", "stall") for s in faults.specs
        ):  # pragma: no cover - non-POSIX platforms
            raise CampaignError(
                "kill/stall fault injection requires a fork-capable platform"
            )

    # ------------------------------------------------------------- paths

    @property
    def journal_path(self) -> Path:
        return self.root / "journal.jsonl"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def cell_uids(self) -> list[str]:
        """All cell uids in deterministic grid order (fault targeting)."""
        return list(self.order)

    # ------------------------------------------------------------ public

    def run(self) -> CampaignResult:
        """Execute from scratch; refuses a journal with prior progress
        (use :meth:`resume` for that — the split keeps an accidental
        re-``run`` from silently reusing half a campaign)."""
        replay = Journal(self.journal_path).replay()
        if any(e.get("ev") != "campaign" for e in replay.events):
            raise ConfigError(
                f"campaign journal {self.journal_path} already has progress; "
                "use resume"
            )
        return self._execute()

    def resume(self) -> CampaignResult:
        """Replay the journal, skip completed cells, finish the rest."""
        return self._execute()

    def status(self) -> CampaignStatus:
        return campaign_status(self.root)

    # ------------------------------------------------------ replay logic

    def _replay_into_state(self, events: list[dict]) -> None:
        open_starts: dict[str, bool] = {}
        for ev in events:
            kind = ev.get("ev")
            if kind == "campaign":
                if ev.get("sig") != self.grid_sig:
                    raise CampaignError(
                        "journal belongs to a different grid "
                        f"(sig {ev.get('sig')} != {self.grid_sig})"
                    )
                continue
            state = self.cells.get(ev.get("cell"))
            if state is None:
                raise CampaignError(
                    f"journal names unknown cell {ev.get('cell')!r}"
                )
            if kind == "started":
                open_starts[state.uid] = True
            elif kind == "done":
                state.status = "done"
                state.record_key = ev.get("key")
                state.dur = float(ev.get("dur", 0.0))
                state.from_cache = bool(ev.get("from_cache", False))
                open_starts.pop(state.uid, None)
            elif kind == "failed":
                state.attempts += 1
                state.failures.append(
                    (ev.get("kind", "?"), ev.get("exc", ""), ev.get("msg", ""))
                )
                open_starts.pop(state.uid, None)
            elif kind == "quarantined":
                state.status = "quarantined"
                state.quarantine_reason = ev.get("reason", "budget")
        # A start with no matching outcome was in flight when the
        # campaign died: charge one transient attempt so a cell that
        # *causes* the crash (e.g. the OOM killer) cannot loop forever
        # across resumes.
        for uid in open_starts:
            state = self.cells[uid]
            if state.status == "pending":
                state.attempts += 1
                state.failures.append(("interrupted", "", ""))

    def _rehydrate(self, cache: ArtifactCache) -> None:
        for state in self.cells.values():
            if state.status != "done":
                continue
            quality = cache.fetch_record_hex(state.record_key)
            if quality is None:
                # Cache loss: the journal says done but the record is
                # gone — recompute rather than fail the resume.
                state.status = "pending"
                state.record_key = None
                self.counters["rehydrate_miss"] += 1
            else:
                state.quality = quality
                self.counters["resumed_cells"] += 1
                obs.add("campaign.resumed_cells")

    # --------------------------------------------------------- execution

    def _execute(self) -> CampaignResult:
        self.root.mkdir(parents=True, exist_ok=True)
        cache = ArtifactCache(self.cache_dir)
        journal = Journal(self.journal_path, fsync=self.fsync)
        replay = journal.recover()
        if replay.damaged:
            self.counters["journal_recovered"] = 1
        obs.event(
            "campaign.replay",
            events=len(replay.events),
            dropped_lines=replay.dropped_lines,
        )
        with obs.span("campaign.run", cells=len(self.order), jobs=self.jobs):
            try:
                self._replay_into_state(replay.events)
                self._rehydrate(cache)
                if not replay.events:
                    journal.append(
                        {
                            "ev": "campaign",
                            "cells": len(self.order),
                            "sig": self.grid_sig,
                        }
                    )
                # Quarantine anything whose replayed history already
                # exhausts the policy (e.g. a lowered budget on resume).
                for state in self.cells.values():
                    if state.status == "pending" and state.failures:
                        self._maybe_quarantine(state, journal)
                aborted = self._supervise(journal, cache)
            finally:
                journal.close()
                # Journal cost accounting for the benchmark's
                # journal-overhead acceptance bound.
                self.counters["journal_appends"] = journal.appended
                self.counters["journal_write_s"] = journal.write_s
            return self._finalize(cache, aborted)

    def _supervise(self, journal: Journal, cache: ArtifactCache) -> bool:
        """The coordinator loop; returns True when stop_after aborted."""
        running: dict[object, _Job] = {}  # conn -> job
        try:
            while True:
                now = obs.now()
                if self._done_count() == len(self.order):
                    break
                self._dispatch(running, journal, now)
                # In-process fallback jobs buffer their whole batch at
                # spawn time and have no pollable fd: consume them here.
                for conn, job in list(running.items()):
                    if job.inline:  # pragma: no cover - non-POSIX platforms
                        if self._drain(job, journal, cache):
                            return True
                        self._finish_job(job, journal, reason="eof")
                        del running[conn]
                if not running:
                    nb = self._next_not_before()
                    if nb is None:
                        break  # only quarantined cells remain
                    self._sleep(max(0.0, nb - obs.now()))
                    continue
                deadline = min(j.deadline for j in running.values())
                nb = self._next_not_before()
                timeout = deadline - now
                if nb is not None and len(running) < self.jobs:
                    timeout = min(timeout, nb - now)
                ready = connection.wait(
                    list(running), timeout=max(0.0, min(timeout, 60.0))
                )
                for conn in ready:
                    job = running[conn]
                    if self._drain(job, journal, cache):
                        return True  # stop_after hit: simulate kill -9
                    if job.ended or not job.proc.is_alive():
                        self._finish_job(job, journal, reason="eof")
                        del running[conn]
                now = obs.now()
                for conn, job in list(running.items()):
                    if now > job.deadline:
                        # Watchdog: reap the stuck child, mark the
                        # in-flight cell timed out, respawn via requeue.
                        job.proc.kill()
                        job.proc.join()
                        self._drain(job, journal, cache)
                        self.counters["timeouts"] += 1
                        obs.add("campaign.timeouts")
                        self._finish_job(job, journal, reason="timeout")
                        del running[conn]
            return False
        finally:
            for job in running.values():
                if job.proc is not None and job.proc.is_alive():
                    job.proc.kill()
                    job.proc.join()

    # ------------------------------------------------------- dispatching

    def _ready_by_task(self, now: float) -> dict[int, list[_CellState]]:
        ready: dict[int, list[_CellState]] = {}
        for uid in self.order:
            state = self.cells[uid]
            if state.status == "pending" and state.not_before <= now:
                ready.setdefault(state.task_index, []).append(state)
        return ready

    def _dispatch(self, running: dict, journal: Journal, now: float) -> None:
        busy = {j.task_index for j in running.values()}
        ready = self._ready_by_task(now)
        for task_index in sorted(ready):
            if len(running) >= self.jobs:
                break
            if task_index in busy:
                continue  # one worker per task at a time (engine affinity)
            states = sorted(ready[task_index], key=lambda s: s.pos)
            items = []
            for state in states:
                attempt = state.attempts
                journal.append(
                    {"ev": "scheduled", "cell": state.uid, "attempt": attempt},
                )
                state.status = "running"
                items.append((state.uid, state.cell, attempt))
            task = self.tasks[task_index]
            job = self._spawn(task, items)
            running[job.conn] = job

    def _spawn(self, task: MatrixTask, items: list) -> _Job:
        if self._ctx is not None:
            parent, child = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_campaign_worker,
                args=(child, task, items, str(self.cache_dir), self.faults),
                daemon=True,
            )
            proc.start()
            child.close()
            return _Job(
                proc=proc,
                conn=parent,
                task_index=task.task_index,
                items=items,
                deadline=obs.now() + self.watchdog_s,
            )
        return self._spawn_inprocess(task, items)  # pragma: no cover

    def _spawn_inprocess(self, task, items) -> _Job:  # pragma: no cover
        """No-fork fallback: run the batch synchronously and buffer the
        messages in a queue-like shim (no watchdog, no kill faults)."""

        class _Shim:
            def __init__(self):
                self.msgs: list = []

            def send(self, msg):
                self.msgs.append(msg)

            def close(self):
                pass

            def poll(self):
                return bool(self.msgs)

            def recv(self):
                if not self.msgs:
                    raise EOFError
                return self.msgs.pop(0)

            def fileno(self):
                raise OSError("in-process job has no fd")

        shim = _Shim()
        cache = ArtifactCache(self.cache_dir)
        engine = PartitionEngine(
            task.ref.materialize(),
            seed=task.seed,
            epsilon=task.epsilon,
            machine=task.machines[0],
            artifacts=cache,
        )
        digest = engine.matrix_digest
        for uid, cell, attempt in items:
            shim.send(("started", uid))
            t0 = obs.now()
            try:
                if self.faults is not None:
                    self.faults.fire(uid, attempt)
                record = _execute_cell(task, engine, cache, digest, cell)
                machine = task.machines[cell.machine_index]
                config = PartitionConfig(
                    epsilon=task.epsilon,
                    seed=derive_seed(task.seed, task.matrix_index, cell.slot),
                )
                plan_key = engine.plan_key(
                    cell.scheme, cell.k, config=config, **dict(cell.opts)
                )
                key_hex = ArtifactCache.record_key(
                    digest, plan_key, _machine_key(machine)
                )
                shim.send(
                    ("done", uid, key_hex, t0, obs.now() - t0, record.from_cache)
                )
            except Exception as exc:
                shim.send(("failed", uid, t0, obs.now() - t0, _exc_fields(exc)))
        info = {"matrix": task.name, "seed": task.seed, "pid": os.getpid()}
        info.update(engine.cache_info())
        shim.send(("end", info))

        class _DeadProc:
            pid = os.getpid()

            @staticmethod
            def is_alive():
                return False

            @staticmethod
            def kill():
                pass

            @staticmethod
            def join(timeout=None):
                pass

        return _Job(
            proc=_DeadProc(),
            conn=shim,
            task_index=task.task_index,
            items=items,
            deadline=obs.now() + 1e12,
            inline=True,
        )

    # ---------------------------------------------------- message intake

    def _drain(self, job: _Job, journal: Journal, cache: ArtifactCache) -> bool:
        """Process every buffered message of one job; True = aborted."""
        try:
            while job.conn.poll():
                msg = job.conn.recv()
                job.any_message = True
                if self._handle(job, msg, journal):
                    return True
        except (EOFError, OSError):
            pass
        return False

    def _handle(self, job: _Job, msg: tuple, journal: Journal) -> bool:
        kind = msg[0]
        if kind == "started":
            uid = msg[1]
            state = self.cells[uid]
            journal.append(
                {
                    "ev": "started",
                    "cell": uid,
                    "attempt": state.attempts,
                    "pid": getattr(job.proc, "pid", 0),
                },
            )
            job.current = uid
            job.deadline = obs.now() + self.watchdog_s
            return False
        if kind == "done":
            _, uid, key_hex, t0, dur, from_cache = msg
            state = self.cells[uid]
            journal.append(
                {
                    "ev": "done",
                    "cell": uid,
                    "attempt": state.attempts,
                    "key": key_hex,
                    "dur": dur,
                    "from_cache": from_cache,
                }
            )
            state.status = "done"
            state.record_key = key_hex
            state.dur = dur
            state.from_cache = from_cache
            job.resolved.add(uid)
            if job.current == uid:
                job.current = None
            job.deadline = obs.now() + self.watchdog_s
            obs.record(
                "campaign.cell",
                t0,
                dur,
                cell=uid,
                attempt=state.attempts,
                from_cache=from_cache,
            )
            if from_cache:
                self.counters["cells_from_cache"] += 1
            else:
                self.counters["cells_executed"] += 1
                obs.add("campaign.cells_executed")
            self._report_progress()
            if (
                self.stop_after is not None
                and self._done_count() >= self.stop_after
            ):
                return True
            return False
        if kind == "failed":
            _, uid, t0, dur, (exc_type, exc_msg, tb) = msg
            job.resolved.add(uid)
            if job.current == uid:
                job.current = None
            job.deadline = obs.now() + self.watchdog_s
            self._record_failure(
                self.cells[uid], "raise", exc_type, exc_msg, journal
            )
            self._report_progress()
            return False
        if kind == "taskfail":
            exc_type, exc_msg, tb = msg[1]
            for uid, _cell, _attempt in job.items:
                if uid not in job.resolved:
                    job.resolved.add(uid)
                    self._record_failure(
                        self.cells[uid], "task-raise", exc_type, exc_msg, journal
                    )
            job.current = None
            return False
        if kind == "end":
            if msg[1] is not None:
                self.engines.append(msg[1])
            job.ended = True
            return False
        raise CampaignError(f"unknown worker message {kind!r}")  # pragma: no cover

    def _finish_job(self, job: _Job, journal: Journal, *, reason: str) -> None:
        """Reconcile a job that stopped (end / died / timed out)."""
        job.proc.join()
        unresolved = [it for it in job.items if it[0] not in job.resolved]
        if job.ended:
            # Graceful end: everything should be resolved; anything
            # left (defensive) goes back to pending uncharged.
            for uid, _cell, _attempt in unresolved:
                state = self.cells[uid]
                if state.status == "running":
                    state.status = "pending"
            return
        kind = "timeout" if reason == "timeout" else "killed"
        victim = job.current
        if victim is None and not job.any_message and unresolved:
            # The worker died before reaching any cell (e.g. killed
            # during matrix materialization): charge the first queued
            # cell so a crash-inducing task cannot respawn forever.
            victim = unresolved[0][0]
        if kind == "killed":
            self.counters["killed"] += 1
        for uid, _cell, _attempt in unresolved:
            state = self.cells[uid]
            if uid == victim:
                self._record_failure(state, kind, "", "", journal)
            elif state.status == "running":
                state.status = "pending"  # never started: requeue uncharged
        self._report_progress()

    # ------------------------------------------------------- retry logic

    def _record_failure(
        self, state: _CellState, kind: str, exc_type: str, msg: str,
        journal: Journal,
    ) -> None:
        attempt = state.attempts
        state.attempts += 1
        state.failures.append((kind, exc_type, msg))
        state.status = "pending"
        journal.append(
            {
                "ev": "failed",
                "cell": state.uid,
                "attempt": attempt,
                "kind": kind,
                "exc": exc_type,
                "msg": msg,
            }
        )
        obs.event(
            "campaign.cell.failed", cell=state.uid, kind=kind, exc=exc_type
        )
        if not self._maybe_quarantine(state, journal):
            state.not_before = obs.now() + self.retry.backoff(
                state.attempts, state.uid
            )
            self.counters["retries"] += 1
            obs.add("campaign.retries")

    def _maybe_quarantine(self, state: _CellState, journal: Journal) -> bool:
        """Apply the quarantine rules to a just-failed pending cell."""
        raise_sigs = [
            (e, m) for k, e, m in state.failures if k not in _TRANSIENT_KINDS
        ]
        deterministic = len(raise_sigs) >= 2 and len(set(raise_sigs)) < len(
            raise_sigs
        )
        over_budget = state.attempts >= self.retry.max_attempts
        if not (deterministic or over_budget):
            return False
        state.status = "quarantined"
        state.quarantine_reason = "deterministic" if deterministic else "budget"
        journal.append(
            {
                "ev": "quarantined",
                "cell": state.uid,
                "attempts": state.attempts,
                "reason": state.quarantine_reason,
            }
        )
        self.counters["quarantined"] += 1
        obs.add("campaign.quarantined")
        return True

    # -------------------------------------------------------- accounting

    def _done_count(self) -> int:
        return sum(1 for s in self.cells.values() if s.status == "done")

    def _next_not_before(self) -> float | None:
        pending = [
            s.not_before for s in self.cells.values() if s.status == "pending"
        ]
        return min(pending) if pending else None

    def _report_progress(self) -> None:
        if self.progress is not None:
            self.progress(self._status_snapshot())

    def _status_snapshot(self) -> CampaignStatus:
        done = [s for s in self.cells.values() if s.status == "done"]
        quarantined = sum(
            1 for s in self.cells.values() if s.status == "quarantined"
        )
        running = sum(1 for s in self.cells.values() if s.status == "running")
        pending = len(self.order) - len(done) - quarantined - running
        durs = [s.dur for s in done if s.dur > 0]
        avg = sum(durs) / len(durs) if durs else 0.0
        return CampaignStatus(
            total=len(self.order),
            done=len(done),
            quarantined=quarantined,
            pending=pending,
            running=running,
            retries=int(self.counters["retries"]),
            avg_cell_s=avg,
            eta_s=avg * (pending + running) / max(1, self.jobs),
        )

    def _finalize(self, cache: ArtifactCache, aborted: bool) -> CampaignResult:
        records: list[CellRecord] = []
        failed: list[FailedCell] = []
        for uid in self.order:
            state = self.cells[uid]
            task = self.tasks[state.task_index]
            if state.status == "done":
                quality = getattr(state, "quality", None)
                if quality is None:
                    quality = cache.fetch_record_hex(state.record_key)
                if quality is None:
                    raise CampaignError(
                        f"record for done cell {uid} vanished from the "
                        f"artifact cache at {self.cache_dir}"
                    )
                records.append(
                    CellRecord(
                        matrix=task.name,
                        scale=task.ref.scale,
                        scheme=state.cell.scheme,
                        k=state.cell.k,
                        seed=task.seed,
                        slot=state.cell.slot,
                        machine=task.machines[state.cell.machine_index],
                        quality=quality,
                        from_cache=state.from_cache,
                    )
                )
            elif state.status == "quarantined":
                failed.append(
                    FailedCell(
                        uid=uid,
                        matrix=task.name,
                        scheme=state.cell.scheme,
                        k=state.cell.k,
                        seed=task.seed,
                        attempts=state.attempts,
                        reason=state.quarantine_reason,
                        failures=list(state.failures),
                    )
                )
        complete = not aborted and len(records) == len(self.order)
        return CampaignResult(
            records=records,
            failed_cells=failed,
            counters=dict(self.counters),
            engines=list(self.engines),
            complete=complete,
        )


# ----------------------------------------------------------------------
# Journal-only status (no grid needed)
# ----------------------------------------------------------------------


def campaign_status(root) -> CampaignStatus:
    """Progress of a campaign directory from its journal alone.

    Works on a live, killed, or finished campaign; ``eta_s`` projects
    the measured average cell duration over the remaining cells
    (serial basis — divide by your job count for a pool estimate).
    """
    from repro.sweep.journal import replay_journal

    replay = replay_journal(Path(root).expanduser() / "journal.jsonl")
    total = 0
    done: dict[str, float] = {}
    quarantined: set = set()
    retries = 0
    for ev in replay.events:
        kind = ev.get("ev")
        if kind == "campaign":
            total = int(ev.get("cells", 0))
        elif kind == "done":
            done[ev.get("cell")] = float(ev.get("dur", 0.0))
        elif kind == "failed":
            retries += 1
        elif kind == "quarantined":
            quarantined.add(ev.get("cell"))
    durs = [d for d in done.values() if d > 0]
    avg = sum(durs) / len(durs) if durs else 0.0
    pending = max(0, total - len(done) - len(quarantined))
    return CampaignStatus(
        total=total,
        done=len(done),
        quarantined=len(quarantined),
        pending=pending,
        running=0,
        retries=retries,
        avg_cell_s=avg,
        eta_s=avg * pending,
    )
