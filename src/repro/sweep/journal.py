"""Append-only, fsync'd, checksummed JSONL campaign journal.

The journal is the crash-safety backbone of :mod:`repro.sweep.campaign`:
every cell lifecycle transition (``scheduled`` / ``started`` / ``done``
/ ``failed`` / ``quarantined``) is one line, appended and fsync'd
before the campaign acts on it, so a ``kill -9`` at *any byte offset*
loses at most the in-flight cells — never a completed one.

Line format::

    <sha256(json)[:12]> <canonical json>\n

The checksum covers the canonical (sorted-keys, compact) JSON text, so
replay distinguishes three tail states:

- a **clean** line — checksum matches: the event happened;
- a **torn** line — no newline, truncated JSON, or checksum mismatch on
  the *last* line: the write was interrupted mid-flight; the event is
  discarded (its effect never happened — the journal is written before
  the campaign's in-memory state advances);
- a **corrupt interior** — a bad line *followed by* more lines (bit
  rot, manual edits): everything from the first bad line on is
  discarded, exactly as if the process had died there.  Replay reports
  how many bytes/lines were dropped so the campaign can surface it.

:meth:`Journal.recover` truncates the file back to the last clean line
before appending resumes, so one damaged tail can never shadow later
writes.

Durability: each append is ``write → flush → os.fsync``.  The cost is
measured (``write_s`` / ``appended``) and exposed so the benchmark can
bound journal overhead against the serial sweep (BENCH_sweep.json's
``journal_overhead_frac`` acceptance).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro import obs
from repro.errors import ConfigError

__all__ = ["Journal", "JournalReplay", "replay_journal"]

_CHECKSUM_CHARS = 12


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:_CHECKSUM_CHARS]


def _encode(event: dict) -> bytes:
    """Canonical line bytes for one event (checksum + compact JSON)."""
    payload = json.dumps(
        event, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _checksum(payload).encode("ascii") + b" " + payload + b"\n"


def _decode(line: bytes) -> dict | None:
    """Parse one journal line; None when torn/corrupt/mismatched."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the trailing newline never made it out
    body = line[:-1]
    sep = body.find(b" ")
    if sep != _CHECKSUM_CHARS:
        return None
    digest, payload = body[:sep], body[sep + 1 :]
    if digest.decode("ascii", errors="replace") != _checksum(payload):
        return None
    try:
        event = json.loads(payload)
    except ValueError:  # pragma: no cover - checksum already guards this
        return None
    return event if isinstance(event, dict) else None


@dataclass
class JournalReplay:
    """The readable prefix of a journal plus damage bookkeeping.

    ``events`` are the clean-prefix events in append order;
    ``good_bytes`` is the offset the clean prefix ends at (what
    :meth:`Journal.recover` truncates to); ``dropped_lines`` /
    ``dropped_bytes`` describe the discarded tail (0/0 for a healthy
    journal).
    """

    path: str
    events: list[dict] = field(default_factory=list)
    good_bytes: int = 0
    dropped_lines: int = 0
    dropped_bytes: int = 0

    @property
    def damaged(self) -> bool:
        return self.dropped_lines > 0 or self.dropped_bytes > 0


def replay_journal(path) -> JournalReplay:
    """Read the clean prefix of a journal file.

    Missing file → empty replay (a fresh campaign).  The first torn or
    checksum-failing line ends the clean prefix; everything after it is
    counted as dropped, never parsed.
    """
    path = pathlib.Path(path)
    replay = JournalReplay(path=str(path))
    if not path.exists():
        return replay
    raw = path.read_bytes()
    offset = 0
    while offset < len(raw):
        end = raw.find(b"\n", offset)
        line = raw[offset:] if end < 0 else raw[offset : end + 1]
        event = _decode(line)
        if event is None:
            break
        replay.events.append(event)
        offset += len(line)
    replay.good_bytes = offset
    if offset < len(raw):
        tail = raw[offset:]
        replay.dropped_bytes = len(tail)
        replay.dropped_lines = max(1, tail.count(b"\n"))
        obs.event(
            "journal.corrupt_tail",
            path=str(path),
            dropped_lines=replay.dropped_lines,
            dropped_bytes=replay.dropped_bytes,
        )
    return replay


class Journal:
    """Appender over one journal file (one writer at a time).

    Opened lazily on first :meth:`append`; ``fsync=False`` trades
    durability for speed (tests measuring pure replay logic).  The
    campaign keeps the default.
    """

    def __init__(self, path, *, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self.fsync = bool(fsync)
        self.appended = 0
        self.write_s = 0.0
        self._fh = None

    # ------------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Replay the on-disk events (see :func:`replay_journal`)."""
        if self._fh is not None:
            self._fh.flush()
        return replay_journal(self.path)

    def recover(self) -> JournalReplay:
        """Replay, then truncate any damaged tail off the file.

        Must run before appends on an existing journal: appending after
        a torn line would corrupt-chain every later event.  Returns the
        replay of the clean prefix.
        """
        if self._fh is not None:
            raise ConfigError("recover() must run before the journal is opened")
        replay = replay_journal(self.path)
        if replay.damaged:
            with open(self.path, "r+b") as fh:
                fh.truncate(replay.good_bytes)
                fh.flush()
                os.fsync(fh.fileno())
            obs.event(
                "journal.recovered",
                path=str(self.path),
                good_bytes=replay.good_bytes,
                dropped_lines=replay.dropped_lines,
            )
        return replay

    # ------------------------------------------------------------------

    def append(self, event: dict) -> None:
        """Durably append one event (write + flush + fsync)."""
        t0 = obs.now()
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        self._fh.write(_encode(event))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.appended += 1
        self.write_s += obs.now() - t0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
