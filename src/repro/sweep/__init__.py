"""Parallel sweep orchestration with a persistent artifact cache.

The experiment layer's answer to table-scale grids: a declarative
:class:`SweepGrid` (matrices × schemes × K × seeds × machine models)
compiles into a task DAG with per-matrix engine affinity
(:mod:`repro.sweep.grid`), executes on a fork-based process pool with
deterministic seed derivation (:mod:`repro.sweep.orchestrator`), and
persists partitions, compiled communication plans and evaluated cell
records in a content-addressed on-disk store
(:mod:`repro.sweep.cache`) — a warm rerun of a full table is pure
cache reads, and parallel records are bit-identical to serial ones.
"""

from repro.sweep.cache import ArtifactCache, cache_key
from repro.sweep.grid import (
    Cell,
    MatrixRef,
    MatrixTask,
    SchemeSpec,
    SweepGrid,
    derive_seed,
    suite_refs,
)
from repro.sweep.orchestrator import (
    CellRecord,
    SweepResult,
    map_tasks,
    quality_identical,
    run_sweep,
)

__all__ = [
    "ArtifactCache",
    "Cell",
    "CellRecord",
    "MatrixRef",
    "MatrixTask",
    "SchemeSpec",
    "SweepGrid",
    "SweepResult",
    "cache_key",
    "derive_seed",
    "map_tasks",
    "quality_identical",
    "run_sweep",
    "suite_refs",
]
