"""Parallel sweep orchestration with a persistent artifact cache.

The experiment layer's answer to table-scale grids: a declarative
:class:`SweepGrid` (matrices × schemes × K × seeds × machine models)
compiles into a task DAG with per-matrix engine affinity
(:mod:`repro.sweep.grid`), executes on a fork-based process pool with
deterministic seed derivation (:mod:`repro.sweep.orchestrator`), and
persists partitions, compiled communication plans and evaluated cell
records in a content-addressed on-disk store
(:mod:`repro.sweep.cache`) — a warm rerun of a full table is pure
cache reads, and parallel records are bit-identical to serial ones.

For long grids, :class:`~repro.sweep.campaign.Campaign` wraps the same
execution in a crash-safe supervisor: an append-only checksummed
journal (:mod:`repro.sweep.journal`), retry/backoff with quarantine,
per-task watchdogs, and resume-after-``kill -9`` with records
bit-identical to an unfaulted serial run — provable under the
deterministic fault injection of :mod:`repro.sweep.faults`.
"""

from repro.sweep.cache import ArtifactCache, cache_key
from repro.sweep.campaign import (
    Campaign,
    CampaignResult,
    CampaignStatus,
    FailedCell,
    RetryPolicy,
    campaign_status,
    cell_uid,
)
from repro.sweep.faults import FaultInjected, FaultPlan, FaultSpec
from repro.sweep.journal import Journal, JournalReplay, replay_journal
from repro.sweep.grid import (
    Cell,
    MatrixRef,
    MatrixTask,
    SchemeSpec,
    SweepGrid,
    derive_seed,
    suite_refs,
)
from repro.sweep.orchestrator import (
    CellRecord,
    SweepResult,
    map_tasks,
    quality_identical,
    run_sweep,
)

__all__ = [
    "ArtifactCache",
    "Campaign",
    "CampaignResult",
    "CampaignStatus",
    "Cell",
    "CellRecord",
    "FailedCell",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "Journal",
    "JournalReplay",
    "MatrixRef",
    "MatrixTask",
    "RetryPolicy",
    "SchemeSpec",
    "SweepGrid",
    "SweepResult",
    "cache_key",
    "campaign_status",
    "cell_uid",
    "derive_seed",
    "map_tasks",
    "quality_identical",
    "replay_journal",
    "run_sweep",
    "suite_refs",
]
