"""Deterministic fault injection for campaign robustness tests.

A :class:`FaultPlan` is a picklable, fully deterministic script of
failures keyed by cell uid and attempt number.  The campaign threads it
into every worker; at each cell boundary the worker asks the plan
whether a fault fires *for this cell on this attempt* and, if so,
executes it.  Because addressing is (uid, attempt) — never wall-clock
or randomness at fire time — a faulted campaign is exactly
reproducible, which is what lets the tests assert that a resumed
campaign's records are bit-identical to an unfaulted serial run.

Fault taxonomy (see DESIGN.md "Campaign runner"):

- ``kill``  — the worker SIGKILLs itself *after* journaling ``started``
  but before computing the cell: the crash the journal exists for.
  Transient: the campaign retries the cell on a fresh worker.
- ``raise`` — the cell raises :class:`FaultInjected`.  With
  ``attempts=(0,)`` it models a transient error (retry succeeds); with
  ``attempts=None`` (every attempt) it models a deterministic bug —
  the retry policy sees the same exception twice and quarantines the
  cell.
- ``stall`` — the cell sleeps past the campaign watchdog: the worker
  is reaped, the cell marked ``timed_out`` and retried.

Journal-level faults don't travel through workers; they are applied to
the file between runs by :func:`corrupt_journal_tail` (truncate at an
arbitrary byte offset, scribble garbage, flip a byte) — the on-disk
half of the ``kill -9`` story.

This module is the **only** place in ``src/`` allowed to send
``SIGKILL`` / call ``os.kill`` (lint rule ``REP009``): production code
must reap children via ``Process.kill`` on the coordinator side, never
by signalling arbitrary pids.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import ConfigError, ReproError

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "corrupt_journal_tail",
]


class FaultInjected(ReproError):
    """The exception an injected ``raise`` fault throws inside a cell."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``cell`` is the campaign cell uid the fault binds to;
    ``attempts`` the attempt numbers it fires on (``None`` = every
    attempt — the deterministic-failure shape); ``seconds`` the stall
    duration for ``kind="stall"``.
    """

    kind: str  # "kill" | "raise" | "stall"
    cell: str
    attempts: tuple[int, ...] | None = (0,)
    seconds: float = 30.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "raise", "stall"):
            raise ConfigError(f"unknown fault kind {self.kind!r}")

    def fires(self, uid: str, attempt: int) -> bool:
        return self.cell == uid and (
            self.attempts is None or attempt in self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of :class:`FaultSpec` entries.

    At most one fault fires per (cell, attempt): the first matching
    spec wins, so plans compose predictably.
    """

    specs: tuple[FaultSpec, ...] = ()

    def for_cell(self, uid: str, attempt: int) -> FaultSpec | None:
        for spec in self.specs:
            if spec.fires(uid, attempt):
                return spec
        return None

    def fire(self, uid: str, attempt: int) -> None:
        """Execute the matching fault, if any (worker side)."""
        spec = self.for_cell(uid, attempt)
        if spec is None:
            return
        if spec.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "stall":
            time.sleep(spec.seconds)
            return
        if spec.kind == "raise":
            # Deliberately attempt-independent text: a deterministic bug
            # raises the *same* exception every try, and the campaign's
            # quarantine classifier keys on (type, message) identity.
            raise FaultInjected(f"{spec.message} (cell {uid})")

    @staticmethod
    def seeded(seed: int, uids, *, kinds=("kill", "raise", "stall"),
               nfaults: int = 1, seconds: float = 30.0) -> "FaultPlan":
        """A reproducible random plan: ``nfaults`` first-attempt faults
        over ``uids``, drawn by a seeded stdlib generator (no numpy
        state touched — campaigns must stay bit-identical under it)."""
        import random

        rng = random.Random(seed)
        uids = list(uids)
        if not uids:
            raise ConfigError("seeded fault plan needs at least one cell uid")
        picks = rng.sample(uids, k=min(nfaults, len(uids)))
        specs = tuple(
            FaultSpec(kind=rng.choice(list(kinds)), cell=uid, seconds=seconds)
            for uid in picks
        )
        return FaultPlan(specs=specs)


def corrupt_journal_tail(path, mode: str = "truncate", *, offset: int | None = None) -> int:
    """Damage a journal file the way a crash or bit rot would.

    ``mode="truncate"`` cuts the file at ``offset`` (default: mid-way
    through the final line — a torn write); ``mode="garbage"`` appends
    a half-formed line with no newline; ``mode="flip"`` XOR-flips one
    payload byte of the final line (checksum mismatch, length intact).
    Returns the resulting file size.  Only meaningful between campaign
    runs — never call it while a :class:`~repro.sweep.journal.Journal`
    holds the file open.
    """
    import pathlib

    path = pathlib.Path(path)
    raw = path.read_bytes()
    if not raw:
        raise ConfigError(f"cannot corrupt empty journal {path}")
    if mode == "truncate":
        if offset is None:
            offset = len(raw) - max(2, len(raw.splitlines()[-1]) // 2)
        offset = max(0, min(int(offset), len(raw)))
        path.write_bytes(raw[:offset])
    elif mode == "garbage":
        path.write_bytes(raw + b'deadbeefcafe {"ev": "not-even-clo')
    elif mode == "flip":
        start = raw.rfind(b"\n", 0, len(raw) - 1) + 1
        pos = min(start + 20, len(raw) - 2)  # inside the payload
        path.write_bytes(raw[:pos] + bytes([raw[pos] ^ 0x40]) + raw[pos + 1 :])
    else:
        raise ConfigError(f"unknown corruption mode {mode!r}")
    return path.stat().st_size
