"""Content-addressed on-disk artifact cache for sweep experiments.

Every artifact is addressed by the SHA-256 of a canonical rendering of
its full provenance key; nothing is ever looked up by name.  The key
anatomy (see DESIGN.md "Sweep orchestrator"):

- **partitions** — ``("partition", serialize format version,
  matrix digest, engine plan key)`` where the plan key already carries
  the method name, K, the full partitioner config (epsilon, seed,
  coarsening/FM knobs), any method opts (vector-partition digests,
  mesh shapes) and the engine's epsilon default;
- **compiled plans** — same, tagged ``"comm-plan"``;
- **cell records** — ``("record", record schema version, serialize
  format version, matrix digest, plan key, machine model)``.

Changing *any* component — the matrix content, a config field, the
seed, or a format version bump — therefore changes the address and
forces a rebuild; stale entries are simply never referenced again.

Partitions and compiled communication plans persist through
:mod:`repro.partition.serialize` (format v2 ``.npz``); evaluated cell
records persist as pickles of :class:`~repro.simulate.report.\
PartitionQuality` (exact round-trip, so warm records are bit-identical
to cold ones).  Writes are atomic (temp file + ``os.replace``) so
concurrent sweep workers can share one cache directory; a corrupted or
truncated entry is deleted and treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle

from repro import obs
from repro.partition import serialize
from repro.partition.serialize import (
    load_partition,
    load_plan,
    save_partition,
    save_plan,
)

__all__ = ["ArtifactCache", "RECORD_VERSION", "cache_key"]

#: Schema version of pickled cell records; bump when the record payload
#: (PartitionQuality / SpMVRun / Ledger) changes incompatibly.
RECORD_VERSION = 1


def _canon(obj) -> str:
    """Deterministic text rendering of a key component.

    Handles exactly the types engine plan keys are made of; unknown
    types are rejected so un-keyable state can never silently alias.
    """
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(_canon(o) for o in obj) + ")"
    if isinstance(obj, bytes):
        return obj.hex()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return repr(obj)
    raise TypeError(f"un-keyable cache key component: {obj!r}")


def cache_key(*parts) -> str:
    """SHA-256 hex address of a canonical key tuple."""
    return hashlib.sha256(_canon(parts).encode()).hexdigest()


class ArtifactCache:
    """A persistent store under one root directory.

    Satisfies the duck-type :class:`repro.engine.PartitionEngine`
    expects from its ``artifacts`` parameter (``fetch_partition`` /
    ``store_partition`` / ``fetch_plan`` / ``store_plan``), plus
    record-level ``fetch_record`` / ``store_record`` used by the sweep
    orchestrator.  ``stats`` counts hits / misses / stores / corrupt
    evictions per payload kind.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
        obs.register_cache(self)

    # ------------------------------------------------------------------

    def _path(self, key_hex: str, ext: str) -> pathlib.Path:
        return self.root / key_hex[:2] / f"{key_hex}.{ext}"

    def _fetch(self, path: pathlib.Path, loader):
        if not path.exists():
            self.stats["misses"] += 1
            obs.add("artifact.misses")
            return None
        try:
            value = loader(path)
        except Exception:
            # Truncated download, torn write, version skew inside the
            # payload, unpicklable garbage … evict and rebuild.
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            obs.add("artifact.misses")
            obs.add("artifact.corrupt")
            obs.event("artifact.corrupt", key=path.stem, path=str(path))
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort eviction
                pass
            return None
        self.stats["hits"] += 1
        obs.add("artifact.hits")
        return value

    def _store(self, path: pathlib.Path, writer) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.stem}.{os.getpid()}.tmp{path.suffix}"
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - failed write cleanup
                tmp.unlink()
        self.stats["stores"] += 1
        obs.add("artifact.stores")

    # ------------------------------------------------------------------
    # Partitions and compiled plans (serialize.py format v2)
    # ------------------------------------------------------------------

    @staticmethod
    def partition_key(matrix_digest: str, plan_key: tuple) -> str:
        return cache_key(
            "partition", serialize.FORMAT_VERSION, matrix_digest, plan_key
        )

    @staticmethod
    def plan_key(matrix_digest: str, plan_key: tuple) -> str:
        return cache_key(
            "comm-plan", serialize.FORMAT_VERSION, matrix_digest, plan_key
        )

    def fetch_partition(self, matrix_digest: str, plan_key: tuple):
        path = self._path(self.partition_key(matrix_digest, plan_key), "npz")
        return self._fetch(path, load_partition)

    def store_partition(self, matrix_digest: str, plan_key: tuple, p) -> None:
        path = self._path(self.partition_key(matrix_digest, plan_key), "npz")
        self._store(path, lambda tmp: save_partition(p, tmp))

    def fetch_plan(self, matrix_digest: str, plan_key: tuple):
        path = self._path(self.plan_key(matrix_digest, plan_key), "npz")
        return self._fetch(path, load_plan)

    def store_plan(self, matrix_digest: str, plan_key: tuple, plan) -> None:
        path = self._path(self.plan_key(matrix_digest, plan_key), "npz")
        self._store(path, lambda tmp: save_plan(plan, tmp))

    # ------------------------------------------------------------------
    # Evaluated cell records
    # ------------------------------------------------------------------

    @staticmethod
    def record_key(matrix_digest: str, plan_key: tuple, machine_key: tuple) -> str:
        return cache_key(
            "record",
            RECORD_VERSION,
            serialize.FORMAT_VERSION,
            matrix_digest,
            plan_key,
            machine_key,
        )

    def fetch_record(self, matrix_digest: str, plan_key: tuple, machine_key: tuple):
        path = self._path(
            self.record_key(matrix_digest, plan_key, machine_key), "pkl"
        )
        return self._fetch(path, lambda p: pickle.loads(p.read_bytes()))

    def fetch_record_hex(self, key_hex: str):
        """Fetch a cell record by its precomputed hex address.

        Campaign resume rehydrates ``done`` cells from the journal's
        stored record keys without rebuilding engines; same hit / miss /
        corrupt-eviction semantics as :meth:`fetch_record`.
        """
        return self._fetch(
            self._path(key_hex, "pkl"),
            lambda p: pickle.loads(p.read_bytes()),
        )

    def store_record(
        self, matrix_digest: str, plan_key: tuple, machine_key: tuple, record
    ) -> None:
        path = self._path(
            self.record_key(matrix_digest, plan_key, machine_key), "pkl"
        )
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        self._store(path, lambda tmp: tmp.write_bytes(payload))
