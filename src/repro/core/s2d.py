"""s2D nonzero partitioning (Section IV of the paper).

Given a K-way input/output vector partition, every off-diagonal block
``A_{ℓk}`` must be split into a row-side part ``A^{(ℓ)}_{ℓk}`` (kept
with the y owner) and a column-side part ``A^{(k)}_{ℓk}`` (kept with
the x owner).  Two methods:

:func:`s2d_optimal`
    Per-block optimum.  The coarse DM decomposition of the block yields
    the horizontal sub-block ``H``; assigning exactly ``H`` to the
    column side achieves the minimum possible volume ``λ_{k→ℓ} =
    n̂(A_{ℓk}) − n̂(H) + m̂(H)`` (the DM minimum-cover bound), summed
    independently over blocks → globally volume-optimal for the given
    vector partition.

:func:`s2d_heuristic`
    Algorithm 1.  Starts from pure rowwise (alternative A1 everywhere)
    and flips blocks to their DM split (alternative A2) in decreasing
    order of the volume saving ``λ⁻ = n̂(H) − m̂(H)``, but only when
    the receiving processor's load stays under ``max(W̃, W_lim)`` —
    the bi-objective trade-off between volume and balance (the exact
    choice problem contains Knapsack, hence the greedy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dm import batched_block_dm
from repro.errors import PartitionError
from repro.partition.types import SpMVPartition, VectorPartition
from repro.partition.vector import vector_partition_from_rows
from repro.sparse.blocks import BlockStructure
from repro.sparse.coo import canonical_coo

__all__ = [
    "s2d_optimal",
    "s2d_heuristic",
    "s2d_rowwise_baseline",
    "BlockChoice",
    "choices_from_block_dm",
]


@dataclass
class BlockChoice:
    """Per-off-diagonal-block bookkeeping used by Algorithm 1.

    ``h_nnz`` are triplet indices of the block's horizontal sub-block
    (the nonzeros alternative A2 moves to the column owner).
    """

    row_part: int
    col_part: int
    h_nnz: np.ndarray
    lambda_minus: int
    chose_a2: bool = False

    @property
    def h_size(self) -> int:
        return int(self.h_nnz.size)


def _as_vectors(a, x_part, y_part, nparts: int) -> tuple:
    m = canonical_coo(a)
    if isinstance(x_part, VectorPartition):
        return m, x_part
    if x_part is None:
        vectors = vector_partition_from_rows(m, np.asarray(y_part), nparts)
    else:
        vectors = VectorPartition(
            x_part=np.asarray(x_part), y_part=np.asarray(y_part), nparts=nparts
        )
    return m, vectors


def choices_from_block_dm(dm_results) -> list[BlockChoice]:
    """Fresh :class:`BlockChoice` bookkeeping from batched DM results.

    Choices carry mutable state (``chose_a2``) and get re-sorted by the
    heuristic, so callers holding cached :class:`repro.dm.BlockDM`
    results (the engine) build a fresh list per construction.
    """
    return [
        BlockChoice(
            row_part=r.row_part,
            col_part=r.col_part,
            h_nnz=r.h_nnz,
            lambda_minus=r.dm.volume_reduction(),
        )
        for r in dm_results
    ]


def _block_choices(m, bs: BlockStructure) -> list[BlockChoice]:
    """DM decomposition of every nonempty off-diagonal block (batched)."""
    return choices_from_block_dm(batched_block_dm(bs))


def s2d_rowwise_baseline(a, x_part=None, y_part=None, nparts: int = 1) -> SpMVPartition:
    """The A1-everywhere partition: identical to 1D rowwise, but typed
    as s2D (it is trivially admissible).  Used as the heuristic's start
    state and as a reference in tests."""
    m, vectors = _as_vectors(a, x_part, y_part, nparts)
    nnz_part = vectors.y_part[m.row]
    return SpMVPartition(matrix=m, nnz_part=nnz_part, vectors=vectors, kind="s2D")


def s2d_optimal(
    a,
    x_part=None,
    y_part=None,
    nparts: int = 1,
    *,
    block_structure: BlockStructure | None = None,
    choices: list[BlockChoice] | None = None,
) -> SpMVPartition:
    """Volume-optimal s2D partition for the given vector partition.

    Every off-diagonal block takes alternative (A2): its horizontal
    sub-block goes to the column owner, the rest stays with the row
    owner.  Load balance is *not* considered (Section IV-A).

    ``block_structure`` / ``choices`` let a caller holding memoized
    intermediates (the :class:`repro.engine.PartitionEngine`) skip the
    block analytics; both must derive from the same vector partition.
    """
    m, vectors = _as_vectors(a, x_part, y_part, nparts)
    if choices is None:
        bs = block_structure or BlockStructure(
            m.row, m.col, vectors.x_part, vectors.y_part, vectors.nparts
        )
        choices = _block_choices(m, bs)
    nnz_part = vectors.y_part[m.row].copy()
    for ch in choices:
        nnz_part[ch.h_nnz] = ch.col_part
        ch.chose_a2 = True
    out = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=vectors,
        kind="s2D",
        meta={"method": "optimal", "choices": choices},
    )
    out.validate_s2d()
    return out


def s2d_heuristic(
    a,
    x_part=None,
    y_part=None,
    nparts: int = 1,
    w_lim: float | None = None,
    epsilon: float = 0.03,
    max_rounds: int = 64,
    *,
    block_structure: BlockStructure | None = None,
    choices: list[BlockChoice] | None = None,
) -> SpMVPartition:
    """Algorithm 1: bi-objective s2D partitioning.

    ``w_lim`` caps the maximum processor load; when omitted it defaults
    to ``(1 + ε)`` times the average load (the paper runs PaToH with a
    3% tolerance, so the same ε keeps the comparison like-for-like).
    A flip is accepted while the receiver stays under
    ``max(W̃, w_lim)`` — using the *current* maximum W̃ lets the
    algorithm proceed even when the rowwise start already violates
    ``w_lim``, exactly as the implementation note in Section IV-B says.

    ``block_structure`` / ``choices`` inject memoized intermediates
    (see :func:`s2d_optimal`); ``choices`` are consumed (mutated).
    """
    m, vectors = _as_vectors(a, x_part, y_part, nparts)
    k = vectors.nparts
    bs = block_structure or BlockStructure(
        m.row, m.col, vectors.x_part, vectors.y_part, k
    )
    if w_lim is None:
        w_lim = (1.0 + epsilon) * (m.nnz / k)

    loads = bs.rowwise_loads().astype(np.int64)
    nnz_part = vectors.y_part[m.row].copy()
    if choices is None:
        choices = _block_choices(m, bs)
    # Decreasing volume saving; ties by larger H first (more balance relief).
    choices.sort(key=lambda ch: (-ch.lambda_minus, -ch.h_size))

    w_max = int(loads.max()) if loads.size else 0
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1
        for ch in choices:
            if ch.chose_a2 or ch.h_size == 0:
                continue
            cap = max(float(w_max), float(w_lim))
            if loads[ch.col_part] + ch.h_size <= cap:
                ch.chose_a2 = True
                loads[ch.col_part] += ch.h_size
                loads[ch.row_part] -= ch.h_size
                nnz_part[ch.h_nnz] = ch.col_part
                w_max = int(loads.max())
                changed = True

    out = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=vectors,
        kind="s2D",
        meta={
            "method": "heuristic",
            "w_lim": float(w_lim),
            "rounds": rounds,
            "choices": choices,
        },
    )
    out.validate_s2d()
    expected = loads
    actual = out.loads()
    if not np.array_equal(expected, actual):
        raise PartitionError("internal load bookkeeping diverged from the partition")
    return out
