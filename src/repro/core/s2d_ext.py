"""Extensions of Algorithm 1 along the paper's future-work axis.

The conclusion of the paper sketches "more sophisticated heuristics
that also take square and vertical blocks of off-diagonal blocks into
account ... to mitigate the dependency on the vector partition".  This
module implements that sketch:

For an off-diagonal block ``A_{ℓk}`` there is a third admissible
alternative beyond the paper's (A1)/(A2):

- (A3) assign the *entire* block to the column owner ``P_k``; the
  volume becomes ``λ = m̂(A_{ℓk})`` (every row sends one partial) and
  the whole block's work moves off the row owner.

(A2) is volume-optimal by the DM bound, so (A3) never beats it on
volume — but it moves ``|A_{ℓk}|`` nonzeros instead of ``|H_{ℓk}|``,
which is exactly the lever needed when the row owner is overloaded
(e.g. it owns a dense row the vector partition saddled it with).

:func:`s2d_heuristic_balanced` therefore runs Algorithm 1 first and
then performs *balance-repair passes*: while some processor exceeds the
load cap, it moves whole blocks (A3) away from the most loaded row
owners, choosing the move with the smallest volume penalty per unit of
load relief.
"""

from __future__ import annotations

import numpy as np

from repro.core.s2d import BlockChoice, s2d_heuristic
from repro.partition.types import SpMVPartition
from repro.sparse.blocks import BlockStructure

__all__ = ["s2d_heuristic_balanced"]


def s2d_heuristic_balanced(
    a,
    x_part=None,
    y_part=None,
    nparts: int = 1,
    w_lim: float | None = None,
    epsilon: float = 0.03,
    max_moves: int = 10_000,
    *,
    block_structure: BlockStructure | None = None,
    choices: list[BlockChoice] | None = None,
) -> SpMVPartition:
    """Algorithm 1 plus (A3) balance-repair moves.

    Parameters match :func:`repro.core.s2d.s2d_heuristic`; the result
    is still s2D-admissible and its volume is still at most the 1D
    rowwise volume *unless* repair moves were needed, in which case
    volume is knowingly traded for balance (each trade is recorded in
    ``meta['repair_moves']``).  ``block_structure`` / ``choices``
    inject memoized intermediates for the same vector partition
    (engine hot path); ``choices`` are consumed.
    """
    base = s2d_heuristic(
        a,
        x_part=x_part,
        y_part=y_part,
        nparts=nparts,
        w_lim=w_lim,
        epsilon=epsilon,
        block_structure=block_structure,
        choices=choices,
    )
    m = base.matrix
    k = base.nparts
    vectors = base.vectors
    if w_lim is None:
        w_lim = (1.0 + epsilon) * (m.nnz / k)

    nnz_part = base.nnz_part.copy()
    loads = base.loads().astype(np.int64)
    bs = block_structure or BlockStructure(
        m.row, m.col, vectors.x_part, vectors.y_part, k
    )

    # Candidate (A3) moves: for each off-diagonal block, the nonzeros
    # still sitting on the row side after Algorithm 1.
    candidates: dict[int, list[tuple[int, np.ndarray]]] = {}
    for ell, kk in bs.nonempty_offdiagonal_blocks():
        idx = bs.block_nnz_indices(ell, kk)
        rowside = idx[nnz_part[idx] == ell]
        if rowside.size:
            candidates.setdefault(ell, []).append((kk, rowside))

    repair_moves: list[dict] = []
    moves = 0
    while moves < max_moves:
        over = int(np.argmax(loads))
        if loads[over] <= w_lim:
            break
        blocks = candidates.get(over, [])
        # Pick the move that relieves the most load per extra word:
        # moving the block adds one partial word per distinct row and
        # removes one x word per column that becomes empty on the row
        # side -- conservatively score by rows/|block| (bigger, sparser
        # blocks are better levers).
        best_i = -1
        best_score = -np.inf
        for i, (dst, idx) in enumerate(blocks):
            if idx.size == 0 or loads[dst] + idx.size > loads[over]:
                continue  # move would just shift the hot spot
            penalty = np.unique(m.row[idx]).size  # new partial words
            score = idx.size / (penalty + 1.0)
            if score > best_score:
                best_score = score
                best_i = i
        if best_i < 0:
            break  # no admissible repair move
        dst, idx = blocks.pop(best_i)
        nnz_part[idx] = dst
        loads[over] -= idx.size
        loads[dst] += idx.size
        repair_moves.append(
            {"from": over, "to": dst, "nnz": int(idx.size)}
        )
        moves += 1

    out = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=vectors,
        kind="s2D",
        meta={
            **base.meta,
            "method": "heuristic+A3",
            "repair_moves": repair_moves,
        },
    )
    out.validate_s2d()
    return out
