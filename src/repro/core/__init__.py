"""The paper's contribution: semi-two-dimensional (s2D) partitioning.

- :mod:`repro.core.s2d` — the two s2D construction methods of
  Section IV: the per-block DM-optimal split and the bi-objective
  greedy heuristic (Algorithm 1);
- :mod:`repro.core.volume` — the single-phase communication-volume
  bookkeeping of eq. (3);
- :mod:`repro.core.s2d_bounded` — s2D-b, the mesh-routed variant with
  O(√K) maximum latency (Section VI-B);
- :mod:`repro.core.s2d_mg` — s2D-mg, the medium-grain method of Pelt &
  Bisseling adapted through the composite hypergraph model to emit s2D
  partitions (Section V).
"""

from repro.core.s2d import s2d_heuristic, s2d_optimal, s2d_rowwise_baseline
from repro.core.s2d_bounded import RoutedCommStats, bounded_comm_stats, make_s2d_bounded
from repro.core.s2d_ext import s2d_heuristic_balanced
from repro.core.s2d_mg import partition_s2d_medium_grain
from repro.core.volume import (
    CommStats,
    pairwise_volumes,
    single_phase_comm_stats,
    two_phase_comm_stats,
)

__all__ = [
    "s2d_optimal",
    "s2d_heuristic",
    "s2d_heuristic_balanced",
    "s2d_rowwise_baseline",
    "CommStats",
    "single_phase_comm_stats",
    "two_phase_comm_stats",
    "pairwise_volumes",
    "make_s2d_bounded",
    "bounded_comm_stats",
    "RoutedCommStats",
    "partition_s2d_medium_grain",
]
