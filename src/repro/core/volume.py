"""Single-phase communication bookkeeping (eq. 3 of the paper).

For an s2D-admissible partition, processor ``P_k`` sends ``P_ℓ`` one
message containing

- the x entries ``x̂^{(k)}_ℓ`` — one word per nonempty column of
  ``A^{(ℓ)}_{ℓk}`` (the row-side nonzeros of block ``(ℓ, k)``), and
- the precomputed partials ``ŷ^{(ℓ)}_k`` — one word per nonempty row
  of ``A^{(k)}_{ℓk}`` (the column-side nonzeros),

so ``λ_{k→ℓ} = n̂(A^{(ℓ)}_{ℓk}) + m̂(A^{(k)}_{ℓk})``.  The message
``k → ℓ`` exists iff block ``A_{ℓk}`` is nonempty — a function of the
vector partition alone, which is why s2D and 1D share one
communication pattern (first observation of Section III).

Everything here is derived analytically from the partition; the
simulator in :mod:`repro.simulate` measures the same numbers by
actually exchanging messages, and the test suite pins the two to be
identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.partition.types import SpMVPartition
from repro.sparse.blocks import grouped_distinct_counts

__all__ = [
    "CommStats",
    "single_phase_comm_stats",
    "two_phase_comm_stats",
    "pairwise_volumes",
]


@dataclass(frozen=True)
class CommStats:
    """Per-processor communication statistics of one SpMV.

    Volumes are in words; message counts are per processor per SpMV.
    """

    total_volume: int
    sent_volume: np.ndarray
    recv_volume: np.ndarray
    sent_msgs: np.ndarray
    recv_msgs: np.ndarray

    @property
    def nparts(self) -> int:
        return int(self.sent_volume.size)

    @property
    def max_sent_volume(self) -> int:
        return int(self.sent_volume.max()) if self.sent_volume.size else 0

    @property
    def avg_sent_msgs(self) -> float:
        return float(self.sent_msgs.mean()) if self.sent_msgs.size else 0.0

    @property
    def max_sent_msgs(self) -> int:
        return int(self.sent_msgs.max()) if self.sent_msgs.size else 0

    @property
    def total_msgs(self) -> int:
        return int(self.sent_msgs.sum())


def _admissible_sides(p: SpMVPartition) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split the off-diagonal nonzeros into row-side and column-side."""
    m = p.matrix
    rp = p.vectors.y_part[m.row]
    cp = p.vectors.x_part[m.col]
    on_row = p.nnz_part == rp
    on_col = p.nnz_part == cp
    if not np.all(on_row | on_col):
        raise PartitionError(
            "single-phase volume formula requires an s2D-admissible partition"
        )
    off = rp != cp
    return rp, cp, on_row & off, (~on_row) & on_col & off


def pairwise_volumes(p: SpMVPartition) -> dict[tuple[int, int], int]:
    """``λ_{k→ℓ}`` for every communicating pair ``(k, ℓ)`` (eq. 3)."""
    m = p.matrix
    k = p.nparts
    rp, cp, x_side, y_side = _admissible_sides(p)
    out: dict[tuple[int, int], int] = {}
    # x words: sender cp, receiver rp, one word per distinct column;
    # partial-y words: sender cp, receiver rp, one word per distinct row.
    for side, line, nlines in (
        (x_side, m.col, m.shape[1]),
        (y_side, m.row, m.shape[0]),
    ):
        if not np.any(side):
            continue
        pairs, counts = grouped_distinct_counts(
            cp[side] * k + rp[side], line[side], nlines
        )
        for pk, c in zip(pairs.tolist(), counts.tolist()):
            key = (pk // k, pk % k)
            out[key] = out.get(key, 0) + c
    return out


def two_phase_comm_stats(p: SpMVPartition) -> tuple[CommStats, CommStats]:
    """Analytic (expand, fold) statistics of the classic two-phase SpMV.

    Valid for *any* nonzero partition (fine-grain, checkerboard, 1D-b,
    Mondriaan...).  Expand: ``x_j`` travels from its owner to every
    other processor holding a nonzero in column ``j``.  Fold: the
    locally combined partial for ``y_i`` travels from every non-owner
    holder of a row-``i`` nonzero to the y owner.  The simulator's
    ledger reproduces these numbers exactly (tested).
    """
    m = p.matrix
    k = p.nparts
    holder = p.nnz_part
    x_owner = p.vectors.x_part[m.col]
    y_owner = p.vectors.y_part[m.row]

    def _phase(src, dst, line, nlines):
        away = src != dst
        pairs, counts = grouped_distinct_counts(
            src[away].astype(np.int64) * k + dst[away], line[away], nlines
        )
        sent_v = np.zeros(k, dtype=np.int64)
        recv_v = np.zeros(k, dtype=np.int64)
        np.add.at(sent_v, pairs // k, counts)
        np.add.at(recv_v, pairs % k, counts)
        sent_m = np.zeros(k, dtype=np.int64)
        recv_m = np.zeros(k, dtype=np.int64)
        np.add.at(sent_m, pairs // k, 1)
        np.add.at(recv_m, pairs % k, 1)
        return CommStats(
            total_volume=int(sent_v.sum()),
            sent_volume=sent_v,
            recv_volume=recv_v,
            sent_msgs=sent_m,
            recv_msgs=recv_m,
        )

    expand = _phase(x_owner, holder, m.col, m.shape[1])
    fold = _phase(holder, y_owner, m.row, m.shape[0])
    return expand, fold


def single_phase_comm_stats(p: SpMVPartition) -> CommStats:
    """Aggregate :class:`CommStats` of the single-phase (fused) SpMV.

    Message counts follow the nonempty-block pattern of the *vector*
    partition: ``P_k`` messages ``P_ℓ`` iff block ``A_{ℓk}`` has any
    nonzero, whichever side its nonzeros were assigned to.
    """
    m = p.matrix
    k = p.nparts
    rp = p.vectors.y_part[m.row]
    cp = p.vectors.x_part[m.col]
    off = rp != cp

    sent_volume = np.zeros(k, dtype=np.int64)
    recv_volume = np.zeros(k, dtype=np.int64)
    for (src, dst), lam in pairwise_volumes(p).items():
        sent_volume[src] += lam
        recv_volume[dst] += lam

    sent_msgs = np.zeros(k, dtype=np.int64)
    recv_msgs = np.zeros(k, dtype=np.int64)
    if np.any(off):
        pair_keys = np.unique(cp[off] * k + rp[off])
        np.add.at(sent_msgs, pair_keys // k, 1)
        np.add.at(recv_msgs, pair_keys % k, 1)

    return CommStats(
        total_volume=int(sent_volume.sum()),
        sent_volume=sent_volume,
        recv_volume=recv_volume,
        sent_msgs=sent_msgs,
        recv_msgs=recv_msgs,
    )
