"""s2D-b: latency-bounded s2D via virtual-mesh routing (Section VI-B).

The nonzero partition is *unchanged* from s2D (so the computational
load is identical — the paper states this explicitly under Table V);
what changes is the communication schedule.  Processors are laid on a
``Pr × Pc`` mesh and every fused ``[x̂, ŷ]`` message from ``P_k`` to
``P_ℓ`` is routed in two hops with store-and-combine forwarding:

- **row phase**: ``k = (r_k, c_k)`` sends to the intermediate
  ``t = (r_k, c_ℓ)`` — at most ``Pc − 1`` messages per processor;
- **column phase**: ``t`` forwards to ``ℓ = (r_ℓ, c_ℓ)`` — at most
  ``Pr − 1`` messages per processor.

Combining is what keeps the volume close to plain s2D (Table V shows
λ/λ1D going from 0.20 to only 0.24 at K = 4096): an ``x_j`` needed by
several processors in one mesh column crosses the row phase once, and
partial results for the same ``y_i`` arriving at an intermediate from
different senders in its mesh row are *summed* before forwarding, so
they cross the column phase once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.volume import _admissible_sides
from repro.errors import ConfigError
from repro.partition.checkerboard import mesh_shape
from repro.partition.types import SpMVPartition
from repro.sparse.blocks import grouped_distinct_counts

__all__ = ["make_s2d_bounded", "bounded_comm_stats", "RoutedCommStats"]


@dataclass(frozen=True)
class RoutedCommStats:
    """Communication statistics of the two-hop routed schedule.

    ``phase1_*`` / ``phase2_*`` arrays are per-processor; ``total_volume``
    counts every word over every hop (a two-hop word costs two).
    """

    total_volume: int
    phase1_sent_volume: np.ndarray
    phase2_sent_volume: np.ndarray
    phase1_sent_msgs: np.ndarray
    phase2_sent_msgs: np.ndarray
    mesh: tuple[int, int]

    @property
    def sent_msgs(self) -> np.ndarray:
        """Total messages per processor over both phases."""
        return self.phase1_sent_msgs + self.phase2_sent_msgs

    @property
    def max_sent_msgs(self) -> int:
        return int(self.sent_msgs.max()) if self.sent_msgs.size else 0

    @property
    def avg_sent_msgs(self) -> float:
        return float(self.sent_msgs.mean()) if self.sent_msgs.size else 0.0


def make_s2d_bounded(p: SpMVPartition, shape: tuple[int, int] | None = None) -> SpMVPartition:
    """Tag an s2D partition as mesh-routed (kind ``s2D-b``).

    Nonzero and vector partitions are shared with ``p``; the mesh shape
    is recorded in ``meta`` for the simulator and the stats code.
    """
    p.validate_s2d()
    pr, pc = shape if shape is not None else mesh_shape(p.nparts)
    if pr * pc != p.nparts:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {p.nparts} processors")
    return SpMVPartition(
        matrix=p.matrix,
        nnz_part=p.nnz_part.copy(),
        vectors=p.vectors,
        kind="s2D-b",
        meta={**p.meta, "mesh": (pr, pc)},
    )


def _routing_tables(p: SpMVPartition, pr: int, pc: int):
    """The logical item lists of the fused exchange.

    Returns ``(x_items, y_items)``:

    - ``x_items``: unique ``(k, ℓ, j)`` — x-word ``x_j`` from owner
      ``k`` to consumer ``ℓ``;
    - ``y_items``: unique ``(k, ℓ, i)`` — partial ``ȳ_i`` from
      producer ``k`` to y-owner ``ℓ``.
    """
    m = p.matrix
    knum = p.nparts
    rp, cp, x_side, y_side = _admissible_sides(p)

    ncols = m.shape[1]
    xkeys = np.unique((cp[x_side] * knum + rp[x_side]).astype(np.int64) * (ncols + 1) + m.col[x_side])
    x_src = (xkeys // (ncols + 1)) // knum
    x_dst = (xkeys // (ncols + 1)) % knum
    x_j = xkeys % (ncols + 1)

    nrows = m.shape[0]
    ykeys = np.unique((cp[y_side] * knum + rp[y_side]).astype(np.int64) * (nrows + 1) + m.row[y_side])
    y_src = (ykeys // (nrows + 1)) // knum
    y_dst = (ykeys // (nrows + 1)) % knum
    y_i = ykeys % (nrows + 1)

    return (x_src, x_dst, x_j), (y_src, y_dst, y_i)


def bounded_comm_stats(p: SpMVPartition, shape: tuple[int, int] | None = None) -> RoutedCommStats:
    """Volume/latency of the two-hop routed schedule with combining."""
    pr, pc = shape if shape is not None else p.meta.get("mesh", mesh_shape(p.nparts))
    if pr * pc != p.nparts:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {p.nparts} processors")
    knum = p.nparts
    (x_src, x_dst, x_j), (y_src, y_dst, y_i) = _routing_tables(p, pr, pc)

    ncols = p.matrix.shape[1]
    nrows = p.matrix.shape[0]

    def _hop(x_from, x_to, y_from, y_to):
        """Volume and message counts of one forwarding hop.

        Combining is the grouped distinct count: an x_j travels a hop
        once per (sender, receiver) pair regardless of how many final
        destinations need it, and partials for the same y_i meeting at
        an intermediate are summed, so the (sender, receiver, line) key
        deduplicates across senders.
        """
        x_move = x_to != x_from
        y_move = y_to != y_from
        gx, cx = grouped_distinct_counts(
            x_from[x_move] * knum + x_to[x_move], x_j[x_move], ncols
        )
        gy, cy = grouped_distinct_counts(
            y_from[y_move] * knum + y_to[y_move], y_i[y_move], nrows
        )
        vol = np.zeros(knum, dtype=np.int64)
        np.add.at(vol, gx // knum, cx)
        np.add.at(vol, gy // knum, cy)
        msgs = np.zeros(knum, dtype=np.int64)
        np.add.at(msgs, np.union1d(gx, gy) // knum, 1)
        return vol, msgs

    # ---- phase 1 (row phase): k -> t = (r_k, c_dst) ------------------
    x_t = (x_src // pc) * pc + (x_dst % pc)
    y_t = (y_src // pc) * pc + (y_dst % pc)
    phase1_vol, phase1_msgs = _hop(x_src, x_t, y_src, y_t)

    # ---- phase 2 (column phase): t -> dst ----------------------------
    phase2_vol, phase2_msgs = _hop(x_t, x_dst, y_t, y_dst)

    return RoutedCommStats(
        total_volume=int(phase1_vol.sum() + phase2_vol.sum()),
        phase1_sent_volume=phase1_vol,
        phase2_sent_volume=phase2_vol,
        phase1_sent_msgs=phase1_msgs,
        phase2_sent_msgs=phase2_msgs,
        mesh=(pr, pc),
    )
