"""s2D-mg: the medium-grain method adapted to emit s2D partitions.

Section V of the paper observes that partitioning the *composite
hypergraph* of Pelt & Bisseling's medium-grain split (rather than
running their iterative-refinement bipartitioner) decodes directly into
an s2D partition — rows of ``Ar`` follow their y owner, columns of
``Ac`` follow their x owner — and, for square matrices, yields a
symmetric vector partition for free.  That adaptation (``s2D-mg``) is
the comparison method of Table VII.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph import PartitionConfig, medium_grain_model, partition_kway
from repro.partition.types import SpMVPartition, VectorPartition
from repro.sparse.coo import canonical_coo

__all__ = ["partition_s2d_medium_grain"]


def partition_s2d_medium_grain(
    a,
    nparts: int,
    config: PartitionConfig | None = None,
    to_row: np.ndarray | None = None,
) -> SpMVPartition:
    """Medium-grain s2D partition of ``a`` into ``nparts``.

    ``to_row`` optionally overrides the Ar/Ac split mask (mostly for
    experiments on the split rule); by default the shorter-line rule of
    :func:`repro.hypergraph.models.medium_grain_split` applies.
    """
    m = canonical_coo(a)
    model = medium_grain_model(m, to_row=to_row)
    part = partition_kway(model.hypergraph, nparts, config)
    nnz_part, x_part, y_part = model.decode(part)
    vectors = VectorPartition(x_part=x_part, y_part=y_part, nparts=nparts)
    out = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=vectors,
        kind="s2D-mg",
        meta={"to_row": model.to_row},
    )
    out.validate_s2d()
    return out
