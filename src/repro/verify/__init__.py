"""Static verification layer: prove properties without executing.

The repository's correctness story was, until this package, entirely
dynamic — golden bit-identity tests and serial replays.  This package
adds the *static* half, aimed at the three artifacts whose integrity
everything else rests on:

- :mod:`repro.verify.plan_checks` — the plan-IR checker: given a
  compiled :class:`~repro.runtime.CommPlan` (and optionally its
  :func:`~repro.runtime.compile.shard_plan` output), prove that every
  gather/scatter/expand/fold index array is in-bounds for its declared
  buffer, that owned-row sets are disjoint and covering, that send
  slots are pair-contiguous and reconcile exactly against
  ``ledger.phase_pairs``, that group-sum structures are monotone, and
  that the superstep schedule is statically deadlock-free;
- :mod:`repro.verify.protocol` — an explicit finite-state model of the
  coordinator-mediated go/done semaphore superstep protocol
  (:mod:`repro.runtime.parallel`), exhaustively enumerated for small
  worker counts including crash and worker-raise faults, proving no
  reachable deadlock and that every failure path reaches segment
  unlinking — plus a barrier-based contrast model whose deadlock the
  checker *finds*, turning the "``mp.Barrier`` is unusable with dead
  peers" prose argument into a checked artifact;
- :mod:`repro.verify.lint` — a stdlib-``ast`` lint over ``src/``
  encoding the repository's invariant-policy boundaries (accumulation
  primitives confined to kernel layers, no barrier/condition sync
  primitives, shared-memory creation paired with registered
  finalizers, environment reads confined to resolver modules, …).

Everything surfaces through the CLI ``check`` subcommand, the
``verify=`` hooks on :meth:`repro.engine.PartitionEngine.compiled_plan`
and :func:`repro.partition.serialize.load_plan`, and the ``check``
pytest tier.
"""

from repro.verify.lint import LintViolation, lint_paths, lint_source, run_lint
from repro.verify.plan_checks import (
    VerifyReport,
    Violation,
    check_plan,
    check_shards,
    verify_plan,
)
from repro.verify.protocol import (
    BarrierModel,
    ProtocolModel,
    ProtocolReport,
    check_protocol,
)

__all__ = [
    "BarrierModel",
    "LintViolation",
    "ProtocolModel",
    "ProtocolReport",
    "VerifyReport",
    "Violation",
    "check_plan",
    "check_protocol",
    "check_shards",
    "lint_paths",
    "lint_source",
    "run_lint",
    "verify_plan",
]
