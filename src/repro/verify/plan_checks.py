"""Plan-IR checker: prove a compiled plan well-formed without running it.

A :class:`~repro.runtime.plan.CommPlan` (and its sharded
:class:`~repro.runtime.plan.PartPlan` decomposition) is an index-array
IR: frozen gather/scatter/expand/fold indices plus a static message
ledger.  The executors trust those arrays completely — an out-of-range
index is at best an ``IndexError`` three layers down and at worst, on
the native kernel backend, a silent out-of-bounds write into foreign
memory.  This module proves, by pure array inspection:

**Plan level** (:func:`check_plan`)

- every index array is in-bounds for its declared buffer
  (``pre_cols``/``main_cols`` < ncols, ``main_rows``/``fold_rows`` <
  nrows, group indices < group length);
- group-sum plans are internally consistent and *monotone*: a
  hist-mode group's ``take`` is strictly increasing and agrees exactly
  with the bins its index array populates, a scatter-mode group hits
  every one of its ``length`` groups — the sorted-unique-key structure
  that owner-major sharding (and hence parallel bit-identity) depends
  on;
- the numeric pipeline's stage widths agree: ``group1`` consumes
  exactly the precompute products, ``group2`` consumes exactly
  ``group1``'s output, the fold consumes exactly the last group
  stage's output, and ``nnz`` reconciles against the pre/main split;
- the executor mode, group/main field shape, ledger phase names and
  superstep cost schedule all agree with the canonical schedule of
  :data:`repro.runtime.parallel.PHASES`.

**Shard level** (:func:`check_shards`)

- owned-row sets are sorted, disjoint, and cover every output row
  exactly once (the property that makes per-part folds a partition of
  ``y``);
- every per-part index array is in-bounds for its (compact) buffers;
- per phase, the send slots of the shards are **pair-contiguous and
  exactly reconcile against** ``ledger.phase_pairs``: slots are laid
  out in sorted ``(src, dst)`` pair order with each pair occupying one
  contiguous run of exactly its ledger word count, every part writes
  precisely the slot set of its outgoing pairs, and the union covers
  the whole buffer with no overlap;
- every receive (x receives, fold/combine gathers) reads only slots
  inside ranges addressed *to* that part, and only from phases whose
  send superstep precedes the receive superstep — so the superstep
  schedule is statically deadlock-free: no part ever waits on a
  message that no schedule step produces;
- gather interleaves are exact permutations (buffer and local
  positions partition the gather output) with in-range local indices.

Checks never raise on malformed input — every defect becomes a
:class:`Violation` in the returned :class:`VerifyReport`; callers that
want an exception use :meth:`VerifyReport.raise_if_failed` or
:func:`verify_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import VerificationError

__all__ = [
    "VerifyReport",
    "Violation",
    "check_plan",
    "check_shards",
    "verify_plan",
]

# The canonical superstep schedule per execution model: phase name →
# (send step, receive step).  Mirrors the step programs of
# repro.runtime.parallel._PartRunner; a plan whose ledger phases or
# slot traffic cannot be laid onto this schedule is rejected.
SCHEDULE: dict[str, dict[str, tuple[int, int]]] = {
    "single": {"expand-and-fold": (0, 1)},
    "two": {"expand": (0, 1), "fold": (1, 2)},
    "routed": {"route-row": (0, 1), "route-col": (1, 2)},
}

#: Which phase buffer the fold gather of each mode reads.
FOLD_PHASE = {"single": "expand-and-fold", "two": "fold", "routed": "route-col"}
#: Which phase buffer the routed combine gather reads.
COMB_PHASE = {"routed": "route-row"}

_GROUP_MODES = ("empty", "hist", "scatter")


@dataclass(frozen=True)
class Violation:
    """One statically-proven defect in a plan or shard set."""

    check: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.location}: {self.message}"


@dataclass
class VerifyReport:
    """Outcome of one static verification pass."""

    target: str
    checks: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "VerifyReport") -> "VerifyReport":
        for c in other.checks:
            if c not in self.checks:
                self.checks.append(c)
        self.violations.extend(other.violations)
        return self

    def summary(self) -> str:
        if self.ok:
            return f"{self.target}: OK ({len(self.checks)} checks)"
        head = (
            f"{self.target}: {len(self.violations)} violation(s) "
            f"across {len(self.checks)} checks"
        )
        return "\n".join([head] + [f"  {v}" for v in self.violations[:20]])

    def raise_if_failed(self) -> "VerifyReport":
        if not self.ok:
            raise VerificationError(self.summary())
        return self


class _Checker:
    """Violation collector with a running check registry."""

    def __init__(self, target: str):
        self.report = VerifyReport(target=target)

    def ran(self, check: str) -> None:
        if check not in self.report.checks:
            self.report.checks.append(check)

    def flag(self, check: str, location: str, message: str) -> None:
        self.ran(check)
        self.report.violations.append(Violation(check, location, message))

    def require(self, ok: bool, check: str, location: str, message: str) -> bool:
        self.ran(check)
        if not ok:
            self.report.violations.append(Violation(check, location, message))
        return bool(ok)


# ----------------------------------------------------------------------
# Array primitives
# ----------------------------------------------------------------------


def _is_int_array(arr) -> bool:
    return isinstance(arr, np.ndarray) and np.issubdtype(arr.dtype, np.integer)


def _bounds_ok(arr: np.ndarray, bound: int) -> bool:
    """Every element in ``[0, bound)`` (vacuously true when empty)."""
    if arr.size == 0:
        return True
    return bool(arr.min() >= 0 and arr.max() < bound)


def _check_index(
    ck: _Checker, check: str, loc: str, name: str, arr, bound: int
) -> bool:
    """In-bounds integer index array check; returns usability."""
    if not _is_int_array(arr):
        ck.flag(check, loc, f"{name} is not an integer ndarray")
        return False
    if not ck.require(
        _bounds_ok(arr, bound),
        check,
        loc,
        f"{name} has entries outside [0, {bound}) "
        f"(min {arr.min() if arr.size else '-'}, "
        f"max {arr.max() if arr.size else '-'})",
    ):
        return False
    return True


def _group_out_size(g) -> int:
    """The number of sums a group plan emits (``apply`` output size)."""
    if g.mode == "hist":
        return int(g.take.size) if g.take is not None else -1
    if g.mode == "scatter":
        return int(g.length)
    return int(g.index.size)  # empty: values pass through


def _check_group(ck: _Checker, g, loc: str) -> bool:
    """Internal consistency + monotonicity of one frozen group plan.

    Returns False when the group is too broken for downstream size
    checks to be meaningful.
    """
    check = "group.structure"
    if g.mode not in _GROUP_MODES:
        ck.flag(check, loc, f"unknown group mode {g.mode!r}")
        return False
    if not _is_int_array(g.index):
        ck.flag(check, loc, "group index is not an integer ndarray")
        return False
    if g.mode == "empty":
        ok = ck.require(
            g.index.size == 0 and int(g.length) == 0,
            check,
            loc,
            "empty-mode group carries indices or a nonzero length",
        )
        return ok
    length = int(g.length)
    if not ck.require(length >= 0, check, loc, f"negative group length {length}"):
        return False
    if not _check_index(ck, "group.index-bounds", loc, "group index", g.index, length):
        return False
    counts = np.bincount(g.index, minlength=length)
    if g.mode == "scatter":
        # np.unique-derived: every group in [0, length) must be hit.
        return ck.require(
            g.take is None and (length == 0 or counts.min() > 0),
            "group.monotone",
            loc,
            "scatter-mode group does not cover every group id "
            "(or carries a stray take array)",
        )
    # hist mode: take must be the exact, strictly-increasing set of
    # populated bins — the sorted-unique-key (owner-major/monotone)
    # structure bit-identical sharding depends on.
    if g.take is None or not _is_int_array(g.take):
        ck.flag("group.monotone", loc, "hist-mode group lacks an integer take array")
        return False
    ok = ck.require(
        _bounds_ok(g.take, length)
        and (g.take.size < 2 or bool(np.all(np.diff(g.take) > 0))),
        "group.monotone",
        loc,
        "hist-mode take is out of range or not strictly increasing",
    )
    ok = (
        ck.require(
            np.array_equal(np.flatnonzero(counts > 0), np.sort(g.take))
            if _bounds_ok(g.take, length)
            else False,
            "group.monotone",
            loc,
            "hist-mode take disagrees with the bins its index populates",
        )
        and ok
    )
    return ok


# ----------------------------------------------------------------------
# Plan-level checks
# ----------------------------------------------------------------------


def check_plan(plan) -> VerifyReport:
    """Statically verify one compiled :class:`~repro.runtime.CommPlan`."""
    ck = _Checker(f"CommPlan(executor={getattr(plan, 'executor', '?')!r})")

    mode = plan.executor
    if not ck.require(
        mode in SCHEDULE,
        "plan.executor-mode",
        "plan",
        f"unknown executor {mode!r}; expected one of {sorted(SCHEDULE)}",
    ):
        return ck.report

    nrows, ncols, nparts = int(plan.nrows), int(plan.ncols), int(plan.nparts)
    ck.require(
        nrows >= 0 and ncols >= 0 and nparts >= 1,
        "plan.shape",
        "plan",
        f"bad shape/parts: nrows={nrows} ncols={ncols} nparts={nparts}",
    )

    has_main = plan.main_rows is not None
    has_g2 = plan.group2 is not None
    ck.require(
        (mode == "two" and not has_main and not has_g2)
        or (mode == "single" and has_main and not has_g2)
        or (mode == "routed" and has_main and has_g2),
        "plan.executor-mode",
        "plan",
        f"field shape (main={has_main}, group2={has_g2}) does not match "
        f"executor {mode!r}",
    )

    # --- precompute stage -------------------------------------------------
    _check_index(ck, "plan.index-bounds", "plan.pre_cols", "pre_cols", plan.pre_cols, ncols)
    g1_ok = _check_group(ck, plan.group1, "plan.group1")
    ck.require(
        isinstance(plan.pre_vals, np.ndarray)
        and plan.pre_vals.size == plan.pre_cols.size,
        "plan.pipeline-sizes",
        "plan",
        f"pre_vals size {getattr(plan.pre_vals, 'size', '?')} != "
        f"pre_cols size {plan.pre_cols.size}",
    )
    if g1_ok:
        ck.require(
            plan.group1.index.size == plan.pre_cols.size,
            "plan.pipeline-sizes",
            "plan.group1",
            f"group1 consumes {plan.group1.index.size} items but the "
            f"precompute produces {plan.pre_cols.size}",
        )

    # --- combine / fold stages -------------------------------------------
    stage_out = _group_out_size(plan.group1) if g1_ok else -1
    if has_g2:
        g2_ok = _check_group(ck, plan.group2, "plan.group2")
        if g2_ok and stage_out >= 0:
            ck.require(
                plan.group2.index.size == stage_out,
                "plan.pipeline-sizes",
                "plan.group2",
                f"group2 consumes {plan.group2.index.size} items but "
                f"group1 emits {stage_out}",
            )
        stage_out = _group_out_size(plan.group2) if g2_ok else -1
    _check_index(
        ck, "plan.index-bounds", "plan.fold_rows", "fold_rows", plan.fold_rows, nrows
    )
    if stage_out >= 0:
        ck.require(
            plan.fold_rows.size == stage_out,
            "plan.pipeline-sizes",
            "plan.fold_rows",
            f"fold scatters {plan.fold_rows.size} rows but the last group "
            f"stage emits {stage_out} sums",
        )

    # --- main products ----------------------------------------------------
    main_nnz = 0
    if has_main:
        _check_index(
            ck, "plan.index-bounds", "plan.main_rows", "main_rows", plan.main_rows, nrows
        )
        _check_index(
            ck, "plan.index-bounds", "plan.main_cols", "main_cols", plan.main_cols, ncols
        )
        ck.require(
            plan.main_vals is not None
            and plan.main_rows.size == plan.main_cols.size == plan.main_vals.size,
            "plan.pipeline-sizes",
            "plan.main",
            "main_rows/main_cols/main_vals sizes disagree",
        )
        main_nnz = int(plan.main_rows.size)
    ck.require(
        int(plan.nnz) == int(plan.pre_cols.size) + main_nnz,
        "plan.nnz-reconcile",
        "plan",
        f"nnz={plan.nnz} but pre ({plan.pre_cols.size}) + main ({main_nnz}) "
        f"= {plan.pre_cols.size + main_nnz}",
    )

    _check_ledger(ck, plan, mode, nparts)
    return ck.report


def _check_ledger(ck: _Checker, plan, mode: str, nparts: int) -> None:
    ledger = plan.ledger
    ck.require(
        ledger.nparts == nparts,
        "plan.ledger",
        "plan.ledger",
        f"ledger is for {ledger.nparts} parts, plan for {nparts}",
    )
    canonical = list(SCHEDULE[mode])
    names = ledger.phase_names
    ck.require(
        all(n in canonical for n in names)
        and names == [n for n in canonical if n in names],
        "plan.ledger",
        "plan.ledger",
        f"ledger phases {names} are not an ordered subset of the "
        f"{mode!r} schedule {canonical}",
    )
    for name in names:
        src, dst, words = ledger.phase_pairs(name)
        loc = f"plan.ledger[{name!r}]"
        ck.require(
            _bounds_ok(src, nparts) and _bounds_ok(dst, nparts),
            "plan.ledger",
            loc,
            "message endpoints outside the part range",
        )
        ck.require(
            bool(np.all(src != dst)) if src.size else True,
            "plan.ledger",
            loc,
            "self-message recorded",
        )
        ck.require(
            bool(np.all(words > 0)) if words.size else True,
            "plan.ledger",
            loc,
            "empty message recorded",
        )
    for i, ph in enumerate(plan.phases):
        loc = f"plan.phases[{i}]"
        if ph.comm_phase is not None:
            ck.require(
                ph.comm_phase in canonical,
                "plan.phases",
                loc,
                f"comm phase {ph.comm_phase!r} is not in the {mode!r} schedule",
            )
        if ph.flops is not None:
            ck.require(
                isinstance(ph.flops, np.ndarray)
                and ph.flops.size == nparts
                and bool(np.all(np.isfinite(ph.flops)))
                and bool(np.all(ph.flops >= 0)),
                "plan.phases",
                loc,
                "per-part flops are not a finite non-negative array of size K",
            )


# ----------------------------------------------------------------------
# Shard-level checks
# ----------------------------------------------------------------------


def _pair_ranges(ledger, phase: str, nparts: int):
    """Slot ranges of every ``(src, dst)`` pair in ledger pair order.

    Slot assignment at shard time lexsorts by ``(src, dst, cat, key)``,
    so the buffer is partitioned into contiguous runs, one per pair, in
    sorted pair order, each exactly the pair's ledger word count.
    Returns ``(src, dst, start, stop)`` arrays plus the buffer size.
    """
    src, dst, words = ledger.phase_pairs(phase)
    stop = np.cumsum(words)
    start = stop - words
    total = int(stop[-1]) if words.size else 0
    return src, dst, start, stop, total


def _ranges_for(
    src: np.ndarray, start: np.ndarray, stop: np.ndarray, q: int
) -> np.ndarray:
    """Sorted concatenation of all slot indices in ranges where
    ``src == q`` (works for dst-side selection by passing dst)."""
    sel = np.flatnonzero(src == q)
    if sel.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.arange(start[i], stop[i], dtype=np.int64) for i in sel])


def _slots_in_ranges(slots: np.ndarray, allowed: np.ndarray) -> bool:
    """Every slot a member of the (sorted) allowed slot set."""
    if slots.size == 0:
        return True
    if allowed.size == 0:
        return False
    pos = np.searchsorted(allowed, slots)
    pos[pos == allowed.size] = allowed.size - 1
    return bool(np.all(allowed[pos] == slots))


def _check_gather(
    ck: _Checker, gather, loc: str, *, local_size: int, allowed_slots: np.ndarray
) -> None:
    """One interleave spec: positions partition the output, local
    indices are in range, buffer reads stay inside inbound ranges."""
    size = int(gather.size)
    for name, arr in (
        ("buf_pos", gather.buf_pos),
        ("buf_slots", gather.buf_slots),
        ("loc_pos", gather.loc_pos),
        ("loc_idx", gather.loc_idx),
    ):
        if not _is_int_array(arr):
            ck.flag("shards.gather", loc, f"{name} is not an integer ndarray")
            return
    ck.require(
        gather.buf_pos.size == gather.buf_slots.size
        and gather.loc_pos.size == gather.loc_idx.size,
        "shards.gather",
        loc,
        "gather position/index arrays have mismatched sizes",
    )
    positions = np.concatenate((gather.buf_pos, gather.loc_pos))
    ck.require(
        positions.size == size
        and np.array_equal(np.sort(positions), np.arange(size)),
        "shards.gather",
        loc,
        f"gather positions do not partition [0, {size})",
    )
    ck.require(
        _bounds_ok(gather.loc_idx, local_size),
        "shards.gather",
        loc,
        f"local gather indices outside [0, {local_size})",
    )
    ck.require(
        _slots_in_ranges(np.sort(gather.buf_slots), allowed_slots),
        "shards.recv-slots",
        loc,
        "gather reads buffer slots outside the ranges addressed to this part",
    )


def check_shards(plan, shards) -> VerifyReport:
    """Statically verify a :func:`~repro.runtime.compile.shard_plan`
    decomposition against its plan."""
    ck = _Checker(
        f"PartPlans(K={getattr(plan, 'nparts', '?')}, "
        f"executor={getattr(plan, 'executor', '?')!r})"
    )
    mode = plan.executor
    if not ck.require(
        mode in SCHEDULE,
        "shards.structure",
        "shards",
        f"unknown executor {mode!r}",
    ):
        return ck.report
    nparts, nrows, ncols = int(plan.nparts), int(plan.nrows), int(plan.ncols)
    if not ck.require(
        len(shards) == nparts
        and sorted(s.part for s in shards) == list(range(nparts)),
        "shards.structure",
        "shards",
        f"expected one shard per part 0..{nparts - 1}, "
        f"got parts {sorted(s.part for s in shards)}",
    ):
        return ck.report
    ck.require(
        all(s.mode == mode for s in shards),
        "shards.structure",
        "shards",
        "shard modes disagree with the plan executor",
    )
    shards = sorted(shards, key=lambda s: s.part)

    # --- owned rows: sorted, disjoint, covering ---------------------------
    all_rows = []
    for s in shards:
        loc = f"shard[{s.part}].own_rows"
        if _check_index(ck, "shards.own-rows", loc, "own_rows", s.own_rows, nrows):
            ck.require(
                s.own_rows.size < 2 or bool(np.all(np.diff(s.own_rows) > 0)),
                "shards.own-rows",
                loc,
                "own_rows is not strictly increasing",
            )
        all_rows.append(np.asarray(s.own_rows).ravel())
    union = np.concatenate(all_rows) if all_rows else np.empty(0, dtype=np.int64)
    ck.require(
        union.size == nrows and np.array_equal(np.sort(union), np.arange(nrows)),
        "shards.own-rows",
        "shards",
        f"owned-row sets are not a disjoint cover of [0, {nrows}) "
        f"({union.size} rows claimed)",
    )

    # --- per-phase buffer layout ------------------------------------------
    canonical = list(SCHEDULE[mode])
    layouts = {ph: _pair_ranges(plan.ledger, ph, nparts) for ph in canonical}
    pre_total = 0
    main_total = 0

    for s in shards:
        who = f"shard[{s.part}]"
        q = s.part
        n_local = int(np.asarray(s.own_rows).size)

        _check_index(
            ck, "shards.index-bounds", f"{who}.x_own_cols", "x_own_cols",
            s.x_own_cols, ncols,
        )
        _check_index(
            ck, "shards.index-bounds", f"{who}.pre_cols", "pre_cols",
            s.pre_cols, ncols,
        )
        g1_ok = _check_group(ck, s.group1, f"{who}.group1")
        ck.require(
            s.pre_vals.size == s.pre_cols.size
            and (not g1_ok or s.group1.index.size == s.pre_cols.size),
            "shards.pipeline-sizes",
            who,
            "precompute value/column/group sizes disagree",
        )
        pre_total += int(s.pre_cols.size)
        local_psums = _group_out_size(s.group1) if g1_ok else 0

        g2_ok = False
        local_csums = 0
        if mode == "routed":
            g2_ok = s.group2 is not None and _check_group(
                ck, s.group2, f"{who}.group2"
            )
            local_csums = _group_out_size(s.group2) if g2_ok else 0
        # What each phase's published partials index into: the ``two``
        # expand hop carries x only, the routed second hop publishes
        # the *combined* sums (group2 output), everything else the
        # part's group1 partial sums.
        psum_bound = {
            "expand-and-fold": local_psums,
            "expand": 0,
            "fold": local_psums,
            "route-row": local_psums,
            "route-col": local_csums,
        }

        if s.main_rows_c is not None:
            _check_index(
                ck, "shards.index-bounds", f"{who}.main_rows_c", "main_rows_c",
                s.main_rows_c, n_local,
            )
            _check_index(
                ck, "shards.index-bounds", f"{who}.main_cols", "main_cols",
                s.main_cols, ncols,
            )
            ck.require(
                s.main_vals is not None
                and s.main_rows_c.size == s.main_cols.size == s.main_vals.size,
                "shards.pipeline-sizes",
                who,
                "main_rows_c/main_cols/main_vals sizes disagree",
            )
            main_total += int(s.main_rows_c.size)

        # Sends: the union of this part's slot writes must be exactly
        # the slot ranges of its outgoing ledger pairs — the
        # pair-contiguity + reconciliation check.
        ck.require(
            set(s.sends) == set(canonical) and set(s.recvs_x) <= set(canonical),
            "shards.schedule",
            who,
            f"send/recv phases {sorted(s.sends)}/{sorted(s.recvs_x)} do not "
            f"match the {mode!r} schedule {canonical}",
        )
        for ph in canonical:
            spec = s.sends.get(ph)
            if spec is None:
                continue
            lsrc, ldst, lstart, lstop, btotal = layouts[ph]
            loc = f"{who}.sends[{ph!r}]"
            if not (
                _is_int_array(spec.x_slots)
                and _is_int_array(spec.p_slots)
                and _is_int_array(spec.x_cols)
                and _is_int_array(spec.p_idx)
            ):
                ck.flag("shards.send-slots", loc, "send spec arrays are not integer ndarrays")
                continue
            ck.require(
                spec.x_slots.size == spec.x_cols.size
                and spec.p_slots.size == spec.p_idx.size,
                "shards.send-slots",
                loc,
                "slot/payload array sizes disagree",
            )
            _check_index(
                ck, "shards.index-bounds", loc, "x_cols", spec.x_cols, ncols
            )
            ck.require(
                _bounds_ok(spec.p_idx, psum_bound[ph]),
                "shards.send-slots",
                loc,
                f"published partial indices outside the part's "
                f"{psum_bound[ph]} phase-{ph!r} partial sums",
            )
            written = np.sort(np.concatenate((spec.x_slots, spec.p_slots)))
            expected = _ranges_for(lsrc, lstart, lstop, q)
            ck.require(
                np.array_equal(written, expected),
                "shards.send-slots",
                loc,
                f"writes {written.size} slots but the ledger assigns this "
                f"part {expected.size} pair-contiguous slots in phase {ph!r}",
            )

        # Receives: reads stay inside inbound ranges; the sender's
        # superstep strictly precedes the reader's, so no receive can
        # wait on a message the schedule never produces.
        for ph, spec in s.recvs_x.items():
            if ph not in layouts:
                continue  # flagged by shards.schedule above
            lsrc, ldst, lstart, lstop, btotal = layouts[ph]
            loc = f"{who}.recvs_x[{ph!r}]"
            if not (_is_int_array(spec.slots) and _is_int_array(spec.cols)):
                ck.flag("shards.recv-slots", loc, "recv spec arrays are not integer ndarrays")
                continue
            ck.require(
                spec.slots.size == spec.cols.size,
                "shards.recv-slots",
                loc,
                "slot/column array sizes disagree",
            )
            _check_index(ck, "shards.index-bounds", loc, "cols", spec.cols, ncols)
            inbound = _ranges_for(ldst, lstart, lstop, q)
            ck.require(
                _slots_in_ranges(np.sort(spec.slots), inbound),
                "shards.recv-slots",
                loc,
                "reads buffer slots outside the ranges addressed to this part",
            )
            send_step, recv_step = SCHEDULE[mode][ph]
            ck.require(
                send_step < recv_step,
                "shards.schedule",
                loc,
                f"phase {ph!r} would be read at step {recv_step} before its "
                f"send step {send_step} completes",
            )

        # Fold gather reads the mode's fold-carrying phase.
        fold_ph = FOLD_PHASE[mode]
        lsrc, ldst, lstart, lstop, _ = layouts[fold_ph]
        fold_local = local_psums
        if mode == "routed":
            fold_local = local_csums
            if s.comb_gather is not None:
                comb_ph = COMB_PHASE[mode]
                csrc, cdst, cstart, cstop, _ = layouts[comb_ph]
                _check_gather(
                    ck,
                    s.comb_gather,
                    f"{who}.comb_gather",
                    local_size=local_psums,
                    allowed_slots=_ranges_for(cdst, cstart, cstop, q),
                )
                if g2_ok:
                    ck.require(
                        s.group2.index.size == s.comb_gather.size,
                        "shards.pipeline-sizes",
                        who,
                        f"group2 consumes {s.group2.index.size} items but the "
                        f"combine gather assembles {s.comb_gather.size}",
                    )
            else:
                ck.flag("shards.structure", who, "routed shard lacks a combine gather")
        _check_index(
            ck, "shards.index-bounds", f"{who}.fold_rows_c", "fold_rows_c",
            s.fold_rows_c, max(n_local, 1) if n_local else 1,
        )
        _check_gather(
            ck,
            s.fold_gather,
            f"{who}.fold_gather",
            local_size=fold_local,
            allowed_slots=_ranges_for(ldst, lstart, lstop, q),
        )
        ck.require(
            s.fold_rows_c.size == s.fold_gather.size,
            "shards.pipeline-sizes",
            who,
            f"fold scatters {s.fold_rows_c.size} rows but the fold gather "
            f"assembles {s.fold_gather.size}",
        )

    # The shards' nonzeros must re-tile the plan's.
    main_plan = 0 if plan.main_rows is None else int(plan.main_rows.size)
    ck.require(
        pre_total == int(plan.pre_cols.size) and main_total == main_plan,
        "shards.nnz-cover",
        "shards",
        f"shards carry pre={pre_total}/main={main_total} nonzeros, plan has "
        f"pre={plan.pre_cols.size}/main={main_plan}",
    )
    return ck.report


def verify_plan(plan, shards=None, *, raise_on_error: bool = True) -> VerifyReport:
    """Run :func:`check_plan` (and :func:`check_shards` when ``shards``
    is given) and optionally raise :class:`~repro.errors.VerificationError`."""
    report = check_plan(plan)
    if shards is not None:
        report.merge(check_shards(plan, shards))
    if raise_on_error:
        report.raise_if_failed()
    return report
