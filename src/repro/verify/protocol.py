"""Exhaustive model checker for the superstep semaphore protocol.

:mod:`repro.runtime.parallel` synchronizes its worker pool with a
coordinator-mediated gate: one private ``go`` semaphore per worker, one
shared ``done`` ack, a shared control word for STOP/error flags, and a
bounded coordinator wait whose timeout is the only thing that notices a
SIGKILLed worker.  The module docstring *argues* this protocol cannot
deadlock — semaphore releases never block, a dead worker merely fails
to ack, and the timeout path unlinks every shared segment.  This module
turns that prose argument into a checked artifact.

:class:`ProtocolModel` is an explicit finite-state machine over the
protocol's synchronization skeleton (numeric work is abstracted away —
it cannot affect synchronization).  A state records the coordinator's
phase, the remaining superstep budget, each worker's control location
(``wait`` on its go semaphore, ``run``-ning a step, ``exited``,
``crashed``), the semaphore counters, the shared error/STOP words, a
fault budget, and whether the shared segments are still linked.  The
transition relation interleaves:

- the coordinator issuing a round of ``go`` tokens, collecting ``done``
  acks one at a time, checking the error word at the step boundary,
  timing out (enabled exactly when no future ack is possible: the ack
  count is zero, no worker is mid-step, and no waiting worker holds a
  token — the model of "timeout set above the slowest superstep"),
  failing (terminate + unlink, mirroring ``_fail`` → ``close`` →
  ``_reap``), and closing gracefully (STOP + token round + join, with
  the always-enabled forced join modelling ``join(timeout)`` plus the
  ``weakref.finalize`` reaper);
- each worker consuming a token (then exiting on STOP or running a
  step), acking, **raising** (posting the error word and acking before
  exit, as ``_worker_main`` does), or **crashing** (SIGKILL: vanishing
  with no ack, from either control location), the fault transitions
  drawing on a shared budget.

:func:`check_protocol` enumerates the full reachable state space for
2–4 workers across all execution models' superstep counts and fault
budgets 0..max and asserts, over *every* reachable state:

1. **deadlock-freedom** — every non-terminal state has at least one
   enabled transition;
2. **cleanup** — every terminal state has the shared segments unlinked
   and every worker dead (exited or terminated);
3. **progress** — every reachable state (in particular every state
   with the error word set or a crashed worker) has a path to a
   terminal state;
4. **fault-free soundness** — with a zero fault budget every run
   completes its full superstep budget and ends in the clean terminal.

:class:`BarrierModel` is the contrast experiment: the same worker pool
synchronized by an (N+1)-party barrier, the design ``parallel.py``
rejects.  The checker *finds* its deadlock — with one crash fault the
barrier can never trip again and the model reaches a state with no
enabled transitions — so the "``mp.Barrier`` is unusable with dead
peers" claim is itself machine-checked rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.errors import VerificationError

__all__ = ["BarrierModel", "ProtocolModel", "ProtocolReport", "check_protocol"]

_RUN, _STOP = 0, 1
_DEAD = ("exited", "crashed")


class _State(NamedTuple):
    """One global state of the semaphore protocol FSM."""

    coord: str  # issue | collect | join | end-clean | end-failed
    steps_left: int
    acks_left: int
    cmd: int  # _RUN | _STOP
    err: bool
    done: int  # shared done-semaphore counter
    go: tuple  # per-worker go-semaphore counters
    workers: tuple  # per-worker location: wait | run | exited | crashed
    faults: int
    segments: str  # linked | unlinked


def _terminated(s: _State, coord: str) -> _State:
    """The atomic teardown: terminate every live worker, unlink all
    segments (``_reap``), land in a terminal coordinator state."""
    workers = tuple(w if w in _DEAD else "crashed" for w in s.workers)
    return s._replace(
        coord=coord,
        done=0,
        go=tuple(0 for _ in s.go),
        workers=workers,
        segments="unlinked",
    )


class ProtocolModel:
    """The go/done semaphore superstep protocol as an explicit FSM.

    Parameters
    ----------
    nworkers:
        Pool size (the model's ``jobs``).
    nsteps:
        Supersteps per apply — 2 for the ``single`` execution model,
        3 for ``two``/``routed``.
    niters:
        Applies to run back-to-back; the total go-round budget is
        ``nsteps * niters`` (the worker's internal mod-``nsteps``
        counter does not influence synchronization, so it is not
        modelled).
    max_faults:
        Total budget of fault transitions (worker-raises + crashes)
        available across a run.
    """

    name = "semaphore"

    def __init__(self, nworkers: int, nsteps: int, *, niters: int = 1, max_faults: int = 0):
        if nworkers < 1 or nsteps < 1 or niters < 1 or max_faults < 0:
            raise VerificationError(
                f"bad protocol model shape: workers={nworkers} steps={nsteps} "
                f"iters={niters} faults={max_faults}"
            )
        self.nworkers = nworkers
        self.nsteps = nsteps
        self.niters = niters
        self.max_faults = max_faults

    def initial(self) -> _State:
        return _State(
            coord="issue",
            steps_left=self.nsteps * self.niters,
            acks_left=0,
            cmd=_RUN,
            err=False,
            done=0,
            go=(0,) * self.nworkers,
            workers=("wait",) * self.nworkers,
            faults=0,
            segments="linked",
        )

    def is_terminal(self, s: _State) -> bool:
        return s.coord in ("end-clean", "end-failed")

    def successors(self, s: _State) -> list[_State]:
        out: list[_State] = []
        if self.is_terminal(s):
            return out

        # ---- coordinator ------------------------------------------------
        if s.coord == "issue":
            go = tuple(g + 1 for g in s.go)  # release never blocks
            if s.steps_left > 0:
                out.append(s._replace(coord="collect", acks_left=self.nworkers, go=go))
            else:
                # close(): set STOP, wake the pool, join.
                out.append(s._replace(coord="join", cmd=_STOP, go=go))
        elif s.coord == "collect":
            if s.done > 0:
                if s.acks_left == 1:
                    # Last ack of the step: the error word is checked at
                    # the step boundary.
                    if s.err:
                        out.append(_terminated(s, "end-failed"))
                    else:
                        out.append(
                            s._replace(
                                coord="issue",
                                done=s.done - 1,
                                acks_left=0,
                                steps_left=s.steps_left - 1,
                            )
                        )
                else:
                    out.append(s._replace(done=s.done - 1, acks_left=s.acks_left - 1))
            # Timeout: with the bound set above the slowest superstep, a
            # timeout fires exactly when no further ack is possible — no
            # pending ack, nobody mid-step, no waiting worker holding an
            # unconsumed token.
            if s.done == 0 and all(
                w in _DEAD or (w == "wait" and g == 0)
                for w, g in zip(s.workers, s.go)
            ):
                out.append(_terminated(s, "end-failed"))
        elif s.coord == "join":
            # join(timeout) + the finalize reaper: always eventually
            # enabled regardless of worker cooperation.
            out.append(_terminated(s, "end-clean"))

        # ---- workers ----------------------------------------------------
        for i, (w, g) in enumerate(zip(s.workers, s.go)):
            if w == "wait" and g > 0:
                go = s.go[:i] + (g - 1,) + s.go[i + 1 :]
                loc = "exited" if s.cmd == _STOP else "run"
                out.append(self._with_worker(s, i, loc)._replace(go=go))
            if w == "run":
                # Normal step completion: ack and wait for the next token.
                out.append(self._with_worker(s, i, "wait")._replace(done=s.done + 1))
                if s.faults < self.max_faults:
                    # Worker raises: post error word, ack, exit — the
                    # ``_post_error`` + ``done.release()`` + break path.
                    out.append(
                        self._with_worker(s, i, "exited")._replace(
                            done=s.done + 1, err=True, faults=s.faults + 1
                        )
                    )
            if w in ("wait", "run") and s.faults < self.max_faults:
                # SIGKILL: vanish without an ack, token unconsumed.
                out.append(
                    self._with_worker(s, i, "crashed")._replace(faults=s.faults + 1)
                )
        return out

    @staticmethod
    def _with_worker(s: _State, i: int, loc: str) -> _State:
        return s._replace(workers=s.workers[:i] + (loc,) + s.workers[i + 1 :])

    # ------------------------------------------------------------ checking

    def explore(self):
        """Full reachable state space: ``(states, successor map)``."""
        init = self.initial()
        seen = {init}
        frontier = [init]
        succ: dict[_State, list[_State]] = {}
        while frontier:
            s = frontier.pop()
            nxt = self.successors(s)
            succ[s] = nxt
            for t in nxt:
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
        return seen, succ

    def check(self) -> "ProtocolReport":
        """Enumerate exhaustively and evaluate properties 1–4."""
        states, succ = self.explore()
        terminals = {s for s in states if self.is_terminal(s)}
        deadlocks = [s for s in states if s not in terminals and not succ[s]]

        unclean = [
            s
            for s in terminals
            if s.segments != "unlinked" or any(w not in _DEAD for w in s.workers)
        ]

        # Progress: backward reachability from the terminal set.
        pred: dict[_State, list[_State]] = {s: [] for s in states}
        for s, nxt in succ.items():
            for t in nxt:
                pred[t].append(s)
        can_finish = set(terminals)
        stack = list(terminals)
        while stack:
            t = stack.pop()
            for p in pred[t]:
                if p not in can_finish:
                    can_finish.add(p)
                    stack.append(p)
        stuck = [s for s in states if s not in can_finish]

        bad_clean = []
        if self.max_faults == 0:
            bad_clean = [
                s
                for s in terminals
                if s.coord != "end-clean" or s.steps_left != 0 or s.err
            ]

        return ProtocolReport(
            model=self.name,
            nworkers=self.nworkers,
            nsteps=self.nsteps,
            niters=self.niters,
            max_faults=self.max_faults,
            nstates=len(states),
            nterminals=len(terminals),
            deadlocks=deadlocks,
            unclean_terminals=unclean,
            nonprogressing=stuck,
            bad_faultfree_terminals=bad_clean,
        )


class _BState(NamedTuple):
    steps_left: int
    arrived: tuple  # per-worker bool
    coord_arrived: bool
    workers: tuple  # alive | crashed
    faults: int


class BarrierModel:
    """The rejected design: the same pool on an (N+1)-party barrier.

    Every superstep, all ``nworkers`` workers and the coordinator call
    ``barrier.wait()``; the barrier trips only when all N+1 parties
    have arrived.  A crashed worker never arrives, so one SIGKILL
    freezes every surviving party inside ``wait()`` — with no timeout
    there is no transition out, which the checker reports as a
    reachable deadlock.  ``check()`` on this model is expected to
    *fail* for any positive fault budget; the test suite asserts
    exactly that asymmetry against :class:`ProtocolModel`.
    """

    name = "barrier"

    def __init__(self, nworkers: int, nsteps: int, *, max_faults: int = 0):
        self.nworkers = nworkers
        self.nsteps = nsteps
        self.max_faults = max_faults

    def initial(self) -> _BState:
        return _BState(
            steps_left=self.nsteps,
            arrived=(False,) * self.nworkers,
            coord_arrived=False,
            workers=("alive",) * self.nworkers,
            faults=0,
        )

    def is_terminal(self, s: _BState) -> bool:
        return s.steps_left == 0

    def successors(self, s: _BState) -> list[_BState]:
        out: list[_BState] = []
        if self.is_terminal(s):
            return out
        if all(s.arrived) and s.coord_arrived:
            # Barrier trips: all N+1 parties released into the next step.
            out.append(
                s._replace(
                    steps_left=s.steps_left - 1,
                    arrived=(False,) * self.nworkers,
                    coord_arrived=False,
                )
            )
            return out
        if not s.coord_arrived:
            out.append(s._replace(coord_arrived=True))
        for i, (a, w) in enumerate(zip(s.arrived, s.workers)):
            if w != "alive" or a:
                continue
            out.append(
                s._replace(arrived=s.arrived[:i] + (True,) + s.arrived[i + 1 :])
            )
            if s.faults < self.max_faults:
                out.append(
                    s._replace(
                        workers=s.workers[:i] + ("crashed",) + s.workers[i + 1 :],
                        faults=s.faults + 1,
                    )
                )
        return out

    def check(self) -> "ProtocolReport":
        seen = {self.initial()}
        frontier = [self.initial()]
        deadlocks = []
        while frontier:
            s = frontier.pop()
            nxt = self.successors(s)
            if not nxt and not self.is_terminal(s):
                deadlocks.append(s)
            for t in nxt:
                if t not in seen:
                    seen.add(t)
                    frontier.append(t)
        return ProtocolReport(
            model=self.name,
            nworkers=self.nworkers,
            nsteps=self.nsteps,
            niters=1,
            max_faults=self.max_faults,
            nstates=len(seen),
            nterminals=sum(1 for s in seen if self.is_terminal(s)),
            deadlocks=deadlocks,
            unclean_terminals=[],
            nonprogressing=deadlocks,
            bad_faultfree_terminals=[],
        )


@dataclass
class ProtocolReport:
    """Outcome of one exhaustive enumeration."""

    model: str
    nworkers: int
    nsteps: int
    niters: int
    max_faults: int
    nstates: int
    nterminals: int
    deadlocks: list = field(default_factory=list)
    unclean_terminals: list = field(default_factory=list)
    nonprogressing: list = field(default_factory=list)
    bad_faultfree_terminals: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.deadlocks
            or self.unclean_terminals
            or self.nonprogressing
            or self.bad_faultfree_terminals
        )

    def summary(self) -> str:
        head = (
            f"{self.model}[W={self.nworkers}, steps={self.nsteps}x{self.niters}, "
            f"faults<={self.max_faults}]: {self.nstates} states, "
            f"{self.nterminals} terminal"
        )
        if self.ok:
            return head + " — OK"
        parts = []
        if self.deadlocks:
            parts.append(f"{len(self.deadlocks)} deadlock state(s)")
        if self.unclean_terminals:
            parts.append(f"{len(self.unclean_terminals)} terminal(s) without cleanup")
        if self.nonprogressing:
            parts.append(f"{len(self.nonprogressing)} state(s) cannot reach a terminal")
        if self.bad_faultfree_terminals:
            parts.append(
                f"{len(self.bad_faultfree_terminals)} fault-free run(s) "
                "ended abnormally"
            )
        return head + " — FAIL: " + "; ".join(parts)


def check_protocol(
    *,
    workers: tuple = (2, 3, 4),
    nsteps: tuple = (2, 3),
    max_faults: int = 1,
    niters: int = 2,
    raise_on_error: bool = True,
) -> list[ProtocolReport]:
    """Exhaustively verify the semaphore protocol across configurations.

    Enumerates :class:`ProtocolModel` for every worker count in
    ``workers`` × every superstep count in ``nsteps`` × every fault
    budget in ``0..max_faults``, running ``niters`` applies back to
    back.  Raises :class:`~repro.errors.VerificationError` listing every
    failing configuration unless ``raise_on_error=False``.
    """
    reports = [
        ProtocolModel(w, n, niters=niters, max_faults=f).check()
        for w in workers
        for n in nsteps
        for f in range(max_faults + 1)
    ]
    if raise_on_error:
        bad = [r for r in reports if not r.ok]
        if bad:
            raise VerificationError(
                "protocol model check failed:\n"
                + "\n".join("  " + r.summary() for r in bad)
            )
    return reports
