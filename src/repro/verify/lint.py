"""Project lint: the repository's invariant boundaries as AST rules.

Several of the repo's correctness arguments are *policy* rather than
code — "accumulation primitives live only in kernel-bearing layers",
"never synchronize the pool with a barrier", "every shared segment has
a registered finalizer".  Those hold today because the relevant PRs
were careful, but nothing stops a future change from violating them
silently.  This module encodes each policy as a rule over the stdlib
:mod:`ast` (no third-party lint framework) and runs the set over
``src/`` as a tier-1 test.

Rules
-----
``REP001`` **accumulation-boundary** — ``np.add.at`` / ``np.bincount``
    calls are confined to the kernel-bearing layers (``core``, ``dm``,
    ``hypergraph``, ``kernels``, ``native``, ``partition``,
    ``runtime``, ``simulate``, ``sparse``, ``verify``).  Orchestration
    layers (``engine``, ``sweep``, ``experiments``, ``generators``,
    the top-level modules) must route numeric accumulation through
    those layers, so every accumulate that can affect bit-identity is
    auditable in one place.
``REP002`` **no-barrier-sync** — no use or import of
    ``multiprocessing``/``threading`` ``Barrier`` or ``Condition``
    anywhere.  Both block *inside* their protocol waiting for dead
    peers (see :mod:`repro.runtime.parallel`), so one SIGKILLed worker
    deadlocks the pool; the semaphore protocol is the only sanctioned
    synchronization, and :mod:`repro.verify.protocol` proves why.
``REP003`` **finalized-shm** — a module calling
    ``SharedMemory(create=True)`` must also register a
    ``weakref.finalize`` teardown, so segment unlinking survives any
    exit path (the ``/dev/shm`` leak guard's static half).
``REP004`` **env-via-resolvers** — ``os.environ`` / ``os.getenv``
    access is confined to the resolver modules (``native/build.py``,
    ``experiments/config.py``).  Scattered env reads make runs
    irreproducible in ways no config dump captures.
``REP005`` **no-mutable-default** — no mutable default arguments
    (list/dict/set displays or constructor calls): defaults evaluate
    once and alias across calls.
``REP006`` **no-bare-except** — no bare ``except:``; it swallows
    ``KeyboardInterrupt``/``SystemExit`` and hides worker teardown
    bugs.  (``except BaseException`` is allowed where intentional —
    the worker main loop reraises-or-posts explicitly.)
``REP007`` **native-layering** — :mod:`repro.native` must not import
    ``repro.runtime`` / ``repro.engine`` / ``repro.sweep``: the kernel
    backend is a leaf the runtime depends on, never the reverse
    (cycles there would break the pre-fork library-load contract).
``REP008`` **one-clock** — direct ``time.perf_counter`` reads are
    confined to :mod:`repro.obs`; everything else times through
    ``repro.obs.now()`` (or a ``span``), so every duration in ``src/``
    comes from one clock and is visible to the tracing layer.
``REP009`` **sigkill-confined** — ``os.kill`` calls and ``SIGKILL``
    references are confined to :mod:`repro.sweep.faults` (the fault
    injection harness).  Production code reaps children only through
    ``Process.kill()`` on the coordinator side — signalling arbitrary
    pids bypasses the reaper discipline and can hit a recycled pid.

Each violation carries its rule ID; suppressing one requires editing
the rule's allowlist here — visible in review — rather than a magic
comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = ["LintViolation", "RULES", "lint_paths", "lint_source", "run_lint"]

#: rule id → (summary, rationale) — the catalog DESIGN.md renders.
RULES: dict[str, tuple[str, str]] = {
    "REP001": (
        "accumulation primitives confined to kernel-bearing layers",
        "every np.add.at/np.bincount that can affect bit-identity must be "
        "auditable in the numeric layers, not scattered in orchestration",
    ),
    "REP002": (
        "no multiprocessing/threading Barrier or Condition",
        "both block waiting for dead peers; one SIGKILL deadlocks the pool "
        "(model-checked in repro.verify.protocol)",
    ),
    "REP003": (
        "SharedMemory(create=True) requires a weakref.finalize in the module",
        "segment unlinking must survive every exit path, not just the happy one",
    ),
    "REP004": (
        "os.environ/os.getenv only in resolver modules",
        "scattered env reads make runs irreproducible invisibly",
    ),
    "REP005": (
        "no mutable default arguments",
        "defaults evaluate once and alias across calls",
    ),
    "REP006": (
        "no bare except",
        "swallows KeyboardInterrupt/SystemExit and hides teardown bugs",
    ),
    "REP007": (
        "repro.native must not import runtime/engine/sweep",
        "the kernel backend is a leaf; cycles break the pre-fork load contract",
    ),
    "REP008": (
        "time.perf_counter only in repro.obs",
        "all timings flow through obs.now()/span so one clock feeds both "
        "profiles and traces",
    ),
    "REP009": (
        "os.kill/SIGKILL only in sweep/faults.py",
        "production code reaps children via Process.kill(); raw signals "
        "bypass the reaper discipline and can hit a recycled pid",
    ),
}

# First path segment (relative to the repro package) of the layers
# allowed to call accumulation primitives.
_ACCUM_LAYERS = frozenset(
    {"core", "dm", "hypergraph", "kernels", "native", "partition",
     "runtime", "simulate", "sparse", "verify"}
)
_ENV_MODULES = frozenset({"native/build.py", "experiments/config.py"})
_CLOCK_LAYER = "obs"
_BANNED_SYNC = frozenset({"Barrier", "Condition"})
_SYNC_MODULES = ("multiprocessing", "threading")
_NATIVE_FORBIDDEN = ("repro.runtime", "repro.engine", "repro.sweep")
_SIGKILL_MODULE = "sweep/faults.py"
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "defaultdict", "OrderedDict"})


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel: str):
        self.rel = rel
        self.layer = rel.split("/", 1)[0] if "/" in rel else ""
        self.out: list[LintViolation] = []
        self.env_names: set[str] = set()  # names bound to os.environ/getenv
        self.sync_names: set[str] = set()  # Barrier/Condition imported directly
        self.sigkill_names: set[str] = set()  # SIGKILL imported directly
        self.has_finalize = False
        self.shm_creates: list[int] = []

    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.out.append(
            LintViolation(rule, self.rel, getattr(node, "lineno", 0), message)
        )

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        if self.rel.startswith("native/"):
            for a in node.names:
                if a.name.startswith(_NATIVE_FORBIDDEN):
                    self.flag("REP007", node, f"native layer imports {a.name}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod.startswith(_SYNC_MODULES):
            for a in node.names:
                if a.name in _BANNED_SYNC:
                    self.flag("REP002", node, f"imports {mod}.{a.name}")
                    self.sync_names.add(a.asname or a.name)
        if mod == "os":
            for a in node.names:
                if a.name in ("environ", "getenv") and not self._env_allowed():
                    self.flag("REP004", node, f"imports os.{a.name}")
                if a.name == "kill" and not self._sigkill_allowed():
                    self.flag("REP009", node, "imports os.kill")
        if mod == "signal" and not self._sigkill_allowed():
            for a in node.names:
                if a.name == "SIGKILL":
                    self.flag("REP009", node, "imports signal.SIGKILL")
                    self.sigkill_names.add(a.asname or a.name)
        if mod == "weakref":
            if any(a.name == "finalize" for a in node.names):
                self.has_finalize = True
        if mod == "time" and self.layer != _CLOCK_LAYER:
            for a in node.names:
                if a.name == "perf_counter":
                    self.flag("REP008", node, "imports time.perf_counter")
        if self.rel.startswith("native/") and mod.startswith(_NATIVE_FORBIDDEN):
            self.flag("REP007", node, f"native layer imports from {mod}")
        self.generic_visit(node)

    # --------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            self._check_accumulation(node, name)
            base = name.split(".", 1)[0]
            if name.endswith(".finalize") and base == "weakref":
                self.has_finalize = True
            if name == "os.getenv" and not self._env_allowed():
                self.flag("REP004", node, f"environment read via {name}")
            if name == "os.kill" and not self._sigkill_allowed():
                self.flag(
                    "REP009",
                    node,
                    "os.kill outside sweep/faults.py "
                    "(reap children via Process.kill())",
                )
            if name == "SharedMemory" or name.endswith(".SharedMemory"):
                for kw in node.keywords:
                    if (
                        kw.arg == "create"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        self.shm_creates.append(node.lineno)
        self.generic_visit(node)

    def _check_accumulation(self, node: ast.Call, name: str) -> None:
        base = name.split(".", 1)[0]
        is_accum = (
            base in ("np", "numpy")
            and (name.endswith(".add.at") or name.endswith(".bincount"))
        ) or name in ("bincount",)
        if is_accum and self.layer not in _ACCUM_LAYERS:
            self.flag(
                "REP001",
                node,
                f"accumulation primitive {name} outside kernel-bearing layers",
            )

    # ---------------------------------------------------------- attributes

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _BANNED_SYNC:
            # Any ctx-like object: mp.Barrier, ctx.Condition, threading.…
            self.flag("REP002", node, f"use of {_dotted(node) or node.attr}")
        if node.attr == "environ":
            name = _dotted(node)
            if name == "os.environ" and not self._env_allowed():
                self.flag("REP004", node, "direct os.environ access")
        if node.attr == "SIGKILL" and not self._sigkill_allowed():
            self.flag(
                "REP009",
                node,
                f"use of {_dotted(node) or node.attr} outside sweep/faults.py",
            )
        if node.attr == "perf_counter" and self.layer != _CLOCK_LAYER:
            if _dotted(node) == "time.perf_counter":
                self.flag(
                    "REP008",
                    node,
                    "direct time.perf_counter outside repro.obs "
                    "(use repro.obs.now())",
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.sync_names and isinstance(node.ctx, ast.Load):
            self.flag("REP002", node, f"use of imported {node.id}")
        if node.id in self.sigkill_names and isinstance(node.ctx, ast.Load):
            self.flag("REP009", node, f"use of imported {node.id}")
        self.generic_visit(node)

    # ------------------------------------------------------------ defaults

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for d in defaults:
            bad = isinstance(d, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                 ast.DictComp, ast.SetComp))
            if isinstance(d, ast.Call):
                ctor = _dotted(d.func)
                bad = ctor is not None and ctor.split(".")[-1] in _MUTABLE_CTORS
            if bad:
                self.flag(
                    "REP005",
                    d,
                    f"mutable default argument in {node.name}()",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # ------------------------------------------------------------- excepts

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.flag("REP006", node, "bare except")
        self.generic_visit(node)

    # -------------------------------------------------------------- helpers

    def _env_allowed(self) -> bool:
        return self.rel in _ENV_MODULES

    def _sigkill_allowed(self) -> bool:
        return self.rel == _SIGKILL_MODULE


def lint_source(source: str, rel: str) -> list[LintViolation]:
    """Lint one module's source.

    ``rel`` is the path relative to the ``repro`` package root with
    POSIX separators (e.g. ``"native/build.py"``); the allowlists key
    on it.  A syntax error is itself reported as a violation (rule
    ``REP000``) rather than raised — the linter must never crash on
    the tree it audits.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation("REP000", rel, exc.lineno or 0, f"syntax error: {exc.msg}")
        ]
    v = _Visitor(rel)
    v.visit(tree)
    if v.shm_creates and not v.has_finalize:
        for line in v.shm_creates:
            v.out.append(
                LintViolation(
                    "REP003",
                    rel,
                    line,
                    "SharedMemory(create=True) without a weakref.finalize "
                    "registered in this module",
                )
            )
    return sorted(v.out, key=lambda x: (x.path, x.line, x.rule))


def lint_paths(paths, root: Path) -> list[LintViolation]:
    """Lint explicit files; ``root`` is the ``repro`` package directory
    the allowlist-relative paths are computed against."""
    out: list[LintViolation] = []
    for p in paths:
        p = Path(p)
        try:
            rel = p.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            rel = p.name
        out.extend(lint_source(p.read_text(encoding="utf-8"), rel))
    return out


def run_lint(root: Path | str | None = None) -> list[LintViolation]:
    """Lint every ``*.py`` under the ``repro`` package (or ``root``)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    return lint_paths(sorted(root.rglob("*.py")), root)
