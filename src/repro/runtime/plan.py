"""The frozen communication plan and its repeated-apply executor.

A :class:`CommPlan` holds everything about one partitioned SpMV that
does not depend on the input vector: the message ledger and superstep
schedule (computed once, shared by every subsequent run), and the
gather/scatter index arrays of the numeric kernel.  All three
execution models reduce to one apply shape::

    psums = group1(pre_vals * x[pre_cols])      # grouped partial sums
    fsums = group2(psums)                       # routed combine (s2D-b)
    y     = scatter(main_vals * x[main_cols])   # row-owner products
          + scatter(fsums at fold_rows)         # fold received partials

- single-phase: ``pre_*`` are the precompute nonzeros, ``main_*`` the
  row-owner nonzeros, no ``group2``;
- two-phase: every nonzero goes through ``group1`` (partials per
  (holder, row)), no ``main_*`` — ``y`` is the fold alone;
- mesh-routed s2D-b: like single-phase plus ``group2``, the combine of
  partials at mesh intermediates.

Bit-identity with the per-call executors holds because every float
operation is reproduced with the same kernel and the same element
order: :class:`_GroupPlan` freezes :func:`repro.kernels.group_sum`'s
histogram-vs-scatter branch choice at compile time, and the scatters
are the executors' own ``np.bincount`` accumulations over the same
index arrays.  The same applies to the native C backend
(:mod:`repro.native`, selected per call via ``backend=`` or the
``REPRO_NATIVE`` flag): its fused gather/scatter loops accumulate in
index order, so native sums equal ``np.bincount``/``np.add.at``
element order bit for bit.  :meth:`CommPlan.apply_many` routes each
column through the same single-RHS accumulation order either way, so
batched columns match single applies bitwise too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.kernels import _use_histogram
from repro.native import ops as native_ops
from repro.native import resolve_backend
from repro.native.build import get_kernels
from repro.simulate.common import resolve_x
from repro.simulate.machine import MachineModel, PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["CommPlan", "PartPlan"]


@dataclass
class _GroupPlan:
    """Frozen :func:`repro.kernels.group_sum` over a fixed key array.

    ``build`` mirrors ``group_sum``'s branch choice exactly, so
    ``apply(values)`` returns the same float64 sums bit for bit:

    - ``hist``: ``index`` holds the min-shifted keys, ``length`` the key
      span, ``take`` the surviving bins — one ``np.bincount`` pass;
    - ``scatter``: ``index`` holds the unique-inverse positions,
      ``length`` the group count — one ``np.add.at`` pass;
    - ``empty``: no keys; values pass through (they are empty too).
    """

    mode: str
    index: np.ndarray
    length: int
    take: np.ndarray | None = None

    @classmethod
    def build(cls, keys: np.ndarray) -> tuple["_GroupPlan", np.ndarray]:
        """Compile the plan for ``keys``; returns ``(plan, unique_keys)``."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return cls("empty", keys.copy(), 0), keys.copy()
        kmin = int(keys.min())
        span = int(keys.max()) - kmin + 1
        if _use_histogram(span, keys.size):
            shifted = keys - kmin
            counts = np.bincount(shifted, minlength=span)
            take = np.flatnonzero(counts > 0)
            return cls("hist", shifted, span, take), take + kmin
        uniq, inv = np.unique(keys, return_inverse=True)
        return cls("scatter", inv, int(uniq.size)), uniq

    def apply(self, values: np.ndarray) -> np.ndarray:
        if self.mode == "empty":
            return values.copy()
        if self.mode == "hist":
            sums = np.bincount(self.index, weights=values, minlength=self.length)
            return sums[self.take]
        sums = np.zeros(self.length, dtype=values.dtype)
        np.add.at(sums, self.index, values)
        return sums


class _NativeApply:
    """A plan's apply pipeline on the native C kernels.

    Built lazily on the first ``backend="native"`` apply and cached on
    the plan (never serialized — :meth:`CommPlan.__getstate__` drops
    it, and :meth:`CommPlan.to_state` ignores it).  Holds nothing but
    the loaded library plus dtype/contiguity-normalized views of the
    plan's own index arrays, so construction is cheap and applies are
    single fused passes per stage.
    """

    def __init__(self, plan: "CommPlan", lib):
        f64 = lambda a: np.ascontiguousarray(a, dtype=np.float64)  # noqa: E731
        i64 = lambda a: np.ascontiguousarray(a, dtype=np.int64)  # noqa: E731
        self.lib = lib
        self.plan = plan
        # Everything iteration-invariant is normalized here, once: the
        # group indices densified (see ``native_ops.compact_group`` —
        # same accumulation order, no span-sized accumulators), the
        # index/value arrays pinned to contiguous int64/float64.
        self.group1 = native_ops.compact_group(plan.group1)
        self.group2 = (
            native_ops.compact_group(plan.group2)
            if plan.group2 is not None
            else None
        )
        self.pre_vals = f64(plan.pre_vals)
        self.pre_cols = i64(plan.pre_cols)
        self.fold_rows = i64(plan.fold_rows)
        self.main_rows = None if plan.main_rows is None else i64(plan.main_rows)
        self.main_cols = None if plan.main_cols is None else i64(plan.main_cols)
        self.main_vals = None if plan.main_vals is None else f64(plan.main_vals)

    def apply_y(self, x: np.ndarray) -> np.ndarray:
        p, lib = self.plan, self.lib
        x = np.ascontiguousarray(x, dtype=np.float64)
        psums = native_ops.fused_group_gather(
            lib, self.group1, self.pre_vals, self.pre_cols, x
        )
        fsums = (
            native_ops.group_apply(lib, self.group2, psums)
            if self.group2 is not None
            else psums
        )
        if self.main_rows is None:
            return native_ops.scatter_sum(lib, self.fold_rows, fsums, p.nrows)
        y = native_ops.scatter_products(
            lib, self.main_rows, self.main_vals, self.main_cols, x, p.nrows
        )
        if self.fold_rows.size:
            # Fold into a separate accumulator, then one vector add —
            # the same association as the NumPy ``y += bincount(...)``.
            y += native_ops.scatter_sum(lib, self.fold_rows, fsums, p.nrows)
        return y

    def apply_many(self, xs: np.ndarray) -> np.ndarray:
        p, lib = self.plan, self.lib
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        psums = native_ops.fused_group_gather_many(
            lib, self.group1, self.pre_vals, self.pre_cols, xs
        )
        fsums = (
            native_ops.group_apply_many(lib, self.group2, psums)
            if self.group2 is not None
            else psums
        )
        if self.main_rows is None:
            return native_ops.scatter_sum_many(lib, self.fold_rows, fsums, p.nrows)
        y = native_ops.scatter_products_many(
            lib, self.main_rows, self.main_vals, self.main_cols, xs, p.nrows
        )
        if self.fold_rows.size:
            y += native_ops.scatter_sum_many(lib, self.fold_rows, fsums, p.nrows)
        return y


# ----------------------------------------------------------------------
# Plan shards: the per-part slices a parallel executor runs
# ----------------------------------------------------------------------


@dataclass
class _SendSpec:
    """One part's writes into one communication phase's shared buffer.

    ``buffer[x_slots] = x_local[x_cols]`` publishes the x words this
    part owns and must expand; ``buffer[p_slots] = partials[p_idx]``
    publishes its outgoing partial sums.  Slot indices are assigned at
    shard time so that every ``(src, dst)`` pair occupies one
    contiguous run in ledger pair order — the buffer *is* the ledger,
    one float64 word per recorded word.
    """

    x_slots: np.ndarray
    x_cols: np.ndarray
    p_slots: np.ndarray
    p_idx: np.ndarray

    @property
    def words(self) -> int:
        return int(self.x_slots.size + self.p_slots.size)


@dataclass
class _RecvX:
    """One part's x-word reads from one phase buffer:
    ``x_local[cols] = buffer[slots]``."""

    slots: np.ndarray
    cols: np.ndarray


@dataclass
class _Gather:
    """Assemble a combine/fold input vector in the *global* element
    order of the single-core plan, interleaving buffer reads with
    locally-held partials::

        w[buf_pos] = buffer[buf_slots]
        w[loc_pos] = local_partials[loc_idx]

    Keeping the global order is what makes the per-row sums bit-equal
    to ``CommPlan.apply_y``: contributions to one output row arrive
    sorted by producing part, exactly as the single-core ``bincount``
    sees them.
    """

    size: int
    buf_pos: np.ndarray
    buf_slots: np.ndarray
    loc_pos: np.ndarray
    loc_idx: np.ndarray

    def assemble(self, buffer: np.ndarray, local: np.ndarray) -> np.ndarray:
        w = np.empty(self.size, dtype=np.float64)
        if self.buf_pos.size:
            w[self.buf_pos] = buffer[self.buf_slots]
        if self.loc_pos.size:
            w[self.loc_pos] = local[self.loc_idx]
        return w


@dataclass
class PartPlan:
    """Everything one worker needs to run its share of a
    :class:`CommPlan`, frozen at shard time.

    Built by :func:`repro.runtime.compile.shard_plan`; a list of K of
    these plus the plan itself fully describes the parallel execution
    (see :mod:`repro.runtime.parallel` for the superstep schedule).
    Row indices into the output are *compact* (positions within
    ``own_rows``) so a worker's fold touches only its owned rows.
    """

    part: int
    mode: str
    own_rows: np.ndarray
    x_own_cols: np.ndarray
    pre_cols: np.ndarray
    pre_vals: np.ndarray
    group1: _GroupPlan
    has_fold: bool
    fold_rows_c: np.ndarray
    fold_gather: _Gather
    sends: dict
    recvs_x: dict
    main_rows_c: np.ndarray | None = None
    main_cols: np.ndarray | None = None
    main_vals: np.ndarray | None = None
    group2: _GroupPlan | None = None
    comb_gather: _Gather | None = None

    @property
    def nrows_local(self) -> int:
        return int(self.own_rows.size)


@dataclass
class CommPlan:
    """One partition's SpMV, compiled for repeated application.

    Built by :func:`repro.runtime.compile_plan`; treat every field as
    frozen — the ledger and phase schedule are shared by all runs the
    plan produces.
    """

    executor: str
    kind: str
    nparts: int
    nrows: int
    ncols: int
    nnz: int
    ledger: Ledger
    phases: list[PhaseCost]
    pre_cols: np.ndarray
    pre_vals: np.ndarray
    group1: _GroupPlan
    fold_rows: np.ndarray
    group2: _GroupPlan | None = None
    main_rows: np.ndarray | None = None
    main_cols: np.ndarray | None = None
    main_vals: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------- apply

    def default_x(self) -> np.ndarray:
        """The executors' default input vector."""
        return resolve_x(None, self.ncols)

    def _native(self) -> _NativeApply:
        """The lazily-built native kernel state (resolve_backend has
        already guaranteed the library loads)."""
        state = self.__dict__.get("_native_state")
        if state is None:
            state = _NativeApply(self, get_kernels())
            self.__dict__["_native_state"] = state
        return state

    def _apply_y_numpy(self, x: np.ndarray) -> np.ndarray:
        psums = self.group1.apply(self.pre_vals * x[self.pre_cols])
        fsums = self.group2.apply(psums) if self.group2 is not None else psums
        if self.main_rows is None:
            return np.bincount(self.fold_rows, weights=fsums, minlength=self.nrows)
        y = np.bincount(
            self.main_rows,
            weights=self.main_vals * x[self.main_cols],
            minlength=self.nrows,
        )
        if self.fold_rows.size:
            y += np.bincount(self.fold_rows, weights=fsums, minlength=self.nrows)
        return y

    def apply_y(
        self, x: np.ndarray | None = None, *, backend: str | None = None
    ) -> np.ndarray:
        """``A @ x`` through the compiled schedule — just the vector.

        Bit-identical to the matching per-call executor's ``run.y``
        under either kernel backend (``backend``: ``"numpy"``,
        ``"native"``, ``"auto"``, or None for the process default —
        see :func:`repro.native.resolve_backend`).
        """
        x = resolve_x(x, self.ncols)
        resolved = resolve_backend(backend)
        with obs.span("plan.apply", mode=self.executor, backend=resolved):
            obs.add("plan.sent_words", int(self.words))
            obs.add("plan.msgs", int(self.msgs))
            if resolved == "native":
                return self._native().apply_y(x)
            return self._apply_y_numpy(x)

    def apply(
        self, x: np.ndarray | None = None, *, backend: str | None = None
    ) -> SpMVRun:
        """One simulated multiply with zero per-call set-up.

        Only ``y`` is computed per call; the returned run shares this
        plan's (frozen) ledger, phase schedule and meta — treat them
        as read-only, since every run of this plan (and the plan's own
        ``words``/``msgs``/``time``) reads the same objects.
        """
        return SpMVRun(
            y=self.apply_y(x, backend=backend),
            ledger=self.ledger,
            phases=self.phases,
            nnz=self.nnz,
            kind=self.kind,
            meta=self.meta,
        )

    def apply_many(
        self, xs: np.ndarray, *, backend: str | None = None
    ) -> np.ndarray:
        """Batch column-stacked right-hand sides ``xs`` (ncols, r).

        Returns ``Y`` of shape (nrows, r); each column is bit-identical
        to ``apply_y(xs[:, j])``.  A 1-D input is promoted to a single
        column and returned 1-D.  The native backend runs the batched C
        kernels (one pass over the index arrays for all r columns); the
        NumPy backend routes each column through the single-RHS kernels
        — the former batched ``np.add.at`` formulation cost more per
        column than sequential applies, and per-column ``bincount``
        keeps the exact element order.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim == 1:
            return self.apply_y(xs, backend=backend)
        if xs.ndim != 2 or xs.shape[0] != self.ncols:
            raise SimulationError(
                f"xs has shape {xs.shape}, expected ({self.ncols}, r)"
            )
        if resolve_backend(backend) == "native":
            return self._native().apply_many(xs)
        y = np.empty((self.nrows, xs.shape[1]))
        for j in range(xs.shape[1]):
            y[:, j] = self._apply_y_numpy(np.ascontiguousarray(xs[:, j]))
        return y

    # ------------------------------------------------------------ pickling

    def __getstate__(self) -> dict:
        # The native kernel state wraps a ctypes library; rebuild it
        # lazily on the other side instead of pickling it.
        state = self.__dict__.copy()
        state.pop("_native_state", None)
        return state

    # ------------------------------------------------------------- costs

    @property
    def words(self) -> int:
        """Words sent per iteration (static across applies)."""
        return self.ledger.total_volume()

    @property
    def msgs(self) -> int:
        """Messages sent per iteration (static across applies)."""
        return self.ledger.total_msgs()

    def time(self, machine: MachineModel) -> float:
        """Simulated per-iteration run time under ``machine``."""
        return sum(
            machine.phase_time(
                ph.flops, self.ledger if ph.comm_phase else None, ph.comm_phase
            )
            for ph in self.phases
        )

    # ------------------------------------------------------------- state

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split the plan into a JSON header and named arrays.

        The inverse of :meth:`from_state`; used by
        :func:`repro.partition.serialize.save_plan`.
        """
        from repro.partition.serialize import json_safe_meta

        header: dict = {
            "executor": self.executor,
            "kind": self.kind,
            "nparts": self.nparts,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "nnz": self.nnz,
            "meta": json_safe_meta(self.meta),
            "has_main": self.main_rows is not None,
            "groups": [
                None
                if g is None
                else {"mode": g.mode, "length": g.length, "has_take": g.take is not None}
                for g in (self.group1, self.group2)
            ],
            "phases": [
                {
                    "name": ph.name,
                    "comm_phase": ph.comm_phase,
                    "has_flops": ph.flops is not None,
                }
                for ph in self.phases
            ],
            "ledger_phases": self.ledger.phase_names,
        }
        arrays: dict[str, np.ndarray] = {
            "pre_cols": self.pre_cols,
            "pre_vals": self.pre_vals,
            "fold_rows": self.fold_rows,
            "g1_index": self.group1.index,
        }
        if self.group1.take is not None:
            arrays["g1_take"] = self.group1.take
        if self.group2 is not None:
            arrays["g2_index"] = self.group2.index
            if self.group2.take is not None:
                arrays["g2_take"] = self.group2.take
        if self.main_rows is not None:
            arrays["main_rows"] = self.main_rows
            arrays["main_cols"] = self.main_cols
            arrays["main_vals"] = self.main_vals
        for i, ph in enumerate(self.phases):
            if ph.flops is not None:
                arrays[f"phase{i}_flops"] = ph.flops
        for i, name in enumerate(self.ledger.phase_names):
            src, dst, words = self.ledger.phase_pairs(name)
            arrays[f"ledger{i}_src"] = src
            arrays[f"ledger{i}_dst"] = dst
            arrays[f"ledger{i}_words"] = words
        return header, arrays

    @classmethod
    def from_state(cls, header: dict, arrays: dict[str, np.ndarray]) -> "CommPlan":
        """Rebuild a plan saved by :meth:`to_state`."""

        def group(slot: int, prefix: str) -> _GroupPlan | None:
            spec = header["groups"][slot]
            if spec is None:
                return None
            return _GroupPlan(
                mode=spec["mode"],
                index=arrays[f"{prefix}_index"],
                length=int(spec["length"]),
                take=arrays[f"{prefix}_take"] if spec["has_take"] else None,
            )

        ledger = Ledger(int(header["nparts"]))
        for i, name in enumerate(header["ledger_phases"]):
            ledger.record_pairs(
                name,
                arrays[f"ledger{i}_src"],
                arrays[f"ledger{i}_dst"],
                arrays[f"ledger{i}_words"],
            )
        phases = [
            PhaseCost(
                name=spec["name"],
                flops=arrays[f"phase{i}_flops"] if spec["has_flops"] else None,
                comm_phase=spec["comm_phase"],
            )
            for i, spec in enumerate(header["phases"])
        ]
        has_main = header["has_main"]
        return cls(
            executor=header["executor"],
            kind=header["kind"],
            nparts=int(header["nparts"]),
            nrows=int(header["nrows"]),
            ncols=int(header["ncols"]),
            nnz=int(header["nnz"]),
            ledger=ledger,
            phases=phases,
            pre_cols=arrays["pre_cols"],
            pre_vals=arrays["pre_vals"],
            group1=group(0, "g1"),
            fold_rows=arrays["fold_rows"],
            group2=group(1, "g2"),
            main_rows=arrays["main_rows"] if has_main else None,
            main_cols=arrays["main_cols"] if has_main else None,
            main_vals=arrays["main_vals"] if has_main else None,
            meta={
                k: tuple(v) if isinstance(v, list) else v
                for k, v in header.get("meta", {}).items()
            },
        )
