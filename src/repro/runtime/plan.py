"""The frozen communication plan and its repeated-apply executor.

A :class:`CommPlan` holds everything about one partitioned SpMV that
does not depend on the input vector: the message ledger and superstep
schedule (computed once, shared by every subsequent run), and the
gather/scatter index arrays of the numeric kernel.  All three
execution models reduce to one apply shape::

    psums = group1(pre_vals * x[pre_cols])      # grouped partial sums
    fsums = group2(psums)                       # routed combine (s2D-b)
    y     = scatter(main_vals * x[main_cols])   # row-owner products
          + scatter(fsums at fold_rows)         # fold received partials

- single-phase: ``pre_*`` are the precompute nonzeros, ``main_*`` the
  row-owner nonzeros, no ``group2``;
- two-phase: every nonzero goes through ``group1`` (partials per
  (holder, row)), no ``main_*`` — ``y`` is the fold alone;
- mesh-routed s2D-b: like single-phase plus ``group2``, the combine of
  partials at mesh intermediates.

Bit-identity with the per-call executors holds because every float
operation is reproduced with the same kernel and the same element
order: :class:`_GroupPlan` freezes :func:`repro.kernels.group_sum`'s
histogram-vs-scatter branch choice at compile time, and the scatters
are the executors' own ``np.bincount`` accumulations over the same
index arrays.  (``np.add.at`` used by :meth:`CommPlan.apply_many`
accumulates in the same element order as ``np.bincount``, so batched
columns match single applies bitwise too.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.kernels import _use_histogram
from repro.simulate.common import resolve_x
from repro.simulate.machine import MachineModel, PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["CommPlan", "PartPlan"]


@dataclass
class _GroupPlan:
    """Frozen :func:`repro.kernels.group_sum` over a fixed key array.

    ``build`` mirrors ``group_sum``'s branch choice exactly, so
    ``apply(values)`` returns the same float64 sums bit for bit:

    - ``hist``: ``index`` holds the min-shifted keys, ``length`` the key
      span, ``take`` the surviving bins — one ``np.bincount`` pass;
    - ``scatter``: ``index`` holds the unique-inverse positions,
      ``length`` the group count — one ``np.add.at`` pass;
    - ``empty``: no keys; values pass through (they are empty too).
    """

    mode: str
    index: np.ndarray
    length: int
    take: np.ndarray | None = None

    @classmethod
    def build(cls, keys: np.ndarray) -> tuple["_GroupPlan", np.ndarray]:
        """Compile the plan for ``keys``; returns ``(plan, unique_keys)``."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return cls("empty", keys.copy(), 0), keys.copy()
        kmin = int(keys.min())
        span = int(keys.max()) - kmin + 1
        if _use_histogram(span, keys.size):
            shifted = keys - kmin
            counts = np.bincount(shifted, minlength=span)
            take = np.flatnonzero(counts > 0)
            return cls("hist", shifted, span, take), take + kmin
        uniq, inv = np.unique(keys, return_inverse=True)
        return cls("scatter", inv, int(uniq.size)), uniq

    def apply(self, values: np.ndarray) -> np.ndarray:
        if self.mode == "empty":
            return values.copy()
        if self.mode == "hist":
            sums = np.bincount(self.index, weights=values, minlength=self.length)
            return sums[self.take]
        sums = np.zeros(self.length, dtype=values.dtype)
        np.add.at(sums, self.index, values)
        return sums

    def apply_many(self, values: np.ndarray) -> np.ndarray:
        """Column-batched :meth:`apply` over ``values`` of shape (items, r)."""
        if self.mode == "empty":
            return values.copy()
        sums = np.zeros((self.length, values.shape[1]), dtype=values.dtype)
        np.add.at(sums, self.index, values)
        return sums[self.take] if self.mode == "hist" else sums


# ----------------------------------------------------------------------
# Plan shards: the per-part slices a parallel executor runs
# ----------------------------------------------------------------------


@dataclass
class _SendSpec:
    """One part's writes into one communication phase's shared buffer.

    ``buffer[x_slots] = x_local[x_cols]`` publishes the x words this
    part owns and must expand; ``buffer[p_slots] = partials[p_idx]``
    publishes its outgoing partial sums.  Slot indices are assigned at
    shard time so that every ``(src, dst)`` pair occupies one
    contiguous run in ledger pair order — the buffer *is* the ledger,
    one float64 word per recorded word.
    """

    x_slots: np.ndarray
    x_cols: np.ndarray
    p_slots: np.ndarray
    p_idx: np.ndarray

    @property
    def words(self) -> int:
        return int(self.x_slots.size + self.p_slots.size)


@dataclass
class _RecvX:
    """One part's x-word reads from one phase buffer:
    ``x_local[cols] = buffer[slots]``."""

    slots: np.ndarray
    cols: np.ndarray


@dataclass
class _Gather:
    """Assemble a combine/fold input vector in the *global* element
    order of the single-core plan, interleaving buffer reads with
    locally-held partials::

        w[buf_pos] = buffer[buf_slots]
        w[loc_pos] = local_partials[loc_idx]

    Keeping the global order is what makes the per-row sums bit-equal
    to ``CommPlan.apply_y``: contributions to one output row arrive
    sorted by producing part, exactly as the single-core ``bincount``
    sees them.
    """

    size: int
    buf_pos: np.ndarray
    buf_slots: np.ndarray
    loc_pos: np.ndarray
    loc_idx: np.ndarray

    def assemble(self, buffer: np.ndarray, local: np.ndarray) -> np.ndarray:
        w = np.empty(self.size, dtype=np.float64)
        if self.buf_pos.size:
            w[self.buf_pos] = buffer[self.buf_slots]
        if self.loc_pos.size:
            w[self.loc_pos] = local[self.loc_idx]
        return w


@dataclass
class PartPlan:
    """Everything one worker needs to run its share of a
    :class:`CommPlan`, frozen at shard time.

    Built by :func:`repro.runtime.compile.shard_plan`; a list of K of
    these plus the plan itself fully describes the parallel execution
    (see :mod:`repro.runtime.parallel` for the superstep schedule).
    Row indices into the output are *compact* (positions within
    ``own_rows``) so a worker's fold touches only its owned rows.
    """

    part: int
    mode: str
    own_rows: np.ndarray
    x_own_cols: np.ndarray
    pre_cols: np.ndarray
    pre_vals: np.ndarray
    group1: _GroupPlan
    has_fold: bool
    fold_rows_c: np.ndarray
    fold_gather: _Gather
    sends: dict
    recvs_x: dict
    main_rows_c: np.ndarray | None = None
    main_cols: np.ndarray | None = None
    main_vals: np.ndarray | None = None
    group2: _GroupPlan | None = None
    comb_gather: _Gather | None = None

    @property
    def nrows_local(self) -> int:
        return int(self.own_rows.size)


@dataclass
class CommPlan:
    """One partition's SpMV, compiled for repeated application.

    Built by :func:`repro.runtime.compile_plan`; treat every field as
    frozen — the ledger and phase schedule are shared by all runs the
    plan produces.
    """

    executor: str
    kind: str
    nparts: int
    nrows: int
    ncols: int
    nnz: int
    ledger: Ledger
    phases: list[PhaseCost]
    pre_cols: np.ndarray
    pre_vals: np.ndarray
    group1: _GroupPlan
    fold_rows: np.ndarray
    group2: _GroupPlan | None = None
    main_rows: np.ndarray | None = None
    main_cols: np.ndarray | None = None
    main_vals: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------- apply

    def default_x(self) -> np.ndarray:
        """The executors' default input vector."""
        return resolve_x(None, self.ncols)

    def apply_y(self, x: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` through the compiled schedule — just the vector.

        Bit-identical to the matching per-call executor's ``run.y``.
        """
        x = resolve_x(x, self.ncols)
        psums = self.group1.apply(self.pre_vals * x[self.pre_cols])
        fsums = self.group2.apply(psums) if self.group2 is not None else psums
        if self.main_rows is None:
            return np.bincount(self.fold_rows, weights=fsums, minlength=self.nrows)
        y = np.bincount(
            self.main_rows,
            weights=self.main_vals * x[self.main_cols],
            minlength=self.nrows,
        )
        if self.fold_rows.size:
            y += np.bincount(self.fold_rows, weights=fsums, minlength=self.nrows)
        return y

    def apply(self, x: np.ndarray | None = None) -> SpMVRun:
        """One simulated multiply with zero per-call set-up.

        Only ``y`` is computed per call; the returned run shares this
        plan's (frozen) ledger, phase schedule and meta — treat them
        as read-only, since every run of this plan (and the plan's own
        ``words``/``msgs``/``time``) reads the same objects.
        """
        return SpMVRun(
            y=self.apply_y(x),
            ledger=self.ledger,
            phases=self.phases,
            nnz=self.nnz,
            kind=self.kind,
            meta=self.meta,
        )

    def apply_many(self, xs: np.ndarray) -> np.ndarray:
        """Batch column-stacked right-hand sides ``xs`` (ncols, r).

        Returns ``Y`` of shape (nrows, r); each column is bit-identical
        to ``apply_y(xs[:, j])``.  A 1-D input is promoted to a single
        column and returned 1-D.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim == 1:
            return self.apply_y(xs)
        if xs.ndim != 2 or xs.shape[0] != self.ncols:
            raise SimulationError(
                f"xs has shape {xs.shape}, expected ({self.ncols}, r)"
            )
        psums = self.group1.apply_many(self.pre_vals[:, None] * xs[self.pre_cols])
        fsums = self.group2.apply_many(psums) if self.group2 is not None else psums
        r = xs.shape[1]
        if self.main_rows is None:
            y = np.zeros((self.nrows, r))
            np.add.at(y, self.fold_rows, fsums)
            return y
        y = np.zeros((self.nrows, r))
        np.add.at(y, self.main_rows, self.main_vals[:, None] * xs[self.main_cols])
        if self.fold_rows.size:
            folded = np.zeros((self.nrows, r))
            np.add.at(folded, self.fold_rows, fsums)
            y = y + folded
        return y

    # ------------------------------------------------------------- costs

    @property
    def words(self) -> int:
        """Words sent per iteration (static across applies)."""
        return self.ledger.total_volume()

    @property
    def msgs(self) -> int:
        """Messages sent per iteration (static across applies)."""
        return self.ledger.total_msgs()

    def time(self, machine: MachineModel) -> float:
        """Simulated per-iteration run time under ``machine``."""
        return sum(
            machine.phase_time(
                ph.flops, self.ledger if ph.comm_phase else None, ph.comm_phase
            )
            for ph in self.phases
        )

    # ------------------------------------------------------------- state

    def to_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Split the plan into a JSON header and named arrays.

        The inverse of :meth:`from_state`; used by
        :func:`repro.partition.serialize.save_plan`.
        """
        from repro.partition.serialize import json_safe_meta

        header: dict = {
            "executor": self.executor,
            "kind": self.kind,
            "nparts": self.nparts,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "nnz": self.nnz,
            "meta": json_safe_meta(self.meta),
            "has_main": self.main_rows is not None,
            "groups": [
                None
                if g is None
                else {"mode": g.mode, "length": g.length, "has_take": g.take is not None}
                for g in (self.group1, self.group2)
            ],
            "phases": [
                {
                    "name": ph.name,
                    "comm_phase": ph.comm_phase,
                    "has_flops": ph.flops is not None,
                }
                for ph in self.phases
            ],
            "ledger_phases": self.ledger.phase_names,
        }
        arrays: dict[str, np.ndarray] = {
            "pre_cols": self.pre_cols,
            "pre_vals": self.pre_vals,
            "fold_rows": self.fold_rows,
            "g1_index": self.group1.index,
        }
        if self.group1.take is not None:
            arrays["g1_take"] = self.group1.take
        if self.group2 is not None:
            arrays["g2_index"] = self.group2.index
            if self.group2.take is not None:
                arrays["g2_take"] = self.group2.take
        if self.main_rows is not None:
            arrays["main_rows"] = self.main_rows
            arrays["main_cols"] = self.main_cols
            arrays["main_vals"] = self.main_vals
        for i, ph in enumerate(self.phases):
            if ph.flops is not None:
                arrays[f"phase{i}_flops"] = ph.flops
        for i, name in enumerate(self.ledger.phase_names):
            src, dst, words = self.ledger.phase_pairs(name)
            arrays[f"ledger{i}_src"] = src
            arrays[f"ledger{i}_dst"] = dst
            arrays[f"ledger{i}_words"] = words
        return header, arrays

    @classmethod
    def from_state(cls, header: dict, arrays: dict[str, np.ndarray]) -> "CommPlan":
        """Rebuild a plan saved by :meth:`to_state`."""

        def group(slot: int, prefix: str) -> _GroupPlan | None:
            spec = header["groups"][slot]
            if spec is None:
                return None
            return _GroupPlan(
                mode=spec["mode"],
                index=arrays[f"{prefix}_index"],
                length=int(spec["length"]),
                take=arrays[f"{prefix}_take"] if spec["has_take"] else None,
            )

        ledger = Ledger(int(header["nparts"]))
        for i, name in enumerate(header["ledger_phases"]):
            ledger.record_pairs(
                name,
                arrays[f"ledger{i}_src"],
                arrays[f"ledger{i}_dst"],
                arrays[f"ledger{i}_words"],
            )
        phases = [
            PhaseCost(
                name=spec["name"],
                flops=arrays[f"phase{i}_flops"] if spec["has_flops"] else None,
                comm_phase=spec["comm_phase"],
            )
            for i, spec in enumerate(header["phases"])
        ]
        has_main = header["has_main"]
        return cls(
            executor=header["executor"],
            kind=header["kind"],
            nparts=int(header["nparts"]),
            nrows=int(header["nrows"]),
            ncols=int(header["ncols"]),
            nnz=int(header["nnz"]),
            ledger=ledger,
            phases=phases,
            pre_cols=arrays["pre_cols"],
            pre_vals=arrays["pre_vals"],
            group1=group(0, "g1"),
            fold_rows=arrays["fold_rows"],
            group2=group(1, "g2"),
            main_rows=arrays["main_rows"] if has_main else None,
            main_cols=arrays["main_cols"] if has_main else None,
            main_vals=arrays["main_vals"] if has_main else None,
            meta={
                k: tuple(v) if isinstance(v, list) else v
                for k, v in header.get("meta", {}).items()
            },
        )
