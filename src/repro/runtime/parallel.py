"""Shared-memory parallel executor for compiled communication plans.

This is the first code in the repository that *performs* communication
instead of predicting it: a compiled :class:`~repro.runtime.plan.CommPlan`
is sharded into K :class:`~repro.runtime.plan.PartPlan`s (see
:func:`repro.runtime.compile.shard_plan`) and executed by a persistent
pool of worker processes — one part per worker by default — with the
input/output vectors and every inter-part message buffer living in
:mod:`multiprocessing.shared_memory`.

Superstep schedule (B = a full synchronization between steps)::

    single:  [psums; publish x+partials]  B  [recv x; main + fold]
    two:     [publish x]  B  [recv x; psums; publish partials]  B  [fold]
    routed:  [psums; hop-1 publish]  B  [recv; combine; hop-2 publish]
             B  [recv; main + fold]

The barrier is coordinator-mediated over plain semaphores (one ``go``
token per worker per step, one shared ``done`` ack) because that is
the only synchronization that survives a SIGKILLed peer — see
``_worker_main``.

Everything iteration-invariant — index slices, buffer slot assignments,
group plans, barriers, worker processes, shared segments — is set up
once; a solver calling :meth:`ParallelExecutor.apply_y` per iteration
moves only float64 payloads, with zero per-iteration pickling (the
pool uses the ``fork`` start method and inherits all plan state).

Two invariants are enforced rather than assumed:

- **bit-identity**: the parallel ``y`` equals single-core
  ``CommPlan.apply_y`` bitwise — workers run the same kernels over the
  same element order per part, and cross-part combines assemble their
  inputs in the global key order (see ``_Gather``);
- **measured == predicted**: every worker counts the words it actually
  writes into the shared buffers (a per-part row of a shared int64
  stats array); :meth:`ParallelExecutor.reconcile` checks the measured
  per-phase traffic against the machine-model ledger exactly.

Failure handling: any worker exception posts a message to a shared
error block before acking its step; a killed worker simply never acks,
so the coordinator's bounded wait times out.  Either way the
coordinator tears the pool down, **unlinks every shared segment**, and
raises :class:`~repro.errors.SimulationError`
— no orphaned ``/dev/shm`` entries (a session test fixture asserts
this for the whole suite).
"""

from __future__ import annotations

import itertools
import os
import weakref
from multiprocessing import get_context, shared_memory

import numpy as np

from repro import obs
from repro.errors import SimulationError
from repro.jobs import resolve_jobs
from repro.native import ops as native_ops
from repro.native import resolve_backend
from repro.native.build import get_kernels
from repro.runtime.plan import CommPlan, PartPlan
from repro.simulate.common import resolve_x
from repro.simulate.machine import SpMVRun

__all__ = ["PHASES", "ParallelExecutor", "apply_shards_serial", "build_parallel_executor"]

# Canonical communication phases per execution model, in superstep
# order.  This — not ``ledger.phase_names`` — defines the stats layout:
# a phase with zero traffic is absent from the ledger but still owns a
# (all-zero) stats column.
PHASES: dict[str, tuple[str, ...]] = {
    "single": ("expand-and-fold",),
    "two": ("expand", "fold"),
    "routed": ("route-row", "route-col"),
}

_N_STEPS = {"single": 2, "two": 3, "routed": 3}

# Control words (shared int64 block).
_CMD, _ERR = 0, 1
_CMD_RUN, _CMD_STOP = 0, 1

_ERRMSG_BYTES = 4096
_uid = itertools.count()


class _PartRunner:
    """One part's superstep program over (possibly shared) buffers.

    The same class drives both the in-process serial replay
    (:func:`apply_shards_serial`) and the pool workers — the only
    difference is whether ``x``/``y``/``buffers``/``stats`` are plain
    arrays or views over shared memory.  ``x_local`` starts NaN-poisoned
    so a read of an x entry the part neither owns nor received surfaces
    as a NaN in ``y`` instead of silently using stale data.

    ``backend`` selects the numeric kernels (already resolved to
    ``"numpy"`` or ``"native"`` by the caller): the native path runs
    the fused C loops of :mod:`repro.native` for the per-part
    precompute, main products, combine and fold — bit-identical
    because they accumulate in the same index order — while buffer
    publishes, receives and gather assembly stay NumPy slicing.
    """

    def __init__(
        self,
        shard: PartPlan,
        *,
        ncols: int,
        buffers: dict[str, np.ndarray],
        stats_row: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        backend: str = "numpy",
    ):
        self.s = shard
        self.buffers = buffers
        self.stats = stats_row
        self.x = x
        self.y = y
        self.lib = get_kernels() if backend == "native" else None
        if backend == "native" and self.lib is None:
            raise SimulationError(
                "native backend selected but the kernel library is unavailable"
            )
        if self.lib is not None:
            self.g1 = native_ops.compact_group(shard.group1)
            self.g2 = (
                native_ops.compact_group(shard.group2)
                if shard.group2 is not None
                else None
            )
        self.x_local = np.full(ncols, np.nan)
        self.psums: np.ndarray | None = None
        self.csums: np.ndarray | None = None
        self.phase_col = {ph: i for i, ph in enumerate(PHASES[shard.mode])}
        self.steps = {
            "single": (self._single0, self._single1),
            "two": (self._two0, self._two1, self._two2),
            "routed": (self._routed0, self._routed1, self._routed2),
        }[shard.mode]

    def run_step(self, step: int) -> None:
        self.steps[step]()

    # ------------------------------------------------------------ pieces

    def _fill_own(self) -> None:
        cols = self.s.x_own_cols
        self.x_local[cols] = self.x[cols]

    def _precompute(self) -> np.ndarray:
        s = self.s
        if self.lib is not None:
            return native_ops.fused_group_gather(
                self.lib, self.g1, s.pre_vals, s.pre_cols, self.x_local
            )
        return s.group1.apply(s.pre_vals * self.x_local[s.pre_cols])

    def _send(self, phase: str, partials: np.ndarray | None) -> None:
        spec = self.s.sends[phase]
        buf = self.buffers[phase]
        if spec.x_slots.size:
            buf[spec.x_slots] = self.x_local[spec.x_cols]
        if spec.p_slots.size:
            buf[spec.p_slots] = partials[spec.p_idx]
        self.stats[self.phase_col[phase]] += spec.words

    def _recv_x(self, phase: str) -> None:
        spec = self.s.recvs_x[phase]
        if spec.slots.size:
            self.x_local[spec.cols] = self.buffers[phase][spec.slots]

    def _main_y(self) -> np.ndarray:
        s = self.s
        if self.lib is not None:
            return native_ops.scatter_products(
                self.lib, s.main_rows_c, s.main_vals, s.main_cols,
                self.x_local, s.nrows_local,
            )
        return np.bincount(
            s.main_rows_c,
            weights=s.main_vals * self.x_local[s.main_cols],
            minlength=s.nrows_local,
        )

    def _fold(self, phase: str, partials: np.ndarray) -> np.ndarray:
        s = self.s
        w = s.fold_gather.assemble(self.buffers[phase], partials)
        if self.lib is not None:
            return native_ops.scatter_sum(self.lib, s.fold_rows_c, w, s.nrows_local)
        return np.bincount(s.fold_rows_c, weights=w, minlength=s.nrows_local)

    # ------------------------------------------------------------- single

    def _single0(self) -> None:
        self._fill_own()
        self.psums = self._precompute()
        self._send("expand-and-fold", self.psums)

    def _single1(self) -> None:
        s = self.s
        self._recv_x("expand-and-fold")
        y_c = self._main_y()
        if s.has_fold:
            y_c = y_c + self._fold("expand-and-fold", self.psums)
        self.y[s.own_rows] = y_c

    # ---------------------------------------------------------------- two

    def _two0(self) -> None:
        self._fill_own()
        self._send("expand", None)

    def _two1(self) -> None:
        self._recv_x("expand")
        self.psums = self._precompute()
        self._send("fold", self.psums)

    def _two2(self) -> None:
        s = self.s
        self.y[s.own_rows] = self._fold("fold", self.psums)

    # ------------------------------------------------------------- routed

    def _routed0(self) -> None:
        self._fill_own()
        self.psums = self._precompute()
        self._send("route-row", self.psums)

    def _routed1(self) -> None:
        s = self.s
        self._recv_x("route-row")
        w = s.comb_gather.assemble(self.buffers["route-row"], self.psums)
        self.csums = (
            native_ops.group_apply(self.lib, self.g2, w)
            if self.lib is not None
            else s.group2.apply(w)
        )
        self._send("route-col", self.csums)

    def _routed2(self) -> None:
        s = self.s
        self._recv_x("route-col")
        y_c = self._main_y()
        if s.has_fold:
            y_c = y_c + self._fold("route-col", self.csums)
        self.y[s.own_rows] = y_c


def _buffer_sizes(plan: CommPlan) -> dict[str, int]:
    """Exact per-phase buffer sizes in words, from the ledger."""
    return {
        ph: int(plan.ledger.sent_volume(ph).sum()) for ph in PHASES[plan.executor]
    }


def apply_shards_serial(
    plan: CommPlan,
    shards: list[PartPlan],
    x: np.ndarray | None = None,
    *,
    stats: np.ndarray | None = None,
    timings: np.ndarray | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Replay the sharded superstep program on one core.

    Runs the exact per-part kernels and buffer traffic of the parallel
    executor, in superstep order, without processes — the reference for
    bit-identity tests, the shard-time self-check, and the source of
    per-part per-step timings for LPT projections on small hosts
    (``timings``: a (K, nsteps) float64 array accumulated in place;
    ``stats``: a (K, nphases) int64 array of words written).  Message
    buffers start NaN-poisoned, so a slot nobody writes poisons ``y``.
    ``backend`` selects the per-part numeric kernels exactly as on
    :meth:`CommPlan.apply`.
    """
    resolved = resolve_backend(backend)
    x = resolve_x(x, plan.ncols)
    y = np.zeros(plan.nrows)
    buffers = {ph: np.full(n, np.nan) for ph, n in _buffer_sizes(plan).items()}
    if stats is None:
        stats = np.zeros((plan.nparts, len(PHASES[plan.executor])), dtype=np.int64)
    runners = [
        _PartRunner(
            sh, ncols=plan.ncols, buffers=buffers, stats_row=stats[sh.part],
            x=x, y=y, backend=resolved,
        )
        for sh in shards
    ]
    for step in range(_N_STEPS[plan.executor]):
        for r in runners:
            if timings is None:
                r.run_step(step)
            else:
                t0 = obs.now()
                r.run_step(step)
                timings[r.s.part, step] += obs.now() - t0
    return y


# ----------------------------------------------------------------------
# The process-pool executor
# ----------------------------------------------------------------------


def _post_error(ctl: np.ndarray, err: np.ndarray, exc: BaseException) -> None:
    msg = f"{type(exc).__name__}: {exc}".encode("utf-8", "replace")[: _ERRMSG_BYTES - 8]
    err[8 : 8 + len(msg)] = np.frombuffer(msg, dtype=np.uint8)
    err[:8].view(np.int64)[0] = len(msg)
    ctl[_ERR] = 1


def _read_error(err: np.ndarray) -> str:
    n = int(err[:8].view(np.int64)[0])
    return bytes(err[8 : 8 + n]).decode("utf-8", "replace")


def _segment_views(plan: CommPlan, segments: dict) -> dict[str, np.ndarray]:
    """Typed numpy views over the executor's shared segments."""
    views = {
        "x": np.frombuffer(segments["x"].buf, dtype=np.float64)[: plan.ncols],
        "y": np.frombuffer(segments["y"].buf, dtype=np.float64)[: plan.nrows],
        "ctl": np.frombuffer(segments["ctl"].buf, dtype=np.int64)[:4],
        "err": np.frombuffer(segments["err"].buf, dtype=np.uint8)[:_ERRMSG_BYTES],
    }
    nph = len(PHASES[plan.executor])
    views["stats"] = np.frombuffer(segments["stats"].buf, dtype=np.int64)[
        : plan.nparts * nph
    ].reshape(plan.nparts, nph)
    # Per-part per-superstep wall-clock: [cumulative seconds, last
    # start, last end] — starts/ends are obs.now() readings, which is
    # CLOCK_MONOTONIC and system-wide, so worker timestamps are
    # directly comparable with the coordinator's trace clock.
    nsteps = _N_STEPS[plan.executor]
    views["tim"] = np.frombuffer(segments["tim"].buf, dtype=np.float64)[
        : plan.nparts * nsteps * 3
    ].reshape(plan.nparts, nsteps, 3)
    for ph, n in _buffer_sizes(plan).items():
        views[f"buf-{ph}"] = np.frombuffer(
            segments[f"buf-{ph}"].buf, dtype=np.float64
        )[:n]
    return views


def _worker_main(wid, jobs, plan, shards, segments, go, done, backend) -> None:
    """A pool worker: one semaphore token in, one superstep out.

    Runs in a forked child; *all* numpy views over the shared segments
    are built here, post-fork, so the parent never exports pointers on
    behalf of the workers.  Synchronization is coordinator-mediated:
    the worker blocks on its private ``go`` semaphore, runs exactly one
    superstep for each token, and acks on the shared ``done`` semaphore.
    Semaphores are the only primitive that survives a SIGKILLed peer —
    ``multiprocessing`` barriers/conditions block *inside notify* (with
    no timeout, holding the condition lock) waiting for dead sleepers
    to ack, so a killed worker would deadlock the whole pool.  Any
    exception is posted to the shared error block before the ``done``
    ack, so the coordinator sees it at the step boundary.  The worker
    leaves via ``os._exit``, skipping interpreter teardown — segment
    unlinking is the coordinator's job alone.
    """
    try:
        views = _segment_views(plan, segments)
        ctl, err = views["ctl"], views["err"]
        buffers = {ph: views[f"buf-{ph}"] for ph in PHASES[plan.executor]}
        runners = [
            _PartRunner(
                sh,
                ncols=plan.ncols,
                buffers=buffers,
                stats_row=views["stats"][sh.part],
                x=views["x"],
                y=views["y"],
                backend=backend,
            )
            for sh in shards[wid::jobs]
        ]
        nsteps = _N_STEPS[plan.executor]
        tim = views["tim"]
        step = 0
        while True:
            go.acquire()
            if ctl[_CMD] == _CMD_STOP:
                break
            try:
                for r in runners:
                    t0 = obs.now()
                    r.run_step(step)
                    t1 = obs.now()
                    row = tim[r.s.part, step]
                    row[0] += t1 - t0
                    row[1] = t0
                    row[2] = t1
            except BaseException as exc:
                _post_error(ctl, err, exc)
                done.release()
                break
            step = (step + 1) % nsteps
            done.release()
    except BaseException:  # pragma: no cover - defensive: die silently
        pass
    finally:
        os._exit(0)


def _reap(procs, segments) -> None:
    """Last-resort teardown (also the ``weakref.finalize`` target):
    stop the workers, unlink every segment."""
    for p in procs:
        if p.is_alive():
            p.terminate()
    for p in procs:
        p.join(timeout=2.0)
        if p.is_alive():  # pragma: no cover - terminate() sufficed so far
            p.kill()
            p.join(timeout=1.0)
    for shm in segments:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views still exported
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ParallelExecutor:
    """Persistent worker pool applying one compiled plan repeatedly.

    Parameters
    ----------
    plan, shards:
        A compiled plan and its :func:`~repro.runtime.compile.shard_plan`
        output.
    jobs:
        Worker count (:func:`repro.jobs.resolve_jobs` convention;
        default one worker per part, capped at K).  With fewer workers
        than parts, parts are dealt round-robin and each worker runs
        its parts back-to-back within every superstep.
    timeout:
        Seconds the coordinator waits for each superstep ack before it
        declares the pool dead.  Keep it above the slowest single
        superstep's compute time.
    backend:
        Kernel backend for the per-part numeric work (``"auto"`` /
        ``"numpy"`` / ``"native"``; default the process-wide policy).
        Resolved — and the native library built and loaded — *before*
        the workers fork, so children inherit the ``ctypes`` handle
        through fork with no per-worker compile or pickling.

    Use as a context manager or call :meth:`close`; a dropped executor
    is reaped by a ``weakref.finalize`` hook.  After any failure the
    executor is closed: segments are unlinked and further applies
    raise :class:`~repro.errors.SimulationError`.
    """

    def __init__(
        self,
        plan: CommPlan,
        shards: list[PartPlan],
        *,
        jobs: int | None = None,
        timeout: float = 60.0,
        backend: str | None = None,
    ):
        if len(shards) != plan.nparts:
            raise SimulationError(
                f"got {len(shards)} shards for a {plan.nparts}-part plan"
            )
        # Resolve (and, for native, build + load the library) pre-fork:
        # forked workers inherit the loaded CDLL, so no child compiles.
        self.backend = resolve_backend(backend)
        ctx = get_context("fork")
        self.plan = plan
        self.nparts = plan.nparts
        self.jobs = min(resolve_jobs(jobs, default=plan.nparts), plan.nparts)
        self.timeout = float(timeout)
        self.niters = 0
        self._closed = False
        self._broken = False
        self.phases = PHASES[plan.executor]

        tag = f"s2d-par-{os.getpid()}-{next(_uid)}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}

        def seg(name: str, nbytes: int) -> shared_memory.SharedMemory:
            shm = shared_memory.SharedMemory(
                create=True, size=max(int(nbytes), 8), name=f"{tag}-{name}"
            )
            self._segments[name] = shm
            return shm

        self._nsteps = _N_STEPS[plan.executor]
        seg("x", plan.ncols * 8)
        seg("y", plan.nrows * 8)
        seg("stats", plan.nparts * len(self.phases) * 8)
        seg("tim", plan.nparts * self._nsteps * 3 * 8)
        seg("ctl", 4 * 8)
        seg("err", _ERRMSG_BYTES)
        for ph, n in _buffer_sizes(plan).items():
            seg(f"buf-{ph}", n * 8)
        views = _segment_views(plan, self._segments)
        self._x, self._y = views["x"], views["y"]
        self._stats, self._ctl, self._err = views["stats"], views["ctl"], views["err"]
        self._tim = views["tim"]
        self._stats[:] = 0
        self._tim[:] = 0.0
        self._ctl[:] = 0
        # Which worker runs which part (the shards[w::jobs] deal).
        self._worker_of_part = {
            sh.part: i % self.jobs for i, sh in enumerate(shards)
        }

        # Coordinator-mediated superstep gates: one private ``go``
        # semaphore per worker (no worker can steal a sibling's step
        # token) and one shared ``done`` ack.  See ``_worker_main`` for
        # why these must be semaphores and not barriers.
        self._go = [ctx.Semaphore(0) for _ in range(self.jobs)]
        self._done = ctx.Semaphore(0)
        self._procs = []
        for w in range(self.jobs):
            p = ctx.Process(
                target=_worker_main,
                args=(
                    w,
                    self.jobs,
                    plan,
                    shards,
                    self._segments,
                    self._go[w],
                    self._done,
                    self.backend,
                ),
                daemon=True,
                name=f"{tag}-w{w}",
            )
            p.start()
            self._procs.append(p)
        self._finalizer = weakref.finalize(
            self, _reap, self._procs, list(self._segments.values())
        )

    # ------------------------------------------------------------- apply

    def apply_y(self, x: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` through the worker pool — bit-identical to the
        single-core ``plan.apply_y``."""
        if self._closed:
            raise SimulationError(
                "parallel executor is closed"
                + (" (a worker failed)" if self._broken else "")
            )
        self._x[:] = resolve_x(x, self.plan.ncols)
        traced = obs.active_trace() is not None
        with obs.span(
            "parallel.apply", mode=self.plan.executor, jobs=self.jobs
        ):
            for step in range(self._nsteps):
                for g in self._go:
                    g.release()
                for _ in range(self.jobs):
                    if not self._done.acquire(timeout=self.timeout):
                        self._fail()
                if self._ctl[_ERR]:
                    self._fail()
                if traced:
                    self._record_step(step)
        self.niters += 1
        return self._y.copy()

    def _record_step(self, step: int) -> None:
        """Merge the just-acked superstep's per-worker windows into the
        ambient trace.

        Safe to read here: every worker acked ``done`` for this step
        (its ``tim`` writes happened before the release) and blocks on
        ``go`` until the next one, so the last start/end columns are
        stable.  Timestamps are ``obs.now()`` seconds in the workers'
        processes — the same system-wide monotonic clock as the
        coordinator's trace, so the slices land at their true offsets.
        """
        for part in sorted(self._worker_of_part):
            t0, t1 = self._tim[part, step, 1], self._tim[part, step, 2]
            obs.record(
                "parallel.superstep",
                t0,
                t1 - t0,
                worker=self._worker_of_part[part],
                part=part,
                step=step,
            )

    def apply(self, x: np.ndarray | None = None) -> SpMVRun:
        """One multiply as a :class:`~repro.simulate.machine.SpMVRun`,
        sharing the plan's frozen ledger/phases (see ``CommPlan.apply``)."""
        plan = self.plan
        return SpMVRun(
            y=self.apply_y(x),
            ledger=plan.ledger,
            phases=plan.phases,
            nnz=plan.nnz,
            kind=plan.kind,
            meta=plan.meta,
        )

    # ----------------------------------------------------- reconciliation

    def measured_words(self) -> np.ndarray:
        """Words each part wrote into each phase buffer, accumulated
        over all applies: int64 of shape (K, nphases) in
        ``self.phases`` column order."""
        if self._closed:
            raise SimulationError("parallel executor is closed")
        return self._stats.copy()

    def step_timings(self) -> np.ndarray:
        """Cumulative compute seconds each part spent in each superstep,
        over all applies: float64 of shape (K, nsteps).  Worker wall
        clock, measured inside the worker around its ``run_step``."""
        if self._closed:
            raise SimulationError("parallel executor is closed")
        return self._tim[:, :, 0].copy()

    def worker_skew(self) -> dict:
        """Load balance of the pool, from the per-part step timings.

        Sums each worker's cumulative superstep seconds (a worker owns
        the parts dealt to it round-robin) and reports the max/min
        across workers plus their ratio — the CLI ``solve --jobs``
        reconciliation line surfaces this skew.  ``ratio`` is ``inf``
        when the fastest worker recorded no measurable work.
        """
        per_worker = np.zeros(self.jobs)
        timings = self.step_timings()
        for part, w in self._worker_of_part.items():
            per_worker[w] += timings[part].sum()
        lo, hi = float(per_worker.min()), float(per_worker.max())
        return {
            "per_worker_s": per_worker.tolist(),
            "min_s": lo,
            "max_s": hi,
            "ratio": (hi / lo) if lo > 0 else float("inf"),
        }

    def reconcile(self) -> dict:
        """Check measured buffer traffic against the machine-model ledger.

        Every part must have written exactly ``niters`` times its
        ledger-predicted word count into every phase buffer; raises
        :class:`~repro.errors.SimulationError` otherwise.  Returns a
        summary dict (per-phase words and bytes per iteration).
        """
        measured = self.measured_words()
        predicted = np.stack(
            [self.plan.ledger.sent_volume(ph) for ph in self.phases], axis=1
        )
        if not np.array_equal(measured, predicted * self.niters):
            raise SimulationError(
                "measured buffer traffic disagrees with the ledger: "
                f"measured {measured.sum(axis=0).tolist()} words over "
                f"{self.niters} iters, predicted "
                f"{predicted.sum(axis=0).tolist()} words/iter"
            )
        per_phase = {ph: int(predicted[:, i].sum()) for i, ph in enumerate(self.phases)}
        return {
            "iters": self.niters,
            "words_per_iter": per_phase,
            "bytes_per_iter": {ph: w * 8 for ph, w in per_phase.items()},
            "total_words_per_iter": int(predicted.sum()),
            "worker_skew": self.worker_skew(),
        }

    # ---------------------------------------------------------- lifecycle

    def _fail(self) -> None:
        msg = (
            _read_error(self._err)
            if self._ctl[_ERR]
            else "a worker died or a superstep timed out"
        )
        self._broken = True
        self.close()
        raise SimulationError(f"parallel executor failed: {msg}")

    def close(self) -> None:
        """Stop the pool and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if not self._broken:
            # Graceful: wake the pool with a stop command.
            self._ctl[_CMD] = _CMD_STOP
            for g in self._go:
                g.release()
            for p in self._procs:
                p.join(timeout=2.0)
        # Views must drop their buffer exports before the segments close.
        self._x = self._y = self._stats = self._tim = None
        self._ctl = self._err = None
        self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "live"
        return (
            f"ParallelExecutor(K={self.nparts}, jobs={self.jobs}, "
            f"mode={self.plan.executor!r}, {state})"
        )


def build_parallel_executor(
    p,
    plan: CommPlan | None = None,
    *,
    jobs: int | None = None,
    timeout: float = 60.0,
    backend: str | None = None,
) -> ParallelExecutor:
    """Compile, shard and spin up a pool for partition ``p`` in one call.

    ``plan`` may be passed to reuse an already-compiled plan (the
    engine's memoized path); otherwise one is compiled here.
    """
    from repro.runtime.compile import compile_plan, shard_plan

    if plan is None:
        plan = compile_plan(p)
    shards = shard_plan(p, plan)
    return ParallelExecutor(plan, shards, jobs=jobs, timeout=timeout, backend=backend)
