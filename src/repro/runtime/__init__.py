"""Compiled SpMV runtime: reusable communication plans.

The paper's whole point is iterative methods — the same partitioned
SpMV runs hundreds of times — yet the per-call executors in
:mod:`repro.simulate` re-derive the full message structure (masks,
searchsorted joins, dedup, packet layouts, audits, the serial
verification) on every multiply.  This package compiles that structure
once:

- :func:`compile_plan` walks a partition through the matching per-call
  executor a single time and freezes everything iteration-invariant
  into a :class:`CommPlan` — gather/scatter index arrays for the
  numeric kernel, the per-iteration message :class:`~repro.simulate.messages.Ledger`,
  and the superstep schedule with its static per-processor flops;
- :meth:`CommPlan.apply` then performs each subsequent multiply as
  pure array gathers/scatters with zero per-call set-up, returning an
  :class:`~repro.simulate.machine.SpMVRun` whose ``y`` and ledger are
  bit-identical to the per-call executor's;
- :meth:`CommPlan.apply_many` batches several right-hand sides through
  the one compiled schedule (column-stacked, same bit-identical
  numerics per column).

The iterative solvers (:mod:`repro.solvers`), the engine's memoized
``compiled_plan`` intermediate and the CLI ``solve`` subcommand all
run on this layer; compiled plans can be persisted with
:func:`repro.partition.serialize.save_plan`.

For shared-memory execution, :func:`shard_plan` splits a compiled plan
into per-part :class:`PartPlan`s and :class:`ParallelExecutor` runs
them on a persistent process pool (:mod:`repro.runtime.parallel`).
"""

from repro.runtime.compile import compile_plan, shard_plan
from repro.runtime.parallel import (
    ParallelExecutor,
    apply_shards_serial,
    build_parallel_executor,
)
from repro.runtime.plan import CommPlan, PartPlan

__all__ = [
    "CommPlan",
    "ParallelExecutor",
    "PartPlan",
    "apply_shards_serial",
    "build_parallel_executor",
    "compile_plan",
    "shard_plan",
]
