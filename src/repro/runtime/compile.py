"""Compile a partition's SpMV into a :class:`~repro.runtime.plan.CommPlan`.

Compilation runs the matching per-call executor once — inheriting all
of its structural validation (s2D admissibility, nonzero
classification, locality and fold-ownership audits) and the serial
``A @ x`` verification — and keeps its ledger and superstep schedule
as the plan's static per-iteration record.  The numeric-kernel index
arrays are then derived with the executors' own expressions, and the
compiled apply is checked bit-for-bit against the reference run before
the plan is returned, so a plan that disagrees with its executor can
never leave this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.kernels import pair_counts, unique_ints
from repro.partition.types import SpMVPartition
from repro.runtime.plan import CommPlan, PartPlan, _Gather, _GroupPlan, _RecvX, _SendSpec
from repro.simulate.bounded import run_s2d_bounded
from repro.simulate.common import classify_nonzeros, delivery_keys, mesh_intermediate
from repro.simulate.machine import SpMVRun
from repro.simulate.report import EXECUTORS
from repro.simulate.singlephase import run_single_phase
from repro.simulate.twophase import run_two_phase

__all__ = ["compile_plan", "shard_plan"]

_RUNNERS = {
    "single": run_single_phase,
    "two": run_two_phase,
    "routed": run_s2d_bounded,
}


def _derive(mode: str, p: SpMVPartition, ref: SpMVRun) -> dict:
    """The mode-specific gather/scatter arrays, mirroring the executor."""
    m = p.matrix
    nrows = m.shape[0]
    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    owner = p.nnz_part

    if mode == "two":
        pk = owner.astype(np.int64) * nrows + rows
        group1, pkeys = _GroupPlan.build(pk)
        return {
            "pre_cols": cols,
            "pre_vals": vals,
            "group1": group1,
            "fold_rows": pkeys % nrows,
        }

    _, _, _, pre_mask, main_mask = classify_nonzeros(p)
    pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    group1, pkeys = _GroupPlan.build(pk)
    out = {
        "pre_cols": cols[pre_mask],
        "pre_vals": vals[pre_mask],
        "group1": group1,
        "main_rows": rows[main_mask],
        "main_cols": cols[main_mask],
        "main_vals": vals[main_mask],
    }
    if mode == "single":
        out["fold_rows"] = pkeys % nrows
        return out

    # Routed: partials combine at mesh intermediates before the fold.
    pr, pc = ref.meta["mesh"]
    y_src = pkeys // nrows
    y_i = pkeys % nrows
    y_dst = p.vectors.y_part[y_i]
    y_t = mesh_intermediate(y_src, y_dst, pc)
    ckey = y_t * nrows + y_i
    group2, ckeys = _GroupPlan.build(ckey)
    out["group2"] = group2
    out["fold_rows"] = ckeys % nrows
    return out


def compile_plan(p: SpMVPartition, executor: str | None = None) -> CommPlan:
    """Compile partition ``p`` into a reusable :class:`CommPlan`.

    ``executor`` picks the execution model (``"single"``, ``"two"`` or
    ``"routed"``); omitted, it resolves from ``p.kind`` exactly like
    :func:`repro.simulate.report.run_partition`.  Compilation costs
    about one per-call executor run and is amortized after a few
    applies (see ``benchmarks/bench_runtime.py``).
    """
    mode = executor
    if mode is None:
        mode = EXECUTORS.get(p.kind)
    if mode is None:
        mode = "single" if p.is_s2d_admissible() else "two"
    runner = _RUNNERS.get(mode)
    if runner is None:
        raise ConfigError(
            f"unknown executor {mode!r}; expected one of {sorted(_RUNNERS)}"
        )
    ref = runner(p)
    m, n = p.matrix.shape
    plan = CommPlan(
        executor=mode,
        kind=ref.kind,
        nparts=p.nparts,
        nrows=m,
        ncols=n,
        nnz=ref.nnz,
        ledger=ref.ledger,
        phases=ref.phases,
        meta=dict(ref.meta),
        **_derive(mode, p, ref),
    )
    if not np.array_equal(plan.apply_y(), ref.y):
        raise SimulationError(
            "compiled plan disagrees with the per-call executor"
        )  # pragma: no cover — compile-time self-check
    return plan


# ----------------------------------------------------------------------
# Plan sharding: split a CommPlan into per-part PartPlans
# ----------------------------------------------------------------------
#
# Bit-identity with the single-core apply rests on three invariants:
#
# 1. grouped partial sums shard cleanly by producing part — group keys
#    are part-major (``owner*nrows + row``), so each part's key block is
#    a contiguous slice of the global sums, and restricting a bincount /
#    ``np.add.at`` accumulation to a subsequence that contains *all*
#    elements of its keys reproduces those sums bit for bit;
# 2. every output row is owned by exactly one part, so the row-owner
#    products shard by part the same way;
# 3. cross-part combines (mesh intermediates, the fold) accumulate per
#    row in ascending producing-part order — exactly the element order
#    of the global key-sorted bincount — which the receiver reproduces
#    by assembling source chunks in part order (see ``_Gather``).


class _Items:
    """The word stream of one communication phase: category 0 carries x
    entries (payload: column index), category 1 carries partial sums
    (payload: global partial index).  Slot assignment packs the stream
    pair-contiguously in ledger pair order, x block before partial block
    within a pair, key-ascending within a block."""

    def __init__(self):
        self._chunks: list[tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray]] = []

    def add(self, src, dst, cat: int, key, payload) -> None:
        self._chunks.append((src, dst, cat, key, payload))

    def finalize(self, k: int, phase: str, plan: CommPlan) -> None:
        empty = np.empty(0, dtype=np.int64)
        if self._chunks:
            self.src = np.concatenate([np.asarray(c[0], dtype=np.int64) for c in self._chunks])
            self.dst = np.concatenate([np.asarray(c[1], dtype=np.int64) for c in self._chunks])
            self.cat = np.concatenate(
                [np.full(len(c[0]), c[2], dtype=np.int64) for c in self._chunks]
            )
            self.key = np.concatenate([np.asarray(c[3], dtype=np.int64) for c in self._chunks])
            self.payload = np.concatenate(
                [np.asarray(c[4], dtype=np.int64) for c in self._chunks]
            )
        else:
            self.src = self.dst = self.cat = self.key = self.payload = empty
        order = np.lexsort((self.key, self.cat, self.dst, self.src))
        self.slots = np.empty(order.size, dtype=np.int64)
        self.slots[order] = np.arange(order.size)
        # The stream must reproduce the plan's ledger exactly — per
        # pair, per phase.  This is the shard-time half of the
        # measured-vs-predicted reconciliation.
        lsrc, ldst, lwords = plan.ledger.phase_pairs(phase)
        if self.src.size:
            msrc, mdst, mwords = pair_counts(self.src, self.dst, k)
        else:
            msrc, mdst, mwords = empty, empty, empty
        if not (
            np.array_equal(msrc, lsrc)
            and np.array_equal(mdst, ldst)
            and np.array_equal(mwords, lwords)
        ):
            raise SimulationError(
                f"sharded word stream of phase {phase!r} disagrees with the "
                "plan ledger"
            )  # pragma: no cover — shard-time self-check

    def send_spec(self, q: int, partial_start: np.ndarray) -> _SendSpec:
        """Part ``q``'s writes; partial indices are localized against
        ``partial_start`` (the per-part offsets of the partial array)."""
        xs = (self.cat == 0) & (self.src == q)
        ps = (self.cat == 1) & (self.src == q)
        return _SendSpec(
            x_slots=self.slots[xs],
            x_cols=self.payload[xs],
            p_slots=self.slots[ps],
            p_idx=self.payload[ps] - partial_start[q],
        )

    def recv_x(self, q: int) -> _RecvX:
        xr = (self.cat == 0) & (self.dst == q)
        return _RecvX(slots=self.slots[xr], cols=self.payload[xr])

    def slot_of_partial(self, n_partials: int) -> np.ndarray:
        """Map global partial index → buffer slot (−1 if it stays local)."""
        out = np.full(n_partials, -1, dtype=np.int64)
        ps = self.cat == 1
        out[self.payload[ps]] = self.slots[ps]
        return out


def _gather_spec(
    elem_idx: np.ndarray,
    producer: np.ndarray,
    q: int,
    start: np.ndarray,
    slot_of: np.ndarray,
) -> _Gather:
    """Combine/fold input for part ``q``: global element indices (in
    global key order) split into locally-held vs buffer-delivered."""
    loc = producer[elem_idx] == q
    loc_pos = np.flatnonzero(loc)
    buf_pos = np.flatnonzero(~loc)
    buf_slots = slot_of[elem_idx[buf_pos]]
    if buf_slots.size and buf_slots.min() < 0:
        raise SimulationError(
            "a remote partial was never assigned a buffer slot"
        )  # pragma: no cover — shard-time self-check
    return _Gather(
        size=int(elem_idx.size),
        buf_pos=buf_pos,
        buf_slots=buf_slots,
        loc_pos=loc_pos,
        loc_idx=elem_idx[loc_pos] - start[q],
    )


def _compact(own_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
    return np.searchsorted(own_rows, rows)


def _part_starts(owner_sorted: np.ndarray, k: int) -> np.ndarray:
    return np.searchsorted(owner_sorted, np.arange(k, dtype=np.int64))


def shard_plan(p: SpMVPartition, plan: CommPlan) -> list[PartPlan]:
    """Split ``plan`` into one :class:`~repro.runtime.plan.PartPlan` per
    part, re-deriving the routing tables from partition ``p`` with the
    executors' own expressions.

    The shards carry everything iteration-invariant: per-part
    gather/scatter index slices, frozen per-part group plans, buffer
    slot assignments for every send/receive, and the fold interleave
    specs.  A serial replay of the shards is checked bit-for-bit
    against ``plan.apply_y`` before they are returned, mirroring
    :func:`compile_plan`'s own self-check.
    """
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    if (plan.nrows, plan.ncols, plan.nparts, plan.nnz) != (nrows, ncols, k, m.nnz):
        raise SimulationError(
            f"plan compiled for shape ({plan.nrows}, {plan.ncols}), "
            f"K={plan.nparts}, nnz {plan.nnz} does not match the partition's "
            f"({nrows}, {ncols}), K={k}, nnz {m.nnz}"
        )
    mode = plan.executor
    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    x_part = p.vectors.x_part
    y_part = p.vectors.y_part
    own_rows = [np.flatnonzero(y_part == q) for q in range(k)]
    empty = np.empty(0, dtype=np.int64)

    if mode == "two":
        owner = np.asarray(p.nnz_part, dtype=np.int64)
        pk = owner * nrows + rows
        pkeys = unique_ints(pk)
        ps_owner = pkeys // nrows
        ps_row = pkeys % nrows
        ps_dst = y_part[ps_row]
        ps_start = _part_starts(ps_owner, k)

        need = x_part[cols] != owner
        recv_keys = delivery_keys(owner[need], cols[need], ncols)
        x_dst = recv_keys // ncols
        x_j = recv_keys % ncols
        x_src = x_part[x_j]

        expand = _Items()
        expand.add(x_src, x_dst, 0, recv_keys, x_j)
        expand.finalize(k, "expand", plan)
        away = np.flatnonzero(ps_owner != ps_dst)
        fold_items = _Items()
        fold_items.add(ps_owner[away], ps_dst[away], 1, pkeys[away], away)
        fold_items.finalize(k, "fold", plan)
        slot_of_ps = fold_items.slot_of_partial(pkeys.size)

        shards = []
        for q in range(k):
            sel = owner == q
            fold_idx = np.flatnonzero(ps_dst == q)
            local_cols = cols[sel]
            x_own = unique_ints(
                np.concatenate(
                    (local_cols[x_part[local_cols] == q], x_j[x_src == q])
                )
            )
            shards.append(
                PartPlan(
                    part=q,
                    mode=mode,
                    own_rows=own_rows[q],
                    x_own_cols=x_own,
                    pre_cols=local_cols,
                    pre_vals=vals[sel],
                    group1=_GroupPlan.build(pk[sel])[0],
                    has_fold=True,
                    fold_rows_c=_compact(own_rows[q], ps_row[fold_idx]),
                    fold_gather=_gather_spec(
                        fold_idx, ps_owner, q, ps_start, slot_of_ps
                    ),
                    sends={
                        "expand": expand.send_spec(q, ps_start),
                        "fold": fold_items.send_spec(q, ps_start),
                    },
                    recvs_x={"expand": expand.recv_x(q)},
                )
            )
        return _check_shards(p, plan, shards)

    # single / routed: the single-phase nonzero classification.
    rp, cp, owner, pre_mask, main_mask = classify_nonzeros(p)
    pre_owner = owner[pre_mask]
    pre_cols_all = cols[pre_mask]
    pre_vals_all = vals[pre_mask]
    pk = pre_owner.astype(np.int64) * nrows + rows[pre_mask]
    pkeys = unique_ints(pk)
    ps_owner = pkeys // nrows
    ps_row = pkeys % nrows
    ps_dst = y_part[ps_row]
    ps_start = _part_starts(ps_owner, k)

    need_mask = main_mask & (cp != rp)
    recv_keys = delivery_keys(rp[need_mask], cols[need_mask], ncols)
    x_dst = recv_keys // ncols
    x_j = recv_keys % ncols
    x_src = x_part[x_j]

    main_owner = owner[main_mask]
    main_rows_all = rows[main_mask]
    main_cols_all = cols[main_mask]
    main_vals_all = vals[main_mask]

    def _main_shard(q: int):
        sel = main_owner == q
        return main_rows_all[sel], main_cols_all[sel], main_vals_all[sel]

    if mode == "single":
        phase = "expand-and-fold"
        items = _Items()
        items.add(x_src, x_dst, 0, recv_keys, x_j)
        items.add(ps_owner, ps_dst, 1, pkeys, np.arange(pkeys.size, dtype=np.int64))
        items.finalize(k, phase, plan)
        slot_of_ps = items.slot_of_partial(pkeys.size)

        shards = []
        for q in range(k):
            sel = pre_owner == q
            mr, mc, mv = _main_shard(q)
            fold_idx = np.flatnonzero(ps_dst == q)
            x_own = unique_ints(
                np.concatenate((pre_cols_all[sel], mc[x_part[mc] == q], x_j[x_src == q]))
            )
            shards.append(
                PartPlan(
                    part=q,
                    mode=mode,
                    own_rows=own_rows[q],
                    x_own_cols=x_own,
                    pre_cols=pre_cols_all[sel],
                    pre_vals=pre_vals_all[sel],
                    group1=_GroupPlan.build(pk[sel])[0],
                    has_fold=bool(pkeys.size),
                    fold_rows_c=_compact(own_rows[q], ps_row[fold_idx]),
                    fold_gather=_gather_spec(
                        fold_idx, ps_owner, q, ps_start, slot_of_ps
                    ),
                    sends={phase: items.send_spec(q, ps_start)},
                    recvs_x={phase: items.recv_x(q)},
                    main_rows_c=_compact(own_rows[q], mr),
                    main_cols=mc,
                    main_vals=mv,
                )
            )
        return _check_shards(p, plan, shards)

    if mode != "routed":  # pragma: no cover — compile_plan vets the mode
        raise ConfigError(f"unknown executor {mode!r}")

    pr, pc = plan.meta["mesh"]
    y_t = mesh_intermediate(ps_owner, ps_dst, pc)
    x_t = mesh_intermediate(x_src, x_dst, pc)

    # Hop 1: unique (t, j) x copies plus partials toward intermediates.
    x1 = unique_ints(x_t * np.int64(ncols) + x_j)
    x1_t = x1 // ncols
    x1_j = x1 % ncols
    x1_src = x_part[x1_j]
    hop1_x = np.flatnonzero(x1_src != x1_t)
    hop1_y = np.flatnonzero(y_t != ps_owner)
    row_items = _Items()
    row_items.add(x1_src[hop1_x], x1_t[hop1_x], 0, x1[hop1_x], x1_j[hop1_x])
    row_items.add(ps_owner[hop1_y], y_t[hop1_y], 1, pkeys[hop1_y], hop1_y)
    row_items.finalize(k, "route-row", plan)
    slot_of_ps = row_items.slot_of_partial(pkeys.size)

    # Combine at intermediates: the global group2 input is the psum
    # stream in key order; its output keys (t, i) are t-major.
    ckey = y_t * nrows + ps_row
    ckeys = unique_ints(ckey)
    c_t = ckeys // nrows
    c_i = ckeys % nrows
    c_dst = np.empty(ckeys.size, dtype=np.int64)
    c_dst[np.searchsorted(ckeys, ckey)] = ps_dst
    c_start = _part_starts(c_t, k)

    # Hop 2: x words onward to their final destination plus combined
    # partials toward the row owners.
    hop2_x = np.flatnonzero(x_t != x_dst)
    hop2_y = np.flatnonzero(c_t != c_dst)
    col_items = _Items()
    col_items.add(x_t[hop2_x], x_dst[hop2_x], 0, recv_keys[hop2_x], x_j[hop2_x])
    col_items.add(c_t[hop2_y], c_dst[hop2_y], 1, ckeys[hop2_y], hop2_y)
    col_items.finalize(k, "route-col", plan)
    slot_of_cs = col_items.slot_of_partial(ckeys.size)

    shards = []
    for q in range(k):
        sel = pre_owner == q
        mr, mc, mv = _main_shard(q)
        comb_idx = np.flatnonzero(y_t == q)
        fold_idx = np.flatnonzero(c_dst == q)
        sent_x = np.concatenate(
            (x1_j[hop1_x][x1_src[hop1_x] == q],
             x_j[hop2_x][(x_t[hop2_x] == q) & (x_src[hop2_x] == q)])
        )
        x_own = unique_ints(
            np.concatenate((pre_cols_all[sel], mc[x_part[mc] == q], sent_x))
        )
        shards.append(
            PartPlan(
                part=q,
                mode=mode,
                own_rows=own_rows[q],
                x_own_cols=x_own,
                pre_cols=pre_cols_all[sel],
                pre_vals=pre_vals_all[sel],
                group1=_GroupPlan.build(pk[sel])[0],
                has_fold=bool(ckeys.size),
                fold_rows_c=_compact(own_rows[q], c_i[fold_idx]),
                fold_gather=_gather_spec(fold_idx, c_t, q, c_start, slot_of_cs),
                sends={
                    "route-row": row_items.send_spec(q, ps_start),
                    "route-col": col_items.send_spec(q, c_start),
                },
                recvs_x={
                    "route-row": row_items.recv_x(q),
                    "route-col": col_items.recv_x(q),
                },
                main_rows_c=_compact(own_rows[q], mr),
                main_cols=mc,
                main_vals=mv,
                group2=_GroupPlan.build(ckey[comb_idx])[0],
                comb_gather=_gather_spec(comb_idx, ps_owner, q, ps_start, slot_of_ps),
            )
        )
    return _check_shards(p, plan, shards)


def _check_shards(
    p: SpMVPartition, plan: CommPlan, shards: list[PartPlan]
) -> list[PartPlan]:
    """Shard-time self-check: a serial replay of the shards must equal
    the single-core apply bit for bit, and the words each part writes
    must match the ledger's per-part sent volumes per phase."""
    from repro.runtime.parallel import PHASES, apply_shards_serial

    stats = np.zeros((plan.nparts, len(PHASES[plan.executor])), dtype=np.int64)
    y = apply_shards_serial(plan, shards, stats=stats)
    if not np.array_equal(y, plan.apply_y()):
        raise SimulationError(
            "sharded apply disagrees with the single-core plan"
        )  # pragma: no cover — shard-time self-check
    for i, phase in enumerate(PHASES[plan.executor]):
        if not np.array_equal(stats[:, i], plan.ledger.sent_volume(phase)):
            raise SimulationError(
                f"sharded word counts of phase {phase!r} disagree with the "
                "ledger"
            )  # pragma: no cover — shard-time self-check
    return shards
