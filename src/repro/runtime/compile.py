"""Compile a partition's SpMV into a :class:`~repro.runtime.plan.CommPlan`.

Compilation runs the matching per-call executor once — inheriting all
of its structural validation (s2D admissibility, nonzero
classification, locality and fold-ownership audits) and the serial
``A @ x`` verification — and keeps its ledger and superstep schedule
as the plan's static per-iteration record.  The numeric-kernel index
arrays are then derived with the executors' own expressions, and the
compiled apply is checked bit-for-bit against the reference run before
the plan is returned, so a plan that disagrees with its executor can
never leave this module.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.partition.types import SpMVPartition
from repro.runtime.plan import CommPlan, _GroupPlan
from repro.simulate.bounded import run_s2d_bounded
from repro.simulate.common import classify_nonzeros, mesh_intermediate
from repro.simulate.machine import SpMVRun
from repro.simulate.report import EXECUTORS
from repro.simulate.singlephase import run_single_phase
from repro.simulate.twophase import run_two_phase

__all__ = ["compile_plan"]

_RUNNERS = {
    "single": run_single_phase,
    "two": run_two_phase,
    "routed": run_s2d_bounded,
}


def _derive(mode: str, p: SpMVPartition, ref: SpMVRun) -> dict:
    """The mode-specific gather/scatter arrays, mirroring the executor."""
    m = p.matrix
    nrows = m.shape[0]
    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    owner = p.nnz_part

    if mode == "two":
        pk = owner.astype(np.int64) * nrows + rows
        group1, pkeys = _GroupPlan.build(pk)
        return {
            "pre_cols": cols,
            "pre_vals": vals,
            "group1": group1,
            "fold_rows": pkeys % nrows,
        }

    _, _, _, pre_mask, main_mask = classify_nonzeros(p)
    pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    group1, pkeys = _GroupPlan.build(pk)
    out = {
        "pre_cols": cols[pre_mask],
        "pre_vals": vals[pre_mask],
        "group1": group1,
        "main_rows": rows[main_mask],
        "main_cols": cols[main_mask],
        "main_vals": vals[main_mask],
    }
    if mode == "single":
        out["fold_rows"] = pkeys % nrows
        return out

    # Routed: partials combine at mesh intermediates before the fold.
    pr, pc = ref.meta["mesh"]
    y_src = pkeys // nrows
    y_i = pkeys % nrows
    y_dst = p.vectors.y_part[y_i]
    y_t = mesh_intermediate(y_src, y_dst, pc)
    ckey = y_t * nrows + y_i
    group2, ckeys = _GroupPlan.build(ckey)
    out["group2"] = group2
    out["fold_rows"] = ckeys % nrows
    return out


def compile_plan(p: SpMVPartition, executor: str | None = None) -> CommPlan:
    """Compile partition ``p`` into a reusable :class:`CommPlan`.

    ``executor`` picks the execution model (``"single"``, ``"two"`` or
    ``"routed"``); omitted, it resolves from ``p.kind`` exactly like
    :func:`repro.simulate.report.run_partition`.  Compilation costs
    about one per-call executor run and is amortized after a few
    applies (see ``benchmarks/bench_runtime.py``).
    """
    mode = executor
    if mode is None:
        mode = EXECUTORS.get(p.kind)
    if mode is None:
        mode = "single" if p.is_s2d_admissible() else "two"
    runner = _RUNNERS.get(mode)
    if runner is None:
        raise ConfigError(
            f"unknown executor {mode!r}; expected one of {sorted(_RUNNERS)}"
        )
    ref = runner(p)
    m, n = p.matrix.shape
    plan = CommPlan(
        executor=mode,
        kind=ref.kind,
        nparts=p.nparts,
        nrows=m,
        ncols=n,
        nnz=ref.nnz,
        ledger=ref.ledger,
        phases=ref.phases,
        meta=dict(ref.meta),
        **_derive(mode, p, ref),
    )
    if not np.array_equal(plan.apply_y(), ref.y):
        raise SimulationError(
            "compiled plan disagrees with the per-call executor"
        )  # pragma: no cover — compile-time self-check
    return plan
