"""Iterative solvers running on partitioned, simulated SpMV.

The paper's motivation is iterative methods: SpMV repeats until
convergence, so the per-iteration communication profile compounds into
the solve's wall-clock.  This module provides the classic kernels on
top of the compiled SpMV runtime — the partition is compiled once into
a :class:`repro.runtime.CommPlan` (through the executor matching its
kind: single-phase, two-phase, or the routed executor for ``s2D-b``)
and every multiply is a pure :meth:`~repro.runtime.CommPlan.apply_y`,
so each solve returns both the numerical answer *and* the accumulated
communication bill without re-deriving the message structure per
iteration.

Supported: power iteration (dominant eigenpair), Jacobi and conjugate
gradients for ``A z = b``.  Vector operations (axpy, dot) are assumed
perfectly parallel and are costed as ``γ·(2n/K)`` per global reduction
plus one ``α·log2 K`` allreduce term — the standard BSP accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import ConfigError, SimulationError
from repro.partition.types import SpMVPartition
from repro.runtime import CommPlan, compile_plan
from repro.simulate.machine import MachineModel

__all__ = ["SolveResult", "power_iteration", "jacobi", "conjugate_gradient"]


@dataclass
class SolveResult:
    """Outcome of a distributed iterative solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual: float
    comm_words: int
    comm_msgs: int
    sim_time: float
    history: list[float] = field(default_factory=list)


class _SpMVEngine:
    """Runs y ← A·x through a compiled plan, accumulating costs.

    The communication profile of a plan is static, so the per-iteration
    words/messages/time are computed once at set-up and each multiply
    is a pure compiled apply.

    ``executor`` selects the multiply backend: ``"compiled"`` is the
    single-core :meth:`~repro.runtime.CommPlan.apply_y`; ``"parallel"``
    runs the sharded plan on a shared-memory worker pool
    (:class:`~repro.runtime.ParallelExecutor`, bit-identical output).
    A caller-owned pool can be passed via ``parallel`` (the engine's
    memoized path); otherwise a pool is built here and :meth:`close`
    shuts it down.  ``backend`` picks the numeric kernels
    (``"auto"``/``"numpy"``/``"native"``; see :mod:`repro.native`),
    resolved once at set-up so the per-iteration apply carries no
    dispatch cost.
    """

    def __init__(
        self,
        p: SpMVPartition,
        machine: MachineModel,
        plan: CommPlan | None = None,
        *,
        executor: str = "compiled",
        jobs: int | None = None,
        parallel=None,
        backend: str | None = None,
    ):
        m, n = p.matrix.shape
        if m != n:
            raise SimulationError("iterative solvers need a square matrix")
        self.p = p
        self.machine = machine
        self.plan = compile_plan(p) if plan is None else plan
        # A plan compiled from a *different* matrix would silently solve
        # the wrong system (the compiled path skips the per-call serial
        # verification), so reject every cheap-to-spot mismatch.
        if (
            (self.plan.nrows, self.plan.ncols) != (m, n)
            or self.plan.nnz != p.matrix.nnz
            or self.plan.nparts != p.nparts
        ):
            raise SimulationError(
                f"plan compiled for shape ({self.plan.nrows}, {self.plan.ncols}), "
                f"nnz {self.plan.nnz}, K={self.plan.nparts} does not match the "
                f"partition's ({m}, {n}), nnz {p.matrix.nnz}, K={p.nparts}"
            )
        if executor not in ("compiled", "parallel"):
            raise ConfigError(
                f"unknown solver executor {executor!r}; "
                "expected 'compiled' or 'parallel'"
            )
        from repro.native import resolve_backend

        resolved = resolve_backend(backend)
        self._pool = None
        self._owns_pool = False
        if parallel is not None:
            if parallel.plan is not self.plan and (
                parallel.plan.nrows,
                parallel.plan.ncols,
                parallel.plan.nnz,
                parallel.plan.nparts,
            ) != (self.plan.nrows, self.plan.ncols, self.plan.nnz, self.plan.nparts):
                raise SimulationError(
                    "the supplied parallel executor was built for a different plan"
                )
            self._pool = parallel
        elif executor == "parallel":
            from repro.runtime import build_parallel_executor

            self._pool = build_parallel_executor(p, self.plan, jobs=jobs, backend=resolved)
            self._owns_pool = True
        if self._pool is None:
            plan_, backend_ = self.plan, resolved
            self._apply = lambda x: plan_.apply_y(x, backend=backend_)
        else:
            self._apply = self._pool.apply_y
        self.backend = resolved if self._pool is None else self._pool.backend
        self.words = 0
        self.msgs = 0
        self.time = 0.0
        self.n = n
        self._iter_words = self.plan.words
        self._iter_msgs = self.plan.msgs
        self._iter_time = self.plan.time(machine)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        with obs.span("solver.matvec"):
            y = self._apply(x)
        self.words += self._iter_words
        self.msgs += self._iter_msgs
        self.time += self._iter_time
        obs.add("solver.comm_words", self._iter_words)
        obs.add("solver.comm_msgs", self._iter_msgs)
        return y

    def close(self) -> None:
        """Release a pool this engine built (caller-owned pools stay up)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def reduction_cost(self) -> None:
        """One global dot/norm: local work + an allreduce."""
        k = self.p.nparts
        self.time += self.machine.gamma * (2.0 * self.n / k)
        self.time += self.machine.alpha * float(np.ceil(np.log2(max(k, 2))))


def power_iteration(
    p: SpMVPartition,
    iters: int = 50,
    tol: float = 1e-8,
    machine: MachineModel | None = None,
    x0: np.ndarray | None = None,
    plan: CommPlan | None = None,
    executor: str = "compiled",
    jobs: int | None = None,
    parallel=None,
    backend: str | None = None,
) -> SolveResult:
    """Dominant eigenvalue estimate by repeated distributed SpMV.

    ``result.x`` holds the eigenvector estimate; ``result.residual`` is
    the last absolute eigenvalue change (after a single iteration, the
    distance from the zero initial estimate — always finite).  Pass a
    precompiled ``plan`` to skip compilation (e.g. the engine's
    memoized ``compiled_plan``).  ``executor="parallel"`` multiplies on
    a shared-memory worker pool (``jobs`` workers, bit-identical to the
    compiled path); pass ``parallel`` to reuse a persistent
    :class:`~repro.runtime.ParallelExecutor` across solves.
    ``backend`` selects the numeric kernels (see :mod:`repro.native`).
    """
    if iters < 1:
        raise ConfigError(f"power_iteration needs iters >= 1, got {iters}")
    eng = _SpMVEngine(
        p, machine or MachineModel(), plan,
        executor=executor, jobs=jobs, parallel=parallel, backend=backend,
    )
    n = eng.n
    x = (np.ones(n) if x0 is None else np.asarray(x0, dtype=np.float64)).copy()
    x /= np.linalg.norm(x)
    lam_old = 0.0
    history: list[float] = []
    converged = False
    it = 0
    try:
        with obs.span(
            "solver.power_iteration", k=p.nparts, executor=executor
        ) as sp:
            for it in range(1, iters + 1):
                y = eng.matvec(x)
                lam = float(x @ y)
                eng.reduction_cost()
                nrm = np.linalg.norm(y)
                eng.reduction_cost()
                if nrm == 0:
                    raise SimulationError("power iteration hit the zero vector")
                x = y / nrm
                history.append(lam)
                if it > 1 and abs(lam - lam_old) <= tol * max(abs(lam), 1.0):
                    converged = True
                    break
                lam_old = lam
            if sp is not None:
                sp.attrs["iterations"] = it
    finally:
        eng.close()
    return SolveResult(
        x=x,
        iterations=it,
        converged=converged,
        residual=abs(history[-1] - history[-2])
        if len(history) > 1
        else abs(history[-1]),
        comm_words=eng.words,
        comm_msgs=eng.msgs,
        sim_time=eng.time,
        history=history,
    )


def jacobi(
    p: SpMVPartition,
    b: np.ndarray,
    iters: int = 200,
    tol: float = 1e-10,
    machine: MachineModel | None = None,
    plan: CommPlan | None = None,
    executor: str = "compiled",
    jobs: int | None = None,
    parallel=None,
    backend: str | None = None,
) -> SolveResult:
    """Jacobi iteration ``z ← D⁻¹(b − (A−D) z)`` for diagonally dominant A."""
    if iters < 1:
        raise ConfigError(f"jacobi needs iters >= 1, got {iters}")
    eng = _SpMVEngine(
        p, machine or MachineModel(), plan,
        executor=executor, jobs=jobs, parallel=parallel, backend=backend,
    )
    a = p.matrix
    d = np.asarray(a.diagonal(), dtype=np.float64)
    if np.any(d == 0):
        raise SimulationError("Jacobi needs a zero-free diagonal")
    b = np.asarray(b, dtype=np.float64)
    z = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []
    converged = False
    it = 0
    try:
        with obs.span("solver.jacobi", k=p.nparts, executor=executor) as sp:
            for it in range(1, iters + 1):
                az = eng.matvec(z)
                r = b - az
                res = float(np.linalg.norm(r)) / bnorm
                eng.reduction_cost()
                history.append(res)
                if res <= tol:
                    converged = True
                    break
                z = z + r / d
            if sp is not None:
                sp.attrs["iterations"] = it
    finally:
        eng.close()
    return SolveResult(
        x=z,
        iterations=it,
        converged=converged,
        residual=history[-1],
        comm_words=eng.words,
        comm_msgs=eng.msgs,
        sim_time=eng.time,
        history=history,
    )


def conjugate_gradient(
    p: SpMVPartition,
    b: np.ndarray,
    iters: int = 200,
    tol: float = 1e-10,
    machine: MachineModel | None = None,
    plan: CommPlan | None = None,
    executor: str = "compiled",
    jobs: int | None = None,
    parallel=None,
    backend: str | None = None,
) -> SolveResult:
    """CG for symmetric positive definite ``A`` (values must be SPD)."""
    if iters < 1:
        raise ConfigError(f"conjugate_gradient needs iters >= 1, got {iters}")
    eng = _SpMVEngine(
        p, machine or MachineModel(), plan,
        executor=executor, jobs=jobs, parallel=parallel, backend=backend,
    )
    b = np.asarray(b, dtype=np.float64)
    z = np.zeros_like(b)
    r = b.copy()
    d = r.copy()
    rs = float(r @ r)
    eng.reduction_cost()
    bnorm = float(np.linalg.norm(b)) or 1.0
    history: list[float] = []
    converged = False
    it = 0
    try:
        with obs.span(
            "solver.conjugate_gradient", k=p.nparts, executor=executor
        ) as sp:
            for it in range(1, iters + 1):
                ad = eng.matvec(d)
                dad = float(d @ ad)
                eng.reduction_cost()
                if dad <= 0:
                    raise SimulationError(
                        "matrix is not positive definite along d"
                    )
                alpha = rs / dad
                z = z + alpha * d
                r = r - alpha * ad
                rs_new = float(r @ r)
                eng.reduction_cost()
                res = float(np.sqrt(rs_new)) / bnorm
                history.append(res)
                if res <= tol:
                    converged = True
                    break
                d = r + (rs_new / rs) * d
                rs = rs_new
            if sp is not None:
                sp.attrs["iterations"] = it
    finally:
        eng.close()
    return SolveResult(
        x=z,
        iterations=it,
        converged=converged,
        residual=history[-1],
        comm_words=eng.words,
        comm_msgs=eng.msgs,
        sim_time=eng.time,
        history=history,
    )
