"""Cross-cutting metric helpers and paper-style table formatting."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "geomean",
    "load_imbalance",
    "format_li",
    "format_table",
    "normalized",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries the way the paper's
    summary rows must (a zero volume would zero the whole product)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def load_imbalance(loads: np.ndarray) -> float:
    """``max/avg − 1`` of a per-processor load vector.

    An empty vector (no processors, or a phase nobody participates in)
    is perfectly balanced by convention: 0.0, not a ``max()`` crash.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        return 0.0
    avg = loads.mean()
    return float(loads.max() / avg - 1.0) if avg > 0 else 0.0


def format_li(li: float) -> str:
    """The paper's LI rendering: '12.9%' below 100%, else '1.2*'."""
    if li >= 1.0:
        return f"{li:.1f}*"
    return f"{100.0 * li:.1f}%"


def normalized(value: float, reference: float) -> float:
    """``value / reference`` with a 0 reference mapped to 0 (the paper
    normalizes volumes to the 1D volume, which is never 0 in practice)."""
    return value / reference if reference else 0.0


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table (markdown-ish) for benchmark output."""
    srows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
