"""Agglomerative coarsening by heavy-connectivity matching.

Pairs of vertices sharing many (and small) nets are merged, shrinking
the hypergraph while approximately preserving its cut structure — the
same scheme PaToH uses by default (HCM).  Each vertex is visited in
random order and matched with the unmatched neighbour of maximum
connectivity score ``Σ cost(e) / (|e| − 1)`` over shared nets.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["coarsen_once"]


def coarsen_once(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_net_size: int = 200,
) -> tuple[np.ndarray, Hypergraph]:
    """One level of heavy-connectivity matching.

    Returns ``(cmap, coarse)`` where ``cmap[v]`` is the coarse vertex
    holding fine vertex ``v``.  Nets of more than ``max_net_size`` pins
    are skipped during scoring (their connectivity signal is diffuse and
    scanning them would cost ``O(|e|²)`` overall).
    """
    n = hg.nvertices
    xpins, pins = hg.xpins, hg.pins
    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts
    sizes = np.diff(xpins)

    mate = np.full(n, -1, dtype=np.int64)
    score = np.zeros(n, dtype=np.float64)
    order = rng.permutation(n)

    for v in order:
        if mate[v] != -1:
            continue
        touched: list[int] = []
        for e in nets[xnets[v] : xnets[v + 1]]:
            sz = sizes[e]
            if sz < 2 or sz > max_net_size:
                continue
            contrib = ncosts[e] / (sz - 1)
            for u in pins[xpins[e] : xpins[e + 1]]:
                if u != v and mate[u] == -1:
                    if score[u] == 0.0:
                        touched.append(u)
                    score[u] += contrib
        best = -1
        best_score = 0.0
        for u in touched:
            if score[u] > best_score:
                best_score = score[u]
                best = u
            score[u] = 0.0
        if best != -1:
            mate[v] = best
            mate[best] = v

    # Cluster ids: the smaller endpoint of each pair names the cluster.
    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        cmap[v] = next_id
        if mate[v] != -1:
            cmap[mate[v]] = next_id
        next_id += 1

    coarse = _contract(hg, cmap, next_id)
    return cmap, coarse


def _contract(hg: Hypergraph, cmap: np.ndarray, ncoarse: int) -> Hypergraph:
    """Contract ``hg`` along ``cmap`` into ``ncoarse`` vertices.

    Per-net pins are remapped and deduplicated; single-pin nets are
    dropped (they can never be cut); *identical* nets are merged with
    their costs summed, which keeps coarse FM gains faithful.
    """
    vweights = np.zeros((ncoarse, hg.nconstraints), dtype=np.int64)
    np.add.at(vweights, cmap, hg.vweights)

    net_key: dict[bytes, int] = {}
    net_pins: list[np.ndarray] = []
    net_costs: list[int] = []
    for e in range(hg.nnets):
        mapped = np.unique(cmap[hg.net_pins(e)])
        if mapped.size < 2:
            continue
        key = mapped.tobytes()
        idx = net_key.get(key)
        if idx is None:
            net_key[key] = len(net_pins)
            net_pins.append(mapped)
            net_costs.append(int(hg.ncosts[e]))
        else:
            net_costs[idx] += int(hg.ncosts[e])

    xpins = np.zeros(len(net_pins) + 1, dtype=np.int64)
    for e, lst in enumerate(net_pins):
        xpins[e + 1] = xpins[e] + lst.size
    pins = (
        np.concatenate(net_pins) if net_pins else np.empty(0, dtype=np.int64)
    )
    return Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=vweights,
        ncosts=np.asarray(net_costs, dtype=np.int64),
    )
