"""Agglomerative coarsening by heavy-connectivity matching.

Pairs of vertices sharing many (and small) nets are merged, shrinking
the hypergraph while approximately preserving its cut structure — the
same scheme PaToH uses by default (HCM).

The connectivity scores ``S[v, u] = Σ cost(e) / (|e| − 1)`` over shared
scoring nets are computed for *all* vertex pairs at once as the sparse
product ``Bᵀ·(W·B)`` of the net–vertex incidence (one batched pass,
replacing the seed code's per-vertex pin scan); the greedy matching
itself then walks the random visitation order selecting each vertex's
best unmatched neighbour from the precomputed CSR row — a handful of
vectorized operations per vertex instead of nested pin loops.
Contraction is fully vectorized: one composite-key sort deduplicates
pins within nets, and identical coarse nets are merged through a
hash-bucket pass with exact pin-array verification.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import concat_ranges

__all__ = ["coarsen_once"]


def _pair_scores(hg: Hypergraph, max_net_size: int) -> sp.csr_matrix | None:
    """CSR matrix of HCM connectivity scores between all vertex pairs.

    ``S[v, u] = Σ_{e ∋ v,u} cost(e) / (|e| − 1)`` over nets with
    ``2 ≤ |e| ≤ max_net_size`` (larger nets carry a diffuse signal and
    would cost ``O(|e|²)``).  ``None`` when no net qualifies.  The
    diagonal holds self-scores; callers must skip ``u == v``.
    """
    sizes = hg.net_sizes()
    valid = (sizes >= 2) & (sizes <= max_net_size)
    if not np.any(valid):
        return None
    keep = valid[hg.net_of_pin]
    e = hg.net_of_pin[keep]
    v = hg.pins[keep]
    contrib = hg.ncosts[e] / (sizes[e] - 1)
    shape = (hg.nnets, hg.nvertices)
    incidence = sp.csr_matrix((np.ones(e.size), (e, v)), shape=shape)
    weighted = sp.csr_matrix((contrib, (e, v)), shape=shape)
    return (incidence.T @ weighted).tocsr()


def coarsen_once(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_net_size: int = 200,
) -> tuple[np.ndarray, Hypergraph]:
    """One level of heavy-connectivity matching.

    Returns ``(cmap, coarse)`` where ``cmap[v]`` is the coarse vertex
    holding fine vertex ``v``.  Nets of more than ``max_net_size`` pins
    are skipped during scoring.
    """
    n = hg.nvertices
    mate = np.full(n, -1, dtype=np.int64)
    scores = _pair_scores(hg, max_net_size)
    if scores is not None:
        indptr, indices, data = scores.indptr, scores.indices, scores.data
        for v in rng.permutation(n):
            if mate[v] != -1:
                continue
            lo, hi = indptr[v], indptr[v + 1]
            if hi == lo:
                continue
            cand = indices[lo:hi]
            sc = np.where((mate[cand] == -1) & (cand != v), data[lo:hi], 0.0)
            j = int(np.argmax(sc))
            if sc[j] > 0.0:
                u = int(cand[j])
                mate[v] = u
                mate[u] = v

    # Cluster ids: the smaller endpoint of each pair names the cluster;
    # ids are dealt in ascending root order (= first-encounter order of
    # a 0..n−1 scan, as the seed implementation assigned them).
    ids = np.arange(n, dtype=np.int64)
    root = np.where(mate >= 0, np.minimum(ids, mate), ids)
    uniq, cmap = np.unique(root, return_inverse=True)
    cmap = cmap.astype(np.int64)
    coarse = _contract(hg, cmap, int(uniq.size))
    return cmap, coarse


def _contract(hg: Hypergraph, cmap: np.ndarray, ncoarse: int) -> Hypergraph:
    """Contract ``hg`` along ``cmap`` into ``ncoarse`` vertices.

    Per-net pins are remapped and deduplicated; single-pin nets are
    dropped (they can never be cut); *identical* nets are merged with
    their costs summed, which keeps coarse FM gains faithful.  All
    steps are array passes; identical-net detection buckets nets by
    ``(size, h1, h2)`` with two independent 64-bit content hashes, then
    verifies candidate groups by exact pin comparison, so no two
    distinct nets are ever merged (a hash collision can only *miss* a
    merge, never corrupt one).
    """
    vweights = np.zeros((ncoarse, hg.nconstraints), dtype=np.int64)
    np.add.at(vweights, cmap, hg.vweights)

    empty = Hypergraph(
        xpins=np.zeros(1, dtype=np.int64),
        pins=np.empty(0, dtype=np.int64),
        vweights=vweights,
        ncosts=np.empty(0, dtype=np.int64),
    )
    if hg.nnets == 0 or hg.pins.size == 0:
        return empty

    # Remap + dedup within nets via one composite-key sort: the key
    # orders by net id, then by coarse pin id inside each net.
    key = hg.net_of_pin * np.int64(ncoarse) + cmap[hg.pins]
    key = np.sort(key)
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    key = key[first]
    net = key // ncoarse
    pin = key % ncoarse

    counts = np.bincount(net, minlength=hg.nnets)
    live = counts >= 2
    if not np.any(live):
        return empty
    keep = live[net]
    net, pin = net[keep], pin[keep]
    live_ids = np.flatnonzero(live)
    csizes = counts[live_ids].astype(np.int64)
    costs = hg.ncosts[live_ids].astype(np.int64)
    nlive = int(live_ids.size)
    xp = np.zeros(nlive + 1, dtype=np.int64)
    np.cumsum(csizes, out=xp[1:])

    # Content hashes (pins are sorted within each net, so position is
    # well-defined and the combined digest is order-sensitive).
    pos = np.arange(pin.size, dtype=np.int64) - np.repeat(xp[:-1], csizes)
    mixed = _mix64(
        (pin.astype(np.uint64) + np.uint64(1)) * np.uint64(0x9E3779B97F4A7C15)
        ^ (pos.astype(np.uint64) + np.uint64(1)) * np.uint64(0xBF58476D1CE4E5B9)
    )
    h1 = np.bitwise_xor.reduceat(mixed, xp[:-1])
    h2 = np.add.reduceat(mixed, xp[:-1])

    order = np.lexsort((h2, h1, csizes))
    so = csizes[order]
    h1o, h2o = h1[order], h2[order]
    same_key = (so[1:] == so[:-1]) & (h1o[1:] == h1o[:-1]) & (h2o[1:] == h2o[:-1])
    dup = np.zeros(nlive, dtype=bool)  # dup[i]: net order[i] == net order[i−1]
    cand = np.flatnonzero(same_key)
    if cand.size:
        a_start = xp[order[cand]]
        b_start = xp[order[cand + 1]]
        length = so[cand]
        eq = pin[concat_ranges(a_start, a_start + length)] == pin[
            concat_ranges(b_start, b_start + length)
        ]
        seg_starts = np.concatenate(([0], np.cumsum(length)[:-1]))
        dup[cand + 1] = np.logical_and.reduceat(eq, seg_starts)

    group = np.cumsum(~dup) - 1  # group label per net, in sorted order
    reps = order[np.flatnonzero(~dup)]  # first member of each group
    gcosts = np.bincount(group, weights=costs[order]).astype(np.int64)
    rsizes = csizes[reps]
    new_xpins = np.zeros(reps.size + 1, dtype=np.int64)
    np.cumsum(rsizes, out=new_xpins[1:])
    new_pins = pin[concat_ranges(xp[reps], xp[reps] + rsizes)]
    return Hypergraph(
        xpins=new_xpins,
        pins=new_pins,
        vweights=vweights,
        ncosts=gcosts,
    )


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, elementwise over ``uint64``."""
    x = x.astype(np.uint64, copy=True)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x
