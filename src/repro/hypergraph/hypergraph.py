"""The hypergraph data structure.

Stored as two CSR-like pin lists: net → vertices (``xpins`` / ``pins``)
and vertex → nets (``xnets`` / ``nets``), mirroring the layout used by
PaToH.  Vertex weights are 2-D ``(nvertices, nconstraints)`` so the
same structure serves single-constraint models (1D, fine-grain) and the
multi-constraint checkerboard model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError

__all__ = ["Hypergraph"]


@dataclass
class Hypergraph:
    """An undirected hypergraph with weighted vertices and costed nets.

    Parameters
    ----------
    xpins:
        ``int64[nnets + 1]`` CSR offsets into ``pins``.
    pins:
        ``int64[npins]`` — vertices of net ``e`` are
        ``pins[xpins[e]:xpins[e+1]]``.
    vweights:
        ``int64[nvertices, ncon]`` vertex weights (``ncon`` balance
        constraints; 1 for all single-constraint models).
    ncosts:
        ``int64[nnets]`` net costs (communication words saved per unit
        of connectivity reduction).
    """

    xpins: np.ndarray
    pins: np.ndarray
    vweights: np.ndarray
    ncosts: np.ndarray
    xnets: np.ndarray = field(init=False, repr=False)
    nets: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.xpins = np.asarray(self.xpins, dtype=np.int64)
        self.pins = np.asarray(self.pins, dtype=np.int64)
        vw = np.asarray(self.vweights, dtype=np.int64)
        if vw.ndim == 1:
            vw = vw.reshape(-1, 1)  # single-constraint weight vector
        self.vweights = vw
        self.ncosts = np.asarray(self.ncosts, dtype=np.int64)
        self._validate()
        self._build_vertex_to_net()

    # ------------------------------------------------------------------

    @classmethod
    def from_net_lists(
        cls,
        net_lists: list[list[int]],
        nvertices: int,
        vweights=None,
        ncosts=None,
    ) -> "Hypergraph":
        """Build from an explicit list of pin lists (mostly for tests)."""
        xpins = np.zeros(len(net_lists) + 1, dtype=np.int64)
        for e, lst in enumerate(net_lists):
            xpins[e + 1] = xpins[e] + len(lst)
        pins = np.fromiter(
            (v for lst in net_lists for v in lst), dtype=np.int64, count=int(xpins[-1])
        )
        if vweights is None:
            vweights = np.ones((nvertices, 1), dtype=np.int64)
        if ncosts is None:
            ncosts = np.ones(len(net_lists), dtype=np.int64)
        return cls(xpins=xpins, pins=pins, vweights=vweights, ncosts=ncosts)

    # ------------------------------------------------------------------

    @property
    def nvertices(self) -> int:
        return int(self.vweights.shape[0])

    @property
    def nnets(self) -> int:
        return int(self.xpins.size - 1)

    @property
    def npins(self) -> int:
        return int(self.pins.size)

    @property
    def nconstraints(self) -> int:
        return int(self.vweights.shape[1])

    def total_weight(self) -> np.ndarray:
        """Per-constraint total vertex weight, shape ``(ncon,)``."""
        return self.vweights.sum(axis=0)

    def net_pins(self, e: int) -> np.ndarray:
        """Vertices of net ``e``."""
        return self.pins[self.xpins[e] : self.xpins[e + 1]]

    def vertex_nets(self, v: int) -> np.ndarray:
        """Nets incident to vertex ``v``."""
        return self.nets[self.xnets[v] : self.xnets[v + 1]]

    def net_sizes(self) -> np.ndarray:
        """Pin count of every net."""
        return np.diff(self.xpins)

    # ------------------------------------------------------------------
    # Cached incidence arrays (shared by the partitioner kernels)
    # ------------------------------------------------------------------

    @property
    def net_of_pin(self) -> np.ndarray:
        """Net id of every entry of ``pins`` (lazily cached).

        The pin-major companion of ``xpins``; every vectorized pass over
        the net→vertex incidence (coarsening scores, pin counting, cut
        evaluation) indexes through this one buffer, so the partitioner
        stages and the repeated coarsest-level trials share it.
        """
        cached = self.__dict__.get("_net_of_pin")
        if cached is None:
            cached = np.repeat(
                np.arange(self.nnets, dtype=np.int64), np.diff(self.xpins)
            )
            self.__dict__["_net_of_pin"] = cached
        return cached

    @property
    def vert_of_pin(self) -> np.ndarray:
        """Vertex id of every entry of ``nets`` (lazily cached)."""
        cached = self.__dict__.get("_vert_of_pin")
        if cached is None:
            cached = np.repeat(
                np.arange(self.nvertices, dtype=np.int64), np.diff(self.xnets)
            )
            self.__dict__["_vert_of_pin"] = cached
        return cached

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        if self.xpins.size < 1 or self.xpins[0] != 0:
            raise ModelError("xpins must start at 0")
        if np.any(np.diff(self.xpins) < 0):
            raise ModelError("xpins must be nondecreasing")
        if self.xpins[-1] != self.pins.size:
            raise ModelError("xpins[-1] must equal len(pins)")
        if self.ncosts.size != self.nnets:
            raise ModelError("one cost per net required")
        if self.pins.size and (self.pins.min() < 0 or self.pins.max() >= self.nvertices):
            raise ModelError("pin vertex id out of range")
        if np.any(self.vweights < 0):
            raise ModelError("vertex weights must be nonnegative")
        if np.any(self.ncosts < 0):
            raise ModelError("net costs must be nonnegative")

    def _build_vertex_to_net(self) -> None:
        n = self.nvertices
        sizes = np.diff(self.xpins)
        net_of_pin = np.repeat(np.arange(self.nnets, dtype=np.int64), sizes)
        order = np.argsort(self.pins, kind="stable")
        self.nets = net_of_pin[order]
        counts = np.bincount(self.pins, minlength=n)
        self.xnets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.xnets[1:])
