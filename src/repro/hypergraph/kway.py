"""Direct K-way greedy refinement (connectivity-1 metric).

Recursive bisection optimizes each split locally; a final K-way pass
over boundary vertices recovers some of the cut that RB's fixed split
tree leaves behind — the same post-pass PaToH and kMetis apply.

A move of vertex ``v`` from part ``a`` to part ``b`` changes the
connectivity-1 cost by, per incident net ``e`` of cost ``c``:

- ``pc[e,a] == 1`` and ``pc[e,b] ≥ 1``: λ_e drops by one → gain ``+c``;
- ``pc[e,a] == 1`` and ``pc[e,b] == 0``: λ_e unchanged → ``0``;
- ``pc[e,a] ≥ 2`` and ``pc[e,b] == 0``: λ_e grows by one → gain ``−c``;
- otherwise λ_e unchanged → ``0``.

Moves are accepted greedily (best destination per boundary vertex) when
the gain is positive and the destination stays within the balance
limit.  Passes repeat until no move is applied.  The per-destination
gains of one vertex are evaluated as two small matrix products over the
``(incident nets × parts)`` pin-count slab, replacing the seed code's
nested Python loops; a move can therefore never increase the
connectivity-1 cost (only strictly positive gains are applied).
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.refine import _context

__all__ = ["kway_greedy_refine"]


def kway_greedy_refine(
    hg: Hypergraph,
    part: np.ndarray,
    nparts: int,
    epsilon: float = 0.03,
    max_passes: int = 3,
) -> np.ndarray:
    """Polish a K-way partition in place-semantics (returns a copy)."""
    part = np.asarray(part, dtype=np.int64).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0 or nparts < 2:
        return part

    ctx = _context(hg)
    pc = np.zeros((hg.nnets, nparts), dtype=np.int64)
    np.add.at(pc, (hg.net_of_pin, part[hg.pins]), 1)

    pw = np.zeros((nparts, hg.nconstraints), dtype=np.float64)
    np.add.at(pw, part, hg.vweights.astype(np.float64))
    limit = hg.total_weight().astype(np.float64) / nparts * (1.0 + epsilon)

    xnets, nets = hg.xnets, hg.nets
    vipt, vnets = ctx.vnets_indptr, ctx.vnets
    ncosts = hg.ncosts
    wfloat = hg.vweights.astype(np.float64)

    for _ in range(max_passes):
        # Boundary vertices: touch a net spanning >= 2 parts.
        lam = (pc > 0).sum(axis=1)
        cut_nets = lam >= 2
        boundary = np.unique(hg.vert_of_pin[cut_nets[nets]])
        moved = 0
        for v in boundary.tolist():
            a = int(part[v])
            en = vnets[vipt[v] : vipt[v + 1]]
            if en.size == 0:
                continue
            slab = pc[en]  # (incident nets, nparts)
            acol = slab[:, a]
            c = ncosts[en]
            gains = (slab > 0).T @ np.where(acol == 1, c, 0)
            gains -= (slab == 0).T @ np.where(acol >= 2, c, 0)
            gains[a] = 0
            feasible = np.all(pw + wfloat[v] <= limit, axis=1)
            gains = np.where(feasible, gains, 0)
            best_b = int(np.argmax(gains))
            if gains[best_b] <= 0:
                continue
            en_all = nets[xnets[v] : xnets[v + 1]]
            pc[en_all, a] -= 1
            pc[en_all, best_b] += 1
            pw[a] -= wfloat[v]
            pw[best_b] += wfloat[v]
            part[v] = best_b
            moved += 1
        if moved == 0:
            break
    return part
