"""Direct K-way greedy refinement (connectivity-1 metric).

Recursive bisection optimizes each split locally; a final K-way pass
over boundary vertices recovers some of the cut that RB's fixed split
tree leaves behind — the same post-pass PaToH and kMetis apply.

A move of vertex ``v`` from part ``a`` to part ``b`` changes the
connectivity-1 cost by, per incident net ``e`` of cost ``c``:

- ``pc[e,a] == 1`` and ``pc[e,b] ≥ 1``: λ_e drops by one → gain ``+c``;
- ``pc[e,a] == 1`` and ``pc[e,b] == 0``: λ_e unchanged → ``0``;
- ``pc[e,a] ≥ 2`` and ``pc[e,b] == 0``: λ_e grows by one → gain ``−c``;
- otherwise λ_e unchanged → ``0``.

Moves are accepted greedily (best destination per boundary vertex) when
the gain is positive and the destination stays within the balance
limit.  Passes repeat until no move is applied.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["kway_greedy_refine"]


def kway_greedy_refine(
    hg: Hypergraph,
    part: np.ndarray,
    nparts: int,
    epsilon: float = 0.03,
    max_passes: int = 3,
) -> np.ndarray:
    """Polish a K-way partition in place-semantics (returns a copy)."""
    part = np.asarray(part, dtype=np.int64).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0 or nparts < 2:
        return part

    sizes = np.diff(hg.xpins)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    pc = np.zeros((hg.nnets, nparts), dtype=np.int64)
    np.add.at(pc, (net_of_pin, part[hg.pins]), 1)

    pw = np.zeros((nparts, hg.nconstraints), dtype=np.float64)
    np.add.at(pw, part, hg.vweights.astype(np.float64))
    limit = hg.total_weight().astype(np.float64) / nparts * (1.0 + epsilon)

    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts

    for _ in range(max_passes):
        # Boundary vertices: touch a net spanning >= 2 parts.
        lam = (pc > 0).sum(axis=1)
        cut_nets = lam >= 2
        vert_of_pin = np.repeat(np.arange(n), np.diff(xnets))
        boundary = np.unique(vert_of_pin[cut_nets[nets]])
        moved = 0
        for v in boundary:
            a = int(part[v])
            enets_all = nets[xnets[v] : xnets[v + 1]]
            enets = enets_all[sizes[enets_all] >= 2]
            if enets.size == 0:
                continue
            # Candidate destinations: parts sharing a net with v.
            cand = np.unique(
                np.concatenate([np.flatnonzero(pc[e] > 0) for e in enets])
            )
            best_b, best_gain = -1, 0
            w = hg.vweights[v].astype(np.float64)
            for b in cand:
                if b == a:
                    continue
                if np.any(pw[b] + w > limit):
                    continue
                gain = 0
                for e in enets:
                    c = int(ncosts[e])
                    if pc[e, a] == 1 and pc[e, b] >= 1:
                        gain += c
                    elif pc[e, a] >= 2 and pc[e, b] == 0:
                        gain -= c
                if gain > best_gain:
                    best_gain = gain
                    best_b = int(b)
            if best_b >= 0:
                for e in enets_all:
                    pc[e, a] -= 1
                    pc[e, best_b] += 1
                pw[a] -= w
                pw[best_b] += w
                part[v] = best_b
                moved += 1
        if moved == 0:
            break
    return part
