"""Per-stage timing of the multilevel partitioner.

A :class:`PartitionProfile` accumulates wall-clock seconds per pipeline
stage (coarsening, initial bisection, FM refinement, K-way polish) plus
structural counters.  Two ways to collect one:

- pass ``profile=PartitionProfile()`` to
  :func:`repro.hypergraph.partition_kway` directly;
- wrap any code in :func:`collect` — every ``partition_kway`` call in
  the ``with`` block (however deeply nested inside engine builders)
  accumulates into the yielded profile.  This is how
  ``PartitionEngine.plan(..., profile=True)`` and the CLI ``--profile``
  flag observe the hypergraph stage without threading an argument
  through every method builder.

This module is a thin adapter over :mod:`repro.obs`: the ambient slot
is an :class:`repro.obs.AmbientCollector` (the shared implementation of
the pattern this module and :mod:`repro.simulate.profiling` used to
copy-paste), and :meth:`PartitionProfile.stage` doubles as an
``obs.span("partition.<stage>")`` — so any :func:`repro.obs.tracing`
block sees partitioner stages as tree nodes for free, while the
profile API and its ``--profile`` table stay exactly as before.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs

__all__ = ["PartitionProfile", "collect", "active_profile"]


@dataclass
class PartitionProfile:
    """Accumulated stage timings of one (or more) ``partition_kway`` runs."""

    coarsen_s: float = 0.0
    initial_s: float = 0.0
    refine_s: float = 0.0
    kway_s: float = 0.0
    total_s: float = 0.0
    levels: int = 0
    bisections: int = 0
    cut_before_kway: int | None = None
    cut_after_kway: int | None = None
    extra: dict = field(default_factory=dict)

    def add(self, stage: str, seconds: float) -> None:
        setattr(self, f"{stage}_s", getattr(self, f"{stage}_s") + seconds)

    @contextmanager
    def stage(self, name: str):
        """Time a block and charge it to ``name`` (coarsen/initial/...)."""
        with obs.span(f"partition.{name}"):
            t0 = obs.now()
            try:
                yield
            finally:
                self.add(name, obs.now() - t0)

    def as_dict(self) -> dict:
        d = {
            "coarsen_s": self.coarsen_s,
            "initial_s": self.initial_s,
            "refine_s": self.refine_s,
            "kway_s": self.kway_s,
            "total_s": self.total_s,
            "levels": self.levels,
            "bisections": self.bisections,
        }
        if self.cut_before_kway is not None:
            d["cut_before_kway"] = self.cut_before_kway
            d["cut_after_kway"] = self.cut_after_kway
        d.update(self.extra)
        return d

    def stage_table(self) -> str:
        """Human-readable per-stage breakdown (the CLI ``--profile`` view)."""
        rows = [
            ("coarsen", self.coarsen_s),
            ("initial", self.initial_s),
            ("refine", self.refine_s),
            ("kway-polish", self.kway_s),
        ]
        lines = ["stage         seconds   share"]
        denom = self.total_s if self.total_s > 0 else sum(s for _, s in rows) or 1.0
        for name, s in rows:
            lines.append(f"{name:<12}  {s:8.3f}  {100.0 * s / denom:5.1f}%")
        lines.append(f"{'total':<12}  {self.total_s:8.3f}")
        lines.append(
            f"levels={self.levels} bisections={self.bisections}"
        )
        if self.cut_before_kway is not None:
            lines.append(
                f"connectivity-1: {self.cut_before_kway} -> {self.cut_after_kway} "
                "(kway polish)"
            )
        return "\n".join(lines)


_ACTIVE = obs.AmbientCollector(PartitionProfile)


def active_profile() -> PartitionProfile | None:
    """The ambient profile collector, if a :func:`collect` block is open."""
    return _ACTIVE.active()


@contextmanager
def collect(profile: PartitionProfile | None = None):
    """Collect partitioner stage timings from everything run inside."""
    with _ACTIVE.collect(profile) as prof:
        yield prof
