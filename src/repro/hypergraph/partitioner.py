"""K-way hypergraph partitioning by recursive bisection.

Cut nets are *split* between the two sides of every bisection, so the
sum of the bisection cut-net costs telescopes into the K-way
connectivity-1 cost — the metric that equals SpMV communication volume
under the models of :mod:`repro.hypergraph.models`.  This is the same
strategy PaToH applies for the connectivity metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigError
from repro.hypergraph import profiling
from repro.hypergraph.bisect import multilevel_bisect
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.profiling import PartitionProfile
from repro.kernels import grouped_distinct_counts
from repro.rng import as_generator, spawn

__all__ = [
    "PartitionConfig",
    "partition_kway",
    "connectivity_minus_one",
    "cutnet_cost",
    "imbalance",
    "net_connectivities",
]


@dataclass(frozen=True)
class PartitionConfig:
    """Tuning knobs of the multilevel recursive-bisection partitioner.

    ``epsilon`` is the final K-way imbalance tolerance; the paper uses
    PaToH's default 3%.  Each bisection level receives the per-level
    tolerance ``(1+ε)^(1/⌈log2 K⌉) − 1`` so compounding stays within ε.
    """

    epsilon: float = 0.03
    seed: int | None = None
    coarsen_to: int = 120
    ninitial: int = 4
    fm_passes: int = 4
    max_net_size: int = 200
    kway_passes: int = 2
    """Direct K-way greedy polish passes applied after recursive
    bisection (0 disables)."""

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigError("epsilon must be nonnegative")
        if self.coarsen_to < 2:
            raise ConfigError("coarsen_to must be at least 2")


def partition_kway(
    hg: Hypergraph,
    nparts: int,
    config: PartitionConfig | None = None,
    profile: PartitionProfile | None = None,
) -> np.ndarray:
    """Partition the vertices of ``hg`` into ``nparts`` balanced parts.

    Returns an ``int64`` part array of length ``hg.nvertices``.

    ``profile`` (or an ambient :func:`repro.hypergraph.profiling.collect`
    block) receives per-stage wall-clock timings; when profiling, the
    connectivity-1 cost before and after the K-way polish is recorded
    too — the polish only accepts positive-gain moves, so the cost can
    never increase.
    """
    if nparts < 1:
        raise ConfigError("nparts must be at least 1")
    config = config or PartitionConfig()
    prof = profile if profile is not None else profiling.active_profile()
    t_start = obs.now()
    rng = as_generator(config.seed)
    depth = max(1, int(np.ceil(np.log2(nparts)))) if nparts > 1 else 1
    eps_level = (1.0 + config.epsilon) ** (1.0 / depth) - 1.0
    part = np.zeros(hg.nvertices, dtype=np.int64)
    _recurse(
        hg, np.arange(hg.nvertices), nparts, 0, part, eps_level, config, rng, prof
    )
    if nparts > 1 and config.kway_passes > 0:
        from repro.hypergraph.kway import kway_greedy_refine

        if prof is not None:
            cut_before = connectivity_minus_one(hg, part)
        t0 = obs.now()
        with obs.span("partition.kway"):
            part = kway_greedy_refine(
                hg, part, nparts, epsilon=config.epsilon, max_passes=config.kway_passes
            )
        if prof is not None:
            prof.add("kway", obs.now() - t0)
            # Accumulate (not overwrite): an ambient collector may span
            # several partition_kway runs (e.g. the checkerboard row and
            # column stages); the profile then reports the totals.
            prof.cut_before_kway = (prof.cut_before_kway or 0) + cut_before
            prof.cut_after_kway = (prof.cut_after_kway or 0) + connectivity_minus_one(
                hg, part
            )
    if prof is not None:
        prof.total_s += obs.now() - t_start
    return part


def _recurse(
    hg: Hypergraph,
    vertex_ids: np.ndarray,
    nparts: int,
    offset: int,
    out: np.ndarray,
    eps_level: float,
    config: PartitionConfig,
    rng: np.random.Generator,
    prof: PartitionProfile | None = None,
) -> None:
    if nparts == 1 or hg.nvertices == 0:
        out[vertex_ids] = offset
        return
    k0 = (nparts + 1) // 2
    k1 = nparts - k0
    total = hg.total_weight().astype(np.float64)
    t0 = total * (k0 / nparts)
    t1 = total - t0
    part, _ = multilevel_bisect(
        hg,
        (t0, t1),
        eps_level,
        rng,
        coarsen_to=max(config.coarsen_to, 8 * nparts),
        ninitial=config.ninitial,
        fm_passes=config.fm_passes,
        max_net_size=config.max_net_size,
        profile=prof,
    )
    rng0, rng1 = spawn(rng, 2)
    for side, kk, off, side_rng in ((0, k0, offset, rng0), (1, k1, offset + k0, rng1)):
        ids = np.flatnonzero(part == side)
        if kk == 1 or ids.size == 0:
            out[vertex_ids[ids]] = off
            continue
        sub = _split_side(hg, part, side)
        _recurse(sub, vertex_ids[ids], kk, off, out, eps_level, config, side_rng, prof)


def _split_side(hg: Hypergraph, part: np.ndarray, side: int) -> Hypergraph:
    """Sub-hypergraph induced on one side of a bisection (cut-net split).

    A cut net survives on each side restricted to that side's pins;
    nets left with fewer than two pins are dropped.
    """
    keep = np.flatnonzero(part == side)
    vmap = np.full(hg.nvertices, -1, dtype=np.int64)
    vmap[keep] = np.arange(keep.size)
    sizes = np.diff(hg.xpins)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    pin_mask = part[hg.pins] == side
    kept_pins = vmap[hg.pins[pin_mask]]
    kept_nets = net_of_pin[pin_mask]
    per_net = np.bincount(kept_nets, minlength=hg.nnets)
    live = per_net >= 2
    net_map = np.cumsum(live) - 1
    keep_pin = live[kept_nets]
    new_net_of_pin = net_map[kept_nets[keep_pin]]
    new_pins = kept_pins[keep_pin]
    order = np.argsort(new_net_of_pin, kind="stable")
    new_pins = new_pins[order]
    counts = per_net[live]
    xpins = np.zeros(int(live.sum()) + 1, dtype=np.int64)
    np.cumsum(counts, out=xpins[1:])
    return Hypergraph(
        xpins=xpins,
        pins=new_pins,
        vweights=hg.vweights[keep],
        ncosts=hg.ncosts[live],
    )


# ----------------------------------------------------------------------
# Quality metrics
# ----------------------------------------------------------------------


def net_connectivities(hg: Hypergraph, part: np.ndarray) -> np.ndarray:
    """λ_e: number of distinct parts touching each net (0 for empty nets)."""
    part = np.asarray(part, dtype=np.int64)
    if hg.pins.size == 0:
        return np.zeros(hg.nnets, dtype=np.int64)
    nparts = int(part.max()) + 1 if part.size else 1
    groups, counts = grouped_distinct_counts(hg.net_of_pin, part[hg.pins], nparts)
    lam = np.zeros(hg.nnets, dtype=np.int64)
    lam[groups] = counts
    return lam


def connectivity_minus_one(hg: Hypergraph, part: np.ndarray) -> int:
    """``Σ_e cost(e) · (λ_e − 1)`` over nets touched by ≥ 1 part."""
    lam = net_connectivities(hg, part)
    touched = lam > 0
    return int((hg.ncosts[touched] * (lam[touched] - 1)).sum())


def cutnet_cost(hg: Hypergraph, part: np.ndarray) -> int:
    """``Σ_e cost(e)`` over nets spanning ≥ 2 parts."""
    lam = net_connectivities(hg, part)
    return int(hg.ncosts[lam > 1].sum())


def imbalance(hg: Hypergraph, part: np.ndarray, nparts: int) -> float:
    """Worst-constraint load imbalance ``max_k W_k / W_avg − 1``."""
    part = np.asarray(part, dtype=np.int64)
    pw = np.zeros((nparts, hg.nconstraints), dtype=np.float64)
    np.add.at(pw, part, hg.vweights.astype(np.float64))
    avg = pw.sum(axis=0) / nparts
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(avg > 0, pw.max(axis=0) / avg, 1.0)
    return float(rel.max() - 1.0)
