"""Initial bisections for the coarsest hypergraph.

Two constructors, used as alternating trials by the multilevel driver:

- :func:`random_bisection` — shuffled greedy fill to the target weight;
- :func:`greedy_growing` — greedy hypergraph growing (GHG): grow part 0
  from a random seed, always absorbing the vertex most connected to the
  growing part, until the target weight is reached.

Both return a 0/1 part array; quality is left to FM refinement.

Greedy growing keeps one float gain array; the connectivity bumps after
an absorption are applied to all pins of the absorbed vertex's scoring
nets in one scatter-add (the seed implementation walked every pin in
Python), and only the touched vertices re-enter the selection heap —
selection stays O(log n) per step even when coarsening stalls and the
coarsest hypergraph is large.  Vertices that once failed the balance
check are retired permanently — part-0 weight only grows, so they can
never fit again.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import concat_ranges

__all__ = ["random_bisection", "greedy_growing"]


def _fits(pw0: np.ndarray, w: np.ndarray, t0: np.ndarray) -> bool:
    """Would adding weight ``w`` keep part 0 at or below its target?"""
    return bool(np.all(pw0 + w <= t0))


def random_bisection(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Fill part 0 with randomly ordered vertices up to its target weight."""
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(hg.nvertices, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.int64)
    for v in rng.permutation(hg.nvertices):
        w = hg.vweights[v]
        if _fits(pw0, w, t0):
            part[v] = 0
            pw0 += w
    return part


def greedy_growing(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Greedy hypergraph growing from a random seed vertex."""
    n = hg.nvertices
    if n == 0:
        return np.ones(0, dtype=np.int8)
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(n, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.float64)
    vw = hg.vweights

    xpins, pins = hg.xpins, hg.pins
    xnets, nets = hg.xnets, hg.nets
    sizes = hg.net_sizes()
    valid = sizes >= 2
    contrib = np.zeros(hg.nnets, dtype=np.float64)
    np.divide(
        hg.ncosts, sizes - 1, out=contrib, where=valid
    )

    gain = np.zeros(n, dtype=np.float64)
    absorbed = np.zeros(n, dtype=bool)
    retired = np.zeros(n, dtype=bool)

    # Lazy-deletion heap over gain snapshots: stale entries (absorbed,
    # retired, or superseded by a later bump) are skipped on pop.  Ties
    # break on the lower vertex id, which keeps the grown region
    # compact on regular instances.
    heap: list[tuple[float, int]] = []
    seed_order = rng.permutation(n)
    seed_ptr = 0

    while True:
        v = -1
        while heap:
            g, u = heapq.heappop(heap)
            if not absorbed[u] and not retired[u] and -g == gain[u]:
                v = u
                break
        if v < 0:
            # (Re)seed: the next untaken vertex in random order.
            while seed_ptr < n and (
                absorbed[seed_order[seed_ptr]] or retired[seed_order[seed_ptr]]
            ):
                seed_ptr += 1
            if seed_ptr >= n:
                break
            v = int(seed_order[seed_ptr])
            gain[v] = 0.0
        w = vw[v]
        if not _fits(pw0, w, t0):
            retired[v] = True
            continue
        absorbed[v] = True
        part[v] = 0
        pw0 += w
        if np.all(pw0 >= t0):
            break
        en = nets[xnets[v] : xnets[v + 1]]
        en = en[valid[en]]
        if en.size:
            us = pins[concat_ranges(xpins[en], xpins[en + 1])]
            np.add.at(gain, us, np.repeat(contrib[en], sizes[en]))
            for u in np.unique(us).tolist():
                if not absorbed[u] and not retired[u]:
                    heapq.heappush(heap, (-gain[u], u))
    return part
