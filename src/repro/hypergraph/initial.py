"""Initial bisections for the coarsest hypergraph.

Two constructors, used as alternating trials by the multilevel driver:

- :func:`random_bisection` — shuffled greedy fill to the target weight;
- :func:`greedy_growing` — greedy hypergraph growing (GHG): grow part 0
  from a random seed, always absorbing the vertex most connected to the
  growing part, until the target weight is reached.

Both return a 0/1 part array; quality is left to FM refinement.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["random_bisection", "greedy_growing"]


def _fits(pw0: np.ndarray, w: np.ndarray, t0: np.ndarray) -> bool:
    """Would adding weight ``w`` keep part 0 at or below its target?"""
    return bool(np.all(pw0 + w <= t0))


def random_bisection(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Fill part 0 with randomly ordered vertices up to its target weight."""
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(hg.nvertices, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.int64)
    for v in rng.permutation(hg.nvertices):
        w = hg.vweights[v]
        if _fits(pw0, w, t0):
            part[v] = 0
            pw0 += w
    return part


def greedy_growing(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Greedy hypergraph growing from a random seed vertex."""
    n = hg.nvertices
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(n, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.int64)
    gain = np.zeros(n, dtype=np.float64)
    in0 = np.zeros(n, dtype=bool)

    heap: list[tuple[float, int, int]] = []
    counter = 0
    seed_order = iter(rng.permutation(n))

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (-gain[v], counter, v))
        counter += 1

    sizes = hg.net_sizes()
    while True:
        if not heap:
            # (Re)seed: pick the next untaken vertex.
            seed = next((s for s in seed_order if not in0[s]), None)
            if seed is None:
                break
            gain[seed] = 0.0
            push(seed)
        g, _, v = heapq.heappop(heap)
        if in0[v] or -g != gain[v]:
            continue
        w = hg.vweights[v]
        if not _fits(pw0, w, t0):
            continue
        in0[v] = True
        part[v] = 0
        pw0 += w
        if np.all(pw0 >= t0):
            break
        for e in hg.vertex_nets(v):
            if sizes[e] < 2:
                continue
            bump = hg.ncosts[e] / (sizes[e] - 1)
            for u in hg.net_pins(e):
                if not in0[u]:
                    gain[u] += bump
                    push(u)
    return part
