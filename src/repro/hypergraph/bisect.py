"""Multilevel bisection V-cycle.

Coarsen with heavy-connectivity matching until the hypergraph is small,
try several initial bisections (greedy growing / random), refine with
FM, then project back level by level refining at each.

The ``ninitial`` coarsest-level trials run against shared precomputed
arrays: the coarsest hypergraph's incidence caches and the refinement
context (valid-net adjacency, gain bound) are built once on the
hypergraph object and reused by every trial and projection level.  An
optional :class:`~repro.hypergraph.profiling.PartitionProfile`
accumulates per-stage wall-clock time.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.coarsen import coarsen_once
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.initial import greedy_growing, random_bisection
from repro.hypergraph.profiling import PartitionProfile
from repro.hypergraph.refine import fm_refine
from repro.rng import spawn

__all__ = ["multilevel_bisect"]


def multilevel_bisect(
    hg: Hypergraph,
    targets: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    rng: np.random.Generator,
    coarsen_to: int = 120,
    ninitial: int = 4,
    fm_passes: int = 4,
    max_net_size: int = 200,
    profile: PartitionProfile | None = None,
) -> tuple[np.ndarray, int]:
    """Bisect ``hg`` toward per-part ``targets`` within ``(1+ε)``.

    Returns ``(part, cut)``: a 0/1 array over the vertices and the
    cut-net cost of the final bisection.
    """
    prof = profile if profile is not None else PartitionProfile()
    prof.bisections += 1

    levels: list[Hypergraph] = []
    maps: list[np.ndarray] = []
    cur = hg
    with prof.stage("coarsen"):
        while cur.nvertices > coarsen_to and len(levels) < 40:
            cmap, coarse = coarsen_once(cur, rng, max_net_size=max_net_size)
            if coarse.nvertices > 0.95 * cur.nvertices:
                break  # matching stalled; further levels would be no-ops
            levels.append(cur)
            maps.append(cmap)
            cur = coarse
    prof.levels += len(levels)

    best_part: np.ndarray | None = None
    best_cut = np.iinfo(np.int64).max
    for trial, trial_rng in enumerate(spawn(rng, max(1, ninitial))):
        with prof.stage("initial"):
            if trial % 2 == 0:
                part0 = greedy_growing(cur, targets, trial_rng)
            else:
                part0 = random_bisection(cur, targets, trial_rng)
        with prof.stage("refine"):
            part0, cut0 = fm_refine(
                cur, part0, targets, epsilon, max_passes=fm_passes, rng=trial_rng
            )
        if cut0 < best_cut:
            best_cut = cut0
            best_part = part0
    assert best_part is not None
    part = best_part

    with prof.stage("refine"):
        for level_hg, cmap in zip(reversed(levels), reversed(maps)):
            part = part[cmap]
            part, best_cut = fm_refine(
                level_hg, part, targets, epsilon, max_passes=fm_passes, rng=rng
            )
    return part, best_cut
