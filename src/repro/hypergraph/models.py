"""Hypergraph models for sparse-matrix partitioning.

Each model maps a sparse matrix to a hypergraph whose connectivity-1
cut exactly equals the communication volume of the corresponding SpMV
partitioning scheme (Çatalyürek & Aykanat 1999; Uçar & Aykanat 2007):

- **column-net** — vertices are rows, nets are columns; a K-way vertex
  partition is a 1D rowwise partition, and with a consistent x-vector
  partition the connectivity-1 cut equals the expand volume.
- **row-net** — the transpose model, for 1D columnwise partitions.
- **fine-grain** — vertices are nonzeros, nets are rows *and* columns;
  the cut equals expand+fold volume of an arbitrary 2D partition.
- **medium-grain composite** (Pelt & Bisseling 2014) — the matrix is
  split ``A = Ar + Ac``; row-vertices carry the nonzeros of ``Ar``'s
  rows, column-vertices those of ``Ac``'s columns, and for square
  matrices row/column vertex ``i`` are amalgamated so the vector
  partition is symmetric.  Decoding a partition of this model yields an
  s2D partition (Section V of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hypergraph.hypergraph import Hypergraph
from repro.sparse.coo import coo_triplets, nnz_per_col, nnz_per_row

__all__ = [
    "column_net_model",
    "row_net_model",
    "fine_grain_model",
    "FineGrainModel",
    "medium_grain_split",
    "medium_grain_model",
    "MediumGrainModel",
]


def _csr_like(group: np.ndarray, member: np.ndarray, ngroups: int) -> tuple[np.ndarray, np.ndarray]:
    """Group ``member`` values by ``group`` id into CSR arrays."""
    order = np.argsort(group, kind="stable")
    counts = np.bincount(group, minlength=ngroups)
    xpins = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(counts, out=xpins[1:])
    return xpins, member[order].astype(np.int64)


def column_net_model(a) -> Hypergraph:
    """Column-net hypergraph of ``a``: vertex per row, net per column.

    Vertex weight = nonzeros in the row (the row's multiply-add work);
    net cost = 1 (one x-word per extra part touching the column).
    Empty rows get weight 0; empty columns become empty nets (never cut).
    """
    rows, cols, _ = coo_triplets(a)
    m, n = a.shape
    xpins, pins = _csr_like(cols, rows, n)
    vweights = np.bincount(rows, minlength=m).astype(np.int64)
    return Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=vweights,
        ncosts=np.ones(n, dtype=np.int64),
    )


def row_net_model(a) -> Hypergraph:
    """Row-net hypergraph of ``a``: vertex per column, net per row."""
    rows, cols, _ = coo_triplets(a)
    m, n = a.shape
    xpins, pins = _csr_like(rows, cols, m)
    vweights = np.bincount(cols, minlength=n).astype(np.int64)
    return Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=vweights,
        ncosts=np.ones(m, dtype=np.int64),
    )


@dataclass(frozen=True)
class FineGrainModel:
    """Fine-grain hypergraph plus the decoding tables.

    ``hypergraph`` has one vertex per nonzero (weight 1) and one net per
    nonempty row and per nonempty column.  ``rows``/``cols`` give the
    matrix coordinates of vertex ``t``.
    """

    hypergraph: Hypergraph
    rows: np.ndarray
    cols: np.ndarray
    nrows: int
    ncols: int

    def decode(self, part: np.ndarray, nparts: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode a vertex partition into ``(nnz_part, x_part, y_part)``.

        Vector entries follow the majority owner of their row/column
        nonzeros (consistent assignment: the owner already holds a
        nonzero needing the entry), which never increases the
        connectivity-1 volume bound.
        """
        part = np.asarray(part)
        y_part = _majority_owner(self.rows, part, self.nrows, nparts)
        x_part = _majority_owner(self.cols, part, self.ncols, nparts)
        return part.copy(), x_part, y_part


def _majority_owner(index: np.ndarray, part: np.ndarray, n: int, nparts: int) -> np.ndarray:
    """For each of ``n`` lines (rows or cols), the part holding the most
    of its nonzeros; lines with no nonzeros are dealt round-robin."""
    counts = np.zeros((n, nparts), dtype=np.int64)
    np.add.at(counts, (index, part), 1)
    owner = np.argmax(counts, axis=1).astype(np.int64)
    empty = counts.sum(axis=1) == 0
    if np.any(empty):
        owner[empty] = np.arange(int(empty.sum()), dtype=np.int64) % nparts
    return owner


def fine_grain_model(a) -> FineGrainModel:
    """Fine-grain (row-column-net) model of ``a`` (Çatalyürek & Aykanat
    2001): vertex per nonzero, nets per row and per column."""
    rows, cols, _ = coo_triplets(a)
    m, n = a.shape
    t = rows.size
    if t == 0:
        raise ModelError("cannot build a fine-grain model of an empty matrix")
    verts = np.arange(t, dtype=np.int64)
    # Row nets 0..m-1 then column nets m..m+n-1.
    xp_r, pins_r = _csr_like(rows, verts, m)
    xp_c, pins_c = _csr_like(cols, verts, n)
    xpins = np.concatenate([xp_r[:-1], xp_r[-1] + xp_c])
    pins = np.concatenate([pins_r, pins_c])
    hg = Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=np.ones(t, dtype=np.int64),
        ncosts=np.ones(m + n, dtype=np.int64),
    )
    return FineGrainModel(hypergraph=hg, rows=rows, cols=cols, nrows=m, ncols=n)


def medium_grain_split(a) -> np.ndarray:
    """Pelt–Bisseling split ``A = Ar + Ac``.

    Returns a boolean mask over the canonical nonzeros: ``True`` → the
    nonzero goes to ``Ar`` (rowwise side), ``False`` → ``Ac``
    (columnwise side).  A nonzero joins the side on which it has the
    *fewer*-populated line: if its column is shorter than its row it is
    grouped with the column, so the dense line (the expensive one to
    split) is the one that gets distributed.
    """
    rows, cols, _ = coo_triplets(a)
    pr = nnz_per_row(a)
    pc = nnz_per_col(a)
    # Ties go to the row side, matching the "rowwise by default" bias of
    # the paper's vector-partition step.
    return pr[rows] <= pc[cols]


@dataclass(frozen=True)
class MediumGrainModel:
    """Composite hypergraph of the medium-grain method, plus decoders.

    For an ``m × n`` matrix the model has ``m`` row-vertices and ``n``
    column-vertices; for square matrices row-vertex ``i`` and
    column-vertex ``i`` are amalgamated (one vertex), which makes the
    decoded vector partition symmetric — the property the paper points
    out the composite-model formulation guarantees.
    """

    hypergraph: Hypergraph
    rows: np.ndarray
    cols: np.ndarray
    to_row: np.ndarray
    nrows: int
    ncols: int
    amalgamated: bool

    def row_vertex(self, i) -> np.ndarray:
        """Vertex id(s) of row ``i``."""
        return np.asarray(i, dtype=np.int64)

    def col_vertex(self, j) -> np.ndarray:
        """Vertex id(s) of column ``j``."""
        j = np.asarray(j, dtype=np.int64)
        return j if self.amalgamated else j + self.nrows

    def decode(self, part: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode a vertex partition into ``(nnz_part, x_part, y_part)``.

        Nonzeros of ``Ar`` follow their row-vertex; nonzeros of ``Ac``
        follow their column-vertex — by construction an s2D partition.
        """
        part = np.asarray(part, dtype=np.int64)
        y_part = part[self.row_vertex(np.arange(self.nrows))]
        x_part = part[self.col_vertex(np.arange(self.ncols))]
        nnz_part = np.where(self.to_row, y_part[self.rows], x_part[self.cols])
        return nnz_part, x_part, y_part


def medium_grain_model(a, to_row: np.ndarray | None = None) -> MediumGrainModel:
    """Composite hypergraph for the medium-grain method.

    Nets: one per column ``j`` of ``Ar`` — pins are the row-vertices of
    ``Ar``-nonzeros in that column plus column-vertex ``j`` itself (it
    holds ``x_j``); one per row ``i`` of ``Ac`` — pins are the
    column-vertices of ``Ac``-nonzeros in that row plus row-vertex
    ``i``.  Cutting a net by λ parts costs λ−1 words, exactly the s2D
    volume of eq. (3).
    """
    rows, cols, _ = coo_triplets(a)
    m, n = a.shape
    if to_row is None:
        to_row = medium_grain_split(a)
    to_row = np.asarray(to_row, dtype=bool)
    if to_row.size != rows.size:
        raise ModelError("to_row mask must align with the canonical nonzeros")

    amalgamated = m == n
    nvert = m if amalgamated else m + n
    col_vertex_base = 0 if amalgamated else m

    vweights = np.zeros(nvert, dtype=np.int64)
    np.add.at(vweights, rows[to_row], 1)
    np.add.at(vweights, cols[~to_row] + col_vertex_base, 1)

    net_lists: list[np.ndarray] = []
    # Column nets over Ar.
    r_rows, r_cols = rows[to_row], cols[to_row]
    order = np.argsort(r_cols, kind="stable")
    r_rows, r_cols = r_rows[order], r_cols[order]
    uniq_cols, starts = np.unique(r_cols, return_index=True)
    ends = np.append(starts[1:], r_cols.size)
    for j, s, e in zip(uniq_cols, starts, ends):
        pins = np.unique(r_rows[s:e])
        pins = np.union1d(pins, [j + col_vertex_base])
        net_lists.append(pins)
    # Row nets over Ac.
    c_rows, c_cols = rows[~to_row], cols[~to_row]
    order = np.argsort(c_rows, kind="stable")
    c_rows, c_cols = c_rows[order], c_cols[order]
    uniq_rows, starts = np.unique(c_rows, return_index=True)
    ends = np.append(starts[1:], c_rows.size)
    for i, s, e in zip(uniq_rows, starts, ends):
        pins = np.unique(c_cols[s:e] + col_vertex_base)
        pins = np.union1d(pins, [i])
        net_lists.append(pins)

    xpins = np.zeros(len(net_lists) + 1, dtype=np.int64)
    for e, lst in enumerate(net_lists):
        xpins[e + 1] = xpins[e] + lst.size
    pins = (
        np.concatenate(net_lists)
        if net_lists
        else np.empty(0, dtype=np.int64)
    )
    hg = Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=vweights,
        ncosts=np.ones(len(net_lists), dtype=np.int64),
    )
    return MediumGrainModel(
        hypergraph=hg,
        rows=rows,
        cols=cols,
        to_row=to_row,
        nrows=m,
        ncols=n,
        amalgamated=amalgamated,
    )
