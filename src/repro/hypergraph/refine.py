"""Fiduccia–Mattheyses boundary refinement with integer gain buckets.

Cut-net metric (each net of cost ``c`` contributes ``c`` when it has
pins on both sides).  Under recursive bisection with cut-net splitting
this metric sums to the K-way connectivity-1 cost, which is exactly the
SpMV communication volume of the hypergraph models.

Balance is multi-constraint: a move is admissible only if every
constraint of the destination part stays within ``(1+ε)·target``, or if
it strictly reduces the worst violation when the partition is already
infeasible (needed right after projection in the V-cycle).

Implementation notes (the vectorized core):

- Move selection uses a classic FM **gain-bucket** structure — an array
  of doubly-linked lists indexed by integer gain, which is bounded by
  ``±Σ incident net costs`` — so select/update are O(1) instead of the
  seed implementation's lazy-deletion ``heapq`` (which accumulated
  millions of stale entries).
- Gains are initialized once per call and then maintained
  **incrementally**: applying a move updates only the pins of its
  critical nets (vectorized ragged gathers), and rolling back a move
  applies the inverse transition, so the gain array stays exact across
  passes and the per-pass ``initial_gains()`` recomputation of the seed
  code disappears.
- Nets with fewer than two pins are filtered out once up front into a
  per-vertex valid-net adjacency shared by every ``fm_refine`` call on
  the same hypergraph (and by the K-way polish).
- A pass whose best prefix shows no positive gain ends the refinement
  early (``max_passes`` is an upper bound, not a fixed trip count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import concat_spans as _ranges

__all__ = ["fm_refine", "bisection_cut", "part_weights"]

# A pass stops after this many consecutive moves without improving the
# best prefix score: the tail of a full hill-climb is rolled back with
# overwhelming probability, so walking it costs time and buys nothing.
# The quality golden tests pin the cut within 5% of the exhaustive seed
# implementation.
_STALL_FRACTION = 8  # limit = max(64, seeds/_STALL_FRACTION)


def part_weights(hg: Hypergraph, part: np.ndarray) -> np.ndarray:
    """Per-part, per-constraint weights; shape ``(2, ncon)``."""
    pw = np.zeros((2, hg.nconstraints), dtype=np.int64)
    np.add.at(pw, part, hg.vweights)
    return pw


def bisection_cut(hg: Hypergraph, part: np.ndarray) -> int:
    """Total cost of nets with pins on both sides."""
    sizes = np.diff(hg.xpins)
    side = part[hg.pins]
    ones = np.bincount(hg.net_of_pin, weights=side, minlength=hg.nnets).astype(
        np.int64
    )
    cut_mask = (ones > 0) & (ones < sizes)
    return int(hg.ncosts[cut_mask].sum())


def _violation(pw: np.ndarray, limits: np.ndarray) -> float:
    """Worst relative overrun of any (part, constraint) limit."""
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(limits > 0, pw / limits, np.where(pw > 0, np.inf, 1.0))
    return float(rel.max())


@dataclass
class _RefineContext:
    """Per-hypergraph arrays shared by every refinement call.

    Cached on the hypergraph instance, so the ``ninitial``
    coarsest-level trials and the per-level projections of one V-cycle
    all reuse one construction.
    """

    sizes: np.ndarray  # pin count per net
    valid: np.ndarray  # bool per net: size >= 2 (the only refinable nets)
    vnets_indptr: np.ndarray  # CSR: vertex -> its valid nets
    vnets: np.ndarray
    gain_bound: int  # max_v sum of valid incident net costs


def _context(hg: Hypergraph) -> _RefineContext:
    ctx = hg.__dict__.get("_refine_ctx")
    if ctx is None:
        sizes = np.diff(hg.xpins)
        valid = sizes >= 2
        mask = valid[hg.nets]
        vnets = hg.nets[mask]
        owners = hg.vert_of_pin[mask]
        counts = np.bincount(owners, minlength=hg.nvertices)
        vnets_indptr = np.zeros(hg.nvertices + 1, dtype=np.int64)
        np.cumsum(counts, out=vnets_indptr[1:])
        if owners.size:
            deg_cost = np.bincount(
                owners, weights=hg.ncosts[vnets].astype(np.float64),
                minlength=hg.nvertices,
            )
            gain_bound = int(deg_cost.max())
        else:
            gain_bound = 0
        ctx = _RefineContext(
            sizes=sizes,
            valid=valid,
            vnets_indptr=vnets_indptr,
            vnets=vnets,
            gain_bound=gain_bound,
        )
        hg.__dict__["_refine_ctx"] = ctx
    return ctx


def fm_refine(
    hg: Hypergraph,
    part: np.ndarray,
    targets: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    max_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Refine a bisection in place-semantics (a refined copy is returned).

    Returns ``(part, cut)`` with the final cut-net cost.
    """
    part = np.asarray(part, dtype=np.int8).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0:
        return part, 0

    ctx = _context(hg)
    xpins, pins, ncosts = hg.xpins, hg.pins, hg.ncosts
    valid = ctx.valid
    vipt, vnets = ctx.vnets_indptr, ctx.vnets
    net_of_pin = hg.net_of_pin
    vert_of_pin = hg.vert_of_pin

    limits = np.stack(
        [
            np.asarray(targets[0], dtype=np.float64) * (1.0 + epsilon),
            np.asarray(targets[1], dtype=np.float64) * (1.0 + epsilon),
        ]
    )
    # Fast violation evaluation: precompute reciprocal limits once; the
    # zero-limit convention matches :func:`_violation`.
    limit_pos = limits > 0
    inv_limits = np.zeros_like(limits)
    np.divide(1.0, limits, out=inv_limits, where=limit_pos)
    has_zero_limit = bool(np.any(~limit_pos))

    def _viol(pw: np.ndarray) -> float:
        rel = float((pw * inv_limits).max())
        if has_zero_limit:
            if np.any(pw[~limit_pos] > 0):
                return float("inf")
            rel = max(rel, 1.0)
        return rel

    # Pin counts per net per side, cut, part weights.
    pc = np.zeros((hg.nnets, 2), dtype=np.int64)
    np.add.at(pc, (net_of_pin, part[pins].astype(np.int64)), 1)
    cut = int(ncosts[(pc[:, 0] > 0) & (pc[:, 1] > 0)].sum())
    pw = part_weights(hg, part).astype(np.float64)
    wfloat = hg.vweights.astype(np.float64)

    # Exact gains for every vertex, computed once and maintained
    # incrementally by _apply (forward moves and rollbacks alike).
    gain = np.zeros(n, dtype=np.int64)
    pv = part[vert_of_pin].astype(np.int64)
    ee = hg.nets
    vm = valid[ee]
    ub = vm & (pc[ee, pv] == 1)
    cp = vm & (pc[ee, 1 - pv] == 0)
    np.add.at(gain, vert_of_pin[ub], ncosts[ee[ub]])
    np.subtract.at(gain, vert_of_pin[cp], ncosts[ee[cp]])

    gmax = ctx.gain_bound
    nbuckets = 2 * gmax + 1
    bhead = np.full(nbuckets, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    prv = np.full(n, -1, dtype=np.int64)
    inb = np.zeros(n, dtype=bool)
    bpos = np.zeros(n, dtype=np.int64)  # bucket index while linked
    locked = np.zeros(n, dtype=bool)

    def _insert(v: int, g: int) -> int:
        b = g + gmax
        h = bhead[b]
        nxt[v] = h
        prv[v] = -1
        if h >= 0:
            prv[h] = v
        bhead[b] = v
        inb[v] = True
        bpos[v] = b
        return b

    def _unlink(v: int) -> None:
        b = bpos[v]
        p, q = prv[v], nxt[v]
        if p >= 0:
            nxt[p] = q
        else:
            bhead[b] = q
        if q >= 0:
            prv[q] = p
        inb[v] = False

    sizes = ctx.sizes
    _empty = np.empty(0, dtype=np.int64)

    def _apply(v: int, a: int, b: int) -> np.ndarray:
        """Move ``v`` from side ``a`` to ``b``; update pc/part/gains.

        Returns the (possibly duplicated) array of other vertices whose
        gain changed.  ``gain[v]`` itself flips sign (the move-back
        gain), exactly preserving the invariant for every vertex.

        Critical transitions, per incident net of cost ``c``:
        A ``pc[e,b]==0`` — net becomes cut: every pin gains ``+c``;
        D ``pc[e,a]==1`` — net becomes internal to ``b``: every pin ``−c``;
        B ``pc[e,b]==1`` — the lone ``b`` pin loses its bonus: ``−c``;
        C ``pc[e,a]==2`` — the remaining ``a`` pin gains it: ``+c``.
        A/D update all pins unconditionally; B/C filter by current side.
        """
        lo, hi = vipt[v], vipt[v + 1]
        en = vnets[lo:hi]
        if en.size == 0:
            part[v] = b
            gain[v] = -gain[v]
            return _empty
        pa = pc[en, a]
        pb = pc[en, b]
        c = ncosts[en]
        g_old = int(gain[v])
        # Unconditional deltas (cases A and D are mutually exclusive).
        mad = (pb == 0) | (pa == 1)
        ead = en[mad]
        # Side-filtered deltas; one net can be in both B and C (size 3).
        mb = pb == 1
        mc = pa == 2
        ebc = np.concatenate((en[mb], en[mc]))
        if ead.size:
            lens = sizes[ead]
            us1 = pins[_ranges(xpins[ead], lens)]
            d1 = np.repeat(np.where(pb[mad] == 0, c[mad], -c[mad]), lens)
        else:
            us1, d1 = _empty, _empty
        if ebc.size:
            nb = int(mb.sum())
            lens = sizes[ebc]
            us2 = pins[_ranges(xpins[ebc], lens)]
            tgt = np.repeat(
                np.concatenate((np.full(nb, b, dtype=np.int8),
                                np.full(ebc.size - nb, a, dtype=np.int8))),
                lens,
            )
            d2 = np.repeat(np.concatenate((-c[mb], c[mc])), lens)
            keep = (part[us2] == tgt) & (us2 != v)
            us2 = us2[keep]
            d2 = d2[keep]
        else:
            us2, d2 = _empty, _empty
        if us1.size or us2.size:
            us = np.concatenate((us1, us2))
            np.add.at(gain, us, np.concatenate((d1, d2)))
        else:
            us = _empty
        pc[en, a] = pa - 1
        pc[en, b] = pb + 1
        part[v] = b
        # v's own gain is fully determined by the flip; overwrite any
        # spurious per-pin delta it received above.
        gain[v] = -g_old
        return us[us != v] if us.size else us

    for _ in range(max_passes):
        # Seeds: vertices on a cut net (the only useful FM starts).
        cut_nets = (pc[:, 0] > 0) & (pc[:, 1] > 0)
        if np.any(cut_nets):
            seeds = np.unique(vert_of_pin[cut_nets[hg.nets]])
        else:
            seeds = np.arange(n)
        if seeds.size == 0:
            break

        bhead.fill(-1)
        inb.fill(False)
        locked.fill(False)
        cur = 0
        for v in seeds.tolist():
            cur = max(cur, _insert(v, int(gain[v])))

        moves: list[int] = []
        move_sides: list[int] = []
        gain_sums: list[int] = []
        # Prefix score: feasibility dominates gain, so that a pass that
        # starts from an infeasible projection keeps its repair moves
        # even when they cut nets (all feasible states compare equal on
        # the first component).
        running = 0
        cur_violation = _viol(pw)
        initial_score = (max(cur_violation, 1.0), 0)
        best_so_far = initial_score
        best_pos = -1
        stall_limit = max(64, seeds.size // _STALL_FRACTION)

        # Scalar fast path for the ubiquitous single-constraint case.
        scalar = hg.nconstraints == 1 and not has_zero_limit
        if scalar:
            il0 = float(inv_limits[0, 0])
            il1 = float(inv_limits[1, 0])
            wl = wfloat[:, 0]
            p0 = float(pw[0, 0])
            p1 = float(pw[1, 0])

        while cur >= 0:
            v = int(bhead[cur])
            if v < 0:
                cur -= 1
                continue
            _unlink(v)
            a = int(part[v])
            b = 1 - a
            if scalar:
                w = wl[v]
                n0, n1 = (p0 - w, p1 + w) if a == 0 else (p0 + w, p1 - w)
                new_violation = max(n0 * il0, n1 * il1)
            else:
                w = wfloat[v]
                new_pw = pw.copy()
                new_pw[a] -= w
                new_pw[b] += w
                new_violation = _viol(new_pw)
            if new_violation > 1.0 and new_violation >= cur_violation:
                continue  # inadmissible: would (keep) violating balance
            locked[v] = True
            move_gain = int(gain[v])
            changed = _apply(v, a, b)
            if changed.size:
                changed = np.unique(changed)
                for u in changed[~locked[changed]].tolist():
                    if inb[u]:
                        _unlink(u)
                    cur = max(cur, _insert(u, int(gain[u])))
            running += move_gain
            if scalar:
                p0, p1 = n0, n1
            else:
                pw = new_pw
            cur_violation = new_violation
            moves.append(v)
            move_sides.append(b)
            gain_sums.append(running)
            score = (max(cur_violation, 1.0), -running)
            if score < best_so_far:
                best_so_far = score
                best_pos = len(moves) - 1
            elif len(moves) - 1 - best_pos >= stall_limit:
                break  # the tail is heading for rollback anyway
        if scalar:
            pw = np.array([[p0], [p1]])

        if not moves:
            break
        # best_pos is the first index achieving the minimal prefix
        # score, or -1 when no prefix improves on the pass's start.
        best_idx = best_pos
        best_gain = gain_sums[best_idx] if best_idx >= 0 else 0
        # Roll back moves after the best prefix (inverse transitions
        # keep the incremental gain array exact for the next pass).
        for i in range(len(moves) - 1, best_idx, -1):
            v = moves[i]
            b = move_sides[i]
            a = 1 - b
            _apply(v, b, a)
            w = wfloat[v]
            pw[b] -= w
            pw[a] += w
        if best_idx == -1:
            break
        cut -= best_gain  # negative best_gain = volume paid for balance
        if best_gain <= 0 and best_so_far[0] <= 1.0:
            break  # feasible and no volume improvement: converged

    return part, cut
