"""Fiduccia–Mattheyses boundary refinement for bisections.

Cut-net metric (each net of cost ``c`` contributes ``c`` when it has
pins on both sides).  Under recursive bisection with cut-net splitting
this metric sums to the K-way connectivity-1 cost, which is exactly the
SpMV communication volume of the hypergraph models.

Balance is multi-constraint: a move is admissible only if every
constraint of the destination part stays within ``(1+ε)·target``, or if
it strictly reduces the worst violation when the partition is already
infeasible (needed right after projection in the V-cycle).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["fm_refine", "bisection_cut", "part_weights"]


def part_weights(hg: Hypergraph, part: np.ndarray) -> np.ndarray:
    """Per-part, per-constraint weights; shape ``(2, ncon)``."""
    pw = np.zeros((2, hg.nconstraints), dtype=np.int64)
    np.add.at(pw, part, hg.vweights)
    return pw


def bisection_cut(hg: Hypergraph, part: np.ndarray) -> int:
    """Total cost of nets with pins on both sides."""
    sizes = np.diff(hg.xpins)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    side = part[hg.pins]
    ones = np.zeros(hg.nnets, dtype=np.int64)
    np.add.at(ones, net_of_pin, side)
    cut_mask = (ones > 0) & (ones < sizes)
    return int(hg.ncosts[cut_mask].sum())


def _violation(pw: np.ndarray, limits: np.ndarray) -> float:
    """Worst relative overrun of any (part, constraint) limit."""
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(limits > 0, pw / limits, np.where(pw > 0, np.inf, 1.0))
    return float(rel.max())


def fm_refine(
    hg: Hypergraph,
    part: np.ndarray,
    targets: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    max_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """Refine a bisection in place-semantics (a refined copy is returned).

    Returns ``(part, cut)`` with the final cut-net cost.
    """
    part = np.asarray(part, dtype=np.int8).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0:
        return part, 0

    xpins, pins = hg.xpins, hg.pins
    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts
    sizes = np.diff(xpins)

    limits = np.stack(
        [
            np.asarray(targets[0], dtype=np.float64) * (1.0 + epsilon),
            np.asarray(targets[1], dtype=np.float64) * (1.0 + epsilon),
        ]
    )

    # pin counts per net per side
    pc = np.zeros((hg.nnets, 2), dtype=np.int64)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    np.add.at(pc, (net_of_pin, part[pins].astype(np.int64)), 1)
    cut = int(ncosts[(pc[:, 0] > 0) & (pc[:, 1] > 0)].sum())
    pw = part_weights(hg, part).astype(np.float64)

    # Vertex-major pin traversal arrays (for vectorised gain setup).
    vert_of_pin = np.repeat(np.arange(n, dtype=np.int64), np.diff(xnets))

    def initial_gains() -> np.ndarray:
        """gain[v] = Σ_{e∋v, v alone on its side} c_e − Σ_{e∋v, internal} c_e."""
        g = np.zeros(n, dtype=np.int64)
        pv = part[vert_of_pin].astype(np.int64)
        ee = nets
        valid = sizes[ee] >= 2
        uncut_bonus = pc[ee, pv] == 1
        cut_penalty = pc[ee, 1 - pv] == 0
        np.add.at(g, vert_of_pin[valid & uncut_bonus], ncosts[ee[valid & uncut_bonus]])
        np.subtract.at(g, vert_of_pin[valid & cut_penalty], ncosts[ee[valid & cut_penalty]])
        return g

    def boundary_vertices() -> np.ndarray:
        """Vertices incident to a cut net (the only useful FM seeds)."""
        cut_nets = (pc[:, 0] > 0) & (pc[:, 1] > 0)
        if not np.any(cut_nets):
            return np.empty(0, dtype=np.int64)
        return np.unique(vert_of_pin[cut_nets[nets]])

    for _ in range(max_passes):
        gain = initial_gains()
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[int, int, int]] = []
        counter = 0
        seeds = boundary_vertices()
        if seeds.size == 0:
            seeds = np.arange(n)
        for v in seeds:
            heapq.heappush(heap, (-int(gain[v]), counter, int(v)))
            counter += 1

        moves: list[int] = []
        gain_sums: list[int] = []
        # Prefix score: feasibility dominates gain, so that a pass that
        # starts from an infeasible projection keeps its repair moves
        # even when they cut nets (all feasible states compare equal on
        # the first component).
        scores: list[tuple[float, int]] = []
        running = 0
        cur_violation = _violation(pw, limits)
        initial_score = (max(cur_violation, 1.0), 0)

        while heap:
            negg, _, v = heapq.heappop(heap)
            if locked[v] or -negg != gain[v]:
                continue
            a = int(part[v])
            b = 1 - a
            w = hg.vweights[v].astype(np.float64)
            new_pw = pw.copy()
            new_pw[a] -= w
            new_pw[b] += w
            new_violation = _violation(new_pw, limits)
            if new_violation > 1.0 and new_violation >= cur_violation:
                continue  # inadmissible: would (keep) violating balance
            # Lock v *before* the neighbour updates: v is a pin of its
            # own nets and its frozen gain is the move's cut delta.
            locked[v] = True
            move_gain = int(gain[v])
            # ---- apply the move, with incremental gain updates ----
            for e in nets[xnets[v] : xnets[v + 1]]:
                if sizes[e] < 2:
                    continue
                c = int(ncosts[e])
                epins = pins[xpins[e] : xpins[e + 1]]
                if pc[e, b] == 0:
                    for u in epins:
                        if not locked[u]:
                            gain[u] += c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                elif pc[e, b] == 1:
                    for u in epins:
                        if part[u] == b and not locked[u]:
                            gain[u] -= c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                pc[e, a] -= 1
                pc[e, b] += 1
                if pc[e, a] == 0:
                    for u in epins:
                        if not locked[u]:
                            gain[u] -= c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                elif pc[e, a] == 1:
                    for u in epins:
                        if part[u] == a and u != v and not locked[u]:
                            gain[u] += c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
            running += move_gain
            part[v] = b
            pw = new_pw
            cur_violation = new_violation
            moves.append(v)
            gain_sums.append(running)
            scores.append((max(cur_violation, 1.0), -running))

        if not moves:
            break
        best_idx = min(range(len(scores)), key=lambda i: scores[i])
        best_gain = gain_sums[best_idx]
        if scores[best_idx] >= initial_score:
            best_idx = -1  # no prefix improves: roll everything back
            best_gain = 0
        # Roll back moves after the best prefix.
        for v in moves[best_idx + 1 :]:
            b = int(part[v])
            a = 1 - b
            part[v] = a
            w = hg.vweights[v].astype(np.float64)
            pw[b] -= w
            pw[a] += w
            for e in nets[xnets[v] : xnets[v + 1]]:
                if sizes[e] >= 2:
                    pc[e, b] -= 1
                    pc[e, a] += 1
        if best_idx == -1:
            break
        cut -= best_gain  # negative best_gain = volume paid for balance
        if best_gain <= 0 and scores[best_idx][0] <= 1.0:
            break  # feasible and no volume improvement: converged

    return part, cut
