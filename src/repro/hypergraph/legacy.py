"""The seed (pre-vectorization) multilevel partitioner, preserved.

This module freezes the original pure-Python implementation of the
multilevel recursive-bisection partitioner — per-vertex HCM matching,
``heapq``-based FM with full gain recomputation per pass, per-pin
greedy growing — exactly as the repository shipped it.  It is the
golden quality reference the vectorized partitioner is pinned against
(``tests/test_partitioner_vectorized.py``) and the baseline timed by
``benchmarks/bench_partitioner.py``.  Never used on a hot path.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigError
from repro.hypergraph.hypergraph import Hypergraph
from repro.rng import as_generator, spawn

__all__ = [
    "legacy_partition_kway",
    "legacy_multilevel_bisect",
    "legacy_coarsen_once",
    "legacy_fm_refine",
    "legacy_greedy_growing",
    "legacy_random_bisection",
    "legacy_kway_greedy_refine",
]


# ----------------------------------------------------------------------
# Coarsening (heavy-connectivity matching, per-vertex scan)
# ----------------------------------------------------------------------


def legacy_coarsen_once(
    hg: Hypergraph,
    rng: np.random.Generator,
    max_net_size: int = 200,
) -> tuple[np.ndarray, Hypergraph]:
    """One level of heavy-connectivity matching (seed implementation)."""
    n = hg.nvertices
    xpins, pins = hg.xpins, hg.pins
    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts
    sizes = np.diff(xpins)

    mate = np.full(n, -1, dtype=np.int64)
    score = np.zeros(n, dtype=np.float64)
    order = rng.permutation(n)

    for v in order:
        if mate[v] != -1:
            continue
        touched: list[int] = []
        for e in nets[xnets[v] : xnets[v + 1]]:
            sz = sizes[e]
            if sz < 2 or sz > max_net_size:
                continue
            contrib = ncosts[e] / (sz - 1)
            for u in pins[xpins[e] : xpins[e + 1]]:
                if u != v and mate[u] == -1:
                    if score[u] == 0.0:
                        touched.append(u)
                    score[u] += contrib
        best = -1
        best_score = 0.0
        for u in touched:
            if score[u] > best_score:
                best_score = score[u]
                best = u
            score[u] = 0.0
        if best != -1:
            mate[v] = best
            mate[best] = v

    cmap = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if cmap[v] != -1:
            continue
        cmap[v] = next_id
        if mate[v] != -1:
            cmap[mate[v]] = next_id
        next_id += 1

    coarse = _legacy_contract(hg, cmap, next_id)
    return cmap, coarse


def _legacy_contract(hg: Hypergraph, cmap: np.ndarray, ncoarse: int) -> Hypergraph:
    vweights = np.zeros((ncoarse, hg.nconstraints), dtype=np.int64)
    np.add.at(vweights, cmap, hg.vweights)

    net_key: dict[bytes, int] = {}
    net_pins: list[np.ndarray] = []
    net_costs: list[int] = []
    for e in range(hg.nnets):
        mapped = np.unique(cmap[hg.net_pins(e)])
        if mapped.size < 2:
            continue
        key = mapped.tobytes()
        idx = net_key.get(key)
        if idx is None:
            net_key[key] = len(net_pins)
            net_pins.append(mapped)
            net_costs.append(int(hg.ncosts[e]))
        else:
            net_costs[idx] += int(hg.ncosts[e])

    xpins = np.zeros(len(net_pins) + 1, dtype=np.int64)
    for e, lst in enumerate(net_pins):
        xpins[e + 1] = xpins[e] + lst.size
    pins = np.concatenate(net_pins) if net_pins else np.empty(0, dtype=np.int64)
    return Hypergraph(
        xpins=xpins,
        pins=pins,
        vweights=vweights,
        ncosts=np.asarray(net_costs, dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Initial bisections
# ----------------------------------------------------------------------


def _fits(pw0: np.ndarray, w: np.ndarray, t0: np.ndarray) -> bool:
    return bool(np.all(pw0 + w <= t0))


def legacy_random_bisection(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Shuffled greedy fill to the target weight (seed implementation)."""
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(hg.nvertices, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.int64)
    for v in rng.permutation(hg.nvertices):
        w = hg.vweights[v]
        if _fits(pw0, w, t0):
            part[v] = 0
            pw0 += w
    return part


def legacy_greedy_growing(
    hg: Hypergraph, targets: tuple[np.ndarray, np.ndarray], rng: np.random.Generator
) -> np.ndarray:
    """Greedy hypergraph growing via a lazy-deletion heap (seed impl)."""
    n = hg.nvertices
    t0 = np.asarray(targets[0], dtype=np.float64)
    part = np.ones(n, dtype=np.int8)
    pw0 = np.zeros(hg.nconstraints, dtype=np.int64)
    gain = np.zeros(n, dtype=np.float64)
    in0 = np.zeros(n, dtype=bool)

    heap: list[tuple[float, int, int]] = []
    counter = 0
    seed_order = iter(rng.permutation(n))

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (-gain[v], counter, v))
        counter += 1

    sizes = hg.net_sizes()
    while True:
        if not heap:
            seed = next((s for s in seed_order if not in0[s]), None)
            if seed is None:
                break
            gain[seed] = 0.0
            push(seed)
        g, _, v = heapq.heappop(heap)
        if in0[v] or -g != gain[v]:
            continue
        w = hg.vweights[v]
        if not _fits(pw0, w, t0):
            continue
        in0[v] = True
        part[v] = 0
        pw0 += w
        if np.all(pw0 >= t0):
            break
        for e in hg.vertex_nets(v):
            if sizes[e] < 2:
                continue
            bump = hg.ncosts[e] / (sizes[e] - 1)
            for u in hg.net_pins(e):
                if not in0[u]:
                    gain[u] += bump
                    push(u)
    return part


# ----------------------------------------------------------------------
# FM refinement (lazy-deletion heap, full gain recompute per pass)
# ----------------------------------------------------------------------


def _part_weights(hg: Hypergraph, part: np.ndarray) -> np.ndarray:
    pw = np.zeros((2, hg.nconstraints), dtype=np.int64)
    np.add.at(pw, part, hg.vweights)
    return pw


def _bisection_cut(hg: Hypergraph, part: np.ndarray) -> int:
    sizes = np.diff(hg.xpins)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    side = part[hg.pins]
    ones = np.zeros(hg.nnets, dtype=np.int64)
    np.add.at(ones, net_of_pin, side)
    cut_mask = (ones > 0) & (ones < sizes)
    return int(hg.ncosts[cut_mask].sum())


def _violation(pw: np.ndarray, limits: np.ndarray) -> float:
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(limits > 0, pw / limits, np.where(pw > 0, np.inf, 1.0))
    return float(rel.max())


def legacy_fm_refine(
    hg: Hypergraph,
    part: np.ndarray,
    targets: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    max_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, int]:
    """The seed heap-based FM; see :func:`repro.hypergraph.refine.fm_refine`."""
    part = np.asarray(part, dtype=np.int8).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0:
        return part, 0

    xpins, pins = hg.xpins, hg.pins
    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts
    sizes = np.diff(xpins)

    limits = np.stack(
        [
            np.asarray(targets[0], dtype=np.float64) * (1.0 + epsilon),
            np.asarray(targets[1], dtype=np.float64) * (1.0 + epsilon),
        ]
    )

    pc = np.zeros((hg.nnets, 2), dtype=np.int64)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    np.add.at(pc, (net_of_pin, part[pins].astype(np.int64)), 1)
    cut = int(ncosts[(pc[:, 0] > 0) & (pc[:, 1] > 0)].sum())
    pw = _part_weights(hg, part).astype(np.float64)

    vert_of_pin = np.repeat(np.arange(n, dtype=np.int64), np.diff(xnets))

    def initial_gains() -> np.ndarray:
        g = np.zeros(n, dtype=np.int64)
        pv = part[vert_of_pin].astype(np.int64)
        ee = nets
        valid = sizes[ee] >= 2
        uncut_bonus = pc[ee, pv] == 1
        cut_penalty = pc[ee, 1 - pv] == 0
        np.add.at(g, vert_of_pin[valid & uncut_bonus], ncosts[ee[valid & uncut_bonus]])
        np.subtract.at(g, vert_of_pin[valid & cut_penalty], ncosts[ee[valid & cut_penalty]])
        return g

    def boundary_vertices() -> np.ndarray:
        cut_nets = (pc[:, 0] > 0) & (pc[:, 1] > 0)
        if not np.any(cut_nets):
            return np.empty(0, dtype=np.int64)
        return np.unique(vert_of_pin[cut_nets[nets]])

    for _ in range(max_passes):
        gain = initial_gains()
        locked = np.zeros(n, dtype=bool)
        heap: list[tuple[int, int, int]] = []
        counter = 0
        seeds = boundary_vertices()
        if seeds.size == 0:
            seeds = np.arange(n)
        for v in seeds:
            heapq.heappush(heap, (-int(gain[v]), counter, int(v)))
            counter += 1

        moves: list[int] = []
        gain_sums: list[int] = []
        scores: list[tuple[float, int]] = []
        running = 0
        cur_violation = _violation(pw, limits)
        initial_score = (max(cur_violation, 1.0), 0)

        while heap:
            negg, _, v = heapq.heappop(heap)
            if locked[v] or -negg != gain[v]:
                continue
            a = int(part[v])
            b = 1 - a
            w = hg.vweights[v].astype(np.float64)
            new_pw = pw.copy()
            new_pw[a] -= w
            new_pw[b] += w
            new_violation = _violation(new_pw, limits)
            if new_violation > 1.0 and new_violation >= cur_violation:
                continue
            locked[v] = True
            move_gain = int(gain[v])
            for e in nets[xnets[v] : xnets[v + 1]]:
                if sizes[e] < 2:
                    continue
                c = int(ncosts[e])
                epins = pins[xpins[e] : xpins[e + 1]]
                if pc[e, b] == 0:
                    for u in epins:
                        if not locked[u]:
                            gain[u] += c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                elif pc[e, b] == 1:
                    for u in epins:
                        if part[u] == b and not locked[u]:
                            gain[u] -= c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                pc[e, a] -= 1
                pc[e, b] += 1
                if pc[e, a] == 0:
                    for u in epins:
                        if not locked[u]:
                            gain[u] -= c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
                elif pc[e, a] == 1:
                    for u in epins:
                        if part[u] == a and u != v and not locked[u]:
                            gain[u] += c
                            heapq.heappush(heap, (-int(gain[u]), counter, u))
                            counter += 1
            running += move_gain
            part[v] = b
            pw = new_pw
            cur_violation = new_violation
            moves.append(v)
            gain_sums.append(running)
            scores.append((max(cur_violation, 1.0), -running))

        if not moves:
            break
        best_idx = min(range(len(scores)), key=lambda i: scores[i])
        best_gain = gain_sums[best_idx]
        if scores[best_idx] >= initial_score:
            best_idx = -1
            best_gain = 0
        for v in moves[best_idx + 1 :]:
            b = int(part[v])
            a = 1 - b
            part[v] = a
            w = hg.vweights[v].astype(np.float64)
            pw[b] -= w
            pw[a] += w
            for e in nets[xnets[v] : xnets[v + 1]]:
                if sizes[e] >= 2:
                    pc[e, b] -= 1
                    pc[e, a] += 1
        if best_idx == -1:
            break
        cut -= best_gain
        if best_gain <= 0 and scores[best_idx][0] <= 1.0:
            break

    return part, cut


# ----------------------------------------------------------------------
# Multilevel V-cycle and recursive bisection driver
# ----------------------------------------------------------------------


def legacy_multilevel_bisect(
    hg: Hypergraph,
    targets: tuple[np.ndarray, np.ndarray],
    epsilon: float,
    rng: np.random.Generator,
    coarsen_to: int = 120,
    ninitial: int = 4,
    fm_passes: int = 4,
    max_net_size: int = 200,
) -> tuple[np.ndarray, int]:
    """The seed multilevel bisection V-cycle."""
    levels: list[Hypergraph] = []
    maps: list[np.ndarray] = []
    cur = hg
    while cur.nvertices > coarsen_to and len(levels) < 40:
        cmap, coarse = legacy_coarsen_once(cur, rng, max_net_size=max_net_size)
        if coarse.nvertices > 0.95 * cur.nvertices:
            break
        levels.append(cur)
        maps.append(cmap)
        cur = coarse

    best_part: np.ndarray | None = None
    best_cut = np.iinfo(np.int64).max
    for trial, trial_rng in enumerate(spawn(rng, max(1, ninitial))):
        if trial % 2 == 0:
            part0 = legacy_greedy_growing(cur, targets, trial_rng)
        else:
            part0 = legacy_random_bisection(cur, targets, trial_rng)
        part0, cut0 = legacy_fm_refine(
            cur, part0, targets, epsilon, max_passes=fm_passes, rng=trial_rng
        )
        if cut0 < best_cut:
            best_cut = cut0
            best_part = part0
    assert best_part is not None
    part = best_part

    for level_hg, cmap in zip(reversed(levels), reversed(maps)):
        part = part[cmap]
        part, best_cut = legacy_fm_refine(
            level_hg, part, targets, epsilon, max_passes=fm_passes, rng=rng
        )
    return part, best_cut


def legacy_kway_greedy_refine(
    hg: Hypergraph,
    part: np.ndarray,
    nparts: int,
    epsilon: float = 0.03,
    max_passes: int = 3,
) -> np.ndarray:
    """The seed per-vertex K-way greedy polish."""
    part = np.asarray(part, dtype=np.int64).copy()
    n = hg.nvertices
    if n == 0 or hg.nnets == 0 or nparts < 2:
        return part

    sizes = np.diff(hg.xpins)
    net_of_pin = np.repeat(np.arange(hg.nnets), sizes)
    pc = np.zeros((hg.nnets, nparts), dtype=np.int64)
    np.add.at(pc, (net_of_pin, part[hg.pins]), 1)

    pw = np.zeros((nparts, hg.nconstraints), dtype=np.float64)
    np.add.at(pw, part, hg.vweights.astype(np.float64))
    limit = hg.total_weight().astype(np.float64) / nparts * (1.0 + epsilon)

    xnets, nets = hg.xnets, hg.nets
    ncosts = hg.ncosts

    for _ in range(max_passes):
        lam = (pc > 0).sum(axis=1)
        cut_nets = lam >= 2
        vert_of_pin = np.repeat(np.arange(n), np.diff(xnets))
        boundary = np.unique(vert_of_pin[cut_nets[nets]])
        moved = 0
        for v in boundary:
            a = int(part[v])
            enets_all = nets[xnets[v] : xnets[v + 1]]
            enets = enets_all[sizes[enets_all] >= 2]
            if enets.size == 0:
                continue
            cand = np.unique(
                np.concatenate([np.flatnonzero(pc[e] > 0) for e in enets])
            )
            best_b, best_gain = -1, 0
            w = hg.vweights[v].astype(np.float64)
            for b in cand:
                if b == a:
                    continue
                if np.any(pw[b] + w > limit):
                    continue
                gain = 0
                for e in enets:
                    c = int(ncosts[e])
                    if pc[e, a] == 1 and pc[e, b] >= 1:
                        gain += c
                    elif pc[e, a] >= 2 and pc[e, b] == 0:
                        gain -= c
                if gain > best_gain:
                    best_gain = gain
                    best_b = int(b)
            if best_b >= 0:
                for e in enets_all:
                    pc[e, a] -= 1
                    pc[e, best_b] += 1
                pw[a] -= w
                pw[best_b] += w
                part[v] = best_b
                moved += 1
        if moved == 0:
            break
    return part


def legacy_partition_kway(hg: Hypergraph, nparts: int, config=None) -> np.ndarray:
    """The seed K-way recursive-bisection driver.

    ``config`` is a :class:`repro.hypergraph.PartitionConfig` (imported
    lazily to avoid a cycle with the rewritten partitioner module).
    """
    from repro.hypergraph.partitioner import PartitionConfig

    if nparts < 1:
        raise ConfigError("nparts must be at least 1")
    config = config or PartitionConfig()
    rng = as_generator(config.seed)
    depth = max(1, int(np.ceil(np.log2(nparts)))) if nparts > 1 else 1
    eps_level = (1.0 + config.epsilon) ** (1.0 / depth) - 1.0
    part = np.zeros(hg.nvertices, dtype=np.int64)
    _legacy_recurse(hg, np.arange(hg.nvertices), nparts, 0, part, eps_level, config, rng)
    if nparts > 1 and config.kway_passes > 0:
        part = legacy_kway_greedy_refine(
            hg, part, nparts, epsilon=config.epsilon, max_passes=config.kway_passes
        )
    return part


def _legacy_recurse(hg, vertex_ids, nparts, offset, out, eps_level, config, rng) -> None:
    from repro.hypergraph.partitioner import _split_side

    if nparts == 1 or hg.nvertices == 0:
        out[vertex_ids] = offset
        return
    k0 = (nparts + 1) // 2
    k1 = nparts - k0
    total = hg.total_weight().astype(np.float64)
    t0 = total * (k0 / nparts)
    t1 = total - t0
    part, _ = legacy_multilevel_bisect(
        hg,
        (t0, t1),
        eps_level,
        rng,
        coarsen_to=max(config.coarsen_to, 8 * nparts),
        ninitial=config.ninitial,
        fm_passes=config.fm_passes,
        max_net_size=config.max_net_size,
    )
    rng0, rng1 = spawn(rng, 2)
    for side, kk, off, side_rng in ((0, k0, offset, rng0), (1, k1, offset + k0, rng1)):
        ids = np.flatnonzero(part == side)
        if kk == 1 or ids.size == 0:
            out[vertex_ids[ids]] = off
            continue
        sub = _split_side(hg, part, side)
        _legacy_recurse(sub, vertex_ids[ids], kk, off, out, eps_level, config, side_rng)
