"""From-scratch multilevel hypergraph partitioner (PaToH substitute).

The paper obtains all of its vector/nonzero partitions from PaToH, a
closed-source multilevel hypergraph partitioner.  This package
implements the same algorithmic recipe:

- :mod:`repro.hypergraph.hypergraph` — the pin-CSR data structure;
- :mod:`repro.hypergraph.models` — the hypergraph models of the sparse
  partitioning literature: column-net (1D rowwise), row-net (1D
  columnwise), fine-grain row-column-net (2D), and the medium-grain
  composite model of Pelt & Bisseling;
- :mod:`repro.hypergraph.coarsen` — heavy-connectivity agglomerative
  coarsening;
- :mod:`repro.hypergraph.initial` — greedy hypergraph growing and
  random initial bisections;
- :mod:`repro.hypergraph.refine` — Fiduccia–Mattheyses boundary
  refinement with cut-net metric and multi-constraint balance;
- :mod:`repro.hypergraph.bisect` — the multilevel V-cycle;
- :mod:`repro.hypergraph.partitioner` — recursive-bisection K-way
  driver with cut-net splitting (exactly models the connectivity-1
  communication-volume metric);
- :mod:`repro.hypergraph.profiling` — per-stage wall-clock profiling of
  the multilevel pipeline;
- :mod:`repro.hypergraph.legacy` — the seed (pre-vectorization)
  implementation, kept as golden quality reference and benchmark
  baseline.
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.models import (
    column_net_model,
    fine_grain_model,
    medium_grain_model,
    medium_grain_split,
    row_net_model,
)
from repro.hypergraph.partitioner import (
    PartitionConfig,
    connectivity_minus_one,
    cutnet_cost,
    imbalance,
    partition_kway,
)
from repro.hypergraph.profiling import PartitionProfile

__all__ = [
    "Hypergraph",
    "column_net_model",
    "row_net_model",
    "fine_grain_model",
    "medium_grain_model",
    "medium_grain_split",
    "PartitionConfig",
    "PartitionProfile",
    "partition_kway",
    "connectivity_minus_one",
    "cutnet_cost",
    "imbalance",
]
