"""repro — semi-two-dimensional (s2D) sparse-matrix partitioning.

A full reproduction of Kayaaslan, Uçar & Aykanat, *"Semi-two-
dimensional partitioning for parallel sparse matrix-vector
multiplication"* (PCO 2015 / IPDPSW), built on from-scratch substrates:
a multilevel hypergraph partitioner, the Dulmage–Mendelsohn
decomposition, and a distributed-memory SpMV simulator.

Quick start::

    import scipy.sparse as sp
    from repro import PartitionEngine

    a = sp.random(1000, 1000, density=0.01) + sp.eye(1000)
    engine = PartitionEngine(a, seed=1)
    oned = engine.plan("1d-rowwise", 16)
    s2d = engine.plan("s2d-heuristic", 16)  # reuses 1D's vectors + analytics
    print(oned.quality().total_volume, s2d.quality().total_volume)

The lower-level construction functions (``partition_1d_rowwise``,
``s2d_heuristic`` …) remain available for one-off use.

See ``DESIGN.md`` for the subsystem inventory and ``EXPERIMENTS.md``
for the reproduced tables/figures.
"""

from repro.core import (
    bounded_comm_stats,
    make_s2d_bounded,
    pairwise_volumes,
    partition_s2d_medium_grain,
    s2d_heuristic,
    s2d_heuristic_balanced,
    s2d_optimal,
    single_phase_comm_stats,
    two_phase_comm_stats,
)
from repro.engine import PartitionEngine, Plan, available_methods
from repro.partition.serialize import (
    load_partition,
    load_plan,
    save_partition,
    save_plan,
)
from repro.runtime import CommPlan, compile_plan
from repro.solvers import conjugate_gradient, jacobi, power_iteration
from repro.hypergraph import PartitionConfig, partition_kway
from repro.partition import (
    SpMVPartition,
    VectorPartition,
    partition_1d_boman,
    partition_1d_columnwise,
    partition_1d_rowwise,
    partition_2d_finegrain,
    partition_checkerboard,
)
from repro.simulate import (
    MachineModel,
    evaluate,
    run_s2d_bounded,
    run_single_phase,
    run_two_phase,
)
from repro.sparse import matrix_properties, read_matrix_market, write_matrix_market

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # unified pipeline
    "PartitionEngine",
    "Plan",
    "available_methods",
    # s2D core
    "s2d_optimal",
    "s2d_heuristic",
    "s2d_heuristic_balanced",
    "make_s2d_bounded",
    "partition_s2d_medium_grain",
    "single_phase_comm_stats",
    "two_phase_comm_stats",
    "bounded_comm_stats",
    "pairwise_volumes",
    # compiled runtime
    "CommPlan",
    "compile_plan",
    # solvers and persistence
    "power_iteration",
    "jacobi",
    "conjugate_gradient",
    "save_partition",
    "load_partition",
    "save_plan",
    "load_plan",
    # baselines
    "partition_1d_rowwise",
    "partition_1d_columnwise",
    "partition_2d_finegrain",
    "partition_checkerboard",
    "partition_1d_boman",
    # types
    "SpMVPartition",
    "VectorPartition",
    "PartitionConfig",
    "partition_kway",
    # simulation
    "MachineModel",
    "evaluate",
    "run_single_phase",
    "run_two_phase",
    "run_s2d_bounded",
    # sparse utilities
    "matrix_properties",
    "read_matrix_market",
    "write_matrix_market",
]
