"""Command-line interface.

::

    python -m repro.cli suite  --which table1 --scale small
    python -m repro.cli table  --id 2 --scale tiny
    python -m repro.cli table  --id 2 --jobs 4 --cache-dir ~/.cache/s2d-repro
    python -m repro.cli figure1
    python -m repro.cli spy --matrix trdheim --scheme s2d --k 3 --scale tiny
    python -m repro.cli partition --matrix c-big --scheme s2d --k 16
    python -m repro.cli partition --mtx path/to/file.mtx --scheme 2d --k 8
    python -m repro.cli simulate --matrix c-big --scheme s2d --k 16 --profile
    python -m repro.cli simulate --matrix trdheim --k 8 --all
    python -m repro.cli solve --matrix trdheim --scheme s2d --k 8 --solver power
    python -m repro.cli solve --matrix trdheim --scheme s2d --k 8 --jobs 0
    python -m repro.cli solve --matrix trdheim --scheme s2d --k 8 --backend native
    python -m repro.cli native-info
    python -m repro.cli campaign run --table 2 --dir runs/t2 --jobs 4
    python -m repro.cli campaign resume --table 2 --dir runs/t2 --jobs 4
    python -m repro.cli campaign status --dir runs/t2
    python -m repro.cli check lint
    python -m repro.cli check protocol --workers 2 3 4 --max-faults 1
    python -m repro.cli check plan --matrix trdheim --scheme s2d --k 8 --scale tiny
    python -m repro.cli check plan --plan-file saved-plan.npz

The ``table`` subcommand regenerates any of the paper's Tables I–VII
through the sweep orchestrator — ``--jobs N`` fans the per-matrix tasks
over a process pool (records bit-identical to serial), ``--cache-dir``
persists partitions and evaluated records so a warm rerun is pure
cache reads;
``partition`` runs one scheme on one matrix and prints the quality
summary the tables are made of; ``simulate`` runs the simulated SpMV
executors themselves (``--all`` batches every registered method over
shared intermediates, ``--profile`` adds per-phase wall-clock timings
and the machine-model cost breakdown); ``solve`` runs an iterative
solver (power iteration, Jacobi, CG) on the compiled SpMV runtime —
the partition is compiled once into a reusable communication plan and
every iteration is a pure array apply.  ``solve --jobs N`` multiplies
on the shared-memory parallel executor instead (``0`` = one worker per
core); the answer is bit-identical and the bytes actually moved
through the shared buffers are reconciled against the machine-model
ledger.  ``--backend {auto,numpy,native}`` (on ``solve`` and ``table``)
selects the numeric kernels; ``native-info`` reports whether the
native C kernel backend is available and where its build cache lives.

``campaign`` is the crash-safe way to run a table-scale grid: every
cell lifecycle event lands in an append-only checksummed journal under
``--dir``, so a ``kill -9`` at any point loses at most the in-flight
cells — ``campaign resume`` replays the journal, rehydrates completed
cells from the artifact cache (zero recompute, bit-identical records)
and finishes the rest; ``campaign status`` reports progress and an ETA
from measured per-cell durations.  Failing cells are retried with
exponential backoff; deterministic failures are quarantined and
reported without aborting the rest of the grid.

``check`` runs the static verification layer and exits 1 on any
violation: ``check plan`` proves a compiled plan's index-array IR
well-formed (from a partitioned suite matrix, or a saved ``.npz`` via
``--plan-file``), ``check lint`` runs the project AST lint over the
``repro`` package, ``check protocol`` exhaustively model-checks the
parallel executor's semaphore superstep protocol including crash
faults.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import ALIASES, PartitionEngine, available_methods
from repro.errors import ConfigError, UsageError
from repro.native import BACKENDS
from repro.experiments import (
    ExperimentConfig,
    figure1_report,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.generators.suite import SCALES, table1_suite, table4_suite
from repro.sparse import matrix_properties, read_matrix_market

__all__ = ["main"]

_TABLES = {
    1: run_table1,
    2: run_table2,
    3: run_table3,
    4: run_table4,
    5: run_table5,
    6: run_table6,
    7: run_table7,
}

# Historical short spellings plus the engine's canonical method names;
# either resolves through the registry.
_SCHEMES = tuple(sorted(set(ALIASES) | set(available_methods())))


def _find_matrix(name: str, scale: str):
    for sm in table1_suite(scale) + table4_suite(scale):
        if sm.name == name:
            return sm.matrix()
    raise SystemExit(f"unknown suite matrix {name!r}; see `suite` subcommand")


def _engine(a, cfg: ExperimentConfig) -> PartitionEngine:
    return PartitionEngine(a, seed=cfg.seed, machine=cfg.machine)


def _resolve_backend_or_exit(backend: str) -> str:
    """Resolve ``--backend`` early so an unavailable explicit native
    fails with one clean line instead of a deep traceback."""
    from repro.native import resolve_backend

    try:
        return resolve_backend(backend)
    except ConfigError as exc:
        raise SystemExit(f"s2d-repro: error: {exc}") from exc


_TRACE_FORMATS = ("chrome", "json", "tree")


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    """``--trace``/``--trace-format`` for every traceable subcommand."""
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span trace of this run and write it to FILE "
        "('-' prints the human-readable tree); default format is "
        "Chrome trace-event, loadable in Perfetto",
    )
    p.add_argument(
        "--trace-format", choices=_TRACE_FORMATS, default="chrome",
        help="trace file format (chrome = Perfetto timeline, json = "
        "schema-versioned span tree, tree = indented text)",
    )


def _quality_line(kind: str, q) -> str:
    """The one-line quality summary shared by `partition` and `simulate`."""
    return (
        f"scheme={kind} K={q.nparts} LI={q.format_li()} "
        f"volume={q.total_volume} msgs(avg/max)={q.avg_msgs:.1f}/{q.max_msgs} "
        f"speedup={q.speedup:.1f}"
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="s2d-repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_suite = sub.add_parser("suite", help="list a matrix suite's properties")
    p_suite.add_argument("--which", choices=("table1", "table4"), default="table1")
    p_suite.add_argument("--scale", choices=SCALES, default="small")

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("--id", type=int, choices=sorted(_TABLES), required=True)
    p_table.add_argument("--scale", choices=SCALES, default=None)
    p_table.add_argument(
        "--jobs", type=int, default=1,
        help="sweep worker processes (1 = serial, 0 = one per core; "
        "records are bit-identical either way)",
    )
    p_table.add_argument(
        "--cache-dir", default=None,
        help="persistent artifact cache directory; a warm rerun of the "
        "same table is pure cache reads",
    )
    p_table.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="numeric kernel backend for any compiled applies "
        "(auto = native where a C compiler is available)",
    )
    _add_trace_args(p_table)

    sub.add_parser("figure1", help="print the Figure 1 worked example")

    sub.add_parser(
        "native-info",
        help="report the native C kernel backend: compiler, cache, status",
    )

    p_spy = sub.add_parser("spy", help="ASCII spy plot of a partitioned matrix")
    p_spy.add_argument("--matrix", required=True, help="suite matrix name")
    p_spy.add_argument("--scheme", choices=_SCHEMES, default="s2d")
    p_spy.add_argument("--k", type=int, default=3)
    p_spy.add_argument("--scale", choices=SCALES, default="tiny")
    p_spy.add_argument(
        "--max-dim", type=int, default=80,
        help="refuse to render matrices larger than this many rows/cols",
    )

    p_part = sub.add_parser("partition", help="run one scheme on one matrix")
    p_part.add_argument("--matrix", help="suite matrix name (see `suite`)")
    p_part.add_argument("--mtx", help="path to a MatrixMarket file")
    p_part.add_argument("--scheme", choices=_SCHEMES, default="s2d")
    p_part.add_argument("--k", type=int, default=16)
    p_part.add_argument("--scale", choices=SCALES, default="small")
    p_part.add_argument(
        "--profile", action="store_true",
        help="print per-stage partitioner timings (coarsen/initial/refine/kway)",
    )
    _add_trace_args(p_part)

    p_sim = sub.add_parser("simulate", help="run the simulated SpMV executors")
    p_sim.add_argument("--matrix", help="suite matrix name (see `suite`)")
    p_sim.add_argument("--mtx", help="path to a MatrixMarket file")
    p_sim.add_argument(
        "--scheme", choices=_SCHEMES, default=None,
        help="one scheme to simulate (default s2d); conflicts with --all",
    )
    p_sim.add_argument(
        "--all", action="store_true",
        help="simulate every registered method in one batched pass",
    )
    p_sim.add_argument("--k", type=int, default=16)
    p_sim.add_argument("--scale", choices=SCALES, default="small")
    p_sim.add_argument(
        "--profile", action="store_true",
        help="print per-phase executor timings and the cost breakdown",
    )
    _add_trace_args(p_sim)

    p_solve = sub.add_parser(
        "solve", help="iterative solve on the compiled SpMV runtime"
    )
    p_solve.add_argument("--matrix", help="suite matrix name (see `suite`)")
    p_solve.add_argument("--mtx", help="path to a MatrixMarket file")
    p_solve.add_argument("--scheme", choices=_SCHEMES, default="s2d")
    p_solve.add_argument("--k", type=int, default=16)
    p_solve.add_argument("--scale", choices=SCALES, default="small")
    p_solve.add_argument(
        "--solver", choices=("power", "jacobi", "cg"), default="power",
        help="power iteration (default), Jacobi, or conjugate gradients",
    )
    p_solve.add_argument("--iters", type=int, default=50)
    p_solve.add_argument("--tol", type=float, default=1e-8)
    p_solve.add_argument(
        "--jobs", type=int, default=1,
        help="shared-memory SpMV workers (1 = single-core compiled "
        "apply, 0 = one per core, N = N workers; the parallel "
        "executor's y is bit-identical to the compiled path)",
    )
    p_solve.add_argument(
        "--backend", choices=BACKENDS, default="auto",
        help="numeric kernel backend: numpy, native (fused C loops; "
        "errors if no C compiler), or auto (native where available, "
        "bit-identical either way)",
    )
    _add_trace_args(p_solve)

    p_camp = sub.add_parser(
        "campaign",
        help="crash-safe journaled table runs: run / resume / status",
    )
    p_camp.add_argument(
        "action", choices=("run", "resume", "status"),
        help="run starts a fresh campaign (refuses an in-progress "
        "journal), resume continues one after a crash or kill, status "
        "reports progress + ETA from the journal alone",
    )
    p_camp.add_argument(
        "--dir", required=True, dest="campaign_dir",
        help="campaign directory (journal.jsonl + artifact cache)",
    )
    p_camp.add_argument(
        "--table", type=int, choices=(2, 3, 5, 6, 7), default=2,
        help="which quantitative table's grid to run (default 2)",
    )
    p_camp.add_argument("--scale", choices=SCALES, default=None)
    p_camp.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent worker processes (1 = serial, 0 = one per core)",
    )
    p_camp.add_argument(
        "--max-attempts", type=int, default=3,
        help="per-cell attempt budget before quarantine",
    )
    p_camp.add_argument(
        "--watchdog", type=float, default=300.0, metavar="SECONDS",
        help="per-cell watchdog: a worker silent this long is reaped, "
        "the cell marked timed out and retried on a fresh worker",
    )
    p_camp.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    _add_trace_args(p_camp)

    p_stats = sub.add_parser(
        "stats",
        help="one report over every counter store: engine memo caches, "
        "artifact caches, native build cache",
    )
    p_stats.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_stats.add_argument(
        "--no-native", action="store_true",
        help="skip the native build-cache probe (which may build the library)",
    )
    p_stats.add_argument(
        "--matrix", default=None,
        help="optional workload: plan+compile this suite matrix first so "
        "the counters have something to show",
    )
    p_stats.add_argument("--scheme", choices=_SCHEMES, default="s2d")
    p_stats.add_argument("--k", type=int, default=4)
    p_stats.add_argument("--scale", choices=SCALES, default="tiny")
    p_stats.add_argument(
        "--cache-dir", default=None,
        help="exercise a persistent artifact cache at this directory",
    )

    p_check = sub.add_parser(
        "check", help="static verification: plan IR, project lint, protocol model"
    )
    p_check.add_argument(
        "what", choices=("plan", "lint", "protocol"),
        help="which static layer to run (each exits 1 on violations)",
    )
    p_check.add_argument(
        "--plan-file", default=None,
        help="saved .npz compiled plan to verify (check plan)",
    )
    p_check.add_argument("--matrix", help="suite matrix name (check plan)")
    p_check.add_argument("--mtx", help="path to a MatrixMarket file (check plan)")
    p_check.add_argument("--scheme", choices=_SCHEMES, default="s2d")
    p_check.add_argument("--k", type=int, default=4)
    p_check.add_argument("--scale", choices=SCALES, default="tiny")
    p_check.add_argument(
        "--path", default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    p_check.add_argument(
        "--workers", type=int, nargs="+", default=[2, 3, 4],
        help="pool sizes to model-check (check protocol)",
    )
    p_check.add_argument(
        "--max-faults", type=int, default=1,
        help="crash/raise fault budget per modelled run (check protocol)",
    )

    args = ap.parse_args(argv)

    try:
        trace_path = getattr(args, "trace", None)
        if not trace_path:
            return _dispatch(args)
        # Traced run: collect a span tree around the whole dispatch and
        # export it; the command's numeric outputs are unaffected
        # (instrumentation never touches numeric state).
        from repro import obs
        from repro.obs import tree_str, write_trace

        with obs.tracing() as tr:
            rc = _dispatch(args)
        if trace_path == "-":
            print(tree_str(tr))
        else:
            write_trace(tr, trace_path, fmt=args.trace_format)
            print(f"trace: {trace_path} ({args.trace_format})")
        return rc
    except (ConfigError, UsageError) as exc:
        # Malformed command-level input (e.g. --jobs -2) or a refused
        # configuration (e.g. `campaign run` over a journal that
        # already has progress): one clean line instead of a traceback.
        print(f"s2d-repro: error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args) -> int:
    if args.cmd == "suite":
        suite = table1_suite(args.scale) if args.which == "table1" else table4_suite(args.scale)
        for sm in suite:
            print(sm.properties().table_row())
        return 0

    if args.cmd == "table":
        from repro.native import set_default_backend

        # Tables reach compiled applies through many layers; setting the
        # process default covers them all without threading the kwarg.
        set_default_backend(args.backend)
        _resolve_backend_or_exit(args.backend)
        cfg = ExperimentConfig(scale=args.scale) if args.scale else ExperimentConfig()
        print(
            _TABLES[args.id](
                cfg, jobs=args.jobs, cache_dir=args.cache_dir
            ).text
        )
        return 0

    if args.cmd == "figure1":
        print(figure1_report())
        return 0

    if args.cmd == "native-info":
        from repro.native import native_status

        status = native_status()
        print(f"available={status['available']}")
        print(f"compiler={status['compiler'] or '(none found)'}")
        print(f"cache_dir={status['cache_dir']}")
        print(f"so_path={status['so_path'] or '(not built)'}")
        print(f"built_this_process={status['built_this_process']}")
        print(f"default_backend={status['default_backend']}")
        if status["reason"]:
            print(f"reason={status['reason']}")
        return 0

    if args.cmd == "campaign":
        return _campaign_cmd(args)

    if args.cmd == "stats":
        return _stats_cmd(args)

    if args.cmd == "check":
        return _check_cmd(args)

    if args.cmd == "spy":
        from repro.sparse import spy_string

        a = _find_matrix(args.matrix, args.scale)
        if max(a.shape) > args.max_dim:
            raise SystemExit(
                f"matrix is {a.shape}; use --max-dim to force rendering"
            )
        cfg = ExperimentConfig(scale=args.scale)
        p = _engine(a, cfg).plan(args.scheme, args.k, config=cfg.partitioner()).partition
        print(
            spy_string(p.matrix, p.nnz_part, p.vectors.x_part, p.vectors.y_part)
        )
        return 0

    if args.cmd == "partition":
        if bool(args.matrix) == bool(args.mtx):
            raise SystemExit("provide exactly one of --matrix / --mtx")
        cfg = ExperimentConfig(scale=args.scale)
        a = read_matrix_market(args.mtx) if args.mtx else _find_matrix(args.matrix, args.scale)
        props = matrix_properties(a, name=args.matrix or args.mtx)
        print(props.table_row())
        plan = _engine(a, cfg).plan(
            args.scheme, args.k, config=cfg.partitioner(), profile=args.profile
        )
        if args.profile and plan.profile is not None:
            print(plan.profile.stage_table())
        q = plan.quality()
        print(_quality_line(plan.kind, q))
        return 0

    if args.cmd == "simulate":
        from repro.engine import available_methods as _methods
        from repro.simulate import profiling as sim_profiling

        if bool(args.matrix) == bool(args.mtx):
            raise SystemExit("provide exactly one of --matrix / --mtx")
        if args.all and args.scheme is not None:
            raise SystemExit("--scheme conflicts with --all")
        cfg = ExperimentConfig(scale=args.scale)
        a = read_matrix_market(args.mtx) if args.mtx else _find_matrix(args.matrix, args.scale)
        eng = _engine(a, cfg)
        methods = _methods() if args.all else [args.scheme or "s2d"]
        for method in methods:
            plan = eng.plan(method, args.k, config=cfg.partitioner())
            with sim_profiling.collect() as sprof:
                run = eng.run(plan)
            q = plan.quality()
            print(_quality_line(plan.kind, q))
            if args.profile:
                print(sprof.stage_table())
                for entry in run.breakdown(cfg.machine):
                    print(
                        f"  {entry['name']:<15} compute={entry['compute']:<10g} "
                        f"bandwidth={entry['bandwidth']:<10g} "
                        f"latency={entry['latency']:<10g}"
                    )
        return 0

    if args.cmd == "solve":
        import numpy as np

        from repro.solvers import conjugate_gradient, jacobi, power_iteration

        if bool(args.matrix) == bool(args.mtx):
            raise SystemExit("provide exactly one of --matrix / --mtx")
        cfg = ExperimentConfig(scale=args.scale)
        a = read_matrix_market(args.mtx) if args.mtx else _find_matrix(args.matrix, args.scale)
        if a.shape[0] != a.shape[1]:
            raise SystemExit(f"solve needs a square matrix, got {a.shape}")
        from repro.jobs import resolve_jobs

        jobs = resolve_jobs(args.jobs, what="--jobs")
        backend = _resolve_backend_or_exit(args.backend)
        eng = _engine(a, cfg)
        plan = eng.plan(args.scheme, args.k, config=cfg.partitioner())
        cplan = eng.compiled_plan(plan)
        pool = (
            eng.parallel_executor(plan, jobs=jobs, backend=backend)
            if jobs != 1
            else None
        )
        common = dict(
            iters=args.iters, tol=args.tol, machine=cfg.machine,
            plan=cplan, parallel=pool, backend=backend,
        )
        try:
            if args.solver == "power":
                res = power_iteration(plan.partition, **common)
            else:
                b = np.ones(a.shape[0])
                fn = jacobi if args.solver == "jacobi" else conjugate_gradient
                res = fn(plan.partition, b, **common)
            if pool is not None:
                recon = pool.reconcile()
        finally:
            eng.shutdown()
        print(
            f"scheme={plan.kind} K={plan.partition.nparts} "
            f"solver={args.solver} executor={cplan.executor} "
            f"backend={backend}"
            + (f" jobs={pool.jobs}" if pool is not None else "")
        )
        print(
            f"iterations={res.iterations} converged={res.converged} "
            f"residual={res.residual:.3e}"
        )
        print(
            f"comm: words={res.comm_words} msgs={res.comm_msgs} "
            f"sim_time={res.sim_time:.0f}"
        )
        print(f"per-iteration plan: words={cplan.words} msgs={cplan.msgs}")
        if pool is not None:
            skew = recon["worker_skew"]
            print(
                f"parallel: iters={recon['iters']} "
                f"measured words/iter={recon['total_words_per_iter']} "
                f"worker max/min={skew['max_s']:.4f}s/{skew['min_s']:.4f}s "
                f"skew={skew['ratio']:.2f}x "
                "(reconciled against the ledger)"
            )
        return 0

    return 1  # pragma: no cover


def _campaign_cmd(args) -> int:
    """The ``campaign`` subcommand: run / resume / status."""
    from repro.experiments import table_grid
    from repro.sweep import Campaign, RetryPolicy, campaign_status

    if args.action == "status":
        st = campaign_status(args.campaign_dir)
        if st.total == 0:
            print(f"no campaign journal under {args.campaign_dir}")
            return 1
        print(st.line())
        return 0

    cfg = ExperimentConfig(scale=args.scale) if args.scale else ExperimentConfig()
    grid = table_grid(args.table, cfg)
    progress = None
    if not args.quiet:
        progress = lambda st: print(st.line(), flush=True)  # noqa: E731
    campaign = Campaign(
        grid,
        args.campaign_dir,
        jobs=args.jobs,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        watchdog_s=args.watchdog,
        progress=progress,
    )
    result = campaign.run() if args.action == "run" else campaign.resume()
    counters = result.counters
    print(
        f"campaign {'complete' if result.complete else 'INCOMPLETE'}: "
        f"{len(result.records)}/{len(campaign.cell_uids)} cells "
        f"(resumed={int(counters['resumed_cells'])} "
        f"executed={int(counters['cells_executed'])} "
        f"retries={int(counters['retries'])} "
        f"quarantined={int(counters['quarantined'])})"
    )
    for fc in result.failed_cells:
        print(f"  failed: {fc.summary()}")
    return 0 if result.complete else 1


def _stats_cmd(args) -> int:
    """The ``stats`` subcommand: one report over every counter store."""
    import json

    from repro.obs import gather_stats, stats_text

    if args.matrix:
        # Optional workload so a cold process has counters to show.
        cfg = ExperimentConfig(scale=args.scale)
        a = _find_matrix(args.matrix, args.scale)
        artifacts = None
        if args.cache_dir is not None:
            from repro.sweep.cache import ArtifactCache

            artifacts = ArtifactCache(args.cache_dir)
        eng = PartitionEngine(
            a, seed=cfg.seed, machine=cfg.machine, artifacts=artifacts
        )
        plan = eng.plan(args.scheme, args.k, config=cfg.partitioner())
        eng.compiled_plan(plan)
    report = gather_stats(native=not args.no_native)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(stats_text(report))
    return 0


def _check_cmd(args) -> int:
    """The ``check`` subcommand: 0 when every property holds, 1 otherwise."""
    if args.what == "lint":
        from repro.verify import run_lint

        violations = run_lint(args.path)
        for v in violations:
            print(v)
        print(f"lint: {len(violations)} violation(s)")
        return 1 if violations else 0

    if args.what == "protocol":
        from repro.verify import check_protocol

        reports = check_protocol(
            workers=tuple(args.workers),
            max_faults=args.max_faults,
            raise_on_error=False,
        )
        for r in reports:
            print(r.summary())
        return 0 if all(r.ok for r in reports) else 1

    # check plan
    from repro.errors import SerializationError
    from repro.verify import check_plan, verify_plan

    if args.plan_file is not None:
        from repro.partition.serialize import load_plan

        try:
            plan = load_plan(args.plan_file, verify=False)
        except SerializationError as exc:
            print(f"s2d-repro: error: {exc}", file=sys.stderr)
            return 1
        report = check_plan(plan)
        print(report.summary())
        return 0 if report.ok else 1

    if bool(args.matrix) == bool(args.mtx):
        raise SystemExit(
            "check plan needs exactly one of --matrix / --mtx / --plan-file"
        )
    from repro.runtime import shard_plan

    cfg = ExperimentConfig(scale=args.scale)
    a = read_matrix_market(args.mtx) if args.mtx else _find_matrix(args.matrix, args.scale)
    eng = _engine(a, cfg)
    plan = eng.plan(args.scheme, args.k, config=cfg.partitioner())
    cplan = eng.compiled_plan(plan)
    shards = shard_plan(plan.partition, cplan)
    report = verify_plan(cplan, shards, raise_on_error=False)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
