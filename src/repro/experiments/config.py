"""Shared experiment configuration.

The paper runs K ∈ {16, 64, 256} on the general suite and K ∈ {256,
1024, 4096} on the dense-row suite with matrices of 1M–9M nonzeros.
The synthetic analogs are thousands of nonzeros, so K is scaled down
proportionally per scale; trends *across* K (balance degradation of
1D, O(K) vs O(√K) latency) are preserved because they are driven by
structure, not absolute size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.hypergraph import PartitionConfig
from repro.simulate import MachineModel

__all__ = ["ExperimentConfig", "current_scale"]


def current_scale(default: str = "small") -> str:
    """Benchmark scale, overridable via ``REPRO_SCALE``."""
    return os.environ.get("REPRO_SCALE", default)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a table run needs.

    The machine model is fixed across schemes and K so that speedup
    comparisons are apples-to-apples: α/β/γ = 20/2/1 puts one message
    at the cost of ~10 nonzeros of work, which for the small-scale
    workloads reproduces the paper's regime where latency starts to
    dominate at the largest K.
    """

    scale: str = field(default_factory=current_scale)
    seed: int = 42
    machine: MachineModel = MachineModel(alpha=20.0, beta=2.0, gamma=1.0)

    @property
    def general_ks(self) -> tuple[int, ...]:
        """K values for the Table II/III suite (paper: 16, 64, 256)."""
        return {
            "tiny": (2, 4, 8),
            "small": (4, 16, 64),
            "medium": (16, 64, 256),
        }[self.scale]

    @property
    def dense_ks(self) -> tuple[int, ...]:
        """K values for the Table V–VII suite (paper: 256, 1024, 4096)."""
        return {
            "tiny": (4, 8, 16),
            "small": (16, 64, 256),
            "medium": (64, 256, 1024),
        }[self.scale]

    def partitioner(self, seed_offset: int = 0) -> PartitionConfig:
        """PaToH-like defaults: 3% imbalance, seeded deterministically."""
        return PartitionConfig(epsilon=0.03, seed=self.seed + seed_offset)
