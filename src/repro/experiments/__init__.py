"""Experiment harness: regenerates every table and figure of the paper.

One module per artefact family:

- :mod:`repro.experiments.config` — shared scale / machine / seed
  configuration (``REPRO_SCALE`` environment variable);
- :mod:`repro.experiments.figure1` — the worked 10×13 example of
  Figure 1;
- :mod:`repro.experiments.tables` — Tables I–VII.

Benchmarks (``benchmarks/``), the CLI (``python -m repro.cli``) and the
examples all call these functions, so the numbers in every output
channel agree.
"""

from repro.experiments.config import ExperimentConfig, current_scale
from repro.experiments.figure1 import figure1_partition, figure1_report
from repro.experiments.tables import (
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    table_grid,
)

__all__ = [
    "ExperimentConfig",
    "current_scale",
    "figure1_partition",
    "figure1_report",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "table_grid",
]
