"""Tables I–VII of the paper, regenerated on the synthetic suites.

Every ``run_table*`` function returns a :class:`TableResult` holding
both the formatted text (printed by the benchmark harness) and the raw
per-instance records (consumed by tests and EXPERIMENTS.md).  Matrix
names match the paper so rows line up side by side.

All seven tables drive the sweep orchestrator
(:mod:`repro.sweep`): each declares its grid — matrices × schemes × K
over one seed and machine model — and consumes the resulting records.
The orchestrator preserves the engine-affinity sharing the serial
harness had (one :class:`repro.engine.PartitionEngine` per matrix, so
Table II's s2D column reuses the 1D column's hypergraph run and one
block-analytics pass per (matrix, K)) and adds two new controls:

- ``jobs=N`` fans the per-matrix tasks out over a fork-based process
  pool — records are bit-identical to a serial run;
- ``cache_dir=…`` persists partitions and evaluated records in a
  content-addressed store, so a warm rerun is pure cache reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig
from repro.metrics import format_li, format_table, geomean
from repro.simulate import PartitionQuality
from repro.sweep import (
    MatrixRef,
    SchemeSpec,
    SweepGrid,
    SweepResult,
    map_tasks,
    run_sweep,
    suite_refs,
)

__all__ = [
    "TableResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "table_grid",
]


@dataclass
class TableResult:
    """A regenerated table: formatted text plus raw records.

    ``meta`` carries sweep bookkeeping — per-engine cache statistics
    (including ``cached_bytes`` memory-pressure numbers) and the job
    count that produced the table.
    """

    title: str
    headers: list[str]
    rows: list[list[str]]
    records: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


# ----------------------------------------------------------------------
# Shared sweep plumbing
# ----------------------------------------------------------------------


#: Quantitative tables: suite name × scheme/slot declarations.  Slot
#: sharing encodes the paper's setup (e.g. s2D refines 1D's cached
#: vector partition — see each ``run_table*`` comment).
_TABLE_GRIDS: dict[int, tuple[str, tuple[SchemeSpec, ...]]] = {
    2: (
        "table1",
        (
            SchemeSpec("1d-rowwise", slot=0),
            SchemeSpec("finegrain", slot=1),
            SchemeSpec("s2d-heuristic", slot=0),
        ),
    ),
    3: (
        "table1",
        (
            SchemeSpec("1d-rowwise", slot=0),
            SchemeSpec("finegrain", slot=1),
            SchemeSpec("s2d-heuristic", slot=0),
            SchemeSpec("checkerboard", slot=2),
        ),
    ),
    5: (
        "table4",
        (
            SchemeSpec("1d-rowwise", slot=0),
            SchemeSpec("s2d-heuristic", slot=0),
            SchemeSpec("s2d-bounded", slot=0),
        ),
    ),
    6: (
        "table4",
        (
            SchemeSpec("checkerboard", slot=2),
            SchemeSpec("1d-boman", slot=0),
            SchemeSpec("s2d-bounded", slot=0),
        ),
    ),
    7: (
        "table4",
        (
            SchemeSpec("medium-grain", slot=3),
            SchemeSpec("s2d-heuristic", slot=0),
        ),
    ),
}


def table_grid(
    table: int,
    cfg: ExperimentConfig | None = None,
    ks: tuple[int, ...] | None = None,
) -> SweepGrid:
    """The :class:`SweepGrid` behind one quantitative table (II, III,
    V, VI, VII).

    This is the single source of the tables' grid declarations: the
    ``run_table*`` functions execute it through :func:`run_sweep`, and
    the campaign CLI (``repro campaign run --table N``) wraps the same
    grid in a crash-safe :class:`~repro.sweep.campaign.Campaign` —
    both address identical cells, so a campaign's artifact cache warms
    a later ``repro table`` run and vice versa.
    """
    table = int(table)
    if table not in _TABLE_GRIDS:
        raise KeyError(
            f"table {table} has no sweep grid (quantitative tables: "
            f"{sorted(_TABLE_GRIDS)})"
        )
    cfg = cfg or ExperimentConfig()
    which, schemes = _TABLE_GRIDS[table]
    if ks is None:
        if table == 3:
            ks = (cfg.general_ks[-1],)
        elif table == 2:
            ks = cfg.general_ks
        else:
            ks = cfg.dense_ks
    return SweepGrid(
        matrices=suite_refs(which, cfg.scale),
        schemes=schemes,
        ks=tuple(int(k) for k in ks),
        seeds=(cfg.seed,),
        machines=(cfg.machine,),
    )


def _table_sweep(
    table: int,
    cfg: ExperimentConfig,
    ks: tuple[int, ...],
    *,
    jobs: int,
    cache_dir,
) -> tuple[tuple[MatrixRef, ...], SweepResult]:
    """Declare and run one quantitative table's grid."""
    grid = table_grid(table, cfg, ks)
    return grid.matrices, run_sweep(grid, jobs=jobs, cache_dir=cache_dir)


def _sweep_meta(res: SweepResult, jobs: int) -> dict:
    return {"jobs": jobs, "engines": res.engines}


def _properties_cell(ref: MatrixRef) -> tuple:
    """Worker body of the property tables (module-level: picklable)."""
    sm = ref.suite_entry()
    return sm.properties(), sm.application


def _properties_table(
    which: str, cfg: ExperimentConfig, title: str, jobs: int
) -> TableResult:
    refs = suite_refs(which, cfg.scale)
    headers = ["name", "n", "nnz", "davg", "dmax", "application"]
    rows, records = [], []
    for p, application in map_tasks(_properties_cell, refs, jobs=jobs):
        rows.append(
            [p.name, p.nrows, p.nnz, f"{p.davg:.1f}", p.dmax, application]
        )
        records.append(
            {
                "name": p.name,
                "n": p.nrows,
                "nnz": p.nnz,
                "davg": p.davg,
                "dmax": p.dmax,
                "skew": p.row_skew,
            }
        )
    return TableResult(
        title=title,
        headers=headers,
        rows=rows,
        records=records,
        meta={"jobs": jobs},
    )


def run_table1(
    cfg: ExperimentConfig | None = None, *, jobs: int = 1, cache_dir=None
) -> TableResult:
    """Table I: properties of the general test suite.

    ``cache_dir`` is accepted for interface uniformity; property sweeps
    build no partition artifacts, so it is unused.
    """
    cfg = cfg or ExperimentConfig()
    return _properties_table(
        "table1",
        cfg,
        f"Table I analog (scale={cfg.scale}): general matrices",
        jobs,
    )


def run_table4(
    cfg: ExperimentConfig | None = None, *, jobs: int = 1, cache_dir=None
) -> TableResult:
    """Table IV: properties of the dense-row suite."""
    cfg = cfg or ExperimentConfig()
    return _properties_table(
        "table4",
        cfg,
        f"Table IV analog (scale={cfg.scale}): matrices with dense rows",
        jobs,
    )


# ----------------------------------------------------------------------
# Table II: 1D vs 2D vs s2D
# ----------------------------------------------------------------------


def run_table2(
    cfg: ExperimentConfig | None = None,
    ks: tuple[int, ...] | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
) -> TableResult:
    """Table II: 1D rowwise vs 2D fine-grain vs s2D (Algorithm 1)."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.general_ks
    headers = [
        "name", "K",
        "1D:LI", "1D:lat(av/mx)", "lam1D", "1D:Sp",
        "2D:LI", "2D:lat(av/mx)", "2D:lam/1D", "2D:Sp",
        "s2D:LI", "s2D:lam/1D", "s2D:Sp",
    ]
    # Slot 0 is shared between 1D and s2D: s2D refines 1D's cached
    # vector partition, as in the paper's setup (grid in _TABLE_GRIDS).
    refs, res = _table_sweep(2, cfg, ks, jobs=jobs, cache_dir=cache_dir)
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for ref in refs:
        for k in ks:
            q1 = res.quality(ref.name, "1d-rowwise", k)
            q2 = res.quality(ref.name, "finegrain", k)
            qs = res.quality(ref.name, "s2d-heuristic", k)
            rec = {
                "name": ref.name, "K": k,
                "1D": q1, "2D": q2, "s2D": qs,
                "lam_ratio_2d": q2.total_volume / q1.total_volume,
                "lam_ratio_s2d": qs.total_volume / q1.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    ref.name, k,
                    q1.format_li(), f"{q1.avg_msgs:.0f}/{q1.max_msgs}",
                    f"{q1.total_volume:.2e}", f"{q1.speedup:.1f}",
                    q2.format_li(), f"{q2.avg_msgs:.0f}/{q2.max_msgs}",
                    f"{rec['lam_ratio_2d']:.2f}", f"{q2.speedup:.1f}",
                    qs.format_li(), f"{rec['lam_ratio_s2d']:.2f}",
                    f"{qs.speedup:.1f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        if not rs:
            continue
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["1D"].load_imbalance for r in rs)),
                f"{geomean(r['1D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['1D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['1D'].total_volume for r in rs):.2e}",
                f"{geomean(r['1D'].speedup for r in rs):.1f}",
                format_li(geomean(r["2D"].load_imbalance for r in rs)),
                f"{geomean(r['2D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['2D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['lam_ratio_2d'] for r in rs):.2f}",
                f"{geomean(r['2D'].speedup for r in rs):.1f}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['lam_ratio_s2d'] for r in rs):.2f}",
                f"{geomean(r['s2D'].speedup for r in rs):.1f}",
            ]
        )
    return TableResult(
        title=f"Table II analog (scale={cfg.scale}): 1D vs 2D vs s2D",
        headers=headers,
        rows=rows,
        records=records,
        meta=_sweep_meta(res, jobs),
    )


# ----------------------------------------------------------------------
# Table III: checkerboard vs best of (1D, 2D, s2D)
# ----------------------------------------------------------------------


def run_table3(
    cfg: ExperimentConfig | None = None,
    k: int | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
) -> TableResult:
    """Table III: hypergraph Cartesian 2D-b vs the best unbounded scheme."""
    cfg = cfg or ExperimentConfig()
    k = k or cfg.general_ks[-1]
    headers = [
        "name", "best(1D,2D,s2D):Sp", "scheme",
        "2Db:LI", "2Db:lat(av/mx)", "2Db:lam/1D", "2Db:Sp",
    ]
    refs, res = _table_sweep(3, cfg, (k,), jobs=jobs, cache_dir=cache_dir)
    rows, records = [], []
    for ref in refs:
        q1 = res.quality(ref.name, "1d-rowwise", k)
        q2 = res.quality(ref.name, "finegrain", k)
        qs = res.quality(ref.name, "s2d-heuristic", k)
        qb = res.quality(ref.name, "checkerboard", k)
        best_name, best_q = max(
            (("1D", q1), ("2D", q2), ("s2D", qs)), key=lambda t: t[1].speedup
        )
        rec = {
            "name": ref.name, "K": k, "best": best_name, "best_q": best_q,
            "2D-b": qb, "lam_ratio": qb.total_volume / q1.total_volume,
        }
        records.append(rec)
        rows.append(
            [
                ref.name, f"{best_q.speedup:.1f}", best_name,
                qb.format_li(), f"{qb.avg_msgs:.0f}/{qb.max_msgs}",
                f"{rec['lam_ratio']:.2f}", f"{qb.speedup:.1f}",
            ]
        )
    rows.append(
        [
            "geomean",
            f"{geomean(r['best_q'].speedup for r in records):.1f}", "-",
            format_li(geomean(r["2D-b"].load_imbalance for r in records)),
            f"{geomean(r['2D-b'].avg_msgs for r in records):.0f}/"
            f"{geomean(r['2D-b'].max_msgs for r in records):.0f}",
            f"{geomean(r['lam_ratio'] for r in records):.2f}",
            f"{geomean(r['2D-b'].speedup for r in records):.1f}",
        ]
    )
    return TableResult(
        title=f"Table III analog (scale={cfg.scale}, K={k}): Cartesian 2D-b",
        headers=headers,
        rows=rows,
        records=records,
        meta=_sweep_meta(res, jobs),
    )


# ----------------------------------------------------------------------
# Table V: 1D vs s2D vs s2D-b on the dense-row suite
# ----------------------------------------------------------------------


def run_table5(
    cfg: ExperimentConfig | None = None,
    ks: tuple[int, ...] | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
) -> TableResult:
    """Table V: the dense-row suite under 1D, s2D and s2D-b."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "1D:LI", "1D:lat(av/mx)", "lam1D",
        "s2D:LI", "s2D:lam/1D",
        "s2Db:lat(av/mx)", "s2Db:lam/1D",
    ]
    # All three share slot 0: s2D refines 1D's vectors, and s2D-b
    # shares the cached s2D plan (same nonzero partition, mesh-routed
    # schedule).
    refs, res = _table_sweep(5, cfg, ks, jobs=jobs, cache_dir=cache_dir)
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for ref in refs:
        for k in ks:
            q1 = res.quality(ref.name, "1d-rowwise", k)
            qs = res.quality(ref.name, "s2d-heuristic", k)
            qb = res.quality(ref.name, "s2d-bounded", k)
            rec = {
                "name": ref.name, "K": k, "1D": q1, "s2D": qs, "s2D-b": qb,
                "lam_s2d": qs.total_volume / q1.total_volume,
                "lam_s2db": qb.total_volume / q1.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    ref.name, k,
                    q1.format_li(), f"{q1.avg_msgs:.0f}/{q1.max_msgs}",
                    f"{q1.total_volume:.2e}",
                    qs.format_li(), f"{rec['lam_s2d']:.2f}",
                    f"{qb.avg_msgs:.0f}/{qb.max_msgs}",
                    f"{rec['lam_s2db']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["1D"].load_imbalance for r in rs)),
                f"{geomean(r['1D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['1D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['1D'].total_volume for r in rs):.2e}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['lam_s2d'] for r in rs):.2f}",
                f"{geomean(r['s2D-b'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['s2D-b'].max_msgs for r in rs):.0f}",
                f"{geomean(r['lam_s2db'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table V analog (scale={cfg.scale}): 1D vs s2D vs s2D-b",
        headers=headers,
        rows=rows,
        records=records,
        meta=_sweep_meta(res, jobs),
    )


# ----------------------------------------------------------------------
# Table VI: s2D-b vs 2D-b vs 1D-b
# ----------------------------------------------------------------------


def run_table6(
    cfg: ExperimentConfig | None = None,
    ks: tuple[int, ...] | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
) -> TableResult:
    """Table VI: the latency-bounded schemes compared."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "2Db:LI", "lam2Db",
        "1Db:LI", "1Db:lam/2Db",
        "s2Db:LI", "s2Db:lam/2Db",
    ]
    # 1D-b and s2D-b both route the cached 1D vector partition (slot 0).
    refs, res = _table_sweep(6, cfg, ks, jobs=jobs, cache_dir=cache_dir)
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for ref in refs:
        for k in ks:
            qcb = res.quality(ref.name, "checkerboard", k)
            q1b = res.quality(ref.name, "1d-boman", k)
            qsb = res.quality(ref.name, "s2d-bounded", k)
            rec = {
                "name": ref.name, "K": k,
                "2D-b": qcb, "1D-b": q1b, "s2D-b": qsb,
                "lam_1db": q1b.total_volume / qcb.total_volume,
                "lam_s2db": qsb.total_volume / qcb.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    ref.name, k,
                    qcb.format_li(), f"{qcb.total_volume:.2e}",
                    q1b.format_li(), f"{rec['lam_1db']:.2f}",
                    qsb.format_li(), f"{rec['lam_s2db']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["2D-b"].load_imbalance for r in rs)),
                f"{geomean(r['2D-b'].total_volume for r in rs):.2e}",
                format_li(geomean(r["1D-b"].load_imbalance for r in rs)),
                f"{geomean(r['lam_1db'] for r in rs):.2f}",
                format_li(geomean(r["s2D-b"].load_imbalance for r in rs)),
                f"{geomean(r['lam_s2db'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table VI analog (scale={cfg.scale}): bounded-latency schemes",
        headers=headers,
        rows=rows,
        records=records,
        meta=_sweep_meta(res, jobs),
    )


# ----------------------------------------------------------------------
# Table VII: s2D vs s2D-mg
# ----------------------------------------------------------------------


def run_table7(
    cfg: ExperimentConfig | None = None,
    ks: tuple[int, ...] | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
) -> TableResult:
    """Table VII: the Algorithm-1 s2D vs the medium-grain s2D."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "mg:LI", "mg:lat", "lam_mg",
        "s2D:LI", "s2D:lat", "s2D:lam/mg",
    ]
    refs, res = _table_sweep(7, cfg, ks, jobs=jobs, cache_dir=cache_dir)
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for ref in refs:
        for k in ks:
            qmg = res.quality(ref.name, "medium-grain", k)
            qs = res.quality(ref.name, "s2d-heuristic", k)
            rec = {
                "name": ref.name, "K": k, "mg": qmg, "s2D": qs,
                "lam_ratio": qs.total_volume / max(qmg.total_volume, 1),
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    ref.name, k,
                    qmg.format_li(), f"{qmg.avg_msgs:.0f}",
                    f"{qmg.total_volume:.2e}",
                    qs.format_li(), f"{qs.avg_msgs:.0f}",
                    f"{rec['lam_ratio']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["mg"].load_imbalance for r in rs)),
                f"{geomean(r['mg'].avg_msgs for r in rs):.0f}",
                f"{geomean(r['mg'].total_volume for r in rs):.2e}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['s2D'].avg_msgs for r in rs):.0f}",
                f"{geomean(r['lam_ratio'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table VII analog (scale={cfg.scale}): s2D vs s2D-mg",
        headers=headers,
        rows=rows,
        records=records,
        meta=_sweep_meta(res, jobs),
    )
